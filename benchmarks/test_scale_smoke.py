"""Scale smoke: 1,000 concurrent connections stay fast and deterministic.

The connection-scale refactor's acceptance bar (EXPERIMENTS.md row
"scale", recorded in ``BENCH_scale.json``): one host pair must churn
through a 1,000-strong mixed-TSC population under a loose wall-clock
bound, every connection must establish, and the run must be bit-identical
across repeats and across manager modes.  The sharper coalesced-vs-legacy
wall ratio gate (<= 0.7) lives in ``record_bench.py --check``; here the
bound is generous so CI hardware variance cannot flake the suite.
"""

from time import perf_counter

from repro.core.churn import identity_fields, run_churn

WALL_BOUND_S = 60.0


def test_1k_churn_under_wall_bound():
    w0 = perf_counter()
    metrics = run_churn(1000, mode="coalesced", seed=7)
    wall = perf_counter() - w0
    assert wall < WALL_BOUND_S, f"1k churn took {wall:.1f}s"
    assert metrics["failed"] == 0
    assert metrics["peak_concurrent"] >= 1000
    assert metrics["established"] >= 1000
    assert metrics["delivered"] > 0
    print(f"\n1k churn: {wall:.2f}s wall, "
          f"{metrics['established']} established, "
          f"peak {metrics['peak_concurrent']} concurrent")


def test_repeat_and_mode_identity_n10():
    a = run_churn(10, mode="coalesced", seed=7)
    b = run_churn(10, mode="coalesced", seed=7)
    legacy = run_churn(10, mode="legacy", seed=7)
    assert identity_fields(a) == identity_fields(b)
    assert identity_fields(a) == identity_fields(legacy)
