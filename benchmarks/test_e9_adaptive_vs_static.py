"""E9 — the architecture-level claim: adaptive reconfiguration beats any
single static configuration when conditions change (§2.2(B), §4.1.2).

"Dynamically configured transport systems may support a wider range of
application/network pairings more effectively than statically configured
systems."

Scenario: one long media session through three phases —

1. clean terrestrial path (0–8 s);
2. congested path: heavy cross traffic (8–18 s);
3. failover to a satellite route (18–40 s).

Variants: three *static* configurations, each optimal for exactly one
phase (plain GBN for the clean phase, GBN+rate-limited for congestion,
FEC+rate for the satellite), and the *adaptive* session running the TSA
policy set (congestion rate backoff + RTT-triggered FEC switch).

Shape: each static variant wins (or ties) its home phase and loses badly
somewhere else; the adaptive session's total delivered count is within a
small factor of the best static in *every* phase and strictly better than
the worst static overall — no single static dominates it.
"""

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.policies import congestion_rate_backoff, rtt_switch_to_fec
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.profiles import dual_path, ethernet_10, satellite
from repro.netsim.traffic import BackgroundLoad
from repro.unites.present import render_table

from benchmarks.conftest import record

PHASES = ((0.0, 8.0), (8.0, 18.0), (18.0, 40.0))
FRAME = 512
FPS = 24
SAT = satellite().scaled(ber=3e-6)

STATIC_VARIANTS = {
    "static-gbn": {"recovery": "gbn", "ack": "cumulative",
                   "transmission": "window-rate", "rate_pps": float(FPS)},
    "static-gbn-slow": {"recovery": "gbn", "ack": "cumulative",
                        "transmission": "window-rate", "rate_pps": FPS / 2.0},
    "static-fec": {"recovery": "fec-rs", "ack": "none", "transmission": "rate",
                   "rate_pps": float(FPS), "fec_k": 4, "fec_r": 2},
}


def run_variant(name: str, seed=37):
    sysm = AdaptiveSystem(seed=seed)
    sysm.attach_network(dual_path(sysm.sim, ethernet_10(), SAT, rng=sysm.rng))
    a, b = sysm.node("A"), sysm.node("B")
    deliveries = []
    b.mantts.register_service(
        7000, on_deliver=lambda d, m: deliveries.append((sysm.now, m["latency"]))
    )
    adaptive = name == "adaptive"
    acd = ACD(
        participants=("B",),
        quantitative=QuantitativeQoS(
            avg_throughput_bps=FRAME * 8 * FPS, duration=600,
            loss_tolerance=0.02, message_size=FRAME,
        ),
        qualitative=QualitativeQoS(ordered=False, duplicate_sensitive=False),
        tsa=(
            congestion_rate_backoff(threshold=0.6, factor=0.5)
            + rtt_switch_to_fec(threshold=0.2)
            if adaptive
            else ()
        ),
    )
    conn = a.mantts.open(acd)
    sysm.run(until=0.3)
    if adaptive:
        conn.apply_overrides(
            {"recovery": "gbn", "ack": "cumulative",
             "transmission": "window-rate", "rate_pps": float(FPS)},
            reason="adaptive starting point (clean-phase optimum)",
        )
    else:
        conn.apply_overrides(STATIC_VARIANTS[name], reason="static setup")
    from repro.apps.video import CbrVideoSource

    src = CbrVideoSource(sysm.sim, conn, fps=FPS, frame_bytes=FRAME)
    src.start(0.5)
    load = BackgroundLoad(sysm.network, "p1", "p2", rate_bps=9.2e6)
    load.start(PHASES[1][0])
    sysm.sim.schedule(PHASES[1][1], load.stop)
    sysm.sim.schedule(PHASES[2][0], sysm.network.fail_link, "p1", "p2")
    sysm.run(until=PHASES[2][1])

    # deliveries within deadline (2× the satellite one-way) count as good
    deadline = 2.5
    per_phase = []
    for lo, hi in PHASES:
        ok = sum(1 for t, lat in deliveries if lo <= t < hi and lat < deadline)
        per_phase.append(ok)
    return {
        "phase1_clean": float(per_phase[0]),
        "phase2_congested": float(per_phase[1]),
        "phase3_satellite": float(per_phase[2]),
        "total": float(sum(per_phase)),
        "wire_bytes": float(conn.session.stats.wire_bytes_sent),
        "reconfigs": float(conn.session.stats.reconfigurations),
    }


def test_e9_adaptive_vs_static(benchmark):
    def run():
        out = {name: run_variant(name) for name in STATIC_VARIANTS}
        out["adaptive"] = run_variant("adaptive")
        return out

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"variant": k, **v} for k, v in r.items()]
    record(
        benchmark,
        render_table(
            rows,
            ["variant", "phase1_clean", "phase2_congested",
             "phase3_satellite", "total", "wire_bytes", "reconfigs"],
            title="E9 — three-phase session: frames delivered in time per phase",
        ),
    )
    ad = r["adaptive"]
    statics = {k: v for k, v in r.items() if k != "adaptive"}
    # the adaptive session actually reconfigured
    assert ad["reconfigs"] >= 1
    # no static variant beats adaptive overall
    best_static_total = max(v["total"] for v in statics.values())
    assert ad["total"] >= best_static_total * 0.9
    # and adaptive strictly beats every static somewhere it is weak:
    # retransmission statics die on the satellite phase ...
    assert ad["phase3_satellite"] > statics["static-gbn"]["phase3_satellite"] * 1.5
    assert ad["total"] > min(v["total"] for v in statics.values())
    # ... while always-on FEC pays its parity overhead even on the clean
    # terrestrial phases, where adaptive runs lean retransmission
    assert ad["wire_bytes"] < statics["static-fec"]["wire_bytes"]
