"""E2 — the *underweight* configuration (§2.2(B)).

"An example of an underweight configuration is one where a protocol (such
as TCP) does not provide a service (such as reliable multicast support)
for applications that require it (such as interactive teleconferencing
applications)."

Workload: one speaker reliably distributing conference media to N
listeners on a shared LAN.  Variants:

* **tcp-unicast-fanout** — TCP lacks multicast, so the application must
  open N independent reliable sessions and transmit every frame N times;
* **adaptive-multicast** — one session, group-addressed frames replicated
  by the network, per-member ACK aggregation for reliability.

Shape: the fan-out workaround burns ~N× the sender's access-link bytes
and sender CPU; with more members the gap widens.  Delivery completeness
is equal (both are reliable) — the point is the *cost* of retrofitting a
missing service.
"""

from repro.baselines import tcp_like_config
from repro.core.system import AdaptiveSystem
from repro.netsim.profiles import fddi_100, star
from repro.tko.config import SessionConfig
from repro.unites.present import render_table

from benchmarks.conftest import record

N_FRAMES = 40
FRAME = 900


def build_conference(members):
    sysm = AdaptiveSystem(seed=2)
    sysm.attach_network(star(sysm.sim, fddi_100(), ["A", *members], rng=sysm.rng))
    sender = sysm.node("A")
    rx = {}
    nodes = {}
    for m in members:
        nodes[m] = sysm.node(m)
        rx[m] = []
    return sysm, sender, nodes, rx


def tcp_fanout(members):
    sysm, sender, nodes, rx = build_conference(members)
    cfg = tcp_like_config(binding="dynamic")
    for m in members:
        nodes[m].protocol.listen(
            7000,
            lambda pdu, frame: cfg,
            (lambda lst: lambda s: setattr(s, "on_deliver", lambda d, meta: lst.append(d)))(rx[m]),
        )
    sessions = [sender.protocol.create_session(cfg, m, 7000) for m in members]
    for s in sessions:
        s.connect()
    sysm.run(until=1.0)
    for _ in range(N_FRAMES):
        for s in sessions:  # the application must send N copies itself
            s.send(b"f" * FRAME)
    sysm.run(until=10.0)
    access_bytes = sum(
        sysm.network.links[("A", "hub")].stats.bytes_delivered for _ in (0,)
    )
    return {
        "delivered_min": min(len(v) for v in rx.values()),
        "access_link_bytes": float(access_bytes),
        "sender_pdus": float(sum(s.stats.pdus_sent for s in sessions)),
        "sender_cpu_instr": sender.host.cpu.instructions_retired,
        "sessions": float(len(sessions)),
    }


def adaptive_multicast(members):
    sysm, sender, nodes, rx = build_conference(members)
    mcfg = SessionConfig(
        connection="implicit", delivery="multicast",
        transmission="sliding-window", ack="selective", recovery="sr",
        sequencing="ordered-dedup", window=16,
    )
    for m in members:
        sysm.network.join_group("conf", m)
        nodes[m].protocol.listen(
            7000,
            lambda pdu, frame: mcfg.with_(delivery="unicast"),
            (lambda lst: lambda s: setattr(s, "on_deliver", lambda d, meta: lst.append(d)))(rx[m]),
        )
    s = sender.protocol.create_session(
        mcfg, "conf", 7000, group="conf", members=list(members)
    )
    s.connect()
    sysm.run(until=0.2)
    for _ in range(N_FRAMES):
        s.send(b"f" * FRAME)
    sysm.run(until=10.0)
    return {
        "delivered_min": min(len(v) for v in rx.values()),
        "access_link_bytes": float(
            sysm.network.links[("A", "hub")].stats.bytes_delivered
        ),
        "sender_pdus": float(s.stats.pdus_sent),
        "sender_cpu_instr": sender.host.cpu.instructions_retired,
        "sessions": 1.0,
    }


def test_e2_underweight_tcp_lacks_multicast(benchmark):
    members3 = ("B", "C", "D")
    members6 = ("B", "C", "D", "E", "F", "G")

    def run():
        return {
            ("tcp", 3): tcp_fanout(members3),
            ("mc", 3): adaptive_multicast(members3),
            ("tcp", 6): tcp_fanout(members6),
            ("mc", 6): adaptive_multicast(members6),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"variant": f"{k[0]}-{k[1]}members", **v} for k, v in r.items()
    ]
    record(
        benchmark,
        render_table(
            rows,
            ["variant", "sessions", "delivered_min", "access_link_bytes",
             "sender_pdus", "sender_cpu_instr"],
            title="E2 — reliable conference: TCP unicast fan-out vs multicast",
        ),
    )
    for n in (3, 6):
        tcp, mc = r[("tcp", n)], r[("mc", n)]
        assert tcp["delivered_min"] == N_FRAMES
        assert mc["delivered_min"] == N_FRAMES
        # the underweight workaround costs ~N× on the sender's access link
        assert tcp["access_link_bytes"] > mc["access_link_bytes"] * (n - 1)
        # sender CPU also pays (multicast still processes per-member ACKs,
        # so the margin is smaller than the N× wire cost)
        assert tcp["sender_cpu_instr"] > mc["sender_cpu_instr"]
    # and the gap widens with group size
    ratio3 = r[("tcp", 3)]["access_link_bytes"] / r[("mc", 3)]["access_link_bytes"]
    ratio6 = r[("tcp", 6)]["access_link_bytes"] / r[("mc", 6)]["access_link_bytes"]
    assert ratio6 > ratio3
