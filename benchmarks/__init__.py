"""Experiment benchmarks: one module per paper table/figure/claim."""
