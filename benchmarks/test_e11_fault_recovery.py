"""E11 — fault recovery: the run-time adaptation loop closes the §4.1.2
failover scenario end to end.

"Routes change from a terrestrial link to a satellite link" mid-stream: a
bulk reliable session runs over the fast terrestrial path of a dual-path
topology when the fault injector cuts it permanently.  Routing fails over
to the 1.6 s-RTT satellite backup.  Both variants start from the same
clean-path optimum (selective repeat, terrestrial-sized window), so the
comparison isolates the run-time loop itself: the static session keeps
its sub-millisecond-derived window and RTO and starves — its timer,
still seeded from terrestrial samples and denied fresh ones by Karn's
rule, fires long before any satellite ACK can land.  The adaptive
controller detects the path change on the next monitor sample and
re-derives window (bandwidth-delay product, capped at the bottleneck
queue) and RTO, and re-seeds the live estimator.

Shape asserted:

* recovery is bounded: the adaptive session delivers again within the
  monitor period + negotiation timeout after the cut;
* reliability survives the chaos: deliveries are in order with zero
  losses and zero duplicates on both variants;
* adaptation pays: the adaptive session's post-cut goodput beats the
  static session's by ≥ 25 %.
"""

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.lifecycle import NEGOTIATION_TIMEOUT
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.faults import FaultInjector, FaultSchedule
from repro.netsim.profiles import dual_path, ethernet_10, satellite
from repro.unites.present import render_table

from benchmarks.conftest import record

CUT_AT = 1.5
END_AT = 25.0
N_MSGS = 3000
MSG = 600
MONITOR_INTERVAL = 0.1


def run_variant(adaptive: bool, seed: int = 21) -> dict:
    sysm = AdaptiveSystem(seed=seed)
    sysm.attach_network(
        dual_path(sysm.sim, ethernet_10(), satellite(), rng=sysm.rng)
    )
    a, b = sysm.node("A"), sysm.node("B")
    deliveries = []
    b.mantts.register_service(
        7000, on_deliver=lambda d, m: deliveries.append((sysm.now, bytes(d)))
    )
    acd = ACD(
        participants=("B",),
        quantitative=QuantitativeQoS(avg_throughput_bps=400e3, duration=600),
        qualitative=QualitativeQoS(),
    )
    conn = a.mantts.open(acd, adaptation=adaptive)
    sysm.run(until=1.0)
    assert conn._established
    # both variants start from the same clean-path optimum: selective
    # repeat with a window sized for the sub-millisecond terrestrial RTT
    conn.apply_overrides(
        {"recovery": "sr", "ack": "selective"}, reason="starting point"
    )
    msgs = [b"e%04d" % i + b"v" * (MSG - 5) for i in range(N_MSGS)]
    for m in msgs:
        conn.send(m)
    FaultInjector(
        sysm.sim, sysm.network, FaultSchedule().link_flap(CUT_AT, "p1", "p2")
    ).arm()
    sysm.run(until=END_AT)

    got = [d for _, d in deliveries]
    # the reliability contract under chaos: the delivered stream is
    # exactly a prefix of the sent stream — in order, nothing lost in the
    # middle, nothing duplicated
    assert got == msgs[: len(got)], "loss/duplication/reorder detected"
    post = [(t, d) for t, d in deliveries if t > CUT_AT]
    recovery = (post[0][0] - CUT_AT) if post else float("inf")
    goodput = sum(len(d) for _, d in post) * 8.0 / (END_AT - CUT_AT)
    out = {
        "delivered": float(len(got)),
        "recovery_s": recovery,
        "post_cut_goodput_bps": goodput,
        "window_after": float(conn.cfg.window),
    }
    if adaptive:
        out["failovers"] = float(
            sum(1 for _, act, _ in conn.adaptation.events if act == "failover")
        )
    return out


def test_e11_fault_recovery(benchmark):
    def run():
        return {
            "static": run_variant(False),
            "adaptive": run_variant(True),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"variant": k, **v} for k, v in r.items()]
    record(
        benchmark,
        render_table(
            rows,
            ["variant", "delivered", "recovery_s",
             "post_cut_goodput_bps", "window_after"],
            title="E11 — permanent primary-path cut at t=1.5s: recovery and goodput",
        ),
    )
    ad, st = r["adaptive"], r["static"]
    # the controller actually saw the route change
    assert ad["failovers"] >= 1
    # recovery is bounded by the detection + (re)negotiation budget
    assert ad["recovery_s"] <= MONITOR_INTERVAL + NEGOTIATION_TIMEOUT + 1.0
    # the re-derived window tracks the satellite BDP; the static one
    # stays sized for the terrestrial path
    assert ad["window_after"] > st["window_after"]
    # the headline claim: adaptation buys >= 25 % goodput after the cut
    assert ad["post_cut_goodput_bps"] >= 1.25 * st["post_cut_goodput_bps"]
