"""Ablation — flow-control window vs the bandwidth-delay product.

Stage II sizes the sliding window to the path BDP (§4.1.1's "initial
window advertisements and scaling factors" are exactly this knob; §2.2(C)
lists "large flow-control windows" among what long-delay paths need).
Sweeping the window on a high-BDP path (100 Mb/s, ~30 ms RTT, BDP ≈ 80
PDUs) shows throughput climbing ~linearly below BDP and saturating above
it — the knee the derivation targets.
"""

from repro.core.scenario import PointToPointScenario
from repro.netsim.profiles import NetworkProfile
from repro.sweep import ScenarioSpec, SweepRunner
from repro.tko.config import SessionConfig
from repro.unites.present import render_table

from benchmarks.conftest import record

# a long-haul fiber path: high rate and high latency, generous queues
LONG_FAT = NetworkProfile("long-fat", 100e6, 5e-3, 0.0, 4500, 256)


def run_window(window: int) -> dict:
    sc = PointToPointScenario(
        config=SessionConfig(window=window),
        workload="bulk",
        workload_kw={"total_bytes": 8_000_000, "chunk_bytes": 32_768},
        profile=LONG_FAT,
        duration=6.0,
        seed=67,
        mips=400.0,  # keep the host out of the way: this is a wire/window study
    )
    sc.run(6.0)
    return {"goodput_bps": sc.tracker.goodput_bps()}


#: ``seed_param=None``: the cell keeps its historical seed=67 so results
#: are bit-identical to the pre-sweep serial loop
WINDOW_SWEEP = ScenarioSpec(
    name="window-vs-bdp",
    cell=run_window,
    grid={"window": [4, 16, 64, 128, 220]},
    seed_param=None,
)


def test_ablation_window_vs_bdp(benchmark):
    def run():
        sweep = SweepRunner(WINDOW_SWEEP, workers=None).run()
        return {
            c.params["window"]: c.metrics["goodput_bps"] for c in sweep
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    seg = 4500 - 56
    rtt = 2 * (3 * 5e-3 + 3 * 4500 * 8 / 100e6)
    bdp = 100e6 * rtt / (8 * seg)
    rows = [
        {"window": w, "goodput_bps": g, "window/bdp": w / bdp}
        for w, g in results.items()
    ]
    record(
        benchmark,
        render_table(rows, ["window", "goodput_bps", "window/bdp"],
                     title=f"Ablation — window sweep (path BDP ≈ {bdp:.0f} PDUs)"),
    )
    # below the BDP, goodput tracks the window ~linearly
    assert results[16] > results[4] * 3
    assert results[64] > results[16] * 2.5
    # beyond the BDP, returns vanish (saturation knee)
    assert results[220] < results[128] * 1.3
    # saturated goodput approaches the channel
    assert results[220] > 50e6
