"""Ablation — configuration-delay amortization across session churn.

§4.2.2: "the benefits of a dynamically configured architecture are reduced
if the configuration and/or reconfiguration process is overly
time-consuming.  [TKO_Templates] reduce the complexity and duration of the
connection negotiation phase."

An OLTP-like front end opens many short transactional sessions in a row.
Variants: a cold cache per open (worst case), one warm shared cache
(normal operation — the first open seeds it), and a cache preloaded from
the TSC defaults (`preload_tsc_templates`).  Measured: total host
instructions spent on Stage III instantiation across the churn.
"""

from repro.host.nic import Host
from repro.mantts.acd import ACD
from repro.mantts.monitor import NetworkState
from repro.mantts.transform import specify_scs
from repro.mantts.tsc import APP_PROFILES
from repro.netsim.profiles import ethernet_10, linear_path
from repro.sim.kernel import Simulator
from repro.tko.protocol import TKOProtocol
from repro.tko.synthesizer import TKOSynthesizer
from repro.tko.templates import TemplateCache, preload_tsc_templates
from repro.unites.present import render_table

from benchmarks.conftest import record

N_SESSIONS = 50
PATH = NetworkState("A", "B", True, 0.004, 0.004, 10e6, 1500, 1e-6, 0.0, 0.0, 3)


def churn(mode: str) -> float:
    """Total instantiation instructions for N short OLTP sessions."""
    sim = Simulator()
    net = linear_path(sim, ethernet_10(), ("A", "B"))
    host = Host(sim, net, "A")
    shared = TemplateCache()
    if mode == "preloaded":
        preload_tsc_templates(shared)
    p = APP_PROFILES["oltp"]
    acd = ACD(participants=("B",), quantitative=p.quantitative(),
              qualitative=p.qualitative())
    cfg = specify_scs(acd, PATH).config
    total = 0.0
    protocol = None
    for i in range(N_SESSIONS):
        cache = TemplateCache() if mode == "cold-every-time" else shared
        synth = TKOSynthesizer(cache)
        if protocol is None:
            protocol = TKOProtocol(host, synth)
        else:
            protocol.synthesizer = synth
        before = host.cpu.instructions_retired
        protocol.create_session(cfg, "B", 7000 + i)
        sim.run(until=sim.now + 1e-6)
        total += host.cpu.instructions_retired - before
    return total


def test_ablation_template_cache_amortization(benchmark):
    def run():
        return {
            "cold-every-time": churn("cold-every-time"),
            "warm-shared": churn("warm-shared"),
            "preloaded": churn("preloaded"),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"cache": k, "total_instantiation_instr": v,
         "per_session": v / N_SESSIONS}
        for k, v in r.items()
    ]
    record(
        benchmark,
        render_table(
            rows, ["cache", "total_instantiation_instr", "per_session"],
            title=f"Ablation — Stage III cost across {N_SESSIONS} short sessions",
        ),
    )
    # a shared cache amortizes all but the first synthesis
    assert r["warm-shared"] < r["cold-every-time"] / 3
    # preloading removes even the first-session miss
    assert r["preloaded"] < r["warm-shared"]
