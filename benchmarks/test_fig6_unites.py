"""Figure 6 — the UNITES measurement architecture.

Exercises the full metric pipeline (specification via TMC → collection →
repository → analysis → presentation) on a live video session and
quantifies the cost of whitebox instrumentation: the paper's position is
that collecting whitebox metrics is "very difficult without a development
and testing environment like ADAPTIVE" — here it is one TMC parameter,
and its overhead on the data path is negligible (collection rides the
simulator, sampling state counters; the instrumented quantities
themselves are maintained unconditionally, as in the prototype).

Shape: the instrumented run's application-visible goodput is within a few
percent of the uninstrumented run, and the repository ends up holding
per-session series for every requested metric plus host-scope series.
"""

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD, TMC
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.profiles import ethernet_10, linear_path
from repro.unites.analyze import summarize
from repro.unites.present import render_series, render_table

from benchmarks.conftest import record

METRICS = ("throughput_pps", "rtt", "jitter", "retransmissions", "cpu_utilization")


def run_video(instrument: bool):
    sysm = AdaptiveSystem(seed=7)
    sysm.attach_network(
        linear_path(sysm.sim, ethernet_10(), ("A", "B"), rng=sysm.rng)
    )
    a, b = sysm.node("A"), sysm.node("B")
    got = []
    b.mantts.register_service(7000, on_deliver=lambda d, m: got.append(len(d)))
    acd = ACD(
        participants=("B",),
        quantitative=QuantitativeQoS(
            avg_throughput_bps=2e6, loss_tolerance=0.01, max_jitter=0.02,
            duration=600, message_size=4000,
        ),
        qualitative=QualitativeQoS(isochronous=True, ordered=False,
                                   duplicate_sensitive=False),
        tmc=TMC(metrics=METRICS, sampling_interval=0.05) if instrument else None,
    )
    conn = a.mantts.open(acd)
    host_timer = sysm.unites.watch_host(a.host, interval=0.1) if instrument else None
    from repro.apps.video import CbrVideoSource

    src = CbrVideoSource(sysm.sim, conn, fps=25, frame_bytes=4000)
    src.start(0.1)
    sysm.run(until=5.0)
    if host_timer is not None:
        host_timer.cancel()
    goodput = sum(got) * 8 / 4.9
    return goodput, conn, sysm


def test_fig6_unites_pipeline(benchmark):
    def run():
        base_goodput, _, _ = run_video(instrument=False)
        inst_goodput, conn, sysm = run_video(instrument=True)
        return base_goodput, inst_goodput, conn, sysm

    base_goodput, inst_goodput, conn, sysm = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    repo = sysm.unites.repository
    rows = []
    for metric in METRICS:
        series = repo.series(metric, "session", conn.ref)
        s = summarize([v for _, v in series])
        rows.append({"metric": metric, "samples": s["n"], "mean": s["mean"],
                     "p95": s["p95"]})
    table = render_table(
        rows, ["metric", "samples", "mean", "p95"],
        title="Figure 6 — UNITES repository contents (video session, 50 ms TMC)",
    )
    tp_series = repo.series("throughput_pps", "session", conn.ref)
    table += "\n" + render_series(tp_series, label="throughput_pps")
    record(benchmark, table, base_goodput=base_goodput, inst_goodput=inst_goodput)

    # every requested metric was collected, ~100 samples each (5 s / 50 ms)
    for metric in METRICS:
        assert len(repo.series(metric, "session", conn.ref)) > 50
    # host-scope view populated too
    assert repo.series("cpu_utilization", "host", "A")
    # instrumentation did not distort the experiment
    assert abs(inst_goodput - base_goodput) / base_goodput < 0.05
