"""E5 — binding styles and the customization trade-off (§4.2.2).

"Although dynamic binding enhances flexibility ..., it increases
processing overhead somewhat due to the extra level of indirection
required to dispatch C++ virtual functions.  To reduce this overhead,
TKO employs ... customization, which generates non-dynamically bound
configurations ... Customization incurs a time-space tradeoff, however,
since inline expansion ... may lead to excessive code bloat."

Same bulk workload under the three binding styles.  Shape: per-PDU host
instructions strictly ordered static < reconfigurable < dynamic; the
static variant refuses segue (flexibility forfeited); the template cache
reports the code-space price of each customized template.
"""


from repro.core.scenario import PointToPointScenario
from repro.mechanisms.retransmission import SelectiveRepeat
from repro.tko.config import SessionConfig
from repro.tko.templates import TemplateCache
from repro.unites.present import render_table

from benchmarks.conftest import record


def run_binding(binding: str):
    sc = PointToPointScenario(
        config=SessionConfig(binding=binding),
        workload="bulk",
        workload_kw={"total_bytes": 400_000, "chunk_bytes": 4096},
        duration=6.0,
        seed=23,
    )
    sc.run(6.0)
    s = sc.session
    handled = s.stats.pdus_sent + s.stats.pdus_received
    instr_per_pdu = sc.a.host.cpu.instructions_retired / max(1, handled)
    can_segue = True
    try:
        s.segue("recovery", SelectiveRepeat())
    except RuntimeError:
        can_segue = False
    return {
        "instr_per_pdu": instr_per_pdu,
        "goodput_bps": sc.tracker.goodput_bps(),
        "delivered": float(sc.tracker.count),
        "can_segue": str(can_segue),
    }


def test_e5_binding_styles(benchmark):
    def run():
        return {b: run_binding(b) for b in ("dynamic", "reconfigurable", "static")}

    r = benchmark.pedantic(run, rounds=1, iterations=1)

    # code-bloat accounting from the template cache
    cache = TemplateCache()
    for i, binding in enumerate(("static", "static", "static", "reconfigurable")):
        cfg = SessionConfig(binding=binding, window=16 + i)
        # distinct mechanism sets so each static template is a new entry
        cfg = cfg.with_(detection=["checksum", "crc32", "none", "checksum"][i],
                        ack=["cumulative", "cumulative", "none", "delayed"][i],
                        recovery=["gbn", "gbn", "none", "gbn"][i],
                        transmission=["sliding-window", "sliding-window", "rate",
                                      "sliding-window"][i],
                        rate_pps=100.0 if i == 2 else None)
        cache.store(cfg)

    rows = [{"binding": k, **v} for k, v in r.items()]
    table = render_table(
        rows, ["binding", "instr_per_pdu", "goodput_bps", "delivered", "can_segue"],
        title="E5 — per-PDU cost and flexibility by binding style",
    )
    table += (
        f"\ncode bloat: {len(cache)} cached templates occupy "
        f"{cache.total_code_bytes} bytes of customized code"
    )
    record(benchmark, table)

    dyn, rec, sta = r["dynamic"], r["reconfigurable"], r["static"]
    # all deliver everything
    assert dyn["delivered"] == rec["delivered"] == sta["delivered"]
    # indirection cost strictly ordered
    assert sta["instr_per_pdu"] < rec["instr_per_pdu"] < dyn["instr_per_pdu"]
    # flexibility forfeited exactly where the paper says
    assert dyn["can_segue"] == "True"
    assert rec["can_segue"] == "True"
    assert sta["can_segue"] == "False"
    # static templates are the only ones costing code space
    assert cache.total_code_bytes == 3 * 7 * 1800
