"""E10 — controlled single-mechanism measurement (§5).

"ADAPTIVE enables precise measurement of application and network
performance changes that result from selectively modifying certain
transport system mechanisms (e.g., measuring the effect of switching from
implicit to explicit connection management or from selective repeat to
go-back-n retransmission)."

Both of the paper's named A/B pairs, run through the UNITES experiment
harness with everything else held identical (same seed, same topology,
same workload — the determinism the simulator guarantees):

* A/B 1: go-back-N vs selective repeat on a lossy path — the *only*
  config fields changed are recovery+ack;
* A/B 2: implicit vs explicit connection management on a transactional
  workload — the only field changed is connection.

Shape: the harness isolates the effect: identical delivered counts with a
clear retransmission delta in A/B 1; identical steady-state behaviour
with a setup-time delta in A/B 2.
"""

from repro.core.scenario import run_point_to_point
from repro.netsim.profiles import ethernet_10, wan_internet
from repro.tko.config import SessionConfig
from repro.unites.experiment import Experiment

from benchmarks.conftest import record

LOSSY = ethernet_10().scaled(ber=2e-6)


def ab_recovery():
    exp = Experiment("E10a — recovery mechanism only: GBN vs SR")
    base = dict(
        workload="bulk",
        workload_kw={"total_bytes": 300_000, "chunk_bytes": 4096},
        profile=LOSSY,
        duration=30.0,
        seed=41,
    )
    exp.add_variant(
        "gbn",
        lambda: run_point_to_point(config=SessionConfig(recovery="gbn", ack="cumulative"), **base),
    )
    exp.add_variant(
        "sr",
        lambda: run_point_to_point(config=SessionConfig(recovery="sr", ack="selective"), **base),
    )
    exp.run()
    return exp


def ab_connection():
    exp = Experiment("E10b — connection management only: implicit vs explicit")
    base = dict(
        workload="rpc",
        workload_kw={"request_bytes": 128},
        profile=wan_internet(),
        duration=10.0,
        seed=43,
    )
    for mode in ("implicit", "explicit-3way"):
        exp.add_variant(
            mode,
            (lambda m: lambda: run_point_to_point(
                config=SessionConfig(connection=m), **base))(mode),
        )
    exp.run()
    return exp


def test_e10_single_mechanism_ab(benchmark):
    def run():
        return ab_recovery(), ab_connection()

    rec_exp, conn_exp = benchmark.pedantic(run, rounds=1, iterations=1)
    table = rec_exp.table(
        ["msgs_delivered", "retransmissions", "wire_bytes", "goodput_bps"]
    )
    table += "\n\n" + conn_exp.table(
        ["setup_time", "rpc_completed", "rpc_mean_response"]
    )
    record(benchmark, table)

    # A/B 1: same delivery outcome, isolated retransmission economy
    gbn = rec_exp.result("gbn").metrics
    sr = rec_exp.result("sr").metrics
    assert gbn["msgs_delivered"] == sr["msgs_delivered"] == gbn["msgs_sent"]
    assert sr["retransmissions"] < gbn["retransmissions"]
    assert sr["wire_bytes"] < gbn["wire_bytes"]
    assert rec_exp.winner("retransmissions", higher_is_better=False) == "sr"

    # A/B 2: setup-time delta is the whole story
    imp = conn_exp.result("implicit").metrics
    exp3 = conn_exp.result("explicit-3way").metrics
    assert imp["setup_time"] == 0.0
    assert exp3["setup_time"] > 0.1        # ≥ one WAN round trip
    assert imp["rpc_completed"] >= exp3["rpc_completed"]
