"""E6 — the throughput preservation problem (§2.1(A), §2.2(A)).

"Only a limited amount of the available bandwidth in high-performance
networks is being delivered to applications ... the bandwidth available
in a high-performance network is reduced by 1 to 2 orders of magnitude by
the time it is actually delivered ... this throughput preservation
problem persists despite an increase in CPU speeds [because] networks
have increased by 5 or 6 orders of magnitude, whereas CPU speeds have
only increased by 2 or 3."

Sweep: the same bulk transfer over 10 Mbps Ethernet, 100 Mbps FDDI and
622 Mbps ATM, with a fixed 25-MIPS host — then the ATM case again with a
4× faster host.  Shape: delivered/channel ratio collapses as channel
speed rises (the host, not the wire, is the bottleneck), and scaling the
CPU recovers a chunk of it.
"""

from repro.core.scenario import run_point_to_point
from repro.netsim.profiles import atm_622, ethernet_10, fddi_100
from repro.tko.config import SessionConfig
from repro.unites.present import render_table

from benchmarks.conftest import record


def run_case(profile, mips):
    # size the window to ~1.5× the path BDP, capped below the switch
    # queue (a window larger than the bottleneck buffer manufactures
    # drop-tail loss — Stage II avoids that, and so does this sweep)
    seg = profile.mtu - 56
    rtt = 2 * (3 * profile.delay + 3 * profile.mtu * 8 / profile.bandwidth_bps)
    bdp = profile.bandwidth_bps * rtt / (8 * seg)
    window = int(min(profile.queue_limit - 10, max(8, bdp * 1.5)))
    cfg = SessionConfig(window=window, segment_size=None)
    m = run_point_to_point(
        config=cfg,
        workload="bulk",
        workload_kw={"total_bytes": 2_000_000, "chunk_bytes": 16_384},
        profile=profile,
        duration=8.0,
        seed=29,
        mips=mips,
    )
    return m["goodput_bps"]


def test_e6_throughput_preservation(benchmark):
    def run():
        # error-free variants isolate the host-processing bottleneck from
        # loss effects (loss recovery is E3/E4's subject)
        cases = [
            ("ethernet-10", ethernet_10().scaled(ber=0.0), 25.0),
            ("fddi-100", fddi_100().scaled(ber=0.0), 25.0),
            ("atm-622", atm_622().scaled(ber=0.0), 25.0),
            ("atm-622 + 4x CPU", atm_622().scaled(ber=0.0), 100.0),
        ]
        out = {}
        for name, profile, mips in cases:
            goodput = run_case(profile, mips)
            out[name] = (goodput, profile.bandwidth_bps, mips)
        return out

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "network": name,
            "host_mips": mips,
            "channel_bps": chan,
            "delivered_bps": good,
            "delivered_frac": good / chan,
        }
        for name, (good, chan, mips) in r.items()
    ]
    record(
        benchmark,
        render_table(
            rows,
            ["network", "host_mips", "channel_bps", "delivered_bps", "delivered_frac"],
            title="E6 — delivered application throughput vs channel speed",
        ),
    )
    frac = {name: good / chan for name, (good, chan, _m) in r.items()}
    # the preservation problem: the faster the channel, the smaller the
    # delivered fraction on the same host
    assert frac["ethernet-10"] > frac["fddi-100"] > frac["atm-622"]
    assert frac["ethernet-10"] > 3 * frac["atm-622"]
    # absolute goodput saturates: FDDI and ATM deliver similar bits/s on
    # the 25-MIPS host (the host is the bottleneck, not the wire)
    g_fddi = r["fddi-100"][0]
    g_atm = r["atm-622"][0]
    assert g_atm < 2.0 * g_fddi
    # a faster CPU recovers throughput on the fast network
    assert r["atm-622 + 4x CPU"][0] > 2.0 * g_atm
