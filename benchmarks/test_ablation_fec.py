"""Ablation — FEC group geometry (k, r) on a lossy long-delay path.

The SCS's ``fec_k``/``fec_r`` knobs trade bandwidth overhead (r/k parity)
against repair strength (up to r losses per k+r group).  Sweeping the
geometry over a satellite path with ~8% frame loss shows the design
space Stage II picks from:

* r=1 (XOR-grade) leaves residual loss whenever a group takes 2+ hits;
* r=2 at the same k repairs nearly everything for 2× the overhead;
* growing k at fixed r cuts overhead but weakens repair (more chances of
  >r losses per group).
"""

from repro.core.scenario import PointToPointScenario
from repro.netsim.profiles import satellite
from repro.sweep import ScenarioSpec, SweepRunner
from repro.tko.config import SessionConfig
from repro.unites.present import render_table

from benchmarks.conftest import record

LOSSY_SAT = satellite().scaled(ber=8e-6)
N_MSGS = 300


def run_geometry(k: int, r: int):
    sc = PointToPointScenario(
        config=SessionConfig(
            connection="implicit", transmission="rate", rate_pps=60.0,
            ack="none", recovery="fec-rs", fec_k=k, fec_r=r,
            sequencing="none", segment_size=800,
        ),
        workload="bulk",
        workload_kw={"total_bytes": N_MSGS * 800, "chunk_bytes": 800},
        profile=LOSSY_SAT,
        duration=25.0,
        seed=61,
    )
    sc.run(25.0)
    s = sc.session
    overhead = s.stats.parity_sent / max(1, s.stats.msgs_sent)
    rx = list(sc.b.protocol.sessions.values())
    return {
        "delivered": float(sc.tracker.count),
        "loss_rate": 1.0 - sc.tracker.count / max(1, sc.source.messages_sent),
        "parity_overhead": overhead,
        "fec_recoveries": float(rx[0].stats.fec_recoveries) if rx else 0.0,
        "wire_bytes": float(s.stats.wire_bytes_sent),
    }


def run_geometry_cell(geometry) -> dict:
    k, r = geometry
    return run_geometry(k, r)


#: geometry pairs are a hand-picked design-space walk, not a full product,
#: so they ride on a single tuple-valued axis; ``seed_param=None`` keeps
#: the cell's historical seed=61 (results bit-identical to the old loop)
FEC_SWEEP = ScenarioSpec(
    name="fec-geometry",
    cell=run_geometry_cell,
    grid={"geometry": [(4, 1), (4, 2), (8, 1), (8, 2), (12, 2)]},
    seed_param=None,
)


def test_ablation_fec_geometry(benchmark):
    def run():
        sweep = SweepRunner(FEC_SWEEP, workers=None).run()
        return {c.params["geometry"]: c.metrics for c in sweep}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"k": k, "r": r, **v} for (k, r), v in results.items()]
    record(
        benchmark,
        render_table(
            rows,
            ["k", "r", "delivered", "loss_rate", "parity_overhead",
             "fec_recoveries", "wire_bytes"],
            title="Ablation — FEC (k, r) on a lossy satellite path",
        ),
    )
    # stronger code at same k: fewer residual losses, more overhead
    assert results[(4, 2)]["loss_rate"] <= results[(4, 1)]["loss_rate"]
    assert results[(4, 2)]["parity_overhead"] > results[(4, 1)]["parity_overhead"] * 1.5
    # wider groups at same r: cheaper, weaker (or at best equal)
    assert results[(12, 2)]["parity_overhead"] < results[(4, 2)]["parity_overhead"]
    assert results[(12, 2)]["loss_rate"] >= results[(4, 2)]["loss_rate"]
    # every geometry recovers something on this path
    for v in results.values():
        assert v["fec_recoveries"] > 0
