"""Compiled-pipeline dispatch: wall time per ``session.send()`` (§4.2.2).

The pipeline tentpole claims the Synthesis/SELF benefit: compiling the
mechanism stack into a flat stage list with closed-form per-PDU charges
makes the *host* do less work per send without changing anything the
*simulation* observes.  This benchmark measures both halves on the
§2.1(B) teleconference configuration (derived through the real Stage I/II
transform, 512-byte messages at a 50 Hz conference tick):

* **wall** — ``time.perf_counter`` around each ``session.send()`` call
  only (the simulator is advanced between sends, outside the timed
  region).  ABAB-interleaved, minimum of N rounds per executor; the
  compiled pipeline must cut wall time per send by at least 25%.
* **simulated identity** — delivered message count/bytes, final sim
  clock, PDUs sent, retransmissions, and both hosts' retired instruction
  counters must be *bit-identical* across executors.  Compilation is a
  wall-clock optimisation, never a behaviour change.
"""

import time

from repro.host.nic import Host
from repro.mantts.acd import ACD
from repro.mantts.monitor import NetworkState
from repro.mantts.transform import specify_scs
from repro.mantts.tsc import APP_PROFILES
from repro.netsim.profiles import ethernet_10, linear_path
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.tko.executor import use_executor
from repro.tko.protocol import TKOProtocol
from repro.unites.obs.telemetry import TELEMETRY
from repro.unites.present import render_table

from benchmarks.conftest import record

ROUNDS = 5
MESSAGES = 400
SEND_INTERVAL = 0.02          #: 50 messages/s conference tick
MAX_COMPILED_RATIO = 0.75     #: >= 25% less wall time per send


def _teleconference_config():
    """Derive the teleconference SCS through the real Stage I/II path."""
    profile = APP_PROFILES["tele-conferencing"]
    acd = ACD(
        participants=("B",),
        quantitative=profile.quantitative(),
        qualitative=profile.qualitative(),
    )
    lan = NetworkState("A", "B", True, 0.004, 0.004, 10e6, 1500, 1e-6, 0.0, 0.0, 3)
    return specify_scs(acd, lan).config


def _run(kind, cfg):
    """One conference run; (wall seconds per send, simulated identity)."""
    use_executor(kind)
    try:
        sim = Simulator()
        rng = RngStreams(5)
        net = linear_path(sim, ethernet_10(), ("A", "B"), n_switches=2, rng=rng)
        ha = Host(sim, net, "A", mips=25.0)
        hb = Host(sim, net, "B", mips=25.0)
        pa = TKOProtocol(ha)
        pb = TKOProtocol(hb)
        delivered = []

        def on_session(s):
            s.on_deliver = lambda data, meta: delivered.append(len(data))

        pb.listen(7000, lambda pdu, frame: cfg, on_session)
        sender = pa.create_session(cfg, "B", 7000)
        sender.connect()
        sim.run(until=0.05)

        msg = b"\xa5" * 512
        perf = time.perf_counter
        wall = 0.0
        t = 0.05
        for _ in range(MESSAGES):
            t += SEND_INTERVAL
            sim.run(until=t)
            t0 = perf()
            sender.send(msg)
            wall += perf() - t0
        sim.run(until=t + 2.0)

        identity = (
            len(delivered),
            sum(delivered),
            sim.now,
            sender.stats.pdus_sent,
            sender.stats.retransmissions,
            ha.cpu.instructions_retired,
            hb.cpu.instructions_retired,
        )
        return wall / MESSAGES, identity
    finally:
        use_executor("compiled")


def test_compiled_pipeline_send_is_faster(benchmark):
    TELEMETRY.disable()
    TELEMETRY.reset()
    cfg = _teleconference_config()

    def measure():
        reference, compiled = [], []
        identities = set()
        for _ in range(ROUNDS):
            w, ident = _run("reference", cfg)
            reference.append(w)
            identities.add(ident)
            w, ident = _run("compiled", cfg)
            compiled.append(w)
            identities.add(ident)
        return min(reference), min(compiled), identities

    ref, comp, identities = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = comp / ref
    rows = [
        {"executor": "reference (interpreted)", "us_per_send": ref * 1e6,
         "vs_reference": 1.0},
        {"executor": "compiled pipeline", "us_per_send": comp * 1e6,
         "vs_reference": ratio},
    ]
    record(
        benchmark,
        render_table(
            rows, ["executor", "us_per_send", "vs_reference"],
            title=f"pipeline dispatch — teleconference, {MESSAGES} sends, "
                  f"min of {ROUNDS} ABAB rounds",
        ),
        ratio=ratio,
    )
    assert len(identities) == 1, (
        f"executors diverged in simulated results: {identities}"
    )
    assert ratio <= MAX_COMPILED_RATIO, (
        f"compiled send path is only {100 * (1 - ratio):.1f}% faster "
        f"(bound: {100 * (1 - MAX_COMPILED_RATIO):.0f}%)"
    )
