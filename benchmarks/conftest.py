"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one table/figure/claim from the paper (see
DESIGN.md's per-experiment index).  Conventions:

* ``benchmark.pedantic(fn, rounds=1)`` — each experiment is a deterministic
  simulation; one round measures its wall cost and produces its metrics;
* results are printed as UNITES tables (run with ``-s`` to see them) and
  attached to ``benchmark.extra_info`` for machine consumption;
* each benchmark *asserts the shape* the paper claims (who wins, roughly
  by how much) — absolute numbers are simulator-dependent and not checked.
"""

from __future__ import annotations

import pytest


def record(benchmark, table: str, **extra) -> None:
    """Print a result table and attach it to the benchmark record."""
    print()
    print(table)
    benchmark.extra_info["table"] = table
    for k, v in extra.items():
        benchmark.extra_info[k] = v


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
