"""Ablation — priority delivery under congestion (Table 1's column).

Several Table 1 rows request priority delivery (TELNET, tele-conferencing,
manufacturing control).  In this architecture the flag maps to the
network's priority queueing class: switch output queues serve the
priority class first.  A delay-sensitive TELNET-like flow sharing a
congested WAN hop with bulk cross traffic shows what the flag buys:
without priority its keystrokes sit behind the queue backlog; with it
they overtake.
"""

from repro.core.scenario import PointToPointScenario
from repro.netsim.profiles import wan_internet
from repro.netsim.traffic import PoissonLoad
from repro.tko.config import SessionConfig
from repro.unites.present import render_table

from benchmarks.conftest import record


def run_priority(priority: bool):
    sc = PointToPointScenario(
        config=SessionConfig(
            connection="implicit", transmission="none", ack="none",
            recovery="none", sequencing="none", priority=priority,
            segment_size=64,
        ),
        workload="telnet",
        workload_kw={"rate_per_s": 5.0},
        profile=wan_internet(),
        duration=20.0,
        seed=79,
    )
    # Poisson cross traffic at ~90% of the 1.5 Mb/s hop: unlike CBR, its
    # burstiness builds a real standing queue for keystrokes to overtake
    load = PoissonLoad(sc.network, "s1", "s2", rate_pps=170, size=1000)
    load.start(0.0)
    sc.run(20.0)
    return {
        "delivered": float(sc.tracker.count),
        "mean_latency": sc.tracker.mean_latency,
        "p95_latency": sc.tracker.p95_latency,
    }


def test_ablation_priority_delivery(benchmark):
    def run():
        return {
            "best-effort": run_priority(False),
            "priority": run_priority(True),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"class": k, **v} for k, v in r.items()]
    record(
        benchmark,
        render_table(rows, ["class", "delivered", "mean_latency", "p95_latency"],
                     title="Ablation — keystroke latency with/without priority class"),
    )
    be, pr = r["best-effort"], r["priority"]
    # WAN propagation (~105 ms one way) dominates both; the priority class
    # shows up in the *queueing* component, i.e. above the propagation
    # floor — where it wins by several-fold
    prop_floor = 3 * 35e-3
    be_queueing = be["mean_latency"] - prop_floor
    pr_queueing = pr["mean_latency"] - prop_floor
    assert pr_queueing < be_queueing / 3
    # the tail collapses: p95 with priority ≈ the floor
    assert pr["p95_latency"] < be["p95_latency"] * 0.75
    assert pr["delivered"] >= be["delivered"]
