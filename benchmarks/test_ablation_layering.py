"""Ablation — protocol-graph depth and buffering discipline (§2.1(A)).

"This situation results both from poorly layered architectures and from
transport system overhead such as memory-to-memory copying..."  With
layers live in the data path, sweeping graph depth under both buffering
disciplines quantifies the claim end to end: every naive layer costs a
payload copy per frame per direction, so deep naive stacks bleed
throughput; the TKO zero-copy discipline makes depth nearly free.
"""

from repro.core.scenario import PointToPointScenario
from repro.netsim.profiles import fddi_100
from repro.tko.config import SessionConfig
from repro.tko.protocol import PassthroughLayer
from repro.unites.present import render_table

from benchmarks.conftest import record


def run_stack(n_layers: int, zero_copy: bool):
    sc = PointToPointScenario(
        config=SessionConfig(window=12),
        workload="bulk",
        workload_kw={"total_bytes": 3_000_000, "chunk_bytes": 16_384},
        profile=fddi_100().scaled(ber=0.0),
        duration=5.0,
        seed=83,
        mips=20.0,
    )
    for proto in (sc.a.protocol, sc.b.protocol):
        for i in range(n_layers):
            proto.insert_layer(
                PassthroughLayer(f"l{i}", header_bytes=8, zero_copy=zero_copy)
            )
    sc.run(5.0)
    return {
        "goodput_bps": sc.tracker.goodput_bps(),
        "bytes_copied_a": float(sc.a.host.copy_meter.bytes_copied),
    }


def test_ablation_layering_depth(benchmark):
    depths = (0, 2, 6)

    def run():
        out = {}
        for depth in depths:
            out[("zero-copy", depth)] = run_stack(depth, True)
            if depth:
                out[("naive", depth)] = run_stack(depth, False)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"discipline": d, "layers": n, **v} for (d, n), v in results.items()
    ]
    record(
        benchmark,
        render_table(
            rows, ["discipline", "layers", "goodput_bps", "bytes_copied_a"],
            title="Ablation — graph depth × buffering discipline",
        ),
    )
    zc0 = results[("zero-copy", 0)]["goodput_bps"]
    zc6 = results[("zero-copy", 6)]["goodput_bps"]
    nv6 = results[("naive", 6)]["goodput_bps"]
    # depth is nearly free under zero-copy ...
    assert zc6 > zc0 * 0.85
    # ... and expensive under per-layer copying
    assert nv6 < zc6 * 0.85
    # the copies are real and accounted
    assert results[("naive", 6)]["bytes_copied_a"] > 3_000_000 * 5
    assert results[("zero-copy", 6)]["bytes_copied_a"] == 0.0
