"""E4 — the RTT policy: retransmission → FEC on satellite failover (§3(C)).

"The transport system may also contain policies that cause the
reliability management mechanism to switch from retransmission-based to
forward error correction-based when the round-trip delay time increases
beyond some threshold (e.g., when a route switches from a terrestrial
link to a satellite link)."

Workload: a paced media stream over a dual-homed path whose terrestrial
route fails mid-session, shifting traffic onto a ~270 ms GEO hop with an
elevated error rate.  Variants post-failover: static retransmission
(GBN), static Reed-Solomon FEC, and the adaptive session running the TSA
rule.

Shape: after failover, repairing a loss by retransmission costs at least
one extra satellite RTT (~0.6 s+), so the retransmission variant's p95
latency explodes; FEC repairs in-line at constant overhead, keeping p95
near the one-way delay.  The adaptive variant starts cheap (retransmission
on the terrestrial path) and converges to FEC behaviour after the switch.
"""

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.policies import rtt_switch_to_fec
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.profiles import dual_path, ethernet_10, satellite
from repro.unites.present import render_table

from benchmarks.conftest import record

FAILOVER_AT = 5.0
DURATION = 40.0
FRAME = 512
SAT = satellite().scaled(ber=3e-6)


def run_variant(mode: str, seed=17):
    sysm = AdaptiveSystem(seed=seed)
    sysm.attach_network(dual_path(sysm.sim, ethernet_10(), SAT, rng=sysm.rng))
    a, b = sysm.node("A"), sysm.node("B")
    lat = []
    b.mantts.register_service(
        7000, on_deliver=lambda d, m: lat.append((sysm.now, m["latency"]))
    )
    acd = ACD(
        participants=("B",),
        quantitative=QuantitativeQoS(
            avg_throughput_bps=96e3, duration=600, loss_tolerance=0.02,
            message_size=FRAME,
        ),
        qualitative=QualitativeQoS(ordered=False, duplicate_sensitive=False),
        tsa=rtt_switch_to_fec(threshold=0.2) if mode == "adaptive" else (),
    )
    conn = a.mantts.open(acd)
    sysm.run(until=0.3)
    if mode == "retransmit":
        conn.apply_overrides(
            {"recovery": "gbn", "ack": "cumulative",
             "transmission": "window-rate", "rate_pps": 24.0},
            reason="static retransmission variant",
        )
    elif mode == "fec":
        conn.apply_overrides(
            {"recovery": "fec-rs", "ack": "none", "transmission": "rate",
             "rate_pps": 24.0, "fec_k": 4, "fec_r": 2},
            reason="static FEC variant",
        )
    else:
        conn.apply_overrides(
            {"recovery": "gbn", "ack": "cumulative",
             "transmission": "window-rate", "rate_pps": 24.0},
            reason="adaptive starts on retransmission",
        )
    from repro.apps.video import CbrVideoSource

    src = CbrVideoSource(sysm.sim, conn, fps=24, frame_bytes=FRAME)
    src.start(0.5)
    sysm.sim.schedule(FAILOVER_AT, sysm.network.fail_link, "p1", "p2")
    sysm.run(until=DURATION)
    post = [l for t, l in lat if t > FAILOVER_AT + 3.0]
    post.sort()
    p95 = post[int(len(post) * 0.95)] if post else float("inf")
    delivered_post = len(post)
    return {
        "delivered_post_failover": float(delivered_post),
        "p95_latency_post": p95,
        "max_latency_post": post[-1] if post else float("inf"),
        "final_recovery": conn.cfg.recovery,
        "retransmissions": float(conn.session.stats.retransmissions),
        "parity_sent": float(conn.session.stats.parity_sent),
    }


def test_e4_fec_over_satellite(benchmark):
    def run():
        return {m: run_variant(m) for m in ("retransmit", "fec", "adaptive")}

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"variant": k, **v} for k, v in r.items()]
    record(
        benchmark,
        render_table(
            rows,
            ["variant", "delivered_post_failover", "p95_latency_post",
             "max_latency_post", "final_recovery", "retransmissions",
             "parity_sent"],
            title="E4 — media stream across terrestrial→satellite failover",
        ),
    )
    rtx, fec, ad = r["retransmit"], r["fec"], r["adaptive"]
    one_way = SAT.delay * 3  # three satellite-grade hops on the backup path
    # FEC's repairs never wait a satellite round trip
    assert fec["p95_latency_post"] < one_way * 1.5
    # a retransmission repair costs at least one extra satellite traverse
    # on top of FEC's in-line repair
    assert rtx["max_latency_post"] > fec["max_latency_post"] + one_way
    # and the unscaled window throttles delivery over the long-delay path
    # (the §2.2(C) long-delay-link complaint, visible as starved delivery)
    assert rtx["delivered_post_failover"] < fec["delivered_post_failover"] / 2
    # the adaptive session switched to FEC and inherits its latency profile
    assert ad["final_recovery"] == "fec-rs"
    assert ad["parity_sent"] > 0
    assert ad["p95_latency_post"] < rtx["max_latency_post"]
