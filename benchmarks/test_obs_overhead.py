"""UNITES-X overhead: disabled telemetry must be free (within 5%).

The tentpole discipline is that every hot-path instrumentation site
guards with a single ``if TELEMETRY.enabled:`` test.  This benchmark
enforces the bound on the hottest path of all — the kernel dispatch loop
— by timing the same E6-style bulk workload two ways:

* **baseline** — ``Simulator.run`` monkeypatched to
  ``Simulator._run_uninstrumented``, the inlined dispatch loop minus the
  per-event telemetry test, kept for exactly this purpose;
* **disabled** — the shipping ``run`` with telemetry off (the default).

Runs are ABAB-interleaved and the minimum of N is compared (minimum, not
mean: scheduling noise only ever adds time).  An enabled-telemetry run is
also timed and reported, but not bounded — paying for what you turn on is
the deal.
"""

import time

from repro.core.scenario import PointToPointScenario
from repro.netsim.profiles import fddi_100
from repro.sim.kernel import Simulator
from repro.tko.config import SessionConfig
from repro.unites.obs.telemetry import TELEMETRY
from repro.unites.present import render_table

from benchmarks.conftest import record

ROUNDS = 5
MAX_DISABLED_OVERHEAD = 1.05


def _workload(telemetry: bool) -> float:
    """Wall seconds to run the E6 bulk transfer once; returns elapsed."""
    scenario = PointToPointScenario(
        config=SessionConfig(window=30, segment_size=None),
        workload="bulk",
        workload_kw={"total_bytes": 2_000_000, "chunk_bytes": 16_384},
        profile=fddi_100().scaled(ber=0.0),
        duration=8.0,
        seed=29,
        mips=25.0,
    )
    if telemetry:
        scenario.system.enable_telemetry()
    t0 = time.perf_counter()
    scenario.run(8.0)
    elapsed = time.perf_counter() - t0
    events = scenario.system.sim.events_dispatched
    if telemetry:
        TELEMETRY.disable()
        TELEMETRY.reset()
    return elapsed, events


def test_obs_overhead_disabled_is_free(benchmark, monkeypatch):
    TELEMETRY.disable()
    TELEMETRY.reset()

    def measure():
        baseline, disabled = [], []
        events = 0
        for _ in range(ROUNDS):
            # A: true no-telemetry dispatch loop
            monkeypatch.setattr(Simulator, "run", Simulator._run_uninstrumented)
            t, events = _workload(telemetry=False)
            baseline.append(t)
            monkeypatch.undo()
            # B: shipping loop, telemetry disabled
            t, _ = _workload(telemetry=False)
            disabled.append(t)
        enabled, _ = _workload(telemetry=True)
        return min(baseline), min(disabled), enabled, events

    base, disabled, enabled, events = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    ratio = disabled / base
    rows = [
        {"variant": "no-telemetry baseline", "wall_s": base, "vs_baseline": 1.0},
        {"variant": "telemetry disabled", "wall_s": disabled, "vs_baseline": ratio},
        {"variant": "telemetry enabled", "wall_s": enabled,
         "vs_baseline": enabled / base},
    ]
    record(
        benchmark,
        render_table(
            rows, ["variant", "wall_s", "vs_baseline"],
            title=f"UNITES-X overhead — E6 bulk workload, {events} events, "
                  f"min of {ROUNDS} ABAB rounds",
        ),
        events=events,
    )
    assert ratio <= MAX_DISABLED_OVERHEAD, (
        f"disabled telemetry costs {100 * (ratio - 1):.1f}% "
        f"(bound: {100 * (MAX_DISABLED_OVERHEAD - 1):.0f}%)"
    )
