"""UNITES-X overhead: disabled telemetry AND audit must be free (within 5%).

The tentpole discipline is that every hot-path instrumentation site
guards with a single ``if TELEMETRY.enabled:`` test — and, since the
audit plane, every lifecycle/protocol hook with ``if AUDIT.enabled:``
plus the session observer walk with ``if self.observers:``.  This
benchmark enforces the bound on the hottest path of all — the kernel
dispatch loop — by timing the same E6-style bulk workload two ways:

* **baseline** — ``Simulator.run`` monkeypatched to
  ``Simulator._run_uninstrumented``, the inlined dispatch loop minus the
  per-event telemetry test, kept for exactly this purpose;
* **disabled** — the shipping ``run`` with telemetry *and* audit off
  (the default).  The workload traverses every audit hook site
  (``create_session``, ``_accept``, send/deliver notify points), so the
  ≤5% gate covers the auditor and flight-recorder guards too.

Runs are ABAB-interleaved and the minimum of N is compared (minimum, not
mean: scheduling noise only ever adds time).  Enabled-telemetry and
enabled-audit runs are also timed and reported, but not bounded — paying
for what you turn on is the deal.
"""

import time

from repro.core.scenario import PointToPointScenario
from repro.netsim.profiles import fddi_100
from repro.sim.kernel import Simulator
from repro.tko.config import SessionConfig
from repro.unites.obs.audit import AUDIT, QoSContract
from repro.unites.obs.telemetry import TELEMETRY
from repro.unites.present import render_table

from benchmarks.conftest import record

ROUNDS = 5
MAX_DISABLED_OVERHEAD = 1.05


def _workload(telemetry: bool, audit: bool = False) -> float:
    """Wall seconds to run the E6 bulk transfer once; returns elapsed."""
    if audit:
        AUDIT.enable(window=0.25)
    scenario = PointToPointScenario(
        config=SessionConfig(window=30, segment_size=None),
        workload="bulk",
        workload_kw={"total_bytes": 2_000_000, "chunk_bytes": 16_384},
        profile=fddi_100().scaled(ber=0.0),
        duration=8.0,
        seed=29,
        mips=25.0,
    )
    if telemetry:
        scenario.system.enable_telemetry()
    if audit:
        # full auditor + flight-recorder machinery on the data path:
        # send-side observer now, delivery-side via the demux peer-watch
        AUDIT.attach_session(
            scenario.sender_session,
            QoSContract(
                connection="bench", avg_throughput_bps=1e3,
                peak_throughput_bps=1e3, max_latency=5.0, max_jitter=5.0,
                loss_tolerance=1.0, ordered=True, captured_at=0.0,
            ),
        )
    t0 = time.perf_counter()
    scenario.run(8.0)
    elapsed = time.perf_counter() - t0
    events = scenario.system.sim.events_dispatched
    if telemetry:
        TELEMETRY.disable()
        TELEMETRY.reset()
    if audit:
        AUDIT.disable()
        AUDIT.reset()
    return elapsed, events


def test_obs_overhead_disabled_is_free(benchmark, monkeypatch):
    TELEMETRY.disable()
    TELEMETRY.reset()
    AUDIT.disable()
    AUDIT.reset()

    def measure():
        baseline, disabled = [], []
        events = 0
        for _ in range(ROUNDS):
            # A: true no-telemetry dispatch loop
            monkeypatch.setattr(Simulator, "run", Simulator._run_uninstrumented)
            t, events = _workload(telemetry=False)
            baseline.append(t)
            monkeypatch.undo()
            # B: shipping loop, telemetry + audit disabled (the default)
            assert not TELEMETRY.enabled and not AUDIT.enabled
            t, _ = _workload(telemetry=False)
            disabled.append(t)
        enabled, _ = _workload(telemetry=True)
        audited, _ = _workload(telemetry=True, audit=True)
        return min(baseline), min(disabled), enabled, audited, events

    base, disabled, enabled, audited, events = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    ratio = disabled / base
    rows = [
        {"variant": "no-telemetry baseline", "wall_s": base, "vs_baseline": 1.0},
        {"variant": "telemetry+audit disabled", "wall_s": disabled,
         "vs_baseline": ratio},
        {"variant": "telemetry enabled", "wall_s": enabled,
         "vs_baseline": enabled / base},
        {"variant": "telemetry+audit enabled", "wall_s": audited,
         "vs_baseline": audited / base},
    ]
    record(
        benchmark,
        render_table(
            rows, ["variant", "wall_s", "vs_baseline"],
            title=f"UNITES-X overhead — E6 bulk workload, {events} events, "
                  f"min of {ROUNDS} ABAB rounds",
        ),
        events=events,
    )
    assert ratio <= MAX_DISABLED_OVERHEAD, (
        f"disabled telemetry+audit costs {100 * (ratio - 1):.1f}% "
        f"(bound: {100 * (MAX_DISABLED_OVERHEAD - 1):.0f}%)"
    )
