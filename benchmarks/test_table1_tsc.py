"""Table 1 — Application Transport Service Classes.

Regenerates the paper's Table 1 and extends it with what this
implementation *does* with each row: the Stage I class selection and the
Stage II mechanism derivation over a reference 10 Mbps Ethernet path.
The shape assertions pin the policy outcomes the taxonomy implies:
loss-tolerant isochronous rows get no retransmission-based recovery,
fully-reliable rows always get it, isochronous rows are rate-paced with
playout buffering, and so on.
"""

from repro.mantts.acd import ACD
from repro.mantts.monitor import NetworkState
from repro.mantts.transform import specify_scs
from repro.mantts.tsc import APP_PROFILES, TSC, select_tsc
from repro.unites.present import render_table

from benchmarks.conftest import record

REFERENCE_PATH = NetworkState(
    src="A", dst="B", reachable=True, rtt=0.004, base_rtt=0.004,
    bottleneck_bps=10e6, mtu=1500, ber=1e-6, congestion=0.0,
    loss_rate=0.0, hops=3,
)


def derive_all():
    rows = []
    for app, profile in APP_PROFILES.items():
        acd = ACD(
            participants=("B", "C") if profile.multicast else ("B",),
            quantitative=profile.quantitative(),
            qualitative=profile.qualitative(),
        )
        tsc = select_tsc(acd)
        scs = specify_scs(acd, REFERENCE_PATH, tsc=tsc)
        c = scs.config
        rows.append(
            {
                "application": app,
                "tsc": tsc.value,
                "thruput": profile.avg_throughput.name.lower(),
                "loss-tol": profile.loss_tolerance.name.lower(),
                "conn": c.connection,
                "tx": c.transmission,
                "recovery": c.recovery,
                "seq": c.sequencing,
                "jitter": c.jitter,
                "dlv": c.delivery,
                "prio": "yes" if c.priority else "no",
            }
        )
    return rows


def test_table1_tsc_taxonomy(benchmark):
    rows = benchmark.pedantic(derive_all, rounds=1, iterations=1)
    table = render_table(
        rows,
        ["application", "tsc", "thruput", "loss-tol", "conn", "tx",
         "recovery", "seq", "jitter", "dlv", "prio"],
        title="Table 1 — TSC taxonomy and derived session configurations",
    )
    record(benchmark, table)
    by_app = {r["application"]: r for r in rows}

    # Stage I classes match the paper's leftmost column
    assert by_app["voice-conversation"]["tsc"] == TSC.INTERACTIVE_ISOCHRONOUS.value
    assert by_app["full-motion-video-raw"]["tsc"] == TSC.DISTRIBUTIONAL_ISOCHRONOUS.value
    assert by_app["manufacturing-control"]["tsc"] == TSC.REALTIME_NONISOCHRONOUS.value
    assert by_app["file-transfer"]["tsc"] == TSC.NONREALTIME_NONISOCHRONOUS.value

    # policy shape: loss tolerance drives recovery weight
    assert by_app["voice-conversation"]["recovery"] in ("none", "fec-xor")
    for reliable_app in ("file-transfer", "telnet", "oltp"):
        assert by_app[reliable_app]["recovery"] in ("gbn", "sr")

    # isochronous rows are paced and jitter-buffered
    for iso_app in ("voice-conversation", "tele-conferencing", "full-motion-video-raw"):
        assert "rate" in by_app[iso_app]["tx"]
        assert by_app[iso_app]["jitter"] == "playout"
    assert by_app["file-transfer"]["jitter"] == "none"

    # multicast column honoured
    assert by_app["tele-conferencing"]["dlv"] == "multicast"
    assert by_app["voice-conversation"]["dlv"] == "unicast"

    # priority column honoured
    assert by_app["telnet"]["prio"] == "yes"
    assert by_app["file-transfer"]["prio"] == "no"

    # order sensitivity drives sequencing
    assert by_app["voice-conversation"]["seq"] == "none"
    assert by_app["file-transfer"]["seq"] == "ordered-dedup"
