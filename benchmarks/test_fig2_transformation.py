"""Figure 2 — the MANTTS three-stage transformation model.

Measures the cost of each stage (QoS→TSC, TSC→SCS, SCS→session) and the
claim of §4.1.1/§4.2.2 that the template cache cuts configuration delay:
"the benefits of a dynamically configured architecture are reduced if the
configuration ... process is overly time-consuming", so TKO_Templates
"reduce the complexity and duration of the connection negotiation phase".

Shape: instantiating a session with a warm template cache must charge the
host CPU several times fewer instructions than a cold full synthesis, and
a static template must be cheaper still.
"""

from repro.host.nic import Host
from repro.mantts.acd import ACD
from repro.mantts.monitor import NetworkState
from repro.mantts.transform import specify_scs
from repro.mantts.tsc import APP_PROFILES, select_tsc
from repro.netsim.profiles import ethernet_10, linear_path
from repro.sim.kernel import Simulator
from repro.tko.protocol import TKOProtocol
from repro.tko.synthesizer import TKOSynthesizer
from repro.tko.templates import TemplateCache
from repro.unites.present import render_table

from benchmarks.conftest import record

PATH = NetworkState(
    src="A", dst="B", reachable=True, rtt=0.004, base_rtt=0.004,
    bottleneck_bps=10e6, mtu=1500, ber=1e-6, congestion=0.0,
    loss_rate=0.0, hops=3,
)


def instantiation_cost(binding: str, warm: bool) -> float:
    """Host instructions charged to set up one session."""
    sim = Simulator()
    net = linear_path(sim, ethernet_10(), ("A", "B"))
    host = Host(sim, net, "A")
    cache = TemplateCache()
    synth = TKOSynthesizer(cache)
    protocol = TKOProtocol(host, synth)
    p = APP_PROFILES["file-transfer"]
    acd = ACD(participants=("B",), quantitative=p.quantitative(),
              qualitative=p.qualitative())
    cfg = specify_scs(acd, PATH, binding=binding).config
    if warm:
        cache.store(cfg)
    before = host.cpu.instructions_retired
    s = protocol.create_session(cfg, "B", 7000)
    sim.run(until=0.001)
    return host.cpu.instructions_retired - before


def run_experiment():
    rows = []
    variants = [
        ("stage III: cold (full dynamic synthesis)", "dynamic", False),
        ("stage III: warm reconfigurable template", "reconfigurable", True),
        ("stage III: warm static template", "static", True),
    ]
    costs = {}
    for label, binding, warm in variants:
        cost = instantiation_cost(binding, warm)
        costs[label] = cost
        rows.append({"path": label, "instructions": cost})

    # stage I+II are pure computation; report their Python wall cost
    import time

    p = APP_PROFILES["tele-conferencing"]
    acd = ACD(participants=("B", "C"), quantitative=p.quantitative(),
              qualitative=p.qualitative())
    t0 = time.perf_counter()
    for _ in range(200):
        tsc = select_tsc(acd)           # Stage I
        specify_scs(acd, PATH, tsc=tsc)  # Stage II
    stage12_us = (time.perf_counter() - t0) / 200 * 1e6
    rows.append({"path": "stage I+II (host-side computation)",
                 "instructions": f"{stage12_us:.0f} us wall"})
    return rows, costs


def test_fig2_transformation_stages(benchmark):
    rows, costs = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record(
        benchmark,
        render_table(rows, ["path", "instructions"],
                     title="Figure 2 — configuration cost per transformation path"),
    )
    cold = costs["stage III: cold (full dynamic synthesis)"]
    warm = costs["stage III: warm reconfigurable template"]
    static = costs["stage III: warm static template"]
    assert warm < cold / 2           # cache cuts configuration delay
    assert static < warm             # full customization is cheapest
