"""E8 — TKO_Message zero-copy buffering (§4.2.1).

"Performance measurements indicate that memory-to-memory copying is a
significant source of transport system overhead.  Therefore, some form of
buffer management is required to avoid unnecessary copying when (1)
moving messages between protocol layers and (2) when adding or deleting
message headers and trailers."

Two measurements:

* **accounting** — an 8 KiB message traversing a 6-layer protocol graph:
  the zero-copy discipline moves 0 payload bytes until the single
  app-boundary materialize; the naive discipline copies the payload at
  every layer boundary (6× the bytes);
* **wall time** — real Python time of the two disciplines (this is the
  one benchmark where host wall time, not simulated instructions, is the
  honest metric: TKOMessage's laziness is an implementation property).
"""

from repro.tko.message import CopyMeter, TKOMessage
from repro.tko.protocol import PassthroughLayer
from repro.unites.present import render_table

from benchmarks.conftest import record

PAYLOAD = bytes(range(256)) * 32  # 8 KiB
N_LAYERS = 6


def traverse(zero_copy: bool) -> CopyMeter:
    meter = CopyMeter()
    layers = [
        PassthroughLayer(f"l{i}", header_bytes=8, zero_copy=zero_copy)
        for i in range(N_LAYERS)
    ]
    msg = TKOMessage(PAYLOAD, meter=meter)
    for layer in layers:                 # down the sender's graph
        msg = layer.encapsulate(msg)
    for layer in reversed(layers):       # up the receiver's graph
        msg = layer.decapsulate(msg)
    msg.materialize()                    # the one legitimate app copy
    return meter


def test_e8_zero_copy_vs_naive(benchmark):
    zc = traverse(zero_copy=True)
    naive = traverse(zero_copy=False)

    # wall-time measurement of the zero-copy discipline
    benchmark.pedantic(traverse, args=(True,), rounds=20, iterations=5)

    rows = [
        {"discipline": "tko zero-copy", "copies": zc.copies,
         "bytes_copied": zc.bytes_copied},
        {"discipline": "naive per-layer", "copies": naive.copies,
         "bytes_copied": naive.bytes_copied},
    ]
    record(
        benchmark,
        render_table(rows, ["discipline", "copies", "bytes_copied"],
                     title="E8 — payload bytes copied across a 6-layer graph"),
    )
    # zero-copy: exactly one copy, at the application boundary
    assert zc.copies == 1
    assert zc.bytes_copied == len(PAYLOAD)
    # naive: one copy per layer crossing, both directions, plus the final
    assert naive.copies == 2 * N_LAYERS + 1
    assert naive.bytes_copied == (2 * N_LAYERS + 1) * len(PAYLOAD)


def test_e8_fragmentation_is_copy_free(benchmark):
    """Fragment + reassemble a 64 KiB message: zero payload movement."""

    def frag_reassemble():
        meter = CopyMeter()
        msg = TKOMessage(b"\xAB" * 65536, meter=meter)
        frags = []
        while msg.data_length:
            frags.append(msg.take(min(1444, msg.data_length)))
        out = TKOMessage((), meter=meter)
        for f in frags:
            out.concat(f)
        return meter, out

    meter, out = benchmark.pedantic(frag_reassemble, rounds=10, iterations=2)
    record(
        benchmark,
        f"E8b — 64 KiB fragmented into 46 PDUs and reassembled: "
        f"{meter.bytes_copied} payload bytes copied",
    )
    assert meter.bytes_copied == 0
    assert out.data_length == 65536
