"""Ablation — parallel protocol processing (§3(B)(6b)).

One of the paper's six overhead-reduction techniques: "parallel
processing of protocol functions" (after Zitterbart and La Porta/
Schwartz, both cited).  The host CPU model supports multiple cores with
earliest-available dispatch of per-PDU work; sweeping the core count on a
CPU-bound fast-network transfer reproduces the multiprocessor-
implementation claim — near-linear gains while the host is the
bottleneck, saturating once the wire (or serialization of a single PDU's
processing) takes over.
"""

from repro.core.scenario import PointToPointScenario
from repro.netsim.profiles import fddi_100
from repro.tko.config import SessionConfig
from repro.unites.present import render_table

from benchmarks.conftest import record


def run_cores(cores: int):
    sc = PointToPointScenario(
        config=SessionConfig(window=16),
        workload="bulk",
        workload_kw={"total_bytes": 4_000_000, "chunk_bytes": 16_384},
        profile=fddi_100().scaled(ber=0.0),
        duration=5.0,
        seed=73,
        mips=8.0,          # a slow host: protocol processing dominates
        cores=cores,
    )
    sc.run(5.0)
    elapsed = sc.system.now - 0.05
    return {
        "goodput_bps": sc.tracker.goodput_bps(),
        "cpu_util_b": sc.b.host.cpu.utilization(elapsed),
    }


def test_ablation_parallel_protocol_processing(benchmark):
    core_counts = [1, 2, 4, 8]

    def run():
        return {c: run_cores(c) for c in core_counts}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"cores": c, **v, "speedup": v["goodput_bps"] / results[1]["goodput_bps"]}
        for c, v in results.items()
    ]
    record(
        benchmark,
        render_table(rows, ["cores", "goodput_bps", "cpu_util_b", "speedup"],
                     title="Ablation — protocol processing across host cores"),
    )
    # parallel protocol processing pays while the host is the bottleneck
    assert results[2]["goodput_bps"] > results[1]["goodput_bps"] * 1.4
    assert results[4]["goodput_bps"] > results[2]["goodput_bps"] * 1.2
    # and goes sublinear as the wire takes over as the bottleneck
    assert results[8]["goodput_bps"] < results[4]["goodput_bps"] * 1.9
    assert results[8]["goodput_bps"] < 100e6  # capped by the FDDI channel
