"""Perf trajectory recorder — emits ``BENCH_kernel.json``,
``BENCH_scale.json`` + ``BENCH_transport.json``.

Four measurements, three snapshot files, so every future PR has a baseline:

* **kernel**: events/sec on an ACK-clocked timer-churn workload (the
  retransmission pattern that dominates transport simulations: ~80% of
  timers are cancelled by an ACK before firing), measured on the fast
  kernel and on ``Simulator(legacy=True)`` — the pre-fast-path heap-only
  kernel kept verbatim as the baseline.  Both runs must dispatch the
  same events and reach the same virtual time (the bit-identity check
  rides along for free).
* **sweep**: wall-clock for the demo scenario grid run serially and
  sharded across workers with :class:`repro.sweep.SweepRunner`.
* **scale** (→ ``BENCH_scale.json``): the C10K-style connection-churn
  workload from :mod:`repro.core.churn` — 1,000+ concurrent mixed-TSC
  connections on one host pair, run under the coalesced
  ``ConnectionManager`` and under ``legacy`` per-connection plumbing.
  Records the wall-clock ratio plus three determinism cross-checks:
  same-seed repeat runs, coalesced-vs-legacy at N=10, and
  coalesced-vs-legacy at full N must all report bit-identical metrics.
* **sharded** (→ ``BENCH_scale.json``): the same churn workload spread
  over a multi-group topology and executed across 2+ worker-kernel
  processes under the conservative link-delay lookahead barrier
  (:mod:`repro.shard`).  Gated on *correctness*: the sharded delivery
  digest must be bit-identical to the serial run, every shard's PDU pool
  must balance, and the barrier must make progress (a wedge raises).
  The serial-vs-sharded wall ratio is recorded honestly — on a
  single-core runner parallelism cannot win and the ratio is >= 1.
* **transport** (→ ``BENCH_transport.json``): endpoint round-trip
  latency (p50/p99) over ``backend.pair()`` ping-pong on the two real
  substrates from :mod:`repro.transport` — in-process loopback and
  asyncio-UDP datagrams on 127.0.0.1.  Every round trip must complete
  (no timeouts, no resets); the latency gates are deliberately loose —
  they catch a wedged substrate, not a slow CI runner.

Usage::

    PYTHONPATH=src python benchmarks/record_bench.py            # record all
    PYTHONPATH=src python benchmarks/record_bench.py --check    # CI gate
    PYTHONPATH=src python benchmarks/record_bench.py --only scale

The kernel section also carries **bytes_plane**: per-send latency
(p50/p99 and sends/sec) of the generated per-session executor vs the
compiled pipeline on the teleconference SCS, with a bit-identity
cross-check and a fast-path engagement proof (every timed send must take
the generated closure, not the fallback).

``--check`` exits non-zero unless the fast kernel beats legacy by >= 30%
events/sec on the cancel-heavy workload (the Issue-4 acceptance bar), the
generated executor beats compiled by >= 1.5x p50 per-send latency with a
p99 no worse than compiled +10% (the Issue-9 acceptance bar), the
serial/parallel sweep results are bit-identical, and — for the scale
section — the churn runs are bit-identical with a coalesced/legacy
wall-clock ratio <= 0.7 at N=1000 (the Issue-5 acceptance bar).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.kernel import Simulator  # noqa: E402
from repro.sim.timers import Timer  # noqa: E402
from repro.sweep import ScenarioSpec, SweepRunner  # noqa: E402
from repro.sweep.demo import VARIANTS, adaptive_vs_static_cell  # noqa: E402

MIN_KERNEL_SPEEDUP = 1.30
MAX_SCALE_RATIO = 0.70
SCALE_N = 1000
SCALE_SEED = 7

#: sharded one-world run (Issue-10): grouped churn split across kernel
#: processes with the link-delay lookahead barrier.  The gates are
#: correctness gates — bit-identity with the serial run and a live,
#: non-wedged barrier — never a speedup bar: on a single-core CI runner
#: the honest wall ratio is >= 1 and is recorded as such.
SHARDED_N = 1000
SHARDED_SHARDS = 2
SHARDED_GROUPS = 4

#: bytes-plane per-send latency gates (Issue-9 acceptance bar): the
#: generated executor must cut p50 send latency by >= 1.5x over the
#: compiled pipeline, with a p99 no worse than compiled +10%.
MIN_BYTES_PLANE_SPEEDUP = 1.50
MAX_BYTES_PLANE_P99_RATIO = 1.10
BYTES_PLANE_MESSAGES = 400
BYTES_PLANE_ROUNDS = 3

TRANSPORT_ROUNDTRIPS = 200
TRANSPORT_WARMUP = 20
TRANSPORT_PAYLOAD = 1024
TRANSPORT_RECV_TIMEOUT = 5.0
#: generous p99 ceilings (seconds) — a wedged-substrate alarm, not a race
MAX_TRANSPORT_P99 = {"loopback": 0.10, "udp": 0.50}

RTO = 0.05          # retransmission timeout per flow
ACK_DELAY = 0.01    # ACK arrival (cancels the timer) — 4/5 of sends
LOSS_EVERY = 5      # every 5th send loses its ACK: the timer fires
FLOWS = 512


class _ChurnFlow:
    """One ACK-clocked flow: send → arm RTO → ACK cancels (or timer fires)."""

    __slots__ = ("sim", "timer", "sent", "fired", "acked")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.timer = Timer(sim, self._on_timeout, interval=RTO)
        self.sent = 0
        self.fired = 0
        self.acked = 0

    def send(self) -> None:
        self.sent += 1
        self.timer.schedule(RTO)
        if self.sent % LOSS_EVERY != 0:
            self.sim.schedule_transient(ACK_DELAY, self._on_ack)

    def _on_ack(self) -> None:
        self.acked += 1
        self.timer.cancel()
        self.send()

    def _on_timeout(self) -> None:
        self.fired += 1
        self.send()


def run_timer_churn(legacy: bool, n_events: int) -> dict:
    """Drive FLOWS concurrent churn flows for ``n_events`` dispatches."""
    sim = Simulator(legacy=legacy)
    flows = [_ChurnFlow(sim) for _ in range(FLOWS)]
    for f in flows:
        f.send()
    w0 = perf_counter()
    sim.run(max_events=n_events)
    wall = perf_counter() - w0
    armed = sum(f.sent for f in flows)
    fired = sum(f.fired for f in flows)
    return {
        "wall_s": wall,
        "events": sim.events_dispatched,
        "events_per_sec": sim.events_dispatched / wall,
        "virtual_time": sim.now,
        "timers_armed": armed,
        "timers_fired": fired,
        # timers not fired were cancelled (by an ACK or a re-arm)
        "cancel_fraction": 1.0 - fired / armed,
    }


def bench_kernel(n_events: int, repeats: int = 5) -> dict:
    """Fast vs legacy events/sec, best-of-N, with an identity cross-check.

    Runs are ABAB-interleaved so slow drift in machine load hits both
    kernels alike instead of biasing whichever block ran second.
    """
    fast_runs, legacy_runs = [], []
    for _ in range(repeats):
        fast_runs.append(run_timer_churn(legacy=False, n_events=n_events))
        legacy_runs.append(run_timer_churn(legacy=True, n_events=n_events))
    fast = max(fast_runs, key=lambda r: r["events_per_sec"])
    legacy = max(legacy_runs, key=lambda r: r["events_per_sec"])
    for key in ("events", "virtual_time", "timers_armed", "timers_fired"):
        if fast[key] != legacy[key]:
            raise AssertionError(
                f"fast/legacy kernels diverged on {key}: "
                f"{fast[key]!r} != {legacy[key]!r}"
            )
    return {
        "workload": (f"{FLOWS} ACK-clocked flows, RTO={RTO}s, "
                     f"ACK={ACK_DELAY}s, 1-in-{LOSS_EVERY} ACK loss"),
        "cpu_count": os.cpu_count(),
        "events": fast["events"],
        "cancel_fraction": round(fast["cancel_fraction"], 4),
        "fast_events_per_sec": round(fast["events_per_sec"], 1),
        "legacy_events_per_sec": round(legacy["events_per_sec"], 1),
        "speedup": round(fast["events_per_sec"] / legacy["events_per_sec"], 3),
        "repeats": repeats,
    }


def _teleconference_config():
    """Derive the teleconference SCS through the real Stage I/II path."""
    from repro.mantts.acd import ACD
    from repro.mantts.monitor import NetworkState
    from repro.mantts.transform import specify_scs
    from repro.mantts.tsc import APP_PROFILES

    profile = APP_PROFILES["tele-conferencing"]
    acd = ACD(
        participants=("B",),
        quantitative=profile.quantitative(),
        qualitative=profile.qualitative(),
    )
    lan = NetworkState("A", "B", True, 0.004, 0.004, 10e6, 1500, 1e-6, 0.0, 0.0, 3)
    return specify_scs(acd, lan).config


def _bytes_plane_run(kind: str, cfg) -> tuple:
    """One teleconference run under executor ``kind``.

    Returns ``(per-send wall samples, simulated identity tuple,
    fast-path send count or None)``.  Only ``session.send()`` is timed;
    the simulator advances between sends, outside the timed region.
    """
    from repro.host.nic import Host
    from repro.netsim.profiles import ethernet_10, linear_path
    from repro.sim.rng import RngStreams
    from repro.tko.executor import DEFAULT_KIND, use_executor
    from repro.tko.protocol import TKOProtocol

    use_executor(kind)
    try:
        sim = Simulator()
        rng = RngStreams(5)
        net = linear_path(sim, ethernet_10(), ("A", "B"), n_switches=2, rng=rng)
        ha = Host(sim, net, "A", mips=25.0)
        hb = Host(sim, net, "B", mips=25.0)
        pa = TKOProtocol(ha)
        pb = TKOProtocol(hb)
        delivered = []

        def on_session(s):
            s.on_deliver = lambda data, meta: delivered.append(len(data))

        pb.listen(7000, lambda pdu, frame: cfg, on_session)
        sender = pa.create_session(cfg, "B", 7000)
        sender.connect()
        sim.run(until=0.05)

        msg = b"\xa5" * 512
        samples = []
        t = 0.05
        for _ in range(BYTES_PLANE_MESSAGES):
            t += 0.02  # 50 Hz conference tick
            sim.run(until=t)
            w0 = perf_counter()
            sender.send(msg)
            samples.append(perf_counter() - w0)
        sim.run(until=t + 2.0)

        identity = (
            len(delivered),
            sum(delivered),
            sim.now,
            sender.stats.pdus_sent,
            sender.stats.retransmissions,
            ha.cpu.instructions_retired,
            hb.cpu.instructions_retired,
        )
        fast = getattr(sender.executor, "fast_sends", None)
        return samples, identity, fast
    finally:
        use_executor(DEFAULT_KIND)


def bench_bytes_plane(rounds: int = BYTES_PLANE_ROUNDS) -> dict:
    """Generated vs compiled per-send latency on the teleconference SCS.

    ABAB-interleaved rounds; per-send samples are reduced elementwise to
    their minimum across rounds (each send's best case — strips scheduler
    noise) before the percentiles.  The simulated identity tuple must be
    bit-identical across every run of both executors, and the generated
    executor must prove fast-path engagement on every send.
    """
    from repro.unites.obs import TELEMETRY

    TELEMETRY.disable()
    cfg = _teleconference_config()
    comp_rounds, gen_rounds = [], []
    identities = set()
    fast_sends = None
    for _ in range(rounds):
        samples, ident, _ = _bytes_plane_run("compiled", cfg)
        comp_rounds.append(samples)
        identities.add(ident)
        samples, ident, fast_sends = _bytes_plane_run("generated", cfg)
        gen_rounds.append(samples)
        identities.add(ident)

    def stats(per_round: list) -> dict:
        best = sorted(min(col) for col in zip(*per_round))
        mean = sum(best) / len(best)
        return {
            "p50_us": round(_percentile(best, 0.50) * 1e6, 2),
            "p99_us": round(_percentile(best, 0.99) * 1e6, 2),
            "sends_per_sec": round(1.0 / mean, 1),
        }

    comp, gen = stats(comp_rounds), stats(gen_rounds)
    return {
        "workload": (f"teleconference SCS, {BYTES_PLANE_MESSAGES} x 512B "
                     f"sends at 50Hz, min of {rounds} ABAB rounds"),
        "cpu_count": os.cpu_count(),
        "compiled": comp,
        "generated": gen,
        "speedup_p50": round(comp["p50_us"] / gen["p50_us"], 3),
        "p99_ratio": round(gen["p99_us"] / comp["p99_us"], 3),
        "bit_identical": len(identities) == 1,
        "fast_path_sends": fast_sends,
        "fast_path_engaged": fast_sends == BYTES_PLANE_MESSAGES,
        "rounds": rounds,
    }


SWEEP_SPEC = ScenarioSpec(
    name="bench-sweep",
    cell=adaptive_vs_static_cell,
    grid={"variant": list(VARIANTS), "ber": [0.0, 4e-6, 1.2e-5]},
    fixed={"duration": 4.0},
    base_seed=11,
)


def bench_sweep() -> dict:
    """Serial vs parallel wall-clock on the demo grid (and bit-identity)."""
    serial = SweepRunner(SWEEP_SPEC, workers=1).run()
    parallel = SweepRunner(SWEEP_SPEC, workers=None).run()
    identical = parallel.metrics_only() == serial.metrics_only()
    return {
        "cpu_count": os.cpu_count(),
        "cells": len(serial),
        "workers": parallel.workers,
        "serial_wall_s": round(serial.wall_s, 3),
        "parallel_wall_s": round(parallel.wall_s, 3),
        "speedup": round(serial.wall_s / parallel.wall_s, 3)
        if parallel.wall_s else 1.0,
        "bit_identical": identical,
    }


def bench_scale(n: int = SCALE_N, seed: int = SCALE_SEED, repeats: int = 2) -> dict:
    """Coalesced vs legacy connection churn: wall-clock + identity gates.

    Wall-clock runs are ABAB-interleaved (best-of-N per mode) like the
    kernel bench; the three identity checks compare only deterministic
    metrics (:func:`repro.core.churn.identity_fields`), never timings.
    """
    from repro.core.churn import identity_fields, run_churn

    # determinism gates first, on a cheap population
    small_a = run_churn(10, mode="coalesced", seed=seed)
    small_b = run_churn(10, mode="coalesced", seed=seed)
    small_legacy = run_churn(10, mode="legacy", seed=seed)
    repeat_identical = identity_fields(small_a) == identity_fields(small_b)
    small_mode_identical = identity_fields(small_a) == identity_fields(small_legacy)

    coalesced_runs, legacy_runs = [], []
    full_identical = True
    baseline = None
    for _ in range(repeats):
        for mode, runs in (("coalesced", coalesced_runs), ("legacy", legacy_runs)):
            w0 = perf_counter()
            metrics = run_churn(n, mode=mode, seed=seed)
            runs.append((perf_counter() - w0, metrics))
            ident = identity_fields(metrics)
            if baseline is None:
                baseline = ident
            elif ident != baseline:
                full_identical = False
    coalesced_wall, coalesced = min(coalesced_runs, key=lambda r: r[0])
    legacy_wall, _ = min(legacy_runs, key=lambda r: r[0])
    ratio = coalesced_wall / legacy_wall if legacy_wall else 1.0
    return {
        "workload": (f"{n} mixed-TSC connections (voice/video/bulk/telnet), "
                     f"staggered waves, 1-in-3 reopened, seed {seed}"),
        "cpu_count": os.cpu_count(),
        "n_connections": n,
        "established": coalesced["established"],
        "failed": coalesced["failed"],
        "reopened": coalesced["reopened"],
        "peak_concurrent": coalesced["peak_concurrent"],
        "messages_delivered": coalesced["delivered"],
        "delivery_digest": coalesced["delivery_digest"],
        "events_dispatched": coalesced["events_dispatched"],
        "scs_cache_hits": coalesced["scs_cache_hits"],
        "coalesced_wall_s": round(coalesced_wall, 3),
        "legacy_wall_s": round(legacy_wall, 3),
        "wall_ratio": round(ratio, 3),
        "repeat_identical": repeat_identical,
        "mode_identical_n10": small_mode_identical,
        "mode_identical_full": full_identical,
        "repeats": repeats,
    }


def bench_sharded(n: int = SHARDED_N, n_shards: int = SHARDED_SHARDS,
                  seed: int = SCALE_SEED) -> dict:
    """Sharded vs serial grouped churn: bit-identity + barrier health.

    Runs the one-world grouped scenario serially, then across
    ``n_shards`` conservative-parallel kernel processes, and compares
    the receiver-side identity fields (per-connection delivery digests
    folded in global index order).  A wedged barrier raises
    ``ShardSyncError`` out of the run — there is no silent hang mode.
    """
    from repro.core.churn import (
        grouped_identity_fields,
        run_grouped_churn,
        run_sharded_churn,
    )

    w0 = perf_counter()
    serial = run_grouped_churn(n, n_groups=SHARDED_GROUPS, seed=seed)
    serial_wall = perf_counter() - w0
    w0 = perf_counter()
    sharded = run_sharded_churn(n, n_shards=n_shards,
                                n_groups=SHARDED_GROUPS, seed=seed)
    sharded_wall = perf_counter() - w0
    coord = sharded["coordinator"]
    return {
        "workload": (f"{n} mixed-TSC connections over {SHARDED_GROUPS} host "
                     f"groups + cross-group trunks, {n_shards} shard kernels, "
                     f"lookahead {coord['lookahead']}s, seed {seed}"),
        "cpu_count": os.cpu_count(),
        "n_connections": n,
        "n_shards": n_shards,
        "established": sharded["established"],
        "failed": sharded["failed"],
        "messages_delivered": sharded["delivered"],
        "peak_concurrent": sharded["peak_concurrent"],
        "delivery_digest": sharded["delivery_digest"],
        "serial_wall_s": round(serial_wall, 3),
        "sharded_wall_s": round(sharded_wall, 3),
        "wall_ratio_vs_serial": round(sharded_wall / serial_wall, 3)
        if serial_wall else 1.0,
        "epochs": coord["epochs"],
        "horizon_stalls": coord["horizon_stalls"],
        "barrier_wait_s": coord["barrier_wait_s"],
        "cross_shard_frames": coord["cross_frames"],
        "cross_shard_bytes": coord["cross_bytes"],
        "bit_identical": (grouped_identity_fields(sharded)
                          == grouped_identity_fields(serial)),
        "pool_balanced": all(
            r["pdu_acquired"] == r["pdu_recycled"] for r in sharded["shards"]
        ),
        "boundary_clean": all(
            r["shard_refused_multicast"] == r["shard_refused_heartbeat"]
            == r["shard_encode_errors"] == 0 for r in sharded["shards"]
        ),
    }


def _percentile(sorted_samples, q: float) -> float:
    """Nearest-rank percentile on an already-sorted sample list."""
    idx = min(len(sorted_samples) - 1, max(0, round(q * (len(sorted_samples) - 1))))
    return sorted_samples[idx]


def _pingpong(make_backend, n: int, warmup: int) -> dict:
    """Round-trip latency over one ``backend.pair()``: A sends, B echoes.

    Loopback feeds the peer synchronously and UDP feeds it from the
    backend's loop thread through the shared buffered-endpoint condition,
    so the same single-threaded loop exercises both substrates.
    """
    msg = b"\xa5" * TRANSPORT_PAYLOAD
    backend = make_backend()
    try:
        a, b = backend.pair()
        samples = []
        for i in range(warmup + n):
            w0 = perf_counter()
            sent = a.send(msg)
            if sent != len(msg):
                raise AssertionError(f"send returned {sent} on trip {i}")
            ping = b.recv(timeout=TRANSPORT_RECV_TIMEOUT)
            if not ping.ok:
                raise AssertionError(f"echo-side recv code {ping.code} on trip {i}")
            b.send(ping.data)
            pong = a.recv(timeout=TRANSPORT_RECV_TIMEOUT)
            if not pong.ok or pong.data != msg:
                raise AssertionError(f"round trip {i} failed: code {pong.code}")
            if i >= warmup:
                samples.append(perf_counter() - w0)
        a.close()
        b.close()
    finally:
        backend.close()
    samples.sort()
    return {
        "roundtrips": len(samples),
        "payload_bytes": TRANSPORT_PAYLOAD,
        "p50_us": round(_percentile(samples, 0.50) * 1e6, 1),
        "p99_us": round(_percentile(samples, 0.99) * 1e6, 1),
        "max_us": round(samples[-1] * 1e6, 1),
    }


def bench_impaired() -> dict:
    """Lossy-path recovery: the chaos harness's 10×2KiB transfer through
    20% loss + 10% dup + 10% reorder in *both* directions.

    Deterministic mode (stepped clock, poll=0), so ``protocol_time_s`` —
    how much timeline the stack needed to win against the hostile path —
    is reproducible; ``wall_s`` measures the harness itself.
    """
    from repro.transport.chaos import run_impaired_transfer

    w0 = perf_counter()
    res = run_impaired_transfer()
    wall = perf_counter() - w0
    trace = res["trace"]
    return {
        "workload": ("10 x 2048B over ImpairedFabric, 20% loss + 10% dup "
                     "+ 10% reorder each direction, deterministic replay"),
        "delivered": res["delivered"],
        "digest_ok": res["digest_ok"],
        "frames_sent": res["frames_sent"],
        "datagrams_dropped": sum(1 for ln in trace if ln.endswith("drop")),
        "datagrams_duplicated": sum(1 for ln in trace if "dup" in ln),
        "datagrams_reordered": sum(1 for ln in trace if "reorder" in ln),
        "protocol_time_s": round(res["timeline_s"], 3),
        "wall_s": round(wall, 3),
        "pool_balanced": res["pool_delta"][0] == res["pool_delta"][1],
    }


def bench_transport(n: int = TRANSPORT_ROUNDTRIPS,
                    warmup: int = TRANSPORT_WARMUP) -> dict:
    """Loopback vs UDP round-trip p50/p99, plus lossy-path recovery."""
    from repro.transport import LoopbackBackend, UdpBackend

    return {
        "workload": (f"{n} ping-pong round trips x {TRANSPORT_PAYLOAD}B "
                     f"over backend.pair(), {warmup} warmup"),
        "cpu_count": os.cpu_count(),
        "loopback": _pingpong(LoopbackBackend, n, warmup),
        "udp": _pingpong(UdpBackend, n, warmup),
        "impaired": bench_impaired(),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--events", type=int, default=200_000,
                    help="kernel micro-bench dispatch budget")
    ap.add_argument("--repeats", type=int, default=5,
                    help="best-of-N repeats per kernel variant")
    repo = Path(__file__).resolve().parent.parent
    ap.add_argument("--out", default=str(repo / "BENCH_kernel.json"))
    ap.add_argument("--scale-out", default=str(repo / "BENCH_scale.json"))
    ap.add_argument("--scale-n", type=int, default=SCALE_N,
                    help="churn population for the scale section")
    ap.add_argument("--transport-out",
                    default=str(repo / "BENCH_transport.json"))
    ap.add_argument("--roundtrips", type=int, default=TRANSPORT_ROUNDTRIPS,
                    help="ping-pong count per transport substrate")
    ap.add_argument("--sharded-n", type=int, default=SHARDED_N,
                    help="churn population for the sharded section")
    ap.add_argument("--sharded-shards", type=int, default=SHARDED_SHARDS,
                    help="worker-kernel count for the sharded section")
    ap.add_argument("--only", nargs="+",
                    choices=("kernel", "sweep", "scale", "sharded",
                             "transport"),
                    default=("kernel", "sweep", "scale", "sharded",
                             "transport"),
                    help="which benchmark sections to run")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero unless the perf gates hold")
    args = ap.parse_args(argv)

    env = {
        "python": ".".join(map(str, sys.version_info[:3])),
        "cpu_count": os.cpu_count(),
    }
    ok, summary = True, []

    if "kernel" in args.only or "sweep" in args.only:
        snapshot = dict(env)
        if "kernel" in args.only:
            kernel = snapshot["kernel"] = bench_kernel(args.events, args.repeats)
            if args.check and kernel["speedup"] < MIN_KERNEL_SPEEDUP:
                print(f"FAIL: kernel speedup {kernel['speedup']}x < "
                      f"{MIN_KERNEL_SPEEDUP}x gate", file=sys.stderr)
                ok = False
            summary.append(f"kernel {kernel['speedup']}x "
                           f"(gate {MIN_KERNEL_SPEEDUP}x)")
            bp = snapshot["bytes_plane"] = bench_bytes_plane()
            if args.check:
                if not bp["bit_identical"]:
                    print("FAIL: generated executor diverged from compiled "
                          "on the bytes-plane workload", file=sys.stderr)
                    ok = False
                if not bp["fast_path_engaged"]:
                    print(f"FAIL: generated fast path engaged on only "
                          f"{bp['fast_path_sends']}/{BYTES_PLANE_MESSAGES} "
                          f"sends", file=sys.stderr)
                    ok = False
                if bp["speedup_p50"] < MIN_BYTES_PLANE_SPEEDUP:
                    print(f"FAIL: bytes-plane p50 speedup "
                          f"{bp['speedup_p50']}x < "
                          f"{MIN_BYTES_PLANE_SPEEDUP}x gate", file=sys.stderr)
                    ok = False
                if bp["p99_ratio"] > MAX_BYTES_PLANE_P99_RATIO:
                    print(f"FAIL: bytes-plane p99 ratio {bp['p99_ratio']} > "
                          f"{MAX_BYTES_PLANE_P99_RATIO} gate", file=sys.stderr)
                    ok = False
            summary.append(
                f"bytes-plane {bp['speedup_p50']}x p50 "
                f"(gate {MIN_BYTES_PLANE_SPEEDUP}x), p50 "
                f"{bp['generated']['p50_us']}us / p99 "
                f"{bp['generated']['p99_us']}us")
        if "sweep" in args.only:
            sweep = snapshot["sweep"] = bench_sweep()
            if args.check and not sweep["bit_identical"]:
                print("FAIL: parallel sweep diverged from serial",
                      file=sys.stderr)
                ok = False
            summary.append(f"sweep bit-identical at {sweep['workers']} workers")
        Path(args.out).write_text(json.dumps(snapshot, indent=2) + "\n")
        print(json.dumps(snapshot, indent=2))

    if "scale" in args.only or "sharded" in args.only:
        # one snapshot file for both sections: a partial run (--only
        # scale) keeps the other section from the existing snapshot
        try:
            scale = json.loads(Path(args.scale_out).read_text())
        except (OSError, ValueError):
            scale = {}
        scale.update(env)
        if "scale" in args.only:
            scale["scale"] = section = bench_scale(args.scale_n)
            if args.check:
                if section["wall_ratio"] > MAX_SCALE_RATIO:
                    print(f"FAIL: scale wall ratio {section['wall_ratio']} > "
                          f"{MAX_SCALE_RATIO} gate", file=sys.stderr)
                    ok = False
                for gate in ("repeat_identical", "mode_identical_n10",
                             "mode_identical_full"):
                    if not section[gate]:
                        print(f"FAIL: scale determinism gate {gate} failed",
                              file=sys.stderr)
                        ok = False
                if section["peak_concurrent"] < min(1000, args.scale_n):
                    print(f"FAIL: peak concurrency "
                          f"{section['peak_concurrent']} below target",
                          file=sys.stderr)
                    ok = False
            summary.append(f"scale ratio {section['wall_ratio']} "
                           f"(gate {MAX_SCALE_RATIO}), peak "
                           f"{section['peak_concurrent']} concurrent")
        if "sharded" in args.only:
            scale["sharded"] = shard = bench_sharded(
                args.sharded_n, args.sharded_shards)
            if args.check:
                if not shard["bit_identical"]:
                    print("FAIL: sharded run diverged from serial delivery "
                          "digest", file=sys.stderr)
                    ok = False
                if not shard["pool_balanced"]:
                    print("FAIL: a shard leaked pooled PDUs across the "
                          "gateway", file=sys.stderr)
                    ok = False
                if not shard["boundary_clean"]:
                    print("FAIL: control/multicast traffic reached a shard "
                          "boundary", file=sys.stderr)
                    ok = False
                if shard["epochs"] <= 0 or shard["cross_shard_frames"] <= 0:
                    print("FAIL: sharded run never exercised the barrier",
                          file=sys.stderr)
                    ok = False
            summary.append(
                f"sharded {shard['n_shards']}-way bit-identical at "
                f"n={shard['n_connections']}, {shard['epochs']} epochs, "
                f"{shard['cross_shard_frames']} cross frames, wall ratio "
                f"{shard['wall_ratio_vs_serial']} vs serial")
        Path(args.scale_out).write_text(json.dumps(scale, indent=2) + "\n")
        print(json.dumps(scale, indent=2))

    if "transport" in args.only:
        snapshot = dict(env)
        snapshot["transport"] = transport = bench_transport(args.roundtrips)
        Path(args.transport_out).write_text(
            json.dumps(snapshot, indent=2) + "\n")
        print(json.dumps(snapshot, indent=2))
        for sub, gate in MAX_TRANSPORT_P99.items():
            stats = transport[sub]
            if args.check and stats["p99_us"] > gate * 1e6:
                print(f"FAIL: {sub} p99 {stats['p99_us']}us > "
                      f"{gate * 1e6:.0f}us gate", file=sys.stderr)
                ok = False
            summary.append(f"{sub} rtt p50 {stats['p50_us']}us / "
                           f"p99 {stats['p99_us']}us")
        imp = transport["impaired"]
        if args.check and not (imp["delivered"] == 10 and imp["digest_ok"]
                               and imp["pool_balanced"]):
            print(f"FAIL: lossy-path recovery incomplete: {imp}",
                  file=sys.stderr)
            ok = False
        summary.append(
            f"impaired recovery {imp['delivered']}/10 in "
            f"{imp['protocol_time_s']}s timeline "
            f"({imp['datagrams_dropped']} drops)")

    if args.check:
        if not ok:
            return 1
        print("OK: " + ", ".join(summary))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
