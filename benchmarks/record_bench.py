"""Perf trajectory recorder — emits ``BENCH_kernel.json``.

Two measurements, one snapshot file, so every future PR has a baseline:

* **kernel**: events/sec on an ACK-clocked timer-churn workload (the
  retransmission pattern that dominates transport simulations: ~80% of
  timers are cancelled by an ACK before firing), measured on the fast
  kernel and on ``Simulator(legacy=True)`` — the pre-fast-path heap-only
  kernel kept verbatim as the baseline.  Both runs must dispatch the
  same events and reach the same virtual time (the bit-identity check
  rides along for free).
* **sweep**: wall-clock for the demo scenario grid run serially and
  sharded across workers with :class:`repro.sweep.SweepRunner`.

Usage::

    PYTHONPATH=src python benchmarks/record_bench.py            # record
    PYTHONPATH=src python benchmarks/record_bench.py --check    # CI gate

``--check`` exits non-zero unless the fast kernel beats legacy by >= 30%
events/sec on the cancel-heavy workload (the Issue-4 acceptance bar) and
the serial/parallel sweep results are bit-identical.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.kernel import Simulator  # noqa: E402
from repro.sim.timers import Timer  # noqa: E402
from repro.sweep import ScenarioSpec, SweepRunner  # noqa: E402
from repro.sweep.demo import VARIANTS, adaptive_vs_static_cell  # noqa: E402

MIN_KERNEL_SPEEDUP = 1.30

RTO = 0.05          # retransmission timeout per flow
ACK_DELAY = 0.01    # ACK arrival (cancels the timer) — 4/5 of sends
LOSS_EVERY = 5      # every 5th send loses its ACK: the timer fires
FLOWS = 512


class _ChurnFlow:
    """One ACK-clocked flow: send → arm RTO → ACK cancels (or timer fires)."""

    __slots__ = ("sim", "timer", "sent", "fired", "acked")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.timer = Timer(sim, self._on_timeout, interval=RTO)
        self.sent = 0
        self.fired = 0
        self.acked = 0

    def send(self) -> None:
        self.sent += 1
        self.timer.schedule(RTO)
        if self.sent % LOSS_EVERY != 0:
            self.sim.schedule_transient(ACK_DELAY, self._on_ack)

    def _on_ack(self) -> None:
        self.acked += 1
        self.timer.cancel()
        self.send()

    def _on_timeout(self) -> None:
        self.fired += 1
        self.send()


def run_timer_churn(legacy: bool, n_events: int) -> dict:
    """Drive FLOWS concurrent churn flows for ``n_events`` dispatches."""
    sim = Simulator(legacy=legacy)
    flows = [_ChurnFlow(sim) for _ in range(FLOWS)]
    for f in flows:
        f.send()
    w0 = perf_counter()
    sim.run(max_events=n_events)
    wall = perf_counter() - w0
    armed = sum(f.sent for f in flows)
    fired = sum(f.fired for f in flows)
    return {
        "wall_s": wall,
        "events": sim.events_dispatched,
        "events_per_sec": sim.events_dispatched / wall,
        "virtual_time": sim.now,
        "timers_armed": armed,
        "timers_fired": fired,
        # timers not fired were cancelled (by an ACK or a re-arm)
        "cancel_fraction": 1.0 - fired / armed,
    }


def bench_kernel(n_events: int, repeats: int = 5) -> dict:
    """Fast vs legacy events/sec, best-of-N, with an identity cross-check.

    Runs are ABAB-interleaved so slow drift in machine load hits both
    kernels alike instead of biasing whichever block ran second.
    """
    fast_runs, legacy_runs = [], []
    for _ in range(repeats):
        fast_runs.append(run_timer_churn(legacy=False, n_events=n_events))
        legacy_runs.append(run_timer_churn(legacy=True, n_events=n_events))
    fast = max(fast_runs, key=lambda r: r["events_per_sec"])
    legacy = max(legacy_runs, key=lambda r: r["events_per_sec"])
    for key in ("events", "virtual_time", "timers_armed", "timers_fired"):
        if fast[key] != legacy[key]:
            raise AssertionError(
                f"fast/legacy kernels diverged on {key}: "
                f"{fast[key]!r} != {legacy[key]!r}"
            )
    return {
        "workload": (f"{FLOWS} ACK-clocked flows, RTO={RTO}s, "
                     f"ACK={ACK_DELAY}s, 1-in-{LOSS_EVERY} ACK loss"),
        "events": fast["events"],
        "cancel_fraction": round(fast["cancel_fraction"], 4),
        "fast_events_per_sec": round(fast["events_per_sec"], 1),
        "legacy_events_per_sec": round(legacy["events_per_sec"], 1),
        "speedup": round(fast["events_per_sec"] / legacy["events_per_sec"], 3),
        "repeats": repeats,
    }


SWEEP_SPEC = ScenarioSpec(
    name="bench-sweep",
    cell=adaptive_vs_static_cell,
    grid={"variant": list(VARIANTS), "ber": [0.0, 4e-6, 1.2e-5]},
    fixed={"duration": 4.0},
    base_seed=11,
)


def bench_sweep() -> dict:
    """Serial vs parallel wall-clock on the demo grid (and bit-identity)."""
    serial = SweepRunner(SWEEP_SPEC, workers=1).run()
    parallel = SweepRunner(SWEEP_SPEC, workers=None).run()
    identical = parallel.metrics_only() == serial.metrics_only()
    return {
        "cells": len(serial),
        "workers": parallel.workers,
        "serial_wall_s": round(serial.wall_s, 3),
        "parallel_wall_s": round(parallel.wall_s, 3),
        "speedup": round(serial.wall_s / parallel.wall_s, 3)
        if parallel.wall_s else 1.0,
        "bit_identical": identical,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--events", type=int, default=200_000,
                    help="kernel micro-bench dispatch budget")
    ap.add_argument("--repeats", type=int, default=5,
                    help="best-of-N repeats per kernel variant")
    ap.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                         / "BENCH_kernel.json"))
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero unless the perf gates hold")
    args = ap.parse_args(argv)

    kernel = bench_kernel(args.events, args.repeats)
    sweep = bench_sweep()
    snapshot = {
        "python": ".".join(map(str, sys.version_info[:3])),
        "cpu_count": os.cpu_count(),
        "kernel": kernel,
        "sweep": sweep,
    }
    Path(args.out).write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))

    if args.check:
        ok = True
        if kernel["speedup"] < MIN_KERNEL_SPEEDUP:
            print(f"FAIL: kernel speedup {kernel['speedup']}x < "
                  f"{MIN_KERNEL_SPEEDUP}x gate", file=sys.stderr)
            ok = False
        if not sweep["bit_identical"]:
            print("FAIL: parallel sweep diverged from serial", file=sys.stderr)
            ok = False
        if not ok:
            return 1
        print(f"OK: kernel {kernel['speedup']}x (gate {MIN_KERNEL_SPEEDUP}x), "
              f"sweep bit-identical at {sweep['workers']} workers")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
