"""Table 2 — the ADAPTIVE Communication Descriptor.

Demonstrates that every parameter group of Table 2 actually *drives* the
system: participant addresses select unicast vs multicast, quantitative
QoS sets pacing/window/segment numbers, qualitative QoS selects
sequencing/duplicate mechanisms, TSA pairs reconfigure a live session,
and the TMC causes UNITES to collect the requested metrics.
"""

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD, TMC, TSARule
from repro.mantts.monitor import NetworkState
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.mantts.transform import specify_scs
from repro.netsim.profiles import ethernet_10, star
from repro.unites.present import render_table

from benchmarks.conftest import record

PATH = NetworkState(
    src="A", dst="B", reachable=True, rtt=0.004, base_rtt=0.004,
    bottleneck_bps=10e6, mtu=1500, ber=1e-6, congestion=0.0,
    loss_rate=0.0, hops=3,
)


def acd_effects():
    """Static half: each ACD parameter group changes the derived SCS."""
    rows = []
    base = ACD(participants=("B",))
    rows.append(("participants=(B,)", specify_scs(base, PATH).config.delivery))
    multi = ACD(participants=("B", "C", "D"))
    rows.append(("participants=(B,C,D)", specify_scs(multi, PATH).config.delivery))
    slow = ACD(participants=("B",), quantitative=QuantitativeQoS(
        avg_throughput_bps=64e3, loss_tolerance=0.05, max_jitter=0.02, message_size=160),
        qualitative=QualitativeQoS(isochronous=True, ordered=False,
                                   duplicate_sensitive=False))
    fast = ACD(participants=("B",), quantitative=QuantitativeQoS(
        avg_throughput_bps=5e6, loss_tolerance=0.05, max_jitter=0.02, message_size=8192),
        qualitative=QualitativeQoS(isochronous=True, ordered=False,
                                   duplicate_sensitive=False))
    slow_cfg = specify_scs(slow, PATH).config
    fast_cfg = specify_scs(fast, PATH).config
    rows.append(("quantitative 64 kbps", f"rate={slow_cfg.rate_pps:.0f}pps"))
    rows.append(("quantitative 5 Mbps", f"rate={fast_cfg.rate_pps:.0f}pps"))
    ordered = ACD(participants=("B",), qualitative=QualitativeQoS(
        ordered=True, duplicate_sensitive=True))
    unordered = ACD(participants=("B",), qualitative=QualitativeQoS(
        ordered=False, duplicate_sensitive=False))
    rows.append(("qualitative ordered+dup-sensitive",
                 specify_scs(ordered, PATH).config.sequencing))
    rows.append(("qualitative unordered",
                 specify_scs(unordered, PATH).config.sequencing))
    return rows, slow_cfg, fast_cfg


def tsa_and_tmc_effects():
    """Dynamic half: TSA reconfigures, TMC collects."""
    sysm = AdaptiveSystem(seed=0)
    sysm.attach_network(star(sysm.sim, ethernet_10(), ["A", "B"], rng=sysm.rng))
    a, b = sysm.node("A"), sysm.node("B")
    b.mantts.register_service(7000, on_deliver=lambda d, m: None)
    acd = ACD(
        participants=("B",),
        quantitative=QuantitativeQoS(duration=600),
        qualitative=QualitativeQoS(),
        tsa=(TSARule("rtt", ">", 0.0, "notify", tag="tsa-fired"),),
        tmc=TMC(metrics=("rtt", "throughput_pps", "retransmissions"),
                sampling_interval=0.1),
    )
    notes = []
    conn = a.mantts.open(acd, on_notify=lambda tag, st: notes.append(tag))
    sysm.run(until=0.5)
    for _ in range(10):
        conn.send(b"x" * 512)
    sysm.run(until=3.0)
    repo = sysm.unites.repository
    collected = repo.metrics_for("session", conn.ref)
    return notes, collected, repo


def test_table2_acd_parameters(benchmark):
    def run():
        rows, slow_cfg, fast_cfg = acd_effects()
        notes, collected, repo = tsa_and_tmc_effects()
        return rows, slow_cfg, fast_cfg, notes, collected, repo

    rows, slow_cfg, fast_cfg, notes, collected, repo = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table_rows = [{"ACD parameter": k, "effect on configuration": v} for k, v in rows]
    table_rows.append({"ACD parameter": "TSA <rtt>0, notify>",
                       "effect on configuration": f"fired: {bool(notes)}"})
    table_rows.append({"ACD parameter": "TMC(rtt, throughput_pps, retransmissions)",
                       "effect on configuration": f"collected: {collected}"})
    record(
        benchmark,
        render_table(table_rows, ["ACD parameter", "effect on configuration"],
                     title="Table 2 — ACD parameter groups driving the system"),
    )

    # participants: >1 address ⇒ multicast service
    assert dict(rows)["participants=(B,)"] == "unicast"
    assert dict(rows)["participants=(B,C,D)"] == "multicast"
    # quantitative QoS scales pacing (compare paced bit rate, since the
    # faster session also negotiates larger segments)
    slow_bps = slow_cfg.rate_pps * 8 * slow_cfg.segment_size
    fast_bps = fast_cfg.rate_pps * 8 * fast_cfg.segment_size
    assert fast_bps > slow_bps * 10
    # qualitative QoS selects sequencing
    assert dict(rows)["qualitative ordered+dup-sensitive"] == "ordered-dedup"
    assert dict(rows)["qualitative unordered"] == "none"
    # TSA fired the notify action
    assert "tsa-fired" in notes
    # TMC delivered exactly the requested metrics to the repository
    assert set(collected) == {"rtt", "throughput_pps", "retransmissions"}
    assert len(repo) > 10
