"""Ablation — playout-buffer depth vs interactivity.

The playout point is the paper's jitter mechanism (Table 1's jitter-
sensitivity column).  A deeper buffer absorbs more delay variance (fewer
late frames) but adds exactly its depth to every frame's mouth-to-ear
latency — the conversational-quality trade-off.  Sweeping the depth for
voice over a jitter-inducing congested WAN exposes the knee.
"""

from repro.core.scenario import PointToPointScenario
from repro.netsim.profiles import wan_internet
from repro.tko.config import SessionConfig
from repro.unites.present import render_table

from benchmarks.conftest import record


def run_depth(playout_delay: float):
    sc = PointToPointScenario(
        config=SessionConfig(
            connection="implicit", transmission="rate", rate_pps=50.0,
            ack="none", recovery="none", sequencing="none",
            jitter="playout", playout_delay=playout_delay,
            segment_size=160, priority=True,
        ),
        workload="voice",
        profile=wan_internet(),
        bg_bps=1.05e6,           # cross traffic: queueing jitter
        duration=20.0,
        seed=71,
        deadline=0.4,            # interactivity bound
    )
    sc.run(20.0)
    rx = list(sc.b.protocol.sessions.values())
    late = rx[0].stats.late_arrivals if rx else 0
    return {
        "delivered": float(sc.tracker.count),
        "late_arrivals": float(late),
        "jitter": sc.tracker.jitter,
        "mean_latency": sc.tracker.mean_latency,
        "deadline_miss_rate": sc.tracker.deadline_miss_rate(),
    }


def test_ablation_playout_depth(benchmark):
    depths = [0.0, 0.04, 0.12, 0.3, 0.6]

    def run():
        return {d: run_depth(d) for d in depths}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"playout_s": d, **v} for d, v in results.items()]
    record(
        benchmark,
        render_table(
            rows,
            ["playout_s", "delivered", "late_arrivals", "jitter",
             "mean_latency", "deadline_miss_rate"],
            title="Ablation — playout depth for voice over a jittery WAN",
        ),
    )
    # no buffer: raw network jitter reaches the application
    # deep buffer: jitter absorbed, at the price of added latency
    assert results[0.3]["jitter"] < results[0.0]["jitter"] / 3
    assert results[0.3]["mean_latency"] > results[0.0]["mean_latency"]
    # late arrivals shrink monotonically-ish with depth
    assert results[0.3]["late_arrivals"] < results[0.04]["late_arrivals"]
    # but an over-deep buffer blows the interactivity deadline
    assert results[0.6]["deadline_miss_rate"] > results[0.12]["deadline_miss_rate"]
