"""Bytes-plane fast path: generated executor per-send latency (Issue 9).

The generated executor renders one specialized send closure per
``SessionConfig`` — stage bodies inlined, charge scalars folded, no
per-stage loop — and installs it only when the session's shape lets it
skip the interpreted fallback.  This benchmark proves three things on
the §2.1(B) teleconference configuration (the richest SCS that runs the
fast path: tracked + retransmit + Internet-checksum trailer):

* **engagement** — every timed send must take the generated closure
  (``executor.fast_sends == sends``); without this the latency numbers
  would silently measure the fallback.
* **latency** — p50 wall time per ``session.send()`` must beat the
  compiled pipeline by >= 1.5x, p99 by at least no-worse-than +10%.
* **identity** — delivered count/bytes, final sim clock, PDUs sent,
  retransmissions, and both hosts' retired instruction counters must be
  bit-identical across executors.  Codegen is a wall-clock optimisation,
  never a behaviour change.
"""

import time

from repro.host.nic import Host
from repro.mantts.acd import ACD
from repro.mantts.monitor import NetworkState
from repro.mantts.transform import specify_scs
from repro.mantts.tsc import APP_PROFILES
from repro.netsim.profiles import ethernet_10, linear_path
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.tko.executor import DEFAULT_KIND, use_executor
from repro.tko.protocol import TKOProtocol
from repro.unites.obs.telemetry import TELEMETRY
from repro.unites.present import render_table

from benchmarks.conftest import record

ROUNDS = 3
MESSAGES = 400
SEND_INTERVAL = 0.02            #: 50 messages/s conference tick
MIN_P50_SPEEDUP = 1.50          #: generated p50 must beat compiled by 1.5x
MAX_P99_RATIO = 1.10            #: generated p99 no worse than compiled +10%


def _teleconference_config():
    """Derive the teleconference SCS through the real Stage I/II path."""
    profile = APP_PROFILES["tele-conferencing"]
    acd = ACD(
        participants=("B",),
        quantitative=profile.quantitative(),
        qualitative=profile.qualitative(),
    )
    lan = NetworkState("A", "B", True, 0.004, 0.004, 10e6, 1500, 1e-6, 0.0, 0.0, 3)
    return specify_scs(acd, lan).config


def _percentile(sorted_samples, q):
    idx = min(len(sorted_samples) - 1, max(0, round(q * (len(sorted_samples) - 1))))
    return sorted_samples[idx]


def _run(kind, cfg):
    """One conference run; (per-send samples, identity, fast_sends)."""
    use_executor(kind)
    try:
        sim = Simulator()
        rng = RngStreams(5)
        net = linear_path(sim, ethernet_10(), ("A", "B"), n_switches=2, rng=rng)
        ha = Host(sim, net, "A", mips=25.0)
        hb = Host(sim, net, "B", mips=25.0)
        pa = TKOProtocol(ha)
        pb = TKOProtocol(hb)
        delivered = []

        def on_session(s):
            s.on_deliver = lambda data, meta: delivered.append(len(data))

        pb.listen(7000, lambda pdu, frame: cfg, on_session)
        sender = pa.create_session(cfg, "B", 7000)
        sender.connect()
        sim.run(until=0.05)

        msg = b"\xa5" * 512
        perf = time.perf_counter
        samples = []
        t = 0.05
        for _ in range(MESSAGES):
            t += SEND_INTERVAL
            sim.run(until=t)
            t0 = perf()
            sender.send(msg)
            samples.append(perf() - t0)
        sim.run(until=t + 2.0)

        identity = (
            len(delivered),
            sum(delivered),
            sim.now,
            sender.stats.pdus_sent,
            sender.stats.retransmissions,
            ha.cpu.instructions_retired,
            hb.cpu.instructions_retired,
        )
        return samples, identity, getattr(sender.executor, "fast_sends", None)
    finally:
        use_executor(DEFAULT_KIND)


def test_generated_send_latency(benchmark):
    TELEMETRY.disable()
    TELEMETRY.reset()
    cfg = _teleconference_config()

    def measure():
        comp_rounds, gen_rounds = [], []
        identities = set()
        fast = None
        for _ in range(ROUNDS):
            samples, ident, _ = _run("compiled", cfg)
            comp_rounds.append(samples)
            identities.add(ident)
            samples, ident, fast = _run("generated", cfg)
            gen_rounds.append(samples)
            identities.add(ident)
        # each send's best case across rounds, then percentiles
        comp = sorted(min(col) for col in zip(*comp_rounds))
        gen = sorted(min(col) for col in zip(*gen_rounds))
        return comp, gen, identities, fast

    comp, gen, identities, fast = benchmark.pedantic(measure, rounds=1, iterations=1)
    comp_p50, comp_p99 = _percentile(comp, 0.50), _percentile(comp, 0.99)
    gen_p50, gen_p99 = _percentile(gen, 0.50), _percentile(gen, 0.99)
    speedup = comp_p50 / gen_p50
    p99_ratio = gen_p99 / comp_p99
    rows = [
        {"executor": "compiled pipeline", "p50_us": comp_p50 * 1e6,
         "p99_us": comp_p99 * 1e6, "speedup": 1.0},
        {"executor": "generated closure", "p50_us": gen_p50 * 1e6,
         "p99_us": gen_p99 * 1e6, "speedup": speedup},
    ]
    record(
        benchmark,
        render_table(
            rows, ["executor", "p50_us", "p99_us", "speedup"],
            title=f"bytes-plane send latency — teleconference, {MESSAGES} "
                  f"sends, min of {ROUNDS} ABAB rounds",
        ),
        ratio=1.0 / speedup,
    )
    assert fast == MESSAGES, (
        f"generated fast path engaged on only {fast}/{MESSAGES} sends — "
        f"the latency comparison would be measuring the fallback"
    )
    assert len(identities) == 1, (
        f"executors diverged in simulated results: {identities}"
    )
    assert speedup >= MIN_P50_SPEEDUP, (
        f"generated p50 speedup {speedup:.2f}x below the "
        f"{MIN_P50_SPEEDUP}x bar"
    )
    assert p99_ratio <= MAX_P99_RATIO, (
        f"generated p99 is {p99_ratio:.2f}x compiled (bound {MAX_P99_RATIO}x)"
    )
