"""Grand tour — every Table 1 application over two environments.

The paper's whole pitch in one matrix: all nine application rows, each
opened through MANTTS (Stage I → II → III with default TSC policies) on a
clean 10 Mb/s LAN and on a congestion-prone 1.5 Mb/s WAN.  For every cell
the table reports the application-perceived quality — delivery fraction,
mean latency, deadline misses against the row's own latency bound.

Shape assertions (the system must serve the diversity it claims to):

* on the LAN, every row delivers ≥ 90% of its traffic within tolerance;
* delay-sensitive rows meet their deadlines on the LAN;
* elastic rows (file transfer) complete on both networks;
* raw full-motion video — 4 Mb/s of traffic onto a 1.5 Mb/s WAN — is the
  one legitimate casualty, and it degrades rather than wedges.
"""

from repro.core.scenario import PointToPointScenario
from repro.mantts.acd import ACD
from repro.mantts.tsc import APP_PROFILES
from repro.netsim.profiles import ethernet_10, wan_internet
from repro.sweep import ScenarioSpec, SweepRunner
from repro.unites.present import render_table

from benchmarks.conftest import record

#: per-row workload generator and its parameters
WORKLOADS = {
    "voice-conversation": ("voice", {"frame_bytes": 160, "frame_interval": 0.02}),
    "tele-conferencing": ("voice", {"frame_bytes": 512, "frame_interval": 0.02}),
    "full-motion-video-compressed": ("video-vbr", {"fps": 24, "mean_frame_bytes": 5000}),
    "full-motion-video-raw": ("video-cbr", {"fps": 30, "frame_bytes": 16000}),
    "manufacturing-control": ("control", {"scan_interval": 0.02, "update_bytes": 256}),
    "file-transfer": ("bulk", {"total_bytes": 1_000_000, "chunk_bytes": 8192}),
    "telnet": ("telnet", {"rate_per_s": 4.0}),
    "oltp": ("rpc", {"request_bytes": 128}),
    "remote-file-service": ("rpc", {"request_bytes": 512}),
}

ENVIRONMENTS = {
    "lan": dict(profile=ethernet_10()),
    "wan": dict(profile=wan_internet(), bg_bps=0.7e6),
}

DURATION = 12.0


def run_cell(app: str, env: str):
    profile = APP_PROFILES[app]
    kind, kw = WORKLOADS[app]
    quant = profile.quantitative()
    deadline = quant.max_latency if quant.max_latency else None
    acd = ACD(
        participants=("B",),
        quantitative=quant,
        qualitative=profile.qualitative(),
        service_port=7000,
    )
    sc = PointToPointScenario(
        acd=acd,
        workload=kind,
        workload_kw=dict(kw),
        duration=DURATION,
        seed=97,
        deadline=deadline,
        default_policies=True,
        **ENVIRONMENTS[env],
    )
    sc.run(DURATION)
    m = sc.collect()
    if kind == "rpc":
        sent = max(1.0, m.get("rpc_completed", 0.0) + m.get("rpc_timeouts", 0.0))
        delivered_frac = m.get("rpc_completed", 0.0) / sent
        latency = m.get("rpc_mean_response")
    else:
        delivered_frac = (
            m["msgs_delivered"] / m["msgs_sent"] if m["msgs_sent"] else 0.0
        )
        latency = m["mean_latency"]
    return {
        "delivered_frac": delivered_frac,
        "mean_latency": latency,
        "deadline_miss": m.get("deadline_miss_rate"),
        "failed": sc.failed or "-",
    }


#: the campaign grid — every Table 1 application × both environments;
#: ``seed_param=None`` because ``run_cell`` keeps its historical seed=97,
#: so cell results are bit-identical to the pre-sweep serial loop
GRAND_TOUR = ScenarioSpec(
    name="grand-tour",
    cell=run_cell,
    grid={"app": list(WORKLOADS), "env": list(ENVIRONMENTS)},
    seed_param=None,
)


def test_grand_tour(benchmark):
    def run():
        sweep = SweepRunner(GRAND_TOUR, workers=None).run()
        return {
            (c.params["app"], c.params["env"]): c.metrics for c in sweep
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"application": app, "network": env, **v}
        for (app, env), v in results.items()
    ]
    record(
        benchmark,
        render_table(
            rows,
            ["application", "network", "delivered_frac", "mean_latency",
             "deadline_miss", "failed"],
            title="Grand tour — Table 1's nine applications × two environments",
        ),
    )

    for app in WORKLOADS:
        cell = results[(app, "lan")]
        # the LAN serves every row within its loss tolerance
        tolerance = APP_PROFILES[app].quantitative().loss_tolerance
        assert cell["delivered_frac"] >= 0.9 - tolerance, (app, cell)
        # and delay-sensitive rows meet their deadline there
        if cell["deadline_miss"] is not None:
            assert cell["deadline_miss"] <= 0.05, (app, cell)

    # elastic transfer keeps moving on the congested WAN — the residual is
    # queued behind the ~0.8 Mb/s residual capacity, not lost (1 MB into
    # 12 s × 0.8 Mb/s is throughput-limited by construction)
    assert results[("file-transfer", "wan")]["delivered_frac"] >= 0.75
    # raw video over the WAN is the legitimate casualty: degraded, not hung
    raw_wan = results[("full-motion-video-raw", "wan")]
    assert raw_wan["delivered_frac"] < 0.6
