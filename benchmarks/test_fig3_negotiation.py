"""Figure 3 — connection configuration: implicit vs explicit negotiation.

§4.1.1: implicit negotiation piggybacks configuration on the first DATA
PDU, "useful for latency-sensitive applications that must not incur any
QoS negotiation delay" and "for sessions running over long-delay links";
explicit negotiation exchanges parameters over the out-of-band channel
before data flows.

Measured as time-to-first-delivered-byte from a cold open, on a LAN and
on a satellite path.  Shape: implicit < explicit everywhere, and the
absolute gap grows by orders of magnitude on the long-delay link (it is
a whole number of extra round trips).
"""

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.profiles import NetworkProfile, ethernet_10, linear_path, satellite
from repro.unites.present import render_table

from benchmarks.conftest import record


def first_byte_time(profile: NetworkProfile, preference: str) -> float:
    sysm = AdaptiveSystem(seed=0)
    sysm.attach_network(linear_path(sysm.sim, profile, ("A", "B"), rng=sysm.rng))
    a, b = sysm.node("A"), sysm.node("B")
    arrivals = []
    b.mantts.register_service(
        7000, on_deliver=lambda d, m: arrivals.append(sysm.now)
    )
    acd = ACD(
        participants=("B",),
        quantitative=QuantitativeQoS(duration=600),
        qualitative=QualitativeQoS(connection_preference=preference),
    )
    sent = {}

    def on_up(conn):
        sent["t"] = sysm.now
        conn.send(b"first byte payload")

    conn = a.mantts.open(acd, on_connected=on_up)
    if conn.session is not None and conn.session.connected and "t" not in sent:
        on_up(conn)
    sysm.run(until=30.0)
    assert arrivals, f"no delivery under {preference} on {profile.name}"
    return arrivals[0]


def run_experiment():
    rows = []
    results = {}
    for profile in (ethernet_10(), satellite()):
        for preference in ("implicit", "explicit"):
            t = first_byte_time(profile, preference)
            results[(profile.name, preference)] = t
            rows.append(
                {"network": profile.name, "negotiation": preference,
                 "first_byte_s": t}
            )
    return rows, results


def test_fig3_negotiation_latency(benchmark):
    rows, r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record(
        benchmark,
        render_table(rows, ["network", "negotiation", "first_byte_s"],
                     title="Figure 3 — setup-to-first-byte by negotiation style"),
    )
    # implicit beats explicit on both networks
    assert r[("ethernet-10", "implicit")] < r[("ethernet-10", "explicit")]
    assert r[("satellite", "implicit")] < r[("satellite", "explicit")]
    # on the satellite path the explicit penalty is whole extra RTTs
    sat_gap = r[("satellite", "explicit")] - r[("satellite", "implicit")]
    lan_gap = r[("ethernet-10", "explicit")] - r[("ethernet-10", "implicit")]
    assert sat_gap > 1.0      # ≥ 2 × 0.27 s one-way, twice (signalling + SYN)
    assert sat_gap > 50 * lan_gap
