"""E7 — control-format efficiency: checksum placement and header layout.

§2.2(C) footnote 2: "neither TCP nor TP4 place their checksum in the
packet trailer, thereby precluding simultaneous transmission and checksum
computation ... many fields in the TCP header are not word-aligned and
the option formats are not fixed-sized, which increases header parsing
overhead."

Two effects, measured separately:

* **placement → latency.**  On a single-CPU host the checksum cycles are
  spent either way, so pipelined *throughput* is unchanged; what trailer
  placement buys is the critical path — transmission (and upward delivery)
  no longer wait for the sum.  Measured as request latency of a
  stop-and-wait transfer of large PDUs on a slow host, where each PDU's
  critical path is end-to-end exposed.
* **header layout → per-PDU instructions and throughput.**  Legacy
  unaligned/variable headers cost ``header_parse_unaligned`` on every
  received PDU and widen every header; measured on a CPU-bound pipelined
  bulk transfer.
"""

from repro.core.scenario import PointToPointScenario
from repro.netsim.profiles import fddi_100
from repro.tko.config import SessionConfig
from repro.unites.present import render_table

from benchmarks.conftest import record


def run_latency_case(placement: str):
    """Stop-and-wait large messages on a slow host: critical path exposed."""
    sc = PointToPointScenario(
        config=SessionConfig(
            checksum_placement=placement,
            transmission="stop-and-wait",
            window=1,
            segment_size=4096,
        ),
        workload="bulk",
        workload_kw={"total_bytes": 200_000, "chunk_bytes": 4096},
        profile=fddi_100().scaled(ber=0.0),
        duration=8.0,
        seed=31,
        mips=5.0,
    )
    sc.run(8.0)
    return {
        "mean_latency": sc.tracker.mean_latency,
        "delivered": float(sc.tracker.count),
    }


def run_layout_case(compact: bool):
    """Pipelined CPU-bound bulk: parse cost and header bytes visible."""
    sc = PointToPointScenario(
        config=SessionConfig(compact_headers=compact, window=12),
        workload="bulk",
        workload_kw={"total_bytes": 3_000_000, "chunk_bytes": 16_384},
        profile=fddi_100().scaled(ber=0.0),
        duration=5.0,
        seed=31,
        mips=20.0,
    )
    sc.run(5.0)
    return {
        "goodput_bps": sc.tracker.goodput_bps(),
        "rx_instr_per_pdu": sc.b.host.cpu.instructions_retired
        / max(1, sc.b.host.frames_received),
    }


def test_e7_checksum_placement_latency(benchmark):
    def run():
        return {
            "trailer": run_latency_case("trailer"),
            "header": run_latency_case("header"),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"placement": k, **v} for k, v in r.items()]
    record(
        benchmark,
        render_table(rows, ["placement", "mean_latency", "delivered"],
                     title="E7a — checksum placement: stop-and-wait latency"),
    )
    assert r["trailer"]["delivered"] == r["header"]["delivered"]
    # trailer keeps the per-byte sum off the critical path at both ends
    assert r["trailer"]["mean_latency"] < r["header"]["mean_latency"] * 0.9


def test_e7_header_layout_cost(benchmark):
    def run():
        return {
            "compact-aligned": run_layout_case(True),
            "legacy-unaligned": run_layout_case(False),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"layout": k, **v} for k, v in r.items()]
    record(
        benchmark,
        render_table(rows, ["layout", "goodput_bps", "rx_instr_per_pdu"],
                     title="E7b — header layout: parse cost on a CPU-bound path"),
    )
    compact, legacy = r["compact-aligned"], r["legacy-unaligned"]
    assert legacy["rx_instr_per_pdu"] > compact["rx_instr_per_pdu"]
    assert compact["goodput_bps"] > legacy["goodput_bps"]
