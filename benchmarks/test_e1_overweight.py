"""E1 — the *overweight* configuration (§2.2(B)).

"An example of an overweight configuration is one where a protocol (such
as TP4) provides retransmission support for loss-tolerant, constrained
latency applications such as interactive voice.  In this case the extra
mechanisms required to provide retransmission simply slow down the
protocol processing."

Workload: two-way-quality voice (150 ms latency deadline) over a lossy
copper LAN.  Variants: the TP4-like heavyweight vs the MANTTS-derived
lightweight voice configuration (no retransmission, unordered, playout).

Shape: the lightweight config misses far fewer deadlines and shows lower
p95 latency; the overweight config loses *nothing* but delivers late —
exactly the wrong trade for voice.
"""

from repro.baselines import tp4_like_config
from repro.core.scenario import run_point_to_point
from repro.mantts.acd import ACD
from repro.mantts.monitor import NetworkState
from repro.mantts.transform import specify_scs
from repro.mantts.tsc import APP_PROFILES
from repro.netsim.profiles import ethernet_10
from repro.unites.experiment import Experiment

from benchmarks.conftest import record

DEADLINE = 0.15
LOSSY_LAN = ethernet_10().scaled(ber=2e-5)


def voice_config():
    p = APP_PROFILES["voice-conversation"]
    acd = ACD(participants=("B",), quantitative=p.quantitative(),
              qualitative=p.qualitative())
    state = NetworkState(
        src="A", dst="B", reachable=True, rtt=0.004, base_rtt=0.004,
        bottleneck_bps=10e6, mtu=1500, ber=2e-5, congestion=0.0,
        loss_rate=0.0, hops=3,
    )
    return specify_scs(acd, state).config


def run_variant(cfg):
    return run_point_to_point(
        config=cfg,
        workload="voice",
        profile=LOSSY_LAN,
        duration=20.0,
        deadline=DEADLINE,
        seed=11,
    )


def test_e1_overweight_tp4_for_voice(benchmark):
    exp = Experiment("E1 — TP4-style heavyweight vs tailored voice config")
    exp.add_variant("tp4-overweight",
                    lambda: run_variant(tp4_like_config(binding="dynamic")),
                    notes="retransmits everything, ordered")
    exp.add_variant("adaptive-voice", lambda: run_variant(voice_config()),
                    notes="no retransmission, playout buffer")
    benchmark.pedantic(exp.run, rounds=1, iterations=1)
    record(benchmark, exp.table(
        ["msgs_sent", "msgs_delivered", "mean_latency", "p95_latency",
         "jitter", "deadline_miss_rate", "retransmissions"]
    ))

    tp4 = exp.result("tp4-overweight").metrics
    voice = exp.result("adaptive-voice").metrics
    # the heavyweight *does* deliver more frames ... late
    assert tp4["retransmissions"] > 0
    assert voice["retransmissions"] == 0
    # the voice-quality verdict: tailored config misses far fewer deadlines
    assert voice["deadline_miss_rate"] < tp4["deadline_miss_rate"] / 2
    assert voice["p95_latency"] < tp4["p95_latency"]
