"""E3 — the congestion policy: go-back-N ↔ selective repeat (§3(C)).

"Transport system policies may switch a session's retransmission
mechanism from go-back-n to selective repeat in the event that ... the
congestion in the network increases beyond a specified threshold
(resulting in greater packet loss due to queue overflows at intermediate
switching nodes).  Note that it may be feasible to restore the go-back-n
scheme when congestion subsides, thereby reducing buffering requirements
at the receiver(s)."

Workload: a long bulk stream over a congestion-prone WAN whose middle
phase is congested by cross traffic.  Variants: static GBN, static SR,
and the adaptive session running the paper's TSA policy.

Shape: under congestion SR retransmits far less than GBN (it resends only
the lost PDUs); the adaptive variant runs GBN in the clean phases (small
receiver buffering) yet matches SR's retransmission economy in the
congested phase, and its segue log shows the switch *and* the restore.
"""

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.policies import congestion_switch_gbn_to_sr
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.profiles import wan_internet, linear_path
from repro.netsim.traffic import BackgroundLoad
from repro.unites.present import render_table

from benchmarks.conftest import record

DURATION = 35.0
CONGESTION_ON, CONGESTION_OFF = 5.0, 15.0


def run_variant(tsa=(), force_recovery=None, seed=13):
    sysm = AdaptiveSystem(seed=seed)
    sysm.attach_network(
        linear_path(sysm.sim, wan_internet(), ("A", "B"), rng=sysm.rng)
    )
    a, b = sysm.node("A"), sysm.node("B")
    got = []
    b.mantts.register_service(7000, on_deliver=lambda d, m: got.append(len(d)))
    acd = ACD(
        participants=("B",),
        quantitative=QuantitativeQoS(
            avg_throughput_bps=500e3, duration=600, message_size=2048
        ),
        qualitative=QualitativeQoS(),
        tsa=tuple(tsa),
    )
    conn = a.mantts.open(acd)
    sysm.run(until=0.5)
    if force_recovery is not None:
        overrides = {"recovery": force_recovery}
        if force_recovery == "sr":
            overrides["ack"] = "selective"
        conn.apply_overrides(overrides, reason="static variant setup")
    from repro.apps.bulk import BulkSource

    src = BulkSource(sysm.sim, conn, total_bytes=1_500_000, chunk_bytes=2048)
    src.start(0.5)
    load = BackgroundLoad(sysm.network, "s1", "s2", rate_bps=2.0e6)
    load.start(CONGESTION_ON)
    sysm.sim.schedule(CONGESTION_OFF, load.stop)
    sysm.run(until=DURATION)
    s = conn.session
    recoveries = [tag for _, tag in conn.reconfig_log]
    return {
        "delivered_bytes": float(sum(got)),
        "retransmissions": float(s.stats.retransmissions),
        "wire_bytes": float(s.stats.wire_bytes_sent),
        "final_recovery": conn.cfg.recovery,
        "switches": "; ".join(recoveries) or "-",
    }


def test_e3_congestion_recovery_switch(benchmark):
    def run():
        return {
            "static-gbn": run_variant(),
            "static-sr": run_variant(force_recovery="sr"),
            "adaptive": run_variant(
                tsa=congestion_switch_gbn_to_sr(high=0.6, low=0.05)
            ),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"variant": k, **v} for k, v in r.items()]
    record(
        benchmark,
        render_table(
            rows,
            ["variant", "delivered_bytes", "retransmissions", "wire_bytes",
             "final_recovery", "switches"],
            title="E3 — bulk over WAN with a congestion phase",
        ),
    )
    gbn, sr, ad = r["static-gbn"], r["static-sr"], r["adaptive"]
    # SR's economy under loss: far fewer retransmissions than GBN
    assert sr["retransmissions"] < gbn["retransmissions"] / 2
    # the adaptive session actually switched and then restored
    assert "gbn->sr" in ad["switches"]
    assert "sr->gbn" in ad["switches"]
    assert ad["final_recovery"] == "gbn"
    # and its retransmission bill lands well below static GBN's
    assert ad["retransmissions"] < gbn["retransmissions"]
