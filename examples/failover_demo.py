#!/usr/bin/env python
"""Failover under fault injection: cut the primary mid-stream, watch the
run-time adaptation loop recover — then replay it all in Perfetto.

A video session runs over the terrestrial path of a dual-homed topology.
At t=4 s the fault injector cuts the primary for ten seconds; routing
shifts onto the GEO satellite backup (~1.6 s RTT).  The MANTTS network
monitor sees the route change on its next sample and the
:class:`~repro.mantts.adaptation.AdaptationController` re-derives the
window and RTO for the new path — and again when the primary heals and
traffic swings back.  No frame is lost or duplicated across either swing.

The whole story is exported as Chrome ``trace_event`` JSON: load it at
https://ui.perfetto.dev to see the ``fault:inject`` / ``fault:clear``
instants, the ``adapt:failover`` decisions, and the per-frame ``link-tx``
spans migrating from the terrestrial links to the satellite links and
back, all on one sim-time axis.

Run:  python examples/failover_demo.py [out.json]
"""

import os
import sys
import tempfile

from repro import ACD, AdaptiveSystem, QualitativeQoS, QuantitativeQoS
from repro.netsim.faults import FaultInjector, FaultSchedule
from repro.netsim.profiles import dual_path, ethernet_10, satellite
from repro.unites.obs.exporters import write_chrome_trace
from repro.unites.obs.telemetry import TELEMETRY

CUT_AT = 4.0
HEAL_AT = 14.0
END_AT = 22.0
FPS = 24
FRAME_BYTES = 900


def main() -> None:
    # only trust argv when it names a JSON file — the test harness runs
    # examples with its own argv
    if len(sys.argv) > 1 and sys.argv[1].endswith(".json"):
        out_path = sys.argv[1]
    else:
        out_path = os.path.join(tempfile.gettempdir(), "failover_trace.json")

    system = AdaptiveSystem(seed=7)
    system.attach_network(
        dual_path(system.sim, ethernet_10(), satellite(), rng=system.rng)
    )
    system.enable_telemetry()
    studio = system.node("A")
    viewer = system.node("B")

    frames = []
    viewer.mantts.register_service(
        7000, on_deliver=lambda d, m: frames.append((system.now, bytes(d)))
    )

    acd = ACD(
        participants=("B",),
        quantitative=QuantitativeQoS(avg_throughput_bps=400e3, duration=600),
        qualitative=QualitativeQoS(),
        service_port=7000,
    )
    conn = studio.mantts.open(acd, adaptation=True)
    system.run(until=0.5)
    print(f"t=0.5s  established: {conn.cfg.describe()}")

    # a CBR video feed with sequence-stamped frames, so delivery order and
    # completeness are checkable byte-for-byte at the far end
    sent = []

    def send_frame(i: int) -> None:
        payload = b"f%05d" % i + b"\xa5" * (FRAME_BYTES - 6)
        sent.append(payload)
        conn.send(payload)

    for i in range(int((END_AT - 2.0 - 0.5) * FPS)):
        system.sim.schedule(0.5 + i / FPS, send_frame, i)

    FaultInjector(
        system.sim, system.network,
        FaultSchedule().link_flap(CUT_AT, "p1", "p2", duration=HEAL_AT - CUT_AT),
    ).arm()
    print(f"t={CUT_AT:.0f}s    !! primary p1-p2 cut for {HEAL_AT - CUT_AT:.0f}s "
          "— rerouting via satellite")

    system.run(until=END_AT)
    conn.close()
    system.run(until=END_AT + 8.0)

    print("adaptation decisions:")
    for t, action, detail in conn.adaptation.events:
        print(f"  t={t:6.2f}s  {action:<10} {detail}")

    failovers = [d for _, a, d in conn.adaptation.events if a == "failover"]
    assert any("q1" in d for d in failovers), "never failed over to the backup"
    assert any("p1" in d for d in failovers), "never swung back to the primary"

    # frame continuity across both swings: every frame, in order, exactly
    # once — the reliable session plus the controller's re-derivation must
    # hide the outage completely from the application
    payloads = [p for _, p in frames]
    assert payloads == sent, "frames lost, duplicated, or reordered"
    during = sum(1 for t, _ in frames if CUT_AT < t <= HEAL_AT)
    after = sum(1 for t, _ in frames if t > HEAL_AT)
    print(f"frames: {len(frames)}/{len(sent)} delivered, {during} via "
          f"satellite, {after} after the primary healed")
    assert during > 0, "no frames survived the outage window"

    n = write_chrome_trace(TELEMETRY, out_path)
    print(f"wrote {n} trace events -> {out_path}")
    print("open it at https://ui.perfetto.dev or chrome://tracing")


if __name__ == "__main__":
    try:
        main()
    finally:
        # leave the process-global handle pristine for whoever runs next
        # (the example-runner test executes every example in one process)
        TELEMETRY.disable()
        TELEMETRY.reset()
