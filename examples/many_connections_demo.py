#!/usr/bin/env python
"""Many connections, one host: the per-host ConnectionManager at work.

One ADAPTIVE host serves a mixed population of voice, video, bulk-transfer
and telnet sessions against a single responder — the connection-scale
workload behind ``BENCH_scale.json``, shrunk to a few hundred sessions so
it runs in seconds.  While the churn runs, UNITES samples the initiator's
ConnectionManager every half second, so the pending/open population and
the admission ledger are visible as ordinary host-scope metrics.

Run:  python examples/many_connections_demo.py
"""

from repro import ChurnScenario
from repro.unites.present import render_table

N = 400
HORIZON = 20.0


def main() -> None:
    scenario = ChurnScenario(n_connections=N, mode="coalesced", seed=11)
    system = scenario.system
    manager = scenario.a.mantts.manager
    system.unites.watch_manager(manager, interval=0.5)

    # narrate the population as the waves open, hold, and churn
    timeline = []

    def checkpoint() -> None:
        snap = manager.snapshot()
        timeline.append({
            "t": round(system.now, 1),
            "pending": int(snap["conn_pending"]),
            "open": int(snap["conn_open"]),
            "opened_total": int(snap["conn_opened_total"]),
            "closed_total": int(snap["conn_closed_total"]),
        })
        if system.now + 2.0 <= HORIZON:
            system.sim.schedule(2.0, checkpoint)

    system.sim.schedule(0.5, checkpoint)
    scenario.run(until=HORIZON)

    print(render_table(timeline,
                       ["t", "pending", "open", "opened_total", "closed_total"],
                       title=f"== {N} mixed-TSC connections on host A =="))

    metrics = scenario.collect()
    print(f"\nestablished {metrics['established']} "
          f"(peak {metrics['peak_concurrent']} concurrent), "
          f"failed {metrics['failed']}, reopened {metrics['reopened']}, "
          f"{metrics['delivered']} messages delivered")
    print(f"delivery digest {metrics['delivery_digest'][:16]}…  "
          f"(same seed => same digest, in either manager mode)")
    print(f"Stage II cache hits: {int(metrics['scs_cache_hits'])} — "
          f"identical (ACD, path, TSC) transforms served from the manager")

    # the repository view: the same population, as UNITES samples
    series = system.unites.repository.series("conn_open", "host", "A")
    peak_sampled = max(v for _, v in series)
    print(f"UNITES sampled conn_open {len(series)} times; "
          f"peak sampled population {int(peak_sampled)}")

    assert metrics["failed"] == 0
    assert metrics["peak_concurrent"] == N
    assert peak_sampled > 0


if __name__ == "__main__":
    main()
