#!/usr/bin/env python
"""Quickstart: open an adaptive connection and move some data.

This is the smallest complete ADAPTIVE program: build a simulated
network, stand up two hosts (each gets the full Figure 1 stack — MANTTS +
TKO + UNITES), describe what the application needs in an ACD (Table 2),
and let MANTTS derive, negotiate, and synthesize the session.

Run:  python examples/quickstart.py
"""

from repro import ACD, AdaptiveSystem, QualitativeQoS, QuantitativeQoS
from repro.netsim.profiles import ethernet_10, linear_path

def main() -> None:
    # 1. a world: two hosts separated by two switches of 10 Mbps Ethernet
    system = AdaptiveSystem(seed=1)
    system.attach_network(
        linear_path(system.sim, ethernet_10(), ("alice", "bob"), rng=system.rng)
    )
    alice = system.node("alice")
    bob = system.node("bob")

    # 2. bob registers a service: MANTTS will accept connections on port
    #    7000 and hand every delivered message to this callback
    received = []

    def on_message(data: bytes, meta: dict) -> None:
        received.append(data)
        print(f"  bob got {len(data):5d} bytes  "
              f"(msg {meta['msg_id']}, latency {meta['latency'] * 1e3:.2f} ms)")

    bob.mantts.register_service(7000, on_deliver=on_message)

    # 3. alice describes her application: a reliable, ordered transfer of
    #    8 KiB records at ~2 Mbit/s for about a minute (Table 2's ACD)
    acd = ACD(
        participants=("bob",),
        quantitative=QuantitativeQoS(
            avg_throughput_bps=2e6, duration=60.0, message_size=8192
        ),
        qualitative=QualitativeQoS(ordered=True, duplicate_sensitive=True),
        service_port=7000,
    )

    # 4. open: Stage I picks the service class, Stage II derives the
    #    mechanisms from QoS × network state, negotiation runs over the
    #    out-of-band channel, Stage III synthesizes the session
    conn = alice.mantts.open(
        acd, on_connected=lambda c: print("connected:", c.cfg.describe())
    )
    system.run(until=0.5)

    print(f"stage I selected: {conn.tsc.value}")
    for reason in conn.scs.rationale:
        print(f"  stage II: {reason}")

    # 5. send application messages; the transport fragments, paces,
    #    checksums, retransmits, and reassembles as configured
    for i in range(5):
        conn.send(bytes([i]) * 8192)
    system.run(until=2.0)

    print(f"delivered {len(received)}/5 messages")
    stats = conn.session.stats
    print(f"sender sent {stats.pdus_sent} PDUs, "
          f"{stats.retransmissions} retransmissions, "
          f"setup took {stats.connection_setup_time * 1e3:.1f} ms")

    conn.close()
    system.run(until=3.0)
    assert len(received) == 5


if __name__ == "__main__":
    main()
