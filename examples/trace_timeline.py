#!/usr/bin/env python
"""Trace timeline: the teleconference scenario under full UNITES-X telemetry.

Runs the §2.1(B) conference (one speaker multicasting voice frames to a
dynamic group) with the global telemetry handle enabled, then exports the
collected spans as Chrome ``trace_event`` JSON.  Load the output in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` to see, on one
sim-time axis:

* ``mantts``    — connection-setup / negotiation / admission / instantiate
* ``tko``       — per-message ``session-send`` spans
* ``mechanism`` — ``mechanism:<name>.<op>`` invocations on the data path
* ``netsim``    — per-frame ``link-tx`` time-on-wire spans
* ``kernel``    — per-handler dispatch profile (wall-clock widths)

Run:  python examples/trace_timeline.py [out.json]
"""

import os
import sys
import tempfile

from repro import ACD, APP_PROFILES, AdaptiveSystem
from repro.apps.voice import VoiceSource
from repro.netsim.profiles import fddi_100, star
from repro.unites.obs.exporters import write_chrome_trace
from repro.unites.obs.telemetry import TELEMETRY


def main() -> None:
    # only trust argv when it names a JSON file — the test harness runs
    # examples with its own argv
    if len(sys.argv) > 1 and sys.argv[1].endswith(".json"):
        out_path = sys.argv[1]
    else:
        out_path = os.path.join(tempfile.gettempdir(), "adaptive_trace.json")

    members = ["bob", "carol", "dave"]
    system = AdaptiveSystem(seed=5)
    system.attach_network(
        star(system.sim, fddi_100(), ["alice", *members], rng=system.rng)
    )
    alice = system.node("alice")
    system.enable_telemetry()

    received = {m: 0 for m in members}
    for m in members:
        node = system.node(m)
        node.mantts.register_service(
            7000,
            on_deliver=(lambda name: lambda d, meta: received.__setitem__(
                name, received[name] + 1))(m),
        )

    profile = APP_PROFILES["tele-conferencing"]
    acd = ACD(
        participants=("bob", "carol"),
        quantitative=profile.quantitative(),
        qualitative=profile.qualitative(),
        service_port=7000,
    )
    conn = alice.mantts.open(acd)
    system.run(until=0.5)

    speaker = VoiceSource(
        system.sim, conn, rng=system.rng.stream("speaker"),
        frame_bytes=480, frame_interval=0.02,
    )
    speaker.start(0.5)
    system.run(until=2.0)
    conn.add_member("dave")
    system.run(until=3.0)
    speaker.stop()
    conn.close()
    system.run(until=3.5)

    print(TELEMETRY.summary())
    cats = TELEMETRY.categories()
    layers = {"kernel", "netsim", "mantts", "tko", "mechanism"}
    present = layers & set(cats)
    assert len(present) >= 4, f"expected spans from >=4 layers, got {sorted(cats)}"

    n = write_chrome_trace(TELEMETRY, out_path)
    print(f"wrote {n} trace events -> {out_path}")
    print("open it at https://ui.perfetto.dev or chrome://tracing")


if __name__ == "__main__":
    try:
        main()
    finally:
        # leave the process-global handle pristine for whoever runs next
        # (the example-runner test executes every example in one process)
        TELEMETRY.disable()
        TELEMETRY.reset()
