#!/usr/bin/env python
"""UNITES in anger: instrument a mixed workload, print the system report.

A small site runs three concurrent sessions through one ADAPTIVE host —
a voice call, a file transfer, and an OLTP client — each instrumented via
its ACD's Transport Measurement Component (Table 2).  At the end, UNITES
renders the per-connection / per-host / systemwide report of Figure 6 and
a per-mechanism instruction breakdown for one session (the whitebox
"instructions per protocol function" metric of §4.3).

Run:  python examples/unites_report.py
"""

from repro import ACD, APP_PROFILES, TMC, AdaptiveSystem
from repro.apps.bulk import BulkSource
from repro.apps.rpc import EchoResponder, RequestResponseClient
from repro.apps.voice import VoiceSource
from repro.netsim.profiles import ethernet_10, star
from repro.tko.message import TKOMessage
from repro.tko.pdu import PduType
from repro.unites.present import render_table

METRICS = ("throughput_bps", "latency", "jitter", "retransmissions",
           "loss_rate", "cpu_utilization")


def open_app(node, app, participants, port, tmc=True):
    p = APP_PROFILES[app]
    acd = ACD(
        participants=participants,
        quantitative=p.quantitative(),
        qualitative=p.qualitative(),
        service_port=port,
        tmc=TMC(metrics=METRICS, sampling_interval=0.25) if tmc else None,
    )
    return node.mantts.open(acd)


def main() -> None:
    system = AdaptiveSystem(seed=11)
    system.attach_network(
        star(system.sim, ethernet_10(), ["hub-host", "peer1", "peer2", "peer3"],
             rng=system.rng)
    )
    hub = system.node("hub-host")
    peers = {n: system.node(n) for n in ("peer1", "peer2", "peer3")}

    # three services, one per peer
    peers["peer1"].mantts.register_service(7001, on_deliver=lambda d, m: None)
    peers["peer2"].mantts.register_service(7002, on_deliver=lambda d, m: None)
    responder = EchoResponder(response_bytes=256)
    peers["peer3"].mantts.register_service(7003, on_session=responder.attach)

    voice = open_app(hub, "voice-conversation", ("peer1",), 7001)
    transfer = open_app(hub, "file-transfer", ("peer2",), 7002)
    oltp = open_app(hub, "oltp", ("peer3",), 7003)
    system.unites.watch_host(hub.host, interval=0.25)
    system.run(until=0.5)

    VoiceSource(system.sim, voice, rng=system.rng.stream("v")).start(0.5)
    BulkSource(system.sim, transfer, total_bytes=2_000_000, chunk_bytes=8192).start(0.5)
    rpc = RequestResponseClient(system.sim, oltp, rng=system.rng.stream("r"),
                                think_time=0.05)
    oltp.on_deliver = rpc.on_deliver
    rpc.start(0.6)

    system.run(until=8.0)

    print(system.unites.report())

    # whitebox: per-mechanism instruction breakdown for the voice session
    s = voice.session
    pdu = s.make_pdu(PduType.DATA)
    pdu.message = TKOMessage(b"\x55" * 160)
    rows = [
        {"protocol function": k, "instructions/PDU": v}
        for k, v in sorted(
            s.cost_model.breakdown(pdu).items(), key=lambda kv: -kv[1]
        )
    ]
    print()
    print(render_table(rows, ["protocol function", "instructions/PDU"],
                       title=f"== instruction breakdown: voice PDU "
                             f"({s.cfg.describe()}) =="))

    assert rpc.completed > 10
    for conn in (voice, transfer, oltp):
        assert system.unites.repository.series("throughput_bps", "session", conn.ref)
    print("\nall three sessions instrumented; "
          f"repository holds {len(system.unites.repository)} samples")


if __name__ == "__main__":
    main()
