"""A checksummed transfer across a deliberately hostile path.

Runs the chaos harness (``repro.transport.chaos``): two full ADAPTIVE
systems over a cross-connected loopback fabric, both directions impaired
with 20% loss + 10% duplication + 10% reordering, 10×2KiB payloads
pushed through MANTTS + TKO.  Deterministic mode — a stepped clock and
``poll=0`` make the whole run a single-threaded replay, so the printed
impairment trace and its digest repeat exactly on every fresh run.

Run it:

    PYTHONPATH=src python examples/lossy_transfer_demo.py

This is the runnable transcript referenced by ``docs/robustness.md``.
"""

from __future__ import annotations

import time

from repro.transport.chaos import run_impaired_transfer
from repro.transport.impair import ImpairmentSpec


def main() -> int:
    spec = ImpairmentSpec(seed=1, loss=0.2, dup=0.1, reorder=0.1)
    print("impairing both directions:", spec)
    w0 = time.perf_counter()
    res = run_impaired_transfer(spec=spec, seed=1)
    wall = time.perf_counter() - w0

    trace = res["trace"]
    split = trace.index("--")
    drops = sum(1 for ln in trace if ln.endswith("drop"))
    dups = sum(1 for ln in trace if "dup" in ln)
    reord = sum(1 for ln in trace if "reorder" in ln)

    print(f"\nconnected: {res['connected']}   "
          f"delivered: {res['delivered']}/{res['sent']}   "
          f"digests match: {res['digest_ok']}")
    print(f"datagrams: {len(trace) - 1} impairment decisions "
          f"({drops} dropped, {dups} duplicated, {reord} reordered), "
          f"{res['frames_sent']} frames actually dispatched")
    print(f"pooled PDUs: {res['pool_delta'][0]} acquired, "
          f"{res['pool_delta'][1]} recycled "
          f"({'balanced' if res['pool_delta'][0] == res['pool_delta'][1] else 'LEAK'})")
    print(f"timeline: {res['timeline_s']:.2f} protocol seconds "
          f"in {wall:.2f} wall seconds")

    print("\nimpairment trace, initiator side (first 10 decisions):")
    for line in trace[:min(10, split)]:
        print("  " + line)
    print("  ...")
    print(f"\ntrace digest (identical on every same-seed run): "
          f"{res['trace_digest']}")
    return 0 if res["digest_ok"] else 1


if __name__ == "__main__":
    rc = main()
    if rc:  # exit silently on success: the harness re-runs examples in-process
        import sys

        sys.exit(rc)
