#!/usr/bin/env python
"""VBR video over a congested WAN: rate backoff + application callback.

Demonstrates two of §4.1.2's reconfiguration actions on one session:

* **adjust the SCS** — when path congestion crosses a threshold, the
  policy engine increases the rate-control inter-PDU gap (halves the
  pacing rate) without touching the service class;
* **application-specific** — the app is *notified* and reacts "using an
  application-specific compression or component coding scheme": here it
  halves its frame size (switches to a coarser quantiser), exactly the
  call-back pattern the paper describes.

Run:  python examples/video_wan_adaptation.py
"""

from repro import ACD, AdaptiveSystem, QualitativeQoS, QuantitativeQoS
from repro.apps.video import VbrVideoSource
from repro.mantts.policies import congestion_rate_backoff
from repro.mantts.acd import TSARule
from repro.netsim.profiles import linear_path, wan_internet
from repro.netsim.traffic import BackgroundLoad


def main() -> None:
    system = AdaptiveSystem(seed=9)
    system.attach_network(
        linear_path(system.sim, wan_internet(), ("studio", "viewer"), rng=system.rng)
    )
    studio = system.node("studio")
    viewer = system.node("viewer")

    frames = []
    viewer.mantts.register_service(
        7000, on_deliver=lambda d, m: frames.append((system.now, len(d)))
    )

    acd = ACD(
        participants=("viewer",),
        quantitative=QuantitativeQoS(
            avg_throughput_bps=700e3, peak_throughput_bps=1.2e6,
            loss_tolerance=0.02, max_jitter=0.05, duration=600,
            message_size=3000,
        ),
        qualitative=QualitativeQoS(isochronous=True, ordered=False,
                                   duplicate_sensitive=False),
        tsa=(
            congestion_rate_backoff(threshold=0.6, factor=0.5)
            + (TSARule("congestion", ">", 0.6, "notify", tag="congested"),)
        ),
        service_port=7000,
    )

    source_holder = {}

    def on_notify(tag: str, state) -> None:
        src = source_holder.get("src")
        if tag == "congested" and src is not None and src.mean_frame_bytes > 1000:
            src.mean_frame_bytes //= 2
            print(f"t={system.now:5.2f}s  app callback '{tag}': switching to "
                  f"coarser coding, mean frame -> {src.mean_frame_bytes} B")

    conn = studio.mantts.open(acd, on_notify=on_notify)
    system.run(until=0.3)
    print(f"session: {conn.cfg.describe()}")
    rate0 = conn.cfg.rate_pps

    src = VbrVideoSource(
        system.sim, conn, rng=system.rng.stream("encoder"),
        fps=24, mean_frame_bytes=3000,
    )
    source_holder["src"] = src
    src.start(0.3)

    # clean phase
    system.run(until=5.0)
    n_clean = len(frames)
    print(f"t=5s   clean phase: {n_clean} frames delivered, "
          f"pacing {conn.cfg.rate_pps:.0f} PDU/s")

    # congestion arrives
    load = BackgroundLoad(system.network, "s1", "s2", rate_bps=1.3e6)
    load.start(5.0)
    system.run(until=15.0)
    n_congested = len(frames) - n_clean
    print(f"t=15s  congested phase: {n_congested} frames, "
          f"pacing now {conn.cfg.rate_pps:.0f} PDU/s "
          f"({len(conn.reconfig_log)} reconfigurations)")
    for t, why in conn.reconfig_log:
        print(f"         t={t:5.2f}s  {why}")

    load.stop()
    system.run(until=20.0)
    src.stop()
    conn.close()
    system.run(until=22.0)

    assert conn.cfg.rate_pps < rate0, "rate control never backed off"
    assert src.mean_frame_bytes < 3000, "the app callback never fired"
    print(f"total frames delivered: {len(frames)}")


if __name__ == "__main__":
    main()
