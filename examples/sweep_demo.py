"""Multi-core scenario sweep — adaptive vs static across channel quality.

Runs the demo grid from :mod:`repro.sweep.demo` (three transport variants
× three bit-error rates) twice: serially, then sharded across all cores
with :class:`repro.sweep.SweepRunner`.  Prints the campaign table, the
serial/parallel wall-clock comparison, and verifies the determinism
contract — the parallel results are bit-identical to the serial ones.

Run with:  PYTHONPATH=src python examples/sweep_demo.py
"""

import os

from repro.sweep import ScenarioSpec, SweepRunner
from repro.sweep.demo import VARIANTS, adaptive_vs_static_cell
from repro.unites.present import render_table
from repro.unites.repository import MetricRepository

SPEC = ScenarioSpec(
    name="adaptive-vs-static-ber",
    cell=adaptive_vs_static_cell,
    grid={"variant": list(VARIANTS), "ber": [0.0, 4e-6, 1.2e-5]},
    fixed={"duration": 6.0},
    base_seed=11,
)


def main() -> None:
    cores = os.cpu_count() or 1
    print(f"grid: {len(SPEC)} cells "
          f"({' × '.join(f'{len(v)} {k}' for k, v in SPEC.grid.items())}), "
          f"{cores} cores\n")

    serial = SweepRunner(SPEC, workers=1).run()
    repo = MetricRepository()
    parallel = SweepRunner(SPEC, workers=None, repository=repo).run()

    assert parallel.metrics_only() == serial.metrics_only(), \
        "parallel sweep must be bit-identical to serial"

    print(render_table(
        parallel.rows(),
        ["variant", "ber", "delivered_frac", "mean_latency", "wire_bytes",
         "reconfigs"],
        title="Adaptive vs static across channel BER (identical serial/parallel)",
    ))

    speedup = serial.wall_s / parallel.wall_s if parallel.wall_s else 1.0
    print(f"\nserial   : {serial.wall_s:6.2f} s  (1 worker)")
    print(f"parallel : {parallel.wall_s:6.2f} s  ({parallel.workers} workers)")
    print(f"speedup  : {speedup:5.2f}×")
    print(f"repository: {len(repo)} sweep-scope samples, "
          f"{len(repo.entities('sweep'))} cells")

    # the campaign's story in one line per regime
    clean = parallel.find(variant="adaptive", ber=0.0)
    lossy = parallel.find(variant="adaptive", ber=1.2e-5)
    print(f"\nadaptive on the clean channel: {clean.metrics['wire_bytes']:.0f} "
          f"wire bytes (lean retransmission mode)")
    print(f"adaptive on the lossy channel: {lossy.metrics['reconfigs']:.0f} "
          f"reconfiguration(s) → FEC, latency "
          f"{lossy.metrics['mean_latency'] * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
