#!/usr/bin/env python
"""File-transfer shootout: baselines vs the MANTTS-derived configuration.

Runs the same 1 MB transfer over three environments (clean LAN, lossy
copper LAN, congested WAN) under three transport configurations — the
TCP-like and TP4-like monolithic baselines and whatever MANTTS Stage II
derives for each environment — and prints the UNITES comparison tables.

This is the "experimentation-based protocol development methodology" of
§5 in miniature: same workload, controlled environment, one configuration
axis varied.

Run:  python examples/file_transfer_shootout.py
"""

from repro import APP_PROFILES, ACD
from repro.baselines import tcp_like_config, tp4_like_config
from repro.core.scenario import run_point_to_point
from repro.netsim.profiles import ethernet_10, wan_internet
from repro.unites.experiment import Experiment

ENVIRONMENTS = {
    "clean-lan": dict(profile=ethernet_10().scaled(ber=0.0)),
    "lossy-lan": dict(profile=ethernet_10().scaled(ber=3e-6)),
    "congested-wan": dict(profile=wan_internet(), bg_bps=1.1e6),
}

WORKLOAD = dict(
    workload="bulk",
    workload_kw={"total_bytes": 1_000_000, "chunk_bytes": 8192},
    duration=30.0,
    seed=77,
)


def adaptive_acd() -> ACD:
    p = APP_PROFILES["file-transfer"]
    return ACD(
        participants=("B",),
        quantitative=p.quantitative(),
        qualitative=p.qualitative(),
        service_port=7000,
    )


def main() -> None:
    for env_name, env_kw in ENVIRONMENTS.items():
        exp = Experiment(f"1 MB file transfer — {env_name}")
        exp.add_variant(
            "tcp-like",
            lambda kw=env_kw: run_point_to_point(
                config=tcp_like_config(binding="dynamic"), **kw, **WORKLOAD
            ),
        )
        exp.add_variant(
            "tp4-like",
            lambda kw=env_kw: run_point_to_point(
                config=tp4_like_config(binding="dynamic"), **kw, **WORKLOAD
            ),
        )
        exp.add_variant(
            "adaptive",
            lambda kw=env_kw: run_point_to_point(
                acd=adaptive_acd(), default_policies=True, **kw, **WORKLOAD
            ),
        )
        exp.run()
        print()
        print(exp.table(
            ["msgs_delivered", "goodput_bps", "retransmissions",
             "wire_bytes", "setup_time", "cpu_a"]
        ))
        best = exp.winner("goodput_bps")
        print(f"--> fastest on {env_name}: {best}")


if __name__ == "__main__":
    main()
