#!/usr/bin/env python
"""Route failover to a satellite link: the retransmission→FEC policy.

The paper's second policy example (§3(C)): "switch from
retransmission-based to forward error correction-based when the
round-trip delay time increases beyond some threshold (e.g., when a route
switches from a terrestrial link to a satellite link)".

A telemetry stream runs over a dual-homed path.  At t=6 s the terrestrial
route fails; routing shifts onto a GEO satellite path (~270 ms per hop).
The MANTTS network monitor observes the RTT jump, the TSA rule fires, and
the live session segues from go-back-N to Reed-Solomon FEC without losing
data.

Run:  python examples/satellite_failover.py
"""

from repro import ACD, AdaptiveSystem, QualitativeQoS, QuantitativeQoS
from repro.apps.video import CbrVideoSource
from repro.mantts.policies import rtt_switch_to_fec
from repro.netsim.profiles import dual_path, ethernet_10, satellite


def main() -> None:
    system = AdaptiveSystem(seed=4)
    system.attach_network(
        dual_path(
            system.sim, ethernet_10(), satellite().scaled(ber=3e-6), rng=system.rng
        )
    )
    ground = system.node("A")
    station = system.node("B")

    latencies = []
    station.mantts.register_service(
        7000, on_deliver=lambda d, m: latencies.append((system.now, m["latency"]))
    )

    acd = ACD(
        participants=("B",),
        quantitative=QuantitativeQoS(
            avg_throughput_bps=96e3, duration=600, loss_tolerance=0.02,
            message_size=512,
        ),
        qualitative=QualitativeQoS(ordered=False, duplicate_sensitive=False),
        tsa=rtt_switch_to_fec(threshold=0.2),
        service_port=7000,
    )
    conn = ground.mantts.open(acd)
    system.run(until=0.3)
    print(f"initial config: {conn.cfg.describe()}")

    telemetry = CbrVideoSource(system.sim, conn, fps=24, frame_bytes=512)
    telemetry.start(0.5)

    system.run(until=6.0)
    pre = [l for _, l in latencies]
    print(f"t=6s   terrestrial: {len(pre)} frames, "
          f"mean latency {sum(pre) / len(pre) * 1e3:.1f} ms")

    print("t=6s   !! terrestrial path fails — rerouting via satellite")
    system.network.fail_link("p1", "p2")
    system.run(until=12.0)
    print(f"t=12s  recovery mechanism is now: {conn.cfg.recovery} "
          f"(reconfigurations: {[w for _, w in conn.reconfig_log]})")

    system.run(until=25.0)
    post = [l for t, l in latencies if t > 10.0]
    print(f"t=25s  satellite: {len(post)} frames since t=10, "
          f"mean latency {sum(post) / len(post) * 1e3:.0f} ms, "
          f"max {max(post) * 1e3:.0f} ms")
    print(f"       FEC repairs performed at receiver: "
          f"{sum(1 for t, l in latencies if t > 10)} delivered, "
          f"parity sent: {conn.session.stats.parity_sent}")

    telemetry.stop()
    conn.close()
    system.run(until=28.0)

    assert conn.cfg.recovery == "fec-rs", "policy never switched to FEC"
    assert max(post) < 2.0, "a frame waited a retransmission RTT — FEC should prevent that"
    print("policy verified: RTT jump → FEC, no frame waited a satellite "
          "retransmission round trip")


if __name__ == "__main__":
    main()
