#!/usr/bin/env python
"""Tele-conference: reliable multicast with dynamic membership.

The scenario the paper's introduction motivates (§2.1(B)): "a
tele-conferencing application may switch between unicast and multicast as
participants join and leave the conversation".  One speaker multicasts
conference audio/video frames to a group; a participant joins late, and
another leaves mid-call.  Membership changes flow through MANTTS
signalling: joiners enter the delivery tree and get a session; the
sender's per-member ACK aggregation re-evaluates when someone leaves.

Run:  python examples/teleconference.py
"""

from repro import ACD, APP_PROFILES, AdaptiveSystem
from repro.apps.voice import VoiceSource
from repro.netsim.profiles import fddi_100, star


def main() -> None:
    members = ["bob", "carol", "dave", "erin"]
    system = AdaptiveSystem(seed=5)
    system.attach_network(
        star(system.sim, fddi_100(), ["alice", *members], rng=system.rng)
    )
    alice = system.node("alice")

    received = {m: 0 for m in members}
    for m in members:
        node = system.node(m)
        node.mantts.register_service(
            7000,
            on_deliver=(lambda name: lambda d, meta: received.__setitem__(
                name, received[name] + 1))(m),
        )

    # the conference starts with bob and carol
    profile = APP_PROFILES["tele-conferencing"]
    acd = ACD(
        participants=("bob", "carol"),
        quantitative=profile.quantitative(),
        qualitative=profile.qualitative(),
        service_port=7000,
    )
    conn = alice.mantts.open(acd)
    system.run(until=0.5)
    print(f"conference up: {conn.tsc.value}")
    print(f"  config: {conn.cfg.describe()}")
    print(f"  members: {sorted(conn.members)}")

    speaker = VoiceSource(
        system.sim, conn, rng=system.rng.stream("speaker"),
        frame_bytes=480, frame_interval=0.02,
    )
    speaker.start(0.5)
    system.run(until=4.0)
    print(f"t=4s  frames: {received}")

    # dave joins the call
    conn.add_member("dave")
    system.run(until=5.0)
    print(f"t=5s  dave joined -> members {sorted(conn.members)}")
    system.run(until=8.0)
    print(f"t=8s  frames: {received}")

    # carol hangs up
    conn.remove_member("carol")
    carol_final = received["carol"]
    system.run(until=12.0)
    print(f"t=12s carol left  -> members {sorted(conn.members)}")
    print(f"      frames: {received}")

    speaker.stop()
    conn.close()
    system.run(until=14.0)

    assert received["bob"] > 0 and received["dave"] > 0
    assert received["carol"] == carol_final, "carol kept receiving after leaving"
    assert received["erin"] == 0, "erin was never in the conference"
    print("membership semantics verified: joiners receive, leavers stop, "
          "outsiders never see a frame")


if __name__ == "__main__":
    main()
