#!/usr/bin/env python
"""QoS conformance auditing end to end: contract → violation → black box.

A media stream negotiates 400 kbps over a healthy path, then the
bottleneck link collapses to a tenth of its bandwidth mid-transfer.  The
audit plane (UNITES-X §4.3) has captured the negotiated contract at
Stage III instantiation and measures the *delivered* service in sliding
sim-time windows, so the collapse surfaces as typed throughput
violations, a falling conformance score, and — on the first breach — a
self-contained flight-recorder dump that this script then analyzes the
way an operator would after the fact:

    python -m repro.unites.obs.flight <dump.json>

Run:  python examples/qos_audit_demo.py
"""

import glob
import json
import os
import tempfile

from repro import ACD, AdaptiveSystem, QualitativeQoS, QuantitativeQoS
from repro.netsim.faults import FaultInjector, FaultSchedule
from repro.netsim.profiles import ethernet_10, linear_path
from repro.unites.obs import AUDIT, TELEMETRY
from repro.unites.obs.flight import analyze, load


def main() -> None:
    dump_dir = tempfile.mkdtemp(prefix="qos-audit-")
    system = AdaptiveSystem(seed=17)
    system.attach_network(
        linear_path(system.sim, ethernet_10(), ("studio", "viewer"), rng=system.rng)
    )
    studio = system.node("studio")
    viewer = system.node("viewer")

    frames = []
    viewer.mantts.register_service(
        7000, on_deliver=lambda d, m: frames.append(len(d))
    )

    system.enable_telemetry()
    # two warm-up windows: the ramp between contract capture and the
    # first full-rate window must not count against the contract
    system.enable_audit(window=0.25, warmup_windows=2, dump_dir=dump_dir)

    acd = ACD(
        participants=("viewer",),
        quantitative=QuantitativeQoS(
            avg_throughput_bps=400e3, max_latency=0.5, duration=600,
        ),
        qualitative=QualitativeQoS(),
        service_port=7000,
    )
    conn = studio.mantts.open(acd)
    system.run(until=0.3)
    assert conn._established, "connection failed to establish"
    auditor = AUDIT.auditors[conn.ref]
    print(f"contract captured for {conn.ref}: {auditor.contract.describe()}")

    # the bottleneck collapses to 10% for two seconds, mid-stream
    schedule = FaultSchedule().bandwidth_collapse(
        at=system.now + 1.0, a="s1", b="s2", factor=0.1, duration=2.0
    )
    FaultInjector(system.sim, system.network, schedule).arm()

    def scoreline() -> str:
        card = auditor.scorecard()
        return (
            f"t={system.now:5.2f}s  delivered={len(frames):3d} msgs  "
            f"score={card['overall_score']:.3f}  "
            f"violations={card['violations']}"
        )

    # offer a steady 400 kbps (1250 B every 25 ms), watching the scorecard
    print("\nlive conformance scorecard:")
    for step in range(16):
        for _ in range(10):
            conn.send(b"v" * 1250)
            system.run(until=system.now + 0.025)
        print(scoreline())
    system.run(until=system.now + 1.0)
    AUDIT.finalize()

    card = auditor.scorecard()
    assert frames, "nothing was delivered"
    assert any(v.kind == "throughput" for v in auditor.violations), (
        "the bandwidth collapse should have breached the throughput contract"
    )
    assert card["overall_score"] < 1.0
    print(f"\nfinal score {card['overall_score']:.3f}; per-dimension verdicts:")
    for kind, d in card["dimensions"].items():
        print(f"  {kind:<10} {d['violations']}/{d['windows']} windows violated")

    dumps = sorted(glob.glob(os.path.join(dump_dir, "flight-*.json")))
    assert dumps, "a violation dump should have been written"
    print(f"\nblack-box dump written to {dumps[0]}")
    print("analyzer output (python -m repro.unites.obs.flight):\n")
    dump = load(dumps[0])
    assert dump["trigger"]["kind"] == "violation"
    print(analyze(dump, tail=8))

    # the dump round-trips as plain JSON: self-contained by construction
    json.dumps(dump)


if __name__ == "__main__":
    try:
        main()
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()
        AUDIT.disable()
        AUDIT.reset()
