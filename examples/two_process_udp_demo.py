"""Two OS processes, one ADAPTIVE connection, real UDP datagrams.

The tentpole demo for the pluggable transport substrate: the *same*
MANTTS + TKO stack that runs deterministic simulations is constructed
over :class:`repro.transport.UdpBackend` in two separate Python
processes —

* the **responder** binds an ephemeral UDP port, registers a service,
  enables telemetry, and serves live ``/metrics`` over HTTP;
* the **initiator** negotiates a connection (MANTTS signalling as real
  datagrams through the versioned wire codec), then TKO's compiled
  pipeline transfers a checksummed payload;
* run with no arguments, the script orchestrates both roles itself,
  scrapes ``transport_*`` counters from the responder's ``/metrics``
  *while the transfer is in flight*, and verifies the two independently
  computed SHA-256 digests match — zero loss on loopback.

Every wait is hard-bounded, so a wedged socket fails loudly instead of
hanging.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import subprocess
import sys
import time
import urllib.request

SERVICE_PORT = 7000
N_MESSAGES = 10
MESSAGE_BYTES = 2048
#: wall-clock cap per phase inside each role (seconds)
PHASE_CAP = 30.0
#: orchestrator's hard cap per child process (seconds)
CHILD_CAP = 120.0


def payload(i: int) -> bytes:
    """Deterministic message ``i``: index tag + pseudo-random body."""
    tag = f"{i:04d}:".encode()
    body = b""
    while len(body) < MESSAGE_BYTES:
        body += hashlib.sha256(tag + len(body).to_bytes(4, "big")).digest()
    return tag + body[: MESSAGE_BYTES - len(tag)]


def digest(chunks) -> str:
    h = hashlib.sha256()
    for c in sorted(chunks):
        h.update(c)
    return h.hexdigest()


def emit(**event) -> None:
    print(json.dumps(event), flush=True)


# ----------------------------------------------------------------------
# roles
# ----------------------------------------------------------------------
def run_responder() -> int:
    from repro.core.system import AdaptiveSystem
    from repro.transport import UdpBackend

    backend = UdpBackend("B", bind=("127.0.0.1", 0), seed=2)
    system = AdaptiveSystem(seed=2, transport=backend)
    b = system.node("B", mips=400.0)
    system.enable_telemetry()
    server = system.serve_telemetry()  # port 0 -> ephemeral, reported below

    got = []
    b.mantts.register_service(SERVICE_PORT, on_deliver=lambda d, m: got.append(d))
    emit(event="ready", udp_port=backend.port, telemetry=server.url)

    system.run(until=system.clock.now() + PHASE_CAP,
               stop_when=lambda: len(got) == N_MESSAGES)
    # let final ACK/FIN exchanges drain before reporting
    system.run(until=system.clock.now() + 0.5)
    emit(event="result", role="responder", messages=len(got),
         digest=digest(got), frames_delivered=backend.network.frames_delivered,
         frames_sent=backend.network.frames_sent,
         send_errors=backend.network.send_errors)
    server.stop()
    backend.close()
    return 0 if len(got) == N_MESSAGES else 1


def run_initiator(peer_port: int) -> int:
    from repro.core.system import AdaptiveSystem
    from repro.mantts.acd import ACD
    from repro.transport import UdpBackend

    backend = UdpBackend("A", bind=("127.0.0.1", 0), seed=1,
                         peers={"B": ("127.0.0.1", peer_port)})
    system = AdaptiveSystem(seed=1, transport=backend)
    a = system.node("A", mips=400.0)

    outcome = {}
    conn = a.mantts.open(
        ACD(participants=("B",), service_port=SERVICE_PORT),
        on_connected=lambda c: outcome.setdefault("connected", True),
        on_failed=lambda reason: outcome.setdefault("failed", reason),
    )
    system.run(until=system.clock.now() + PHASE_CAP,
               stop_when=lambda: bool(outcome))
    if not outcome.get("connected"):
        emit(event="result", role="initiator",
             error=outcome.get("failed", "negotiation timed out"))
        backend.close()
        return 1

    sent = [payload(i) for i in range(N_MESSAGES)]
    for p in sent:
        conn.send(p)
    # drive the wall-paced world until every PDU is sent and ACKed
    session = conn.session
    system.run(until=system.clock.now() + PHASE_CAP,
               stop_when=lambda: not session._send_queue
               and not session.state.outstanding)
    conn.close()
    system.run(until=system.clock.now() + 0.5)
    emit(event="result", role="initiator", messages=len(sent),
         digest=digest(sent), frames_sent=backend.network.frames_sent,
         send_errors=backend.network.send_errors)
    backend.close()
    return 0


# ----------------------------------------------------------------------
# orchestration (the default mode — also what CI's transport-smoke runs)
# ----------------------------------------------------------------------
def _read_event(proc: subprocess.Popen, want: str, cap: float) -> dict:
    """Next matching JSON event line from a child, with a hard deadline."""
    deadline = time.monotonic() + cap
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"child exited before '{want}' event "
                               f"(rc={proc.poll()})")
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue  # stray diagnostics are not protocol
        if event.get("event") == want:
            return event
    raise RuntimeError(f"timed out waiting for '{want}' event")


#: the counters the live scrape must witness; a scrape that lands in the
#: first milliseconds of the run may see only one of them registered, so
#: the poll keeps going until *all* are present (this was a CI flake)
_REQUIRED_COUNTERS = (
    "transport_frames_sent_total",
    "transport_frames_delivered_total",
)


def _scrape_transport_metrics(url: str, cap: float = 15.0) -> str:
    """Poll /metrics until every required counter appears (the live proof)."""
    deadline = time.monotonic() + cap
    last = ""
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(f"{url}/metrics", timeout=2.0) as rsp:
                last = rsp.read().decode()
        except OSError:
            last = ""
        if all(name in last for name in _REQUIRED_COUNTERS):
            return last
        time.sleep(0.1)
    raise RuntimeError(
        "never saw all required transport_* counters on live /metrics; "
        f"last scrape had: {sorted(ln.split()[0] for ln in last.splitlines() if ln.startswith('transport_'))}")


def orchestrate() -> int:
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p)

    def spawn(*args: str) -> subprocess.Popen:
        return subprocess.Popen(
            [sys.executable, __file__, *args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)

    responder = spawn("--role", "responder")
    try:
        ready = _read_event(responder, "ready", PHASE_CAP)
        initiator = spawn("--role", "initiator",
                          "--peer-port", str(ready["udp_port"]))
        try:
            # scrape the live telemetry plane WHILE datagrams are flying
            metrics = _scrape_transport_metrics(ready["telemetry"])
            r_init = _read_event(initiator, "result", CHILD_CAP)
            r_resp = _read_event(responder, "result", CHILD_CAP)
            initiator.wait(timeout=PHASE_CAP)
            responder.wait(timeout=PHASE_CAP)
        finally:
            if initiator.poll() is None:
                initiator.kill()
    finally:
        if responder.poll() is None:
            responder.kill()

    assert "error" not in r_init, f"initiator failed: {r_init}"
    assert r_resp["messages"] == N_MESSAGES, f"lost messages: {r_resp}"
    assert r_init["digest"] == r_resp["digest"], "payload digests differ"
    assert r_init["send_errors"] == 0 and r_resp["send_errors"] == 0
    live_counters = sorted(
        line.split("{")[0].split(" ")[0]
        for line in metrics.splitlines()
        if line.startswith("transport_"))
    print(f"zero-loss transfer: {N_MESSAGES} messages x {MESSAGE_BYTES}B, "
          f"digest {r_init['digest'][:16]}… matches on both sides")
    print(f"responder delivered {r_resp['frames_delivered']} frames, "
          f"sent {r_resp['frames_sent']} (ACKs/FIN-ACKs)")
    print("live /metrics served during the run:",
          ", ".join(dict.fromkeys(live_counters)))
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--role", choices=("responder", "initiator"))
    ap.add_argument("--peer-port", type=int)
    # parse_known_args: the example harness runs this under pytest's argv
    args, _ = ap.parse_known_args(argv)
    if args.role == "responder":
        return run_responder()
    if args.role == "initiator":
        if args.peer_port is None:
            ap.error("--peer-port is required for the initiator role")
        return run_initiator(args.peer_port)
    return orchestrate()


if __name__ == "__main__":
    rc = main()
    if rc:  # exit silently on success: the harness re-runs examples in-process
        sys.exit(rc)
