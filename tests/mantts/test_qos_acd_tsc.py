"""Tests for QoS types, the ACD (Table 2), and TSC selection (Table 1)."""

import pytest

from repro.mantts.acd import ACD, TMC, TSARule
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS, Sensitivity
from repro.mantts.tsc import APP_PROFILES, TSC, select_tsc


class TestQuantitativeQoS:
    def test_defaults_valid(self):
        QuantitativeQoS()

    def test_burst_factor(self):
        q = QuantitativeQoS(avg_throughput_bps=1e6, peak_throughput_bps=5e6)
        assert q.burst_factor == pytest.approx(5.0)

    def test_peak_defaults_to_avg(self):
        q = QuantitativeQoS(avg_throughput_bps=1e6)
        assert q.peak_bps == 1e6

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantitativeQoS(avg_throughput_bps=0)
        with pytest.raises(ValueError):
            QuantitativeQoS(loss_tolerance=1.5)
        with pytest.raises(ValueError):
            QuantitativeQoS(duration=0)


class TestQualitativeQoS:
    def test_connection_preference_validated(self):
        with pytest.raises(ValueError):
            QualitativeQoS(connection_preference="sometimes")
        QualitativeQoS(connection_preference="implicit")


class TestSensitivity:
    def test_parse_aliases(self):
        assert Sensitivity.parse("mod") == Sensitivity.MODERATE
        assert Sensitivity.parse("very-high") == Sensitivity.VERY_HIGH
        assert Sensitivity.parse("N/D") == Sensitivity.NONE

    def test_ordering(self):
        assert Sensitivity.LOW < Sensitivity.HIGH


class TestACD:
    def test_requires_participant(self):
        with pytest.raises(ValueError):
            ACD(participants=())

    def test_multicast_detection(self):
        assert ACD(participants=("B", "C")).is_multicast
        assert not ACD(participants=("B",)).is_multicast
        # the qualitative flag records capability, not a present demand
        assert not ACD(
            participants=("B",), qualitative=QualitativeQoS(multicast=True)
        ).is_multicast

    def test_tsa_rule_validation(self):
        with pytest.raises(ValueError):
            TSARule("congestion", "!=", 0.5, "adjust-scs")
        with pytest.raises(ValueError):
            TSARule("congestion", ">", 0.5, "explode")

    def test_tsa_rule_holds(self):
        r = TSARule("x", ">=", 1.0, "notify")
        assert r.holds(1.0) and r.holds(2.0) and not r.holds(0.5)

    def test_tmc_validation(self):
        with pytest.raises(ValueError):
            TMC(sampling_interval=0)
        with pytest.raises(ValueError):
            TMC(presentation="hologram")


class TestTable1:
    """Table 1 transcription checks — the paper's rows, verbatim."""

    def test_all_nine_rows_present(self):
        assert len(APP_PROFILES) == 9

    def test_row_classes(self):
        S = {  # app -> TSC, from Table 1's leftmost column
            "voice-conversation": TSC.INTERACTIVE_ISOCHRONOUS,
            "tele-conferencing": TSC.INTERACTIVE_ISOCHRONOUS,
            "full-motion-video-compressed": TSC.DISTRIBUTIONAL_ISOCHRONOUS,
            "full-motion-video-raw": TSC.DISTRIBUTIONAL_ISOCHRONOUS,
            "manufacturing-control": TSC.REALTIME_NONISOCHRONOUS,
            "file-transfer": TSC.NONREALTIME_NONISOCHRONOUS,
            "telnet": TSC.NONREALTIME_NONISOCHRONOUS,
            "oltp": TSC.NONREALTIME_NONISOCHRONOUS,
            "remote-file-service": TSC.NONREALTIME_NONISOCHRONOUS,
        }
        for app, tsc in S.items():
            assert APP_PROFILES[app].tsc is tsc

    def test_voice_row_ratings(self):
        v = APP_PROFILES["voice-conversation"]
        assert v.loss_tolerance == Sensitivity.HIGH
        assert v.delay_sensitivity == Sensitivity.HIGH
        assert v.order_sensitivity == Sensitivity.LOW
        assert not v.priority_delivery and not v.multicast

    def test_raw_video_highest_throughput(self):
        ranks = {a: p.avg_throughput for a, p in APP_PROFILES.items()}
        assert max(ranks, key=ranks.get) == "full-motion-video-raw"

    def test_file_transfer_zero_loss_tolerance(self):
        assert APP_PROFILES["file-transfer"].loss_tolerance == Sensitivity.NONE

    def test_profiles_render_numeric_qos(self):
        for p in APP_PROFILES.values():
            quant, qual = p.quantitative(), p.qualitative()
            assert quant.avg_throughput_bps > 0
            assert isinstance(qual.multicast, bool)

    def test_isochronous_flags(self):
        assert APP_PROFILES["voice-conversation"].qualitative().isochronous
        assert not APP_PROFILES["file-transfer"].qualitative().isochronous


class TestStage1Selection:
    def _acd(self, profile_name, **overrides):
        p = APP_PROFILES[profile_name]
        return ACD(
            participants=("B",),
            quantitative=p.quantitative(),
            qualitative=p.qualitative(),
            **overrides,
        )

    @pytest.mark.parametrize("app", list(APP_PROFILES))
    def test_every_table1_row_maps_to_its_class(self, app):
        assert select_tsc(self._acd(app)) is APP_PROFILES[app].tsc

    def test_explicit_tsc_short_circuits(self):
        acd = self._acd("voice-conversation",
                        explicit_tsc="non-real-time-non-isochronous")
        assert select_tsc(acd) is TSC.NONREALTIME_NONISOCHRONOUS

    def test_unknown_explicit_tsc_rejected(self):
        acd = self._acd("voice-conversation", explicit_tsc="warp-speed")
        with pytest.raises(ValueError):
            select_tsc(acd)
