"""Tests for the network monitor, policy engine, and resource manager."""

import pytest

from repro.host.nic import Host
from repro.mantts.acd import TSARule
from repro.mantts.monitor import NetworkMonitor, NetworkState
from repro.mantts.policies import (
    PolicyEngine,
    buffer_pressure_notify,
    congestion_rate_backoff,
    congestion_switch_gbn_to_sr,
    rtt_switch_to_fec,
)
from repro.mantts.resources import ResourceManager
from repro.netsim.profiles import dual_path, ethernet_10, linear_path, satellite, wan_internet
from repro.netsim.traffic import BackgroundLoad


class TestNetworkMonitor:
    def test_snapshot_static_facts(self, sim):
        net = linear_path(sim, ethernet_10(), ("A", "B"))
        m = NetworkMonitor(sim, net, "A", "B")
        s = m.snapshot()
        assert s.reachable
        assert s.mtu == 1500
        assert s.bottleneck_bps == 10e6
        assert s.hops == 3

    def test_unreachable_state(self, sim):
        net = linear_path(sim, ethernet_10(), ("A", "B"))
        net.add_node("iso")
        m = NetworkMonitor(sim, net, "A", "iso")
        s = m.snapshot()
        assert not s.reachable
        assert s.loss_rate == 1.0

    def test_congestion_rises_under_load(self, sim):
        net = linear_path(sim, wan_internet(), ("A", "B"))
        m = NetworkMonitor(sim, net, "A", "B", interval=0.05)
        m.start()
        load = BackgroundLoad(net, "A", "B", rate_bps=3e6)
        load.start()
        sim.run(until=2.0)
        s = m.snapshot()
        assert s.congestion > 0.3
        assert s.loss_rate > 0.0
        assert s.rtt > s.base_rtt
        m.stop()

    def test_rtt_jumps_after_failover(self, sim):
        net = dual_path(sim, ethernet_10(), satellite())
        m = NetworkMonitor(sim, net, "A", "B")
        before = m.snapshot().rtt
        net.fail_link("p1", "p2")
        after = m.snapshot().rtt
        assert after > before * 50

    def test_callbacks_invoked_per_tick(self, sim):
        net = linear_path(sim, ethernet_10(), ("A", "B"))
        m = NetworkMonitor(sim, net, "A", "B", interval=0.1)
        seen = []
        m.on_sample.append(seen.append)
        m.start()
        sim.run(until=0.55)
        assert len(seen) == 5
        m.stop()

    def test_bandwidth_delay_pdus(self):
        s = NetworkState("A", "B", True, rtt=0.1, base_rtt=0.1,
                         bottleneck_bps=8e6, mtu=1500, ber=0.0,
                         congestion=0.0, loss_rate=0.0, hops=1)
        assert s.bandwidth_delay_pdus == int(8e6 * 0.1 / (8 * 1024))

    def test_bad_interval(self, sim):
        net = linear_path(sim, ethernet_10(), ("A", "B"))
        with pytest.raises(ValueError):
            NetworkMonitor(sim, net, "A", "B", interval=0)


class FakeConnection:
    """Minimal AdaptiveConnection stand-in for engine unit tests."""

    def __init__(self, sim, host):
        self.sim = sim
        self.host = host
        self.session = None
        self.cfg = None
        self.applied = []
        self.tsc_changes = []
        self.notifications = []

    @property
    def now(self):
        return self.sim.now

    def apply_overrides(self, overrides, reason=""):
        self.applied.append((overrides, reason))
        return True

    def change_tsc(self, tag, state):
        self.tsc_changes.append(tag)
        return True

    def notify_app(self, tag, state):
        self.notifications.append(tag)


def make_state(**kw):
    base = dict(src="A", dst="B", reachable=True, rtt=0.01, base_rtt=0.01,
                bottleneck_bps=1e7, mtu=1500, ber=0.0, congestion=0.0,
                loss_rate=0.0, hops=2)
    base.update(kw)
    return NetworkState(**base)


@pytest.fixture
def engine(sim):
    from repro.netsim.profiles import linear_path

    net = linear_path(sim, ethernet_10(), ("A", "B"))
    host = Host(sim, net, "A")
    conn = FakeConnection(sim, host)
    return PolicyEngine(conn), conn, sim


class TestPolicyEngine:
    def test_edge_trigger_fires_once(self, engine):
        eng, conn, sim = engine
        eng.add_rules(congestion_switch_gbn_to_sr(high=0.5))
        for _ in range(5):
            eng.evaluate(make_state(congestion=0.8))
        assert len(conn.applied) == 1
        assert conn.applied[0][0]["recovery"] == "sr"

    def test_hysteresis_restores(self, engine):
        eng, conn, sim = engine
        eng.add_rules(congestion_switch_gbn_to_sr(high=0.5, low=0.1))
        eng.evaluate(make_state(congestion=0.8))
        sim.schedule(2.0, lambda: None)
        sim.run()
        eng.evaluate(make_state(congestion=0.05))
        assert len(conn.applied) == 2
        assert conn.applied[1][0]["recovery"] == "gbn"

    def test_refire_guard(self, engine):
        eng, conn, sim = engine
        to_sr, _to_gbn = congestion_switch_gbn_to_sr(high=0.5)
        eng.add_rule(to_sr)
        eng.evaluate(make_state(congestion=0.8))
        eng.evaluate(make_state(congestion=0.1))   # condition falls
        eng.evaluate(make_state(congestion=0.8))   # rises again immediately
        assert len(conn.applied) == 1  # guarded: < REFIRE_GUARD seconds

    def test_rtt_to_fec_rule_complete_overrides(self, engine):
        eng, conn, sim = engine

        class Cfg:
            rate_pps = None
            segment_size = 1024

        conn.cfg = Cfg()
        eng.add_rules(rtt_switch_to_fec(threshold=0.2))
        eng.evaluate(make_state(rtt=0.6))
        overrides = conn.applied[0][0]
        assert overrides["recovery"] == "fec-rs"
        assert overrides["ack"] == "none"
        assert overrides["transmission"] == "rate"
        assert overrides["rate_pps"] > 0

    def test_rate_backoff_callable_override(self, engine):
        eng, conn, sim = engine

        class Cfg:
            rate_pps = 400.0

        conn.cfg = Cfg()
        eng.add_rules(congestion_rate_backoff(threshold=0.6, factor=0.5))
        eng.evaluate(make_state(congestion=0.7))
        assert conn.applied[0][0]["rate_pps"] == pytest.approx(200.0)

    def test_notify_action(self, engine):
        eng, conn, sim = engine
        eng.add_rules(buffer_pressure_notify(threshold=0.5))
        conn.host.buffers.alloc(int(conn.host.buffers.capacity * 0.9))
        eng.evaluate(make_state())
        assert conn.notifications == ["buffer-pressure"]

    def test_unknown_metric_ignored(self, engine):
        eng, conn, sim = engine
        eng.add_rule(TSARule("phase-of-moon", ">", 0.5, "notify"))
        eng.evaluate(make_state())
        assert conn.notifications == []

    def test_firings_logged(self, engine):
        eng, conn, sim = engine
        eng.add_rules(congestion_switch_gbn_to_sr(high=0.5))
        eng.evaluate(make_state(congestion=0.9))
        assert eng.firings and eng.firings[0][1] == "congestion"


class TestResourceManager:
    def _host(self, sim):
        net = linear_path(sim, ethernet_10(), ("A", "B"))
        return Host(sim, net, "A")

    def test_admit_within_budget(self, sim):
        rm = ResourceManager(self._host(sim), admission_bps=10e6)
        assert rm.admit("c1", 4e6, 1000) is not None
        assert rm.reserved_bps == 4e6

    def test_refuse_over_budget(self, sim):
        rm = ResourceManager(self._host(sim), admission_bps=10e6)
        rm.admit("c1", 8e6, 1000)
        assert rm.admit("c2", 4e6, 1000) is None
        assert rm.refusals == 1

    def test_release_frees(self, sim):
        rm = ResourceManager(self._host(sim), admission_bps=10e6)
        rm.admit("c1", 8e6, 1000)
        rm.release("c1")
        assert rm.admit("c2", 8e6, 1000) is not None

    def test_buffer_budget_enforced(self, sim):
        host = self._host(sim)
        rm = ResourceManager(host, admission_bps=1e9, buffer_budget=10_000)
        assert rm.admit("c1", 1e6, 9_000) is not None
        assert rm.admit("c2", 1e6, 2_000) is None

    def test_duplicate_reservation_rejected(self, sim):
        rm = ResourceManager(self._host(sim))
        rm.admit("c1", 1e6, 100)
        with pytest.raises(ValueError):
            rm.admit("c1", 1e6, 100)

    def test_best_offer(self, sim):
        rm = ResourceManager(self._host(sim), admission_bps=10e6)
        rm.admit("c1", 6e6, 100)
        assert rm.best_offer_bps() == pytest.approx(4e6)

    def test_update_reservation(self, sim):
        rm = ResourceManager(self._host(sim), admission_bps=10e6)
        rm.admit("c1", 6e6, 100)
        rm.update("c1", 2e6)
        assert rm.best_offer_bps() == pytest.approx(8e6)

    def test_overbooking(self, sim):
        rm = ResourceManager(self._host(sim), admission_bps=10e6, overbooking=1.5)
        assert rm.admit("c1", 14e6, 100) is not None
