"""Termination-phase resource release (§4.1.3): reservations are returned
when the negotiated session closes, so capacity is reusable."""


from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.tsc import APP_PROFILES
from repro.netsim.profiles import ethernet_10, linear_path


def video_acd():
    p = APP_PROFILES["full-motion-video-compressed"]
    return ACD(participants=("B",), quantitative=p.quantitative(),
               qualitative=p.qualitative())


def build(admission_bps, buffer_capacity=1 << 20):
    sysm = AdaptiveSystem(seed=33)
    sysm.attach_network(
        linear_path(sysm.sim, ethernet_10(), ("A", "B"), rng=sysm.rng)
    )
    a = sysm.node("A", buffer_capacity=buffer_capacity)
    b = sysm.node("B", admission_bps=admission_bps,
                  buffer_capacity=buffer_capacity)
    b.mantts.register_service(7000, on_deliver=lambda d, m: None)
    return sysm, a, b


class TestResourceRelease:
    def test_close_releases_responder_reservation(self):
        sysm, a, b = build(admission_bps=12e6)
        conn = a.mantts.open(video_acd())
        sysm.run(until=1.0)
        assert len(b.mantts.resources) == 1
        conn.send(b"x" * 1000)
        sysm.run(until=2.0)
        conn.close()
        sysm.run(until=6.0)
        assert len(b.mantts.resources) == 0

    def test_capacity_reusable_after_close(self):
        # admission fits exactly one video stream at a time
        sysm, a, b = build(admission_bps=11e6)
        first = a.mantts.open(video_acd())
        sysm.run(until=1.0)
        assert first.session is not None
        # a second stream is refused while the first holds the reservation
        refused = []
        a.mantts.open(video_acd(), on_failed=refused.append)
        sysm.run(until=4.0)
        assert refused
        # ... but succeeds once the first closes
        first.close()
        sysm.run(until=8.0)
        states = []
        a.mantts.open(video_acd(), on_connected=lambda c: states.append("up"))
        sysm.run(until=12.0)
        assert states == ["up"]


class TestClassPools:
    def test_shares_validated(self):
        import pytest

        sysm, a, b = build(admission_bps=10e6)
        rm = b.mantts.resources
        with pytest.raises(ValueError):
            rm.configure_classes({"video": 0.0})
        with pytest.raises(ValueError):
            rm.configure_classes({"a": 0.7, "b": 0.6})

    def test_class_pool_caps_and_isolates(self):
        sysm, a, b = build(admission_bps=10e6)
        rm = b.mantts.resources
        rm.configure_classes({"video": 0.5, "bulk": 0.5})
        # bulk cannot spill into video's guaranteed half
        assert rm.admit("b1", 4e6, 0, tsc="bulk") is not None
        assert rm.admit("b2", 4e6, 0, tsc="bulk") is None
        assert rm.class_stats()["bulk"]["refused"] == 1
        # video's share is untouched by the bulk pressure
        assert rm.admit("v1", 4e6, 0, tsc="video") is not None
        # unclassified admissions see only the host-wide budget
        assert rm.admit("u1", 2e6, 0) is not None
        rm.release("b1")
        assert rm.class_stats()["bulk"]["reserved_bps"] == 0.0

    def test_repartition_requires_idle_ledger(self):
        import pytest

        sysm, a, b = build(admission_bps=10e6)
        rm = b.mantts.resources
        rm.admit("x", 1e6, 0)
        with pytest.raises(RuntimeError):
            rm.configure_classes({"video": 0.5})


class TestLedgerChurn:
    def test_500_cycles_return_ledger_to_zero(self):
        """Satellite check: open/close churn never leaks reservations.

        Waves of explicitly negotiated connections (which reserve on both
        hosts) opened in overlapping waves — after everything closes,
        both ledgers are empty and the accounting balances.
        """
        sysm, a, b = build(admission_bps=20e9, buffer_capacity=1 << 26)
        sim = sysm.sim
        closed = []

        def cycle(i):
            # close 0.5s after establishment (never before: a close with
            # no session yet would silently no-op and leak the open)
            conn = a.mantts.open(
                video_acd(),
                on_connected=lambda c: sim.schedule(0.5, c.close),
                on_closed=lambda: closed.append(i),
            )

        for i in range(500):
            sim.schedule((i // 4) * 0.05, lambda i=i: cycle(i))
        sysm.run(until=30.0)
        ra, rb = a.mantts.resources, b.mantts.resources
        assert len(closed) == 500
        assert len(ra) == 0 and len(rb) == 0
        assert not b.mantts._unclaimed and not b.mantts._session_res
        assert rb.admissions == rb.releases >= 500

    def test_failed_admission_leaves_no_reservation(self):
        # admission fits nothing: every explicit open is refused, and the
        # responder ledger must end exactly where it started
        sysm, a, b = build(admission_bps=1e3)
        failed = []
        for _ in range(20):
            a.mantts.open(video_acd(), on_failed=failed.append)
        sysm.run(until=10.0)
        assert len(failed) == 20
        assert len(b.mantts.resources) == 0
        assert not b.mantts._unclaimed
