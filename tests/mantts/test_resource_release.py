"""Termination-phase resource release (§4.1.3): reservations are returned
when the negotiated session closes, so capacity is reusable."""


from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.tsc import APP_PROFILES
from repro.netsim.profiles import ethernet_10, linear_path


def video_acd():
    p = APP_PROFILES["full-motion-video-compressed"]
    return ACD(participants=("B",), quantitative=p.quantitative(),
               qualitative=p.qualitative())


def build(admission_bps):
    sysm = AdaptiveSystem(seed=33)
    sysm.attach_network(
        linear_path(sysm.sim, ethernet_10(), ("A", "B"), rng=sysm.rng)
    )
    a = sysm.node("A")
    b = sysm.node("B", admission_bps=admission_bps)
    b.mantts.register_service(7000, on_deliver=lambda d, m: None)
    return sysm, a, b


class TestResourceRelease:
    def test_close_releases_responder_reservation(self):
        sysm, a, b = build(admission_bps=12e6)
        conn = a.mantts.open(video_acd())
        sysm.run(until=1.0)
        assert len(b.mantts.resources) == 1
        conn.send(b"x" * 1000)
        sysm.run(until=2.0)
        conn.close()
        sysm.run(until=6.0)
        assert len(b.mantts.resources) == 0

    def test_capacity_reusable_after_close(self):
        # admission fits exactly one video stream at a time
        sysm, a, b = build(admission_bps=11e6)
        first = a.mantts.open(video_acd())
        sysm.run(until=1.0)
        assert first.session is not None
        # a second stream is refused while the first holds the reservation
        refused = []
        a.mantts.open(video_acd(), on_failed=refused.append)
        sysm.run(until=4.0)
        assert refused
        # ... but succeeds once the first closes
        first.close()
        sysm.run(until=8.0)
        states = []
        a.mantts.open(video_acd(), on_connected=lambda c: states.append("up"))
        sysm.run(until=12.0)
        assert states == ["up"]
