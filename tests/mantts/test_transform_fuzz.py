"""Property-based fuzzing over Stage I/II: any ACD × any network state
must classify to a TSC and derive a constructor-valid SessionConfig."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mantts.acd import ACD
from repro.mantts.monitor import NetworkState
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.mantts.transform import specify_scs
from repro.mantts.tsc import TSC, select_tsc


@st.composite
def quantitative(draw):
    avg = draw(st.floats(min_value=1e3, max_value=1e9))
    return QuantitativeQoS(
        avg_throughput_bps=avg,
        peak_throughput_bps=avg * draw(st.floats(min_value=1.0, max_value=10.0)),
        max_latency=draw(st.sampled_from((None, 0.05, 0.15, 0.5))),
        max_jitter=draw(st.sampled_from((None, 0.01, 0.02, 0.05))),
        loss_tolerance=draw(st.floats(min_value=0.0, max_value=0.2)),
        duration=draw(st.floats(min_value=0.1, max_value=36_000.0)),
        message_size=draw(st.integers(min_value=1, max_value=65_536)),
    )


@st.composite
def qualitative(draw):
    return QualitativeQoS(
        ordered=draw(st.booleans()),
        duplicate_sensitive=draw(st.booleans()),
        isochronous=draw(st.booleans()),
        real_time=draw(st.booleans()),
        priority=draw(st.booleans()),
        multicast=draw(st.booleans()),
        connection_preference=draw(st.sampled_from((None, "implicit", "explicit"))),
        transactional=draw(st.booleans()),
    )


@st.composite
def network_states(draw):
    reachable = draw(st.booleans())
    rtt = draw(st.floats(min_value=1e-4, max_value=2.0))
    return NetworkState(
        src="A",
        dst="B",
        reachable=reachable,
        rtt=rtt if reachable else float("inf"),
        base_rtt=rtt if reachable else float("inf"),
        bottleneck_bps=draw(st.floats(min_value=9.6e3, max_value=622e6)),
        mtu=draw(st.sampled_from((576, 1500, 4464, 4500, 9180))),
        ber=draw(st.floats(min_value=0.0, max_value=1e-4)),
        congestion=draw(st.floats(min_value=0.0, max_value=1.0)),
        loss_rate=draw(st.floats(min_value=0.0, max_value=0.5)),
        hops=draw(st.integers(min_value=1, max_value=12)),
    )


@settings(max_examples=200, deadline=None)
@given(
    quant=quantitative(),
    qual=qualitative(),
    state=network_states(),
    n_participants=st.integers(min_value=1, max_value=4),
)
def test_stage1_and_stage2_total(quant, qual, state, n_participants):
    acd = ACD(
        participants=tuple(f"P{i}" for i in range(n_participants)),
        quantitative=quant,
        qualitative=qual,
    )
    tsc = select_tsc(acd)
    assert isinstance(tsc, TSC)
    scs = specify_scs(acd, state)  # raises if any derived config is invalid
    cfg = scs.config
    # structural invariants the engine depends on:
    assert cfg.delivery == ("multicast" if n_participants > 1 else "unicast")
    if cfg.transmission in ("sliding-window", "window-rate", "stop-and-wait"):
        assert cfg.ack != "none"
    if cfg.recovery == "sr":
        assert cfg.ack == "selective"
    if cfg.delivery == "multicast":
        assert cfg.connection == "implicit"
    if cfg.transmission in ("rate", "window-rate"):
        assert cfg.rate_pps and cfg.rate_pps > 0
    assert cfg.segment_size is None or cfg.segment_size >= 64
    # the blueprint also survives the wire (negotiation serialization)
    from repro.tko.config import SessionConfig

    assert SessionConfig.from_dict(cfg.to_dict()) == cfg
