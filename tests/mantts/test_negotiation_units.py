"""Unit tests for the negotiation codec and responder logic."""

import pytest

from repro.host.nic import Host
from repro.mantts.negotiation import (
    MANTTS_PORT,
    SIGNALLING_CONFIG,
    decode,
    encode,
    respond_to_open,
)
from repro.mantts.resources import ResourceManager
from repro.netsim.profiles import ethernet_10, linear_path
from repro.tko.config import SessionConfig


@pytest.fixture
def resources(sim):
    net = linear_path(sim, ethernet_10(), ("A", "B"))
    host = Host(sim, net, "A")
    return ResourceManager(host, admission_bps=10e6, buffer_budget=1 << 20)


def open_msg(**overrides):
    msg = {
        "type": "open-request",
        "ref": "r1",
        "from": "A",
        "service_port": 7000,
        "config": SessionConfig().to_dict(),
        "throughput_bps": 2e6,
        "min_throughput_bps": 0.5e6,
    }
    msg.update(overrides)
    return msg


class TestSignallingChannel:
    def test_signalling_config_is_reliable_and_prioritized(self):
        cfg = SIGNALLING_CONFIG
        assert cfg.recovery in ("gbn", "sr")
        assert cfg.detection == "crc32"
        assert cfg.priority is True
        assert cfg.connection == "implicit"  # the channel itself is zero-RTT

    def test_mantts_port_reserved(self):
        assert MANTTS_PORT == 500

    def test_codec_unicode_safety(self):
        msg = {"type": "x", "text": "héllo ∞"}
        assert decode(encode(msg)) == msg


class TestRespondToOpen:
    def test_accept_within_capacity(self, resources):
        verdict, final, reply = respond_to_open(open_msg(), resources, "c1")
        assert verdict == "accept"
        assert final is not None
        assert reply["granted_bps"] == pytest.approx(2e6)
        assert resources.reserved_bps == pytest.approx(2e6)

    def test_counter_clamps_rate(self, resources):
        cfg = SessionConfig(
            connection="implicit", transmission="rate", rate_pps=2000.0,
            ack="none", recovery="none", sequencing="none", segment_size=1000,
        )
        msg = open_msg(config=cfg.to_dict(), throughput_bps=20e6,
                       min_throughput_bps=1e6)
        verdict, final, reply = respond_to_open(msg, resources, "c1")
        assert verdict == "accept"
        assert reply["countered"]
        assert final.rate_pps < 2000.0
        assert final.rate_pps * 8 * 1000 <= 10e6 * 1.01

    def test_refuse_below_floor(self, resources):
        resources.admit("existing", 9.8e6, 100)
        msg = open_msg(throughput_bps=5e6, min_throughput_bps=4e6)
        verdict, final, reply = respond_to_open(msg, resources, "c2")
        assert verdict == "refuse"
        assert final is None
        assert reply["offer_bps"] == pytest.approx(0.2e6)

    def test_refuse_no_capacity_at_all(self, resources):
        resources.admit("existing", 10e6, 100)
        verdict, _, reply = respond_to_open(open_msg(), resources, "c2")
        assert verdict == "refuse"
        assert "offer_bps" not in reply

    def test_window_clamped_to_buffer_budget(self, sim):
        net = linear_path(sim, ethernet_10(), ("X", "Y"))
        host = Host(sim, net, "X")
        rm = ResourceManager(host, admission_bps=1e9, buffer_budget=64_000)
        cfg = SessionConfig(window=256, segment_size=1024)
        msg = open_msg(config=cfg.to_dict())
        verdict, final, reply = respond_to_open(msg, rm, "c1")
        assert verdict == "accept"
        assert final.window <= 64_000 * 0.25 / 1024 + 1

    def test_each_accept_reserves_independently(self, resources):
        respond_to_open(open_msg(ref="a"), resources, "a")
        respond_to_open(open_msg(ref="b"), resources, "b")
        assert resources.reserved_bps == pytest.approx(4e6)
        assert len(resources) == 2
