"""Stage II tests: TSC × network state → SCS derivation rules."""


from repro.mantts.acd import ACD
from repro.mantts.monitor import NetworkState
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.mantts.transform import specify_scs
from repro.mantts.tsc import APP_PROFILES


def net_state(
    rtt=0.005, loss=0.0, congestion=0.0, bps=10e6, mtu=1500, ber=1e-9
) -> NetworkState:
    return NetworkState(
        src="A", dst="B", reachable=True, rtt=rtt, base_rtt=rtt,
        bottleneck_bps=bps, mtu=mtu, ber=ber, congestion=congestion,
        loss_rate=loss, hops=3,
    )


def acd_for(app, **kw):
    p = APP_PROFILES[app]
    return ACD(participants=kw.pop("participants", ("B",)),
               quantitative=p.quantitative(), qualitative=p.qualitative(), **kw)


class TestReliabilityRules:
    def test_reliable_clean_path_gets_gbn(self):
        scs = specify_scs(acd_for("file-transfer"), net_state())
        assert scs.config.recovery == "gbn"
        assert scs.config.ack == "cumulative"

    def test_reliable_lossy_path_gets_sr(self):
        scs = specify_scs(acd_for("file-transfer"), net_state(loss=0.05))
        assert scs.config.recovery == "sr"
        assert scs.config.ack == "selective"

    def test_voice_on_lan_gets_no_retransmission(self):
        scs = specify_scs(acd_for("voice-conversation"), net_state())
        assert scs.config.recovery in ("none", "fec-xor")
        assert scs.config.ack == "none"

    def test_isochronous_long_rtt_gets_fec(self):
        scs = specify_scs(acd_for("voice-conversation"), net_state(rtt=0.6))
        assert scs.config.recovery.startswith("fec")

    def test_isochronous_heavy_loss_gets_rs(self):
        scs = specify_scs(
            acd_for("full-motion-video-compressed"), net_state(rtt=0.6, loss=0.08)
        )
        assert scs.config.recovery == "fec-rs"
        assert scs.config.fec_r >= 2


class TestConnectionRules:
    def test_transactional_goes_implicit(self):
        acd = ACD(
            participants=("B",),
            quantitative=QuantitativeQoS(duration=30),
            qualitative=QualitativeQoS(transactional=True),
        )
        assert specify_scs(acd, net_state()).config.connection == "implicit"

    def test_short_session_goes_implicit(self):
        acd = ACD(participants=("B",), quantitative=QuantitativeQoS(duration=1.0))
        assert specify_scs(acd, net_state()).config.connection == "implicit"

    def test_long_reliable_goes_3way(self):
        scs = specify_scs(acd_for("file-transfer"), net_state())
        assert scs.config.connection == "explicit-3way"

    def test_app_preference_wins(self):
        acd = ACD(
            participants=("B",),
            quantitative=QuantitativeQoS(duration=600),
            qualitative=QualitativeQoS(connection_preference="implicit"),
        )
        assert specify_scs(acd, net_state()).config.connection == "implicit"

    def test_multicast_forces_implicit(self):
        scs = specify_scs(
            acd_for("tele-conferencing", participants=("B", "C")), net_state()
        )
        assert scs.config.delivery == "multicast"
        assert scs.config.connection == "implicit"


class TestTransmissionRules:
    def test_isochronous_is_rate_paced(self):
        scs = specify_scs(acd_for("voice-conversation"), net_state())
        assert scs.config.transmission in ("rate", "window-rate")
        assert scs.config.rate_pps is not None

    def test_bulk_gets_window_sized_to_bdp(self):
        near = specify_scs(acd_for("file-transfer"), net_state(rtt=0.002)).config.window
        far = specify_scs(acd_for("file-transfer"), net_state(rtt=0.2, bps=100e6)).config.window
        assert far > near

    def test_congestion_adds_rate_control(self):
        scs = specify_scs(acd_for("file-transfer"), net_state(congestion=0.6))
        assert scs.config.transmission == "window-rate"

    def test_oltp_small_window(self):
        scs = specify_scs(acd_for("oltp"), net_state())
        assert scs.config.window <= 4


class TestOtherSlots:
    def test_sequencing_from_order_sensitivity(self):
        assert specify_scs(acd_for("voice-conversation"), net_state()).config.sequencing == "none"
        assert specify_scs(acd_for("file-transfer"), net_state()).config.sequencing == "ordered-dedup"

    def test_jitter_playout_for_isochronous(self):
        scs = specify_scs(acd_for("voice-conversation"), net_state())
        assert scs.config.jitter == "playout"
        assert scs.config.playout_delay > 0

    def test_no_playout_for_bulk(self):
        assert specify_scs(acd_for("file-transfer"), net_state()).config.jitter == "none"

    def test_priority_carried_through(self):
        assert specify_scs(acd_for("telnet"), net_state()).config.priority is True
        assert specify_scs(acd_for("file-transfer"), net_state()).config.priority is False

    def test_segment_respects_mtu(self):
        scs = specify_scs(acd_for("file-transfer"), net_state(mtu=576))
        assert scs.config.segment_size <= 576 - 32

    def test_small_messages_not_padded(self):
        acd = ACD(participants=("B",),
                  quantitative=QuantitativeQoS(message_size=200))
        assert specify_scs(acd, net_state()).config.segment_size == 200

    def test_isochronous_uses_fixed_buffers(self):
        assert specify_scs(acd_for("voice-conversation"), net_state()).config.buffer == "fixed"
        assert specify_scs(acd_for("file-transfer"), net_state()).config.buffer == "variable"

    def test_every_derived_config_is_valid(self):
        # SessionConfig.__post_init__ validates; derivations must never trip it
        for app in APP_PROFILES:
            for state in (
                net_state(),
                net_state(rtt=0.6),
                net_state(loss=0.1, congestion=0.8),
                net_state(bps=622e6, mtu=9180),
            ):
                scs = specify_scs(acd_for(app), state)
                assert scs.config is not None

    def test_rationale_recorded(self):
        scs = specify_scs(acd_for("voice-conversation"), net_state())
        assert scs.rationale
