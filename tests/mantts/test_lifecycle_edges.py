"""Edge-hardening tests for the ConnectionLifecycle terminal transitions.

The establishment state machine must stay single-shot no matter how its
callbacks interleave: a failure before ``begin()`` (spans still NULL), a
negotiation reply arriving after the timeout already failed the attempt,
and a double ``fail()`` must each produce exactly one application callback
and exactly one ended telemetry span."""

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.api import AdaptiveConnection
from repro.mantts.lifecycle import NEGOTIATION_TIMEOUT
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.profiles import ethernet_10, linear_path
from repro.unites.obs.telemetry import TELEMETRY


def world(seed=0):
    sysm = AdaptiveSystem(seed=seed)
    sysm.attach_network(linear_path(sysm.sim, ethernet_10(), ("A", "B"), rng=sysm.rng))
    return sysm, sysm.node("A"), sysm.node("B")


def explicit_acd():
    # loss_tolerance=0 + long duration => explicit negotiation (Stage II)
    return ACD(
        participants=("B",),
        quantitative=QuantitativeQoS(avg_throughput_bps=400e3, duration=600),
        qualitative=QualitativeQoS(),
    )


class TestFailBeforeBegin:
    def test_fail_before_begin_fires_once_and_tolerates_null_spans(self):
        sysm, a, b = world()
        failures, connects, closes = [], [], []
        conn = AdaptiveConnection(
            a.mantts,
            explicit_acd(),
            on_failed=failures.append,
            on_connected=connects.append,
            on_closed=lambda: closes.append(True),
        )
        # begin() never ran: both spans are still NULL_SPAN and must be
        # end()-able without blowing up
        conn.lifecycle.fail("aborted before establishment")
        assert failures == ["aborted before establishment"]
        assert conn._failed and not conn._established
        # terminal guards: nothing may resurrect or re-report the attempt
        conn.lifecycle.connected()
        conn.lifecycle.closed()
        conn.lifecycle.fail("again")
        assert failures == ["aborted before establishment"]
        assert connects == [] and closes == []

    def test_double_fail_keeps_first_reason(self):
        sysm, a, b = world()
        failures = []
        conn = AdaptiveConnection(a.mantts, explicit_acd(), on_failed=failures.append)
        conn.lifecycle.fail("first")
        conn.lifecycle.fail("second")
        assert failures == ["first"]


class TestLateReplyAfterTimeout:
    def _timed_out_world(self):
        sysm, a, b = world(seed=2)
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        failures, connects = [], []
        conn = a.mantts.open(
            explicit_acd(), on_failed=failures.append, on_connected=connects.append
        )
        assert conn.session is None  # negotiation is in flight
        # cut the path before the open-request can cross it
        sysm.sim.schedule(1e-6, sysm.network.fail_link, "A", "s1")
        sysm.run(until=NEGOTIATION_TIMEOUT + 1.0)
        assert failures == [
            "negotiation timed out waiting for ['B']"
        ] or failures[0].startswith("negotiation timed out")
        assert len(failures) == 1
        return sysm, a, conn, failures, connects

    def test_late_accept_cannot_resurrect_failed_connection(self):
        sysm, a, conn, failures, connects = self._timed_out_world()
        # the reply handler is still registered under the negotiation ref;
        # deliver the accept "late" exactly as the signalling path would
        ref = f"{conn.ref}:B:first"
        handler = a.mantts._pending.pop(ref)
        handler({"type": "open-accept", "from": "B", "config": conn.scs.config.to_dict()})
        assert not conn._established
        assert connects == []
        assert len(failures) == 1

    def test_failed_connection_is_deregistered(self):
        sysm, a, conn, failures, connects = self._timed_out_world()
        assert conn.ref not in a.mantts.connections

    def test_double_connected_fires_callback_once(self):
        sysm, a, b = world(seed=3)
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        connects = []
        conn = a.mantts.open(explicit_acd(), on_connected=connects.append)
        sysm.run(until=2.0)
        assert conn._established and len(connects) == 1
        conn.lifecycle.connected()  # duplicate success signal
        assert len(connects) == 1


class TestSpansEndExactlyOnce:
    def test_timeout_fail_then_late_reply_ends_each_span_once(self):
        sysm, a, b = world(seed=4)
        TELEMETRY.enable(sysm.sim)
        try:
            b.mantts.register_service(7000, on_deliver=lambda d, m: None)
            failures = []
            conn = a.mantts.open(explicit_acd(), on_failed=failures.append)
            sysm.sim.schedule(1e-6, sysm.network.fail_link, "A", "s1")
            sysm.run(until=NEGOTIATION_TIMEOUT + 1.0)
            assert len(failures) == 1
            setup_spans = TELEMETRY.spans_named("connection-setup")
            nego_spans = TELEMETRY.spans_named("negotiation")
            assert len(setup_spans) == 1 and len(nego_spans) == 1
            assert setup_spans[0].args["outcome"] == "failed"
            # stress the terminal guards: none of these may buffer another
            # ended span for the same establishment
            conn.lifecycle.fail("again")
            conn.lifecycle.connected()
            handler = a.mantts._pending.pop(f"{conn.ref}:B:first")
            handler({"type": "open-accept", "from": "B",
                     "config": conn.scs.config.to_dict()})
            assert len(TELEMETRY.spans_named("connection-setup")) == 1
            assert len(TELEMETRY.spans_named("negotiation")) == 1
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
