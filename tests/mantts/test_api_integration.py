"""Integration tests for the MANTTS entity: negotiation, reconfiguration,
multicast membership, admission refusal, and app notification."""

import pytest

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD, TSARule
from repro.mantts.negotiation import decode, encode
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.mantts.tsc import APP_PROFILES
from repro.netsim.profiles import ethernet_10, linear_path, star, wan_internet
from repro.netsim.traffic import BackgroundLoad


def build_pair(profile=None, seed=0, admission_bps=1e9):
    sysm = AdaptiveSystem(seed=seed)
    sysm.attach_network(
        linear_path(sysm.sim, profile or ethernet_10(), ("A", "B"), rng=sysm.rng)
    )
    a = sysm.node("A", admission_bps=admission_bps)
    b = sysm.node("B", admission_bps=admission_bps)
    return sysm, a, b


def acd_for(app, participants=("B",), **kw):
    p = APP_PROFILES[app]
    return ACD(participants=participants, quantitative=p.quantitative(),
               qualitative=p.qualitative(), **kw)


class TestSignallingCodec:
    def test_roundtrip(self):
        msg = {"type": "open-request", "ref": "r1", "x": [1, 2]}
        assert decode(encode(msg)) == msg

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            decode(b"\xff\xfe not json")
        with pytest.raises(ValueError):
            decode(b"[1,2,3]")


class TestExplicitNegotiation:
    def test_open_accept_and_transfer(self):
        sysm, a, b = build_pair()
        got = []
        b.mantts.register_service(7000, on_deliver=lambda d, m: got.append(d))
        states = []
        conn = a.mantts.open(
            acd_for("file-transfer"),
            on_connected=lambda c: states.append("up"),
            on_failed=lambda r: states.append(("fail", r)),
        )
        sysm.run(until=1.0)
        assert states == ["up"]
        conn.send(b"payload" * 100)
        sysm.run(until=3.0)
        assert len(got) == 1

    def test_refusal_when_no_service(self):
        sysm, a, b = build_pair()
        outcomes = []
        a.mantts.open(acd_for("file-transfer"), on_failed=outcomes.append)
        sysm.run(until=2.0)
        assert outcomes and "refused" in outcomes[0]

    def test_admission_counter_reduces_rate(self):
        # responder can only admit a fraction of the requested video rate
        sysm, a, b = build_pair(admission_bps=3e6)
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        acd = acd_for("full-motion-video-compressed")  # wants 10 Mbps
        conn = a.mantts.open(acd)
        sysm.run(until=1.0)
        assert conn.session is not None
        assert conn.cfg.rate_pps is not None
        granted_bps = conn.cfg.rate_pps * 8 * (conn.cfg.segment_size or 1024)
        assert granted_bps <= 3.1e6

    def test_refusal_below_floor(self):
        sysm, a, b = build_pair(admission_bps=100_000)  # can't host video
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        outcomes = []
        a.mantts.open(acd_for("full-motion-video-compressed"), on_failed=outcomes.append)
        sysm.run(until=2.0)
        assert outcomes

    def test_resources_released_on_close(self):
        sysm, a, b = build_pair(admission_bps=1e9)
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        conn = a.mantts.open(acd_for("file-transfer"))
        sysm.run(until=1.0)
        assert len(b.mantts.resources) == 1 or len(b.mantts.resources) == 0
        # note: reservation keyed by negotiation ref on the responder


class TestImplicitPath:
    def test_transactional_opens_without_negotiation(self):
        sysm, a, b = build_pair()
        got = []
        b.mantts.register_service(7000, on_deliver=lambda d, m: got.append(d))
        conn = a.mantts.open(acd_for("oltp"))
        assert conn.session is not None  # synchronous: no signalling RTT
        conn.send(b"q" * 100)
        sysm.run(until=1.0)
        assert got

    def test_unreachable_fails_fast(self):
        sysm, a, b = build_pair()
        sysm.network.add_node("nowhere")
        outcomes = []
        a.mantts.open(
            ACD(participants=("nowhere",)), on_failed=outcomes.append
        )
        assert outcomes and "no route" in outcomes[0]


class TestReconfiguration:
    def test_apply_overrides_propagates_to_peer(self):
        sysm, a, b = build_pair()
        got = []
        b.mantts.register_service(7000, on_deliver=lambda d, m: got.append(d))
        conn = a.mantts.open(acd_for("file-transfer"))
        sysm.run(until=1.0)
        conn.send(b"first" * 50)
        sysm.run(until=2.0)
        ok = conn.apply_overrides({"recovery": "sr", "ack": "selective"}, reason="test")
        assert ok
        sysm.run(until=3.0)
        # both ends now run selective repeat
        assert conn.cfg.recovery == "sr"
        peer = next(iter(b.mantts._peer_sessions.values()))
        assert peer.cfg.recovery == "sr"
        conn.send(b"second" * 50)
        sysm.run(until=5.0)
        assert len(got) == 2

    def test_invalid_override_rejected_gracefully(self):
        sysm, a, b = build_pair()
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        conn = a.mantts.open(acd_for("file-transfer"))
        sysm.run(until=1.0)
        assert conn.apply_overrides({"recovery": "sr"}) is False  # needs sack
        assert conn.cfg.recovery == "gbn"

    def test_tsa_rule_drives_reconfiguration(self):
        sysm, a, b = build_pair(profile=wan_internet())
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        acd = acd_for("file-transfer").__class__(
            participants=("B",),
            quantitative=acd_for("file-transfer").quantitative,
            qualitative=acd_for("file-transfer").qualitative,
            tsa=(
                TSARule(
                    "congestion", ">", 0.4, "adjust-scs",
                    overrides=(("recovery", "sr"), ("ack", "selective")),
                ),
            ),
        )
        conn = a.mantts.open(acd)
        sysm.run(until=1.0)
        assert conn.cfg.recovery == "gbn"
        load = BackgroundLoad(sysm.network, "s1", "s2", rate_bps=2.5e6)
        load.start(1.0)
        sysm.run(until=8.0)
        assert conn.cfg.recovery == "sr"
        assert conn.reconfig_log

    def test_notify_action_reaches_app(self):
        sysm, a, b = build_pair()
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        notes = []
        acd = ACD(
            participants=("B",),
            quantitative=QuantitativeQoS(duration=600),
            qualitative=QualitativeQoS(),
            tsa=(TSARule("rtt", ">", 0.0, "notify", tag="rtt-seen"),),
        )
        conn = a.mantts.open(acd, on_notify=lambda tag, st: notes.append(tag))
        sysm.run(until=2.0)
        assert "rtt-seen" in notes


class TestMulticastMANTTS:
    def _conference(self, members=("B", "C", "D")):
        sysm = AdaptiveSystem(seed=1)
        sysm.attach_network(
            star(sysm.sim, ethernet_10(), ["A", *members], rng=sysm.rng)
        )
        a = sysm.node("A")
        rx = {}
        for m in members:
            node = sysm.node(m)
            rx[m] = []
            node.mantts.register_service(
                7000, on_deliver=(lambda lst: lambda d, meta: lst.append(d))(rx[m])
            )
        return sysm, a, rx

    def test_conference_reaches_all_members(self):
        sysm, a, rx = self._conference()
        conn = a.mantts.open(acd_for("tele-conferencing", participants=("B", "C", "D")))
        sysm.run(until=2.0)
        assert conn.session is not None
        assert sysm.network.group_members(conn.group) == {"B", "C", "D"}
        for _ in range(5):
            conn.send(b"frame" * 30)
        sysm.run(until=5.0)
        assert all(len(v) == 5 for v in rx.values())

    def test_member_leave_stops_delivery(self):
        sysm, a, rx = self._conference()
        conn = a.mantts.open(acd_for("tele-conferencing", participants=("B", "C", "D")))
        sysm.run(until=2.0)
        conn.remove_member("D")
        sysm.run(until=3.0)
        before_d = len(rx["D"])
        for _ in range(3):
            conn.send(b"x" * 50)
        sysm.run(until=6.0)
        assert len(rx["D"]) == before_d
        assert len(rx["B"]) == 3
