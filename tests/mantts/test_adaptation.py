"""AdaptationController: hysteresis, the five-level ladder, failover
re-derivation, graceful degradation callbacks, bounded-retry teardown,
and zero-loss mid-stream renegotiation (pause → drain → swap → resume)."""

import dataclasses

import pytest

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.adaptation import AdaptationController, LEVELS
from repro.mantts.monitor import NetworkState
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.faults import FaultInjector, FaultSchedule
from repro.netsim.profiles import (
    dual_path,
    ethernet_10,
    linear_path,
    satellite,
    wan_internet,
)
from repro.netsim.traffic import BackgroundLoad


def elastic_acd():
    return ACD(
        participants=("B",),
        quantitative=QuantitativeQoS(avg_throughput_bps=400e3, duration=600),
        qualitative=QualitativeQoS(),
    )


def linear_world(seed=1, profile=None, adaptation=False, **open_kwargs):
    sysm = AdaptiveSystem(seed=seed)
    sysm.attach_network(
        linear_path(sysm.sim, profile or ethernet_10(), ("A", "B"), rng=sysm.rng)
    )
    a, b = sysm.node("A"), sysm.node("B")
    got = []
    b.mantts.register_service(7000, on_deliver=lambda d, m: got.append(d))
    conn = a.mantts.open(elastic_acd(), adaptation=adaptation, **open_kwargs)
    sysm.run(until=1.0)
    assert conn._established
    return sysm, a, b, conn, got


def healthy_state(**over):
    base = NetworkState(
        src="A", dst="B", reachable=True, rtt=0.003, base_rtt=0.003,
        bottleneck_bps=10e6, mtu=1500, ber=1e-9, congestion=0.05,
        loss_rate=0.0, hops=3, path=("A", "s1", "s2", "B"),
    )
    return dataclasses.replace(base, **over) if over else base


UNREACHABLE = NetworkState(
    "A", "B", False, float("inf"), float("inf"), 0.0, 0, 1.0, 1.0, 1.0, 0
)


class TestHysteresis:
    """Escalation/de-escalation requires *consecutive* samples (§3(C))."""

    def _controller(self, **opts):
        sysm, a, b, conn, got = linear_world(seed=1)
        ad = AdaptationController(conn, **opts)
        ad.on_sample(healthy_state())  # first sample seeds the baseline
        return sysm, conn, ad

    def test_thresholds_validated(self):
        sysm, a, b, conn, got = linear_world(seed=1)
        with pytest.raises(ValueError):
            AdaptationController(conn, degrade_after=0)

    def test_single_bad_sample_does_not_escalate(self):
        sysm, conn, ad = self._controller(degrade_after=3)
        ad.on_sample(healthy_state(congestion=0.9))
        ad.on_sample(healthy_state(congestion=0.9))
        assert ad.level == 0 and ad.events == []

    def test_consecutive_bad_samples_escalate_to_retune(self):
        sysm, conn, ad = self._controller(degrade_after=3)
        for _ in range(3):
            ad.on_sample(healthy_state(congestion=0.9))
        assert ad.level == 1 and ad.level_name == "retuned"
        assert [a for _, a, _ in ad.events] == ["retune"]

    def test_healthy_sample_resets_the_degraded_run(self):
        sysm, conn, ad = self._controller(degrade_after=3)
        for cong in (0.9, 0.9, 0.05, 0.9, 0.9):
            ad.on_sample(healthy_state(congestion=cong))
        assert ad.level == 0

    def test_deescalation_needs_sustained_health(self):
        sysm, conn, ad = self._controller(degrade_after=2, restore_after=4)
        for _ in range(2):
            ad.on_sample(healthy_state(loss_rate=0.2))
        assert ad.level == 1
        for _ in range(3):
            ad.on_sample(healthy_state())
        assert ad.level == 1  # not yet: needs 4 consecutive healthy
        ad.on_sample(healthy_state())
        assert ad.level == 0
        assert ad.events[-1][1] == "restore"

    def test_detection_covers_every_symptom(self):
        sysm, conn, ad = self._controller()
        base = healthy_state()
        assert not ad._is_degraded(base)
        assert ad._is_degraded(healthy_state(congestion=0.7))
        assert ad._is_degraded(healthy_state(loss_rate=0.1))
        assert ad._is_degraded(healthy_state(ber=1e-4))
        assert ad._is_degraded(healthy_state(rtt=0.02))
        assert ad._is_degraded(healthy_state(bottleneck_bps=1e6))


class TestFailoverRederivation:
    def test_path_change_rederives_window_and_rto_immediately(self):
        sysm, a, b, conn, got = linear_world(seed=2)
        ad = AdaptationController(conn)
        ad.on_sample(healthy_state())
        # the route flips to a satellite-like path: long RTT, thin pipe
        sat = healthy_state(
            rtt=0.25, base_rtt=0.25, bottleneck_bps=2e6,
            path=("A", "q1", "q2", "B"),
        )
        ad.on_sample(sat)
        assert [action for _, action, _ in ad.events] == ["failover"]
        assert ad.events[0][2] == "A->q1->q2->B"
        assert conn.reconfig_log and conn.reconfig_log[-1][1] == "failover"
        assert conn.cfg.rto_initial == pytest.approx(
            max(conn.cfg.rto_min, min(4.0, 2.0 * 0.25))
        )
        # the new route is the new normal: a healthy sample on the new
        # path must not count as degraded against the old baseline
        ad.on_sample(sat)
        assert ad.level == 0 and len(ad.events) == 1

    def test_failover_end_to_end_under_fault_injection(self):
        """Primary path flaps mid-transfer; the controller re-derives for
        the backup route, then again when the primary returns — and every
        message still arrives exactly once."""
        sysm = AdaptiveSystem(seed=11)
        sysm.attach_network(
            dual_path(sysm.sim, ethernet_10(), satellite(), rng=sysm.rng)
        )
        a, b = sysm.node("A"), sysm.node("B")
        got = []
        b.mantts.register_service(7000, on_deliver=lambda d, m: got.append(bytes(d)))
        conn = a.mantts.open(elastic_acd(), adaptation=True)
        sysm.run(until=1.0)
        assert conn._established
        msgs = [b"m%03d" % i + b"x" * 500 for i in range(100)]
        for m in msgs:
            conn.send(m)
        FaultInjector(
            sysm.sim, sysm.network,
            FaultSchedule().link_flap(2.0, "p1", "p2", duration=6.0),
        ).arm()
        sysm.run(until=30.0)
        assert got == msgs  # in order, zero lost, zero duplicated
        failovers = [d for _, action, d in conn.adaptation.events if action == "failover"]
        assert any("q1" in d for d in failovers)  # onto the backup path
        assert any("p1" in d for d in failovers)  # back after the clear
        assert conn.adaptation.level == 0


class TestLadderEndToEnd:
    def test_congestion_walks_the_ladder_and_restores(self):
        sysm = AdaptiveSystem(seed=13)
        sysm.attach_network(
            linear_path(sysm.sim, wan_internet(), ("A", "B"), rng=sysm.rng)
        )
        a, b = sysm.node("A"), sysm.node("B")
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        degraded, restored = [], []
        conn = a.mantts.open(
            elastic_acd(),
            adaptation={"degrade_after": 2, "restore_after": 4},
            on_degraded=lambda c, s: degraded.append(s),
            on_restored=lambda c, s: restored.append(s),
        )
        sysm.run(until=1.0)
        assert conn._established
        load = BackgroundLoad(sysm.network, "s1", "s2", rate_bps=2.4e6)
        load.start(1.0)
        sysm.run(until=12.0)
        actions = [action for _, action, _ in conn.adaptation.events]
        # the ladder fires strictly in order: retune, then mechanism swap,
        # then renegotiation, then graceful degradation
        assert actions.index("retune") < actions.index("segue")
        assert actions.index("segue") < actions.index("renegotiate")
        assert "degrade" in actions
        assert conn.cfg.recovery == "sr"  # the segue stuck
        assert degraded and conn.adaptation._degraded_flagged
        # congestion subsides: sustained health walks back to normal
        load.stop()
        sysm.run(until=30.0)
        assert conn.adaptation.level == 0
        assert restored and not conn.adaptation._degraded_flagged


class TestUnreachableTeardown:
    def test_bounded_retries_with_backoff_then_teardown(self):
        sysm, a, b, conn, got = linear_world(seed=4)
        ad = AdaptationController(conn, unreachable_after=2, max_teardown_retries=2)
        # giveup points: sample 2 (retry 1), then +2*2 => sample 6
        # (retry 2), then +2*4 => sample 14 (teardown)
        for _ in range(14):
            ad.on_sample(UNREACHABLE)
        actions = [action for _, action, _ in ad.events]
        assert actions == ["retry", "retry", "teardown"]
        assert conn.session.closed
        # post-teardown samples are inert
        ad.on_sample(UNREACHABLE)
        assert actions == [action for _, action, _ in ad.events]

    def test_reachable_sample_resets_the_giveup_ladder(self):
        sysm, a, b, conn, got = linear_world(seed=5)
        ad = AdaptationController(conn, unreachable_after=3)
        ad.on_sample(healthy_state())
        ad.on_sample(UNREACHABLE)
        ad.on_sample(UNREACHABLE)
        ad.on_sample(healthy_state())  # back: run and backoff reset
        assert ad.teardown_retries == 0 and ad._giveup_at == 3
        ad.on_sample(UNREACHABLE)
        ad.on_sample(UNREACHABLE)
        assert ad.events == []  # two of three — no retry yet


class TestMidstreamRenegotiation:
    def test_renegotiation_swaps_both_ends_with_zero_loss(self):
        sysm, a, b, conn, got = linear_world(seed=12)
        msgs = [b"r%03d" % i + b"y" * 500 for i in range(100)]
        for m in msgs:
            conn.send(m)
        outcomes = []
        new_cfg = conn.cfg.with_(window=5, recovery="sr", ack="selective")
        sysm.sim.schedule(
            0.05,
            conn.lifecycle.renegotiate_midstream,
            new_cfg,
            None,
            outcomes.append,
        )
        sysm.run(until=15.0)
        assert outcomes == [True]
        # initiator side swapped
        assert conn.cfg.window == 5 and conn.cfg.recovery == "sr"
        assert conn.cfg.ack == "selective"
        # responder side swapped too (signalled reconfig)
        rx = next(iter(b.mantts._peer_sessions.values()))
        assert rx.cfg.window == 5 and rx.cfg.recovery == "sr"
        # the responder's reservation was replaced, not stacked
        assert b.mantts._reservation_refs[("A", 7000)].endswith(":reneg1")
        assert len(b.mantts.resources) == 1
        # the drain guarantee: in order, zero lost, zero duplicated
        assert got == [bytes(m) for m in msgs]
        assert conn.reconfig_log[-1][1] == "renegotiated"
        assert not conn.session._paused

    def test_renegotiation_timeout_keeps_old_config_and_resumes(self):
        sysm, a, b, conn, got = linear_world(seed=6)
        before = conn.cfg
        sysm.network.fail_link("s1", "s2")  # peer unreachable, nothing in flight
        outcomes = []
        started = conn.lifecycle.renegotiate_midstream(
            before.with_(window=4), on_done=outcomes.append
        )
        assert started
        sysm.run(until=10.0)
        assert outcomes == [False]
        assert conn.cfg == before  # old configuration stays in force
        assert not conn.session._paused
        assert not conn.lifecycle.reneg_active

    def test_guards_refuse_bad_states(self):
        sysm, a, b, conn, got = linear_world(seed=7)
        outcomes = []
        # a second attempt while one is active must be refused
        assert conn.lifecycle.renegotiate_midstream(conn.cfg.with_(window=4))
        assert not conn.lifecycle.renegotiate_midstream(
            conn.cfg.with_(window=3), on_done=outcomes.append
        )
        assert outcomes == [False]
        sysm.run(until=8.0)
        # after the session closes, renegotiation is refused outright
        conn.close()
        sysm.run(until=12.0)
        assert not conn.lifecycle.renegotiate_midstream(conn.cfg.with_(window=2))
