"""Tests for active RTT probing and renegotiate-at-lower-QoS."""


from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.tsc import APP_PROFILES
from repro.netsim.profiles import ethernet_10, linear_path, satellite


def pair(profile, seed=0, admission_bps=1e9):
    sysm = AdaptiveSystem(seed=seed)
    sysm.attach_network(linear_path(sysm.sim, profile, ("A", "B"), rng=sysm.rng))
    return sysm, sysm.node("A"), sysm.node("B", admission_bps=admission_bps)


class TestProbe:
    def test_probe_measures_path_rtt(self):
        sysm, a, b = pair(ethernet_10())
        rtts = []
        a.mantts.measure_rtt("B", rtts.append)
        sysm.run(until=1.0)
        assert len(rtts) == 1
        floor = sysm.network.path_propagation_delay("A", "B") * 2
        assert floor < rtts[0] < 0.1

    def test_probe_reflects_satellite_regime(self):
        lan_rtt, sat_rtt = [], []
        sysm, a, b = pair(ethernet_10())
        a.mantts.measure_rtt("B", lan_rtt.append)
        sysm.run(until=1.0)
        sysm2, a2, b2 = pair(satellite())
        a2.mantts.measure_rtt("B", sat_rtt.append)
        sysm2.run(until=5.0)
        assert sat_rtt[0] > 100 * lan_rtt[0]

    def test_multiple_probes_each_answered(self):
        sysm, a, b = pair(ethernet_10())
        rtts = []
        for _ in range(5):
            a.mantts.measure_rtt("B", rtts.append)
        sysm.run(until=2.0)
        assert len(rtts) == 5

    def test_probe_cold_peer_no_prior_traffic(self):
        # the probe itself must be able to open the peer's passive session
        sysm, a, b = pair(ethernet_10(), seed=3)
        rtts = []
        a.mantts.measure_rtt("B", rtts.append)
        sysm.run(until=1.0)
        assert rtts


def video_acd():
    p = APP_PROFILES["full-motion-video-compressed"]
    return ACD(participants=("B",), quantitative=p.quantitative(),
               qualitative=p.qualitative())


class TestRenegotiation:
    def test_retry_at_offer_succeeds(self):
        sysm, a, b = pair(ethernet_10(), admission_bps=2e6)
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        states = []
        conn = a.mantts.open(
            video_acd(), renegotiate=True,
            on_connected=lambda c: states.append("up"),
            on_failed=lambda r: states.append("fail"),
        )
        sysm.run(until=3.0)
        assert states == ["up"]
        granted = conn.cfg.rate_pps * 8 * conn.cfg.segment_size
        assert granted <= 2.1e6
        assert any("renegotiating down" in r for r in conn.scs.rationale)

    def test_without_renegotiate_fails(self):
        sysm, a, b = pair(ethernet_10(), admission_bps=2e6)
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        outcomes = []
        a.mantts.open(video_acd(), on_failed=outcomes.append)
        sysm.run(until=3.0)
        assert outcomes and "refused" in outcomes[0]

    def test_retry_accepts_any_positive_offer(self):
        # renegotiation takes whatever the responder can admit, however low
        sysm, a, b = pair(ethernet_10(), admission_bps=1000.0)
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        states = []
        conn = a.mantts.open(video_acd(), renegotiate=True,
                             on_connected=lambda c: states.append("up"))
        sysm.run(until=5.0)
        assert states == ["up"]
        assert conn._renegotiated

    def test_no_offer_means_no_retry(self):
        # a refusal without a counter-offer (no such service) fails once
        sysm, a, b = pair(ethernet_10())
        outcomes = []
        a.mantts.open(video_acd(), renegotiate=True, on_failed=outcomes.append)
        sysm.run(until=5.0)
        assert len(outcomes) == 1

    def test_data_flows_at_renegotiated_rate(self):
        sysm, a, b = pair(ethernet_10(), admission_bps=2e6)
        got = []
        b.mantts.register_service(7000, on_deliver=lambda d, m: got.append(d))
        conn = a.mantts.open(video_acd(), renegotiate=True)
        sysm.run(until=2.0)
        for _ in range(5):
            conn.send(b"v" * 1400)
        sysm.run(until=5.0)
        assert len(got) == 5


class TestHighBandwidthNegotiatesExplicitly:
    def test_video_unicast_negotiates(self):
        sysm, a, b = pair(ethernet_10())
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        conn = a.mantts.open(video_acd())
        # explicit negotiation ⇒ session not created synchronously
        assert conn.session is None
        sysm.run(until=2.0)
        assert conn.session is not None
        assert len(b.mantts.resources) == 1  # reservation taken

    def test_voice_stays_implicit(self):
        sysm, a, b = pair(ethernet_10())
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        p = APP_PROFILES["voice-conversation"]
        acd = ACD(participants=("B",), quantitative=p.quantitative(),
                  qualitative=p.qualitative())
        conn = a.mantts.open(acd)
        assert conn.session is not None  # implicit: immediate
        assert conn.cfg.connection == "implicit"
