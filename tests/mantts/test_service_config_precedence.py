"""Responder-side Stage II precedence: negotiated > piggybacked > default."""


from repro.core.system import AdaptiveSystem
from repro.netsim.frame import Frame
from repro.netsim.profiles import ethernet_10, linear_path
from repro.tko.config import SessionConfig
from repro.tko.message import TKOMessage
from repro.tko.pdu import PDU, PduType


def build():
    sysm = AdaptiveSystem(seed=8)
    sysm.attach_network(
        linear_path(sysm.sim, ethernet_10(), ("A", "B"), rng=sysm.rng)
    )
    return sysm, sysm.node("A"), sysm.node("B")


def data_pdu(cfg_dict=None, src_port=40000):
    pdu = PDU(PduType.DATA, 1, src_port=src_port, dst_port=7000,
              message=TKOMessage(b"hello"))
    if cfg_dict is not None:
        pdu.options["cfg"] = cfg_dict
    return pdu


class TestServiceConfigPrecedence:
    def test_negotiated_wins(self):
        sysm, a, b = build()
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        negotiated = SessionConfig(recovery="sr", ack="selective")
        b.mantts._negotiated[("A", 7000)] = negotiated
        carried = SessionConfig(connection="implicit").to_dict()
        cfg = b.mantts._service_config(7000, data_pdu(carried), Frame("A", "B", 100))
        assert cfg.recovery == "sr"

    def test_piggybacked_when_no_negotiation(self):
        sysm, a, b = build()
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        carried = SessionConfig(
            connection="implicit", detection="crc32"
        ).to_dict()
        cfg = b.mantts._service_config(7000, data_pdu(carried), Frame("A", "B", 100))
        assert cfg.detection == "crc32"

    def test_default_when_nothing_carried(self):
        sysm, a, b = build()
        default = SessionConfig(connection="implicit", detection="crc32")
        b.mantts.register_service(7000, on_deliver=lambda d, m: None,
                                  default_config=default)
        cfg = b.mantts._service_config(7000, data_pdu(), Frame("A", "B", 100))
        assert cfg is default

    def test_garbage_piggyback_falls_back(self):
        sysm, a, b = build()
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        pdu = data_pdu()
        pdu.options["cfg"] = {"not": "a config"}
        cfg = b.mantts._service_config(7000, pdu, Frame("A", "B", 100))
        assert cfg.connection == "implicit"  # the hard fallback

    def test_multicast_config_becomes_unicast_receiver(self):
        sysm, a, b = build()
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        carried = SessionConfig(
            connection="implicit", delivery="multicast",
            transmission="rate", rate_pps=100.0, ack="none",
            recovery="none", sequencing="none",
        ).to_dict()
        cfg = b.mantts._service_config(7000, data_pdu(carried), Frame("A", "B", 100))
        assert cfg.delivery == "unicast"

    def test_reconfig_for_unknown_session_ignored(self):
        sysm, a, b = build()
        b.mantts._on_reconfig({
            "from": "A", "data_port": 12345, "service_port": 7000,
            "config": SessionConfig().to_dict(),
        })  # no session registered: silently ignored

    def test_reconfig_with_garbage_config_ignored(self):
        sysm, a, b = build()
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        conn = a.mantts.open(
            __import__("repro.mantts.acd", fromlist=["ACD"]).ACD(
                participants=("B",)
            )
        )
        sysm.run(until=1.0)
        conn.send(b"x")
        sysm.run(until=2.0)
        key = next(iter(b.mantts._peer_sessions))
        session = b.mantts._peer_sessions[key]
        before = session.cfg
        b.mantts._on_reconfig({
            "from": key[0], "data_port": key[1], "service_port": key[2],
            "config": {"bogus": True},
        })
        assert session.cfg == before
