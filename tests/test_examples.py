"""Every example must run to completion (they contain their own asserts)."""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"
