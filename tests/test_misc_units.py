"""Miscellaneous unit coverage: SCS, presentation edges, node stats,
frame traces, analyze options."""


from repro.mantts.monitor import NetworkState
from repro.mantts.scs import SCS
from repro.mantts.tsc import TSC
from repro.netsim.frame import Frame
from repro.netsim.profiles import ethernet_10, star
from repro.tko.config import SessionConfig
from repro.unites.analyze import compare
from repro.unites.present import render_csv, render_table


class TestSCS:
    def _scs(self):
        return SCS(config=SessionConfig(), tsc=TSC.NONREALTIME_NONISOCHRONOUS)

    def test_notes_accumulate(self):
        scs = self._scs()
        scs.note("first")
        scs.note("second")
        assert scs.rationale == ["first", "second"]

    def test_describe_includes_tsc(self):
        assert "non-real-time" in self._scs().describe()

    def test_negotiable_parameters(self):
        n = self._scs().negotiable()
        assert set(n) == {"window", "rate_pps", "segment_size", "fec_k",
                          "fec_r", "playout_delay"}


class TestNetworkStateHelpers:
    def test_bdp_floor_is_one(self):
        s = NetworkState("A", "B", True, 0.0, 0.0, 0.0, 1500, 0.0, 0.0, 0.0, 1)
        assert s.bandwidth_delay_pdus == 1


class TestNodeStats:
    def test_replication_counted_at_branch_points(self, sim):
        net = star(sim, ethernet_10(), ["A", "B", "C", "D"])
        for h in "BCD":
            net.attach_host(h, lambda f: None)
            net.join_group("g", h)
        net.send(Frame("A", "g", 300))
        sim.run()
        hub = net.nodes["hub"]
        assert hub.stats.forwarded == 3
        assert hub.stats.replicated == 3  # three branches from the hub

    def test_frame_trace_records_path(self, sim):
        from repro.netsim.profiles import linear_path

        net = linear_path(sim, ethernet_10(), ("A", "B"), n_switches=3)
        got = []
        net.attach_host("B", got.append)
        net.send(Frame("A", "B", 100))
        sim.run()
        assert got[0].trace == ["A", "s1", "s2", "s3", "B"]


class TestPresentEdges:
    def test_zero_and_tiny_floats(self):
        out = render_table([{"x": 0.0, "y": 1.2e-7}], ["x", "y"])
        assert "0" in out and "1.200e-07" in out

    def test_none_rendered_as_dash(self):
        out = render_table([{"x": None}], ["x"])
        assert "-" in out.splitlines()[-1]

    def test_csv_empty(self):
        assert render_csv([]) == ""


class TestCompareOptions:
    def test_custom_higher_is_better(self):
        out = compare({"score": 1.0}, {"score": 2.0},
                      higher_is_better=("score",))
        assert out["score"]["better"] == 1

    def test_tie_is_zero(self):
        out = compare({"x": 5.0}, {"x": 5.0})
        assert out["x"]["better"] == 0


class TestFinOrdering:
    def test_fin_does_not_overtake_data(self):
        """Graceful close must deliver everything queued before it."""
        from tests.conftest import TwoHosts

        w = TwoHosts()
        cfg = SessionConfig(
            connection="implicit", transmission="rate", rate_pps=2000,
            ack="none", recovery="none", sequencing="none",
        )
        w.listen(cfg)
        s = w.open(cfg)
        for i in range(20):
            s.send(bytes([i]) * 800)
        s.close()  # FIN is ordered behind the paced data
        w.sim.run(until=5.0)
        assert len(w.delivered) == 20
        assert w.rx_sessions[0].closed
