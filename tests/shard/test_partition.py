"""Partitioning and lookahead: the plan must be safe before any kernel runs."""

import pytest

from repro.netsim.network import Network
from repro.shard.partition import PartitionError, ShardPlan
from repro.sim.kernel import Simulator


def _net(links, delay=1e-3):
    sim = Simulator()
    net = Network(sim)
    for u, v in links:
        for n in (u, v):
            if n not in net.nodes:
                net.add_node(n)
    for u, v in links:
        net.add_link(u, v, bandwidth_bps=1e6, delay=delay)
    return net


class TestShardPlan:
    def test_from_groups_contiguous_blocks(self):
        plan = ShardPlan.from_groups(
            [{"a0"}, {"a1"}, {"a2"}, {"a3"}], 2
        )
        assert [plan.shard_of(f"a{g}") for g in range(4)] == [0, 0, 1, 1]

    def test_uneven_split_still_covers_every_shard(self):
        plan = ShardPlan.from_groups([{"a"}, {"b"}, {"c"}], 2)
        assert {plan.shard_of(n) for n in "abc"} == {0, 1}

    def test_duplicate_node_rejected(self):
        with pytest.raises(PartitionError):
            ShardPlan.from_groups([{"a"}, {"a"}], 2)

    def test_more_shards_than_groups_rejected(self):
        with pytest.raises(PartitionError):
            ShardPlan.from_groups([{"a"}], 2)

    def test_out_of_range_owner_rejected(self):
        with pytest.raises(PartitionError):
            ShardPlan(n_shards=2, owner={"a": 2})

    def test_unowned_node_rejected_at_boundary_scan(self):
        net = _net([("a", "b")])
        plan = ShardPlan(n_shards=2, owner={"a": 0})
        with pytest.raises(PartitionError):
            plan.boundary_links(net)


class TestLookahead:
    def test_boundary_links_are_directed_cross_pairs(self):
        net = _net([("a", "b"), ("b", "c")])
        plan = ShardPlan(n_shards=2, owner={"a": 0, "b": 0, "c": 1})
        boundary = plan.boundary_links(net)
        # bidirectional add_link creates both directions; only b<->c cross
        assert set(boundary) == {("b", "c"), ("c", "b")}
        assert boundary[("b", "c")] == (0, 1)
        assert boundary[("c", "b")] == (1, 0)

    def test_lookahead_is_min_boundary_delay(self):
        net = _net([("a", "b")], delay=7e-3)
        plan = ShardPlan(n_shards=2, owner={"a": 0, "b": 1})
        assert plan.lookahead(net) == pytest.approx(7e-3)

    def test_zero_delay_boundary_rejected_with_offender_names(self):
        net = _net([("a", "b")], delay=0.0)
        plan = ShardPlan(n_shards=2, owner={"a": 0, "b": 1})
        with pytest.raises(PartitionError, match="a->b"):
            plan.lookahead(net)

    def test_no_boundary_links_rejected(self):
        net = _net([("a", "b")])
        plan = ShardPlan(n_shards=2, owner={"a": 0, "b": 0, "z": 1})
        with pytest.raises(PartitionError):
            plan.lookahead(net)
