"""Sharded ≡ serial: the load-bearing guarantee of the parallel kernel.

One seed, one world.  Splitting the grouped churn topology across 2 or 4
kernel processes must reproduce the serial run bit-for-bit on every
receiver-observable quantity — the per-connection delivery digests, the
establishment/close/reopen counts, peak concurrency, and the final
simulated time.  These are the same identity fields the scale benchmark
gates in CI.
"""

import pytest

from repro.core.churn import (
    GroupedChurnScenario,
    grouped_identity_fields,
    merge_conn_digests,
    run_grouped_churn,
    run_sharded_churn,
)
from repro.shard.coordinator import ShardCoordinator, ShardSyncError

N = 48          # small but real: all four classes, crosses in every group
GROUPS = 4
SEED = 11


@pytest.fixture(scope="module")
def serial():
    return run_grouped_churn(n_connections=N, n_groups=GROUPS, seed=SEED)


class TestSerialGroupedScenario:
    def test_population_fully_processed(self, serial):
        assert serial["failed"] == 0
        assert serial["established"] > N          # reopens add extra opens
        assert serial["closed"] == serial["established"]
        assert serial["delivered"] > 0

    def test_serial_rerun_is_bit_identical(self, serial):
        again = run_grouped_churn(n_connections=N, n_groups=GROUPS, seed=SEED)
        assert grouped_identity_fields(again) == grouped_identity_fields(serial)

    def test_cross_connections_exist_in_every_group(self):
        s = GroupedChurnScenario(n_connections=N, n_groups=GROUPS, seed=SEED)
        crossing = {
            i % GROUPS for i in range(N)
            if s._responder_of(i).startswith("R")
        }
        assert crossing == set(range(GROUPS))


class TestShardedIdentity:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_sharded_matches_serial_digest(self, serial, n_shards):
        sharded = run_sharded_churn(
            n_connections=N, n_shards=n_shards, n_groups=GROUPS, seed=SEED,
            recv_timeout=120.0,
        )
        assert grouped_identity_fields(sharded) == grouped_identity_fields(serial)
        coord = sharded["coordinator"]
        assert coord["epochs"] > 0
        assert coord["cross_frames"] > 0          # the boundary was exercised

    def test_sharded_run_balances_every_shard_pool(self, serial):
        sharded = run_sharded_churn(
            n_connections=N, n_shards=2, n_groups=GROUPS, seed=SEED,
            recv_timeout=120.0,
        )
        for r in sharded["shards"]:
            # every pooled wire reference acquired in the worker process
            # was released — gateway egress included
            assert r["pdu_acquired"] == r["pdu_recycled"] > 0
            # nothing that must stay local crossed the pipe
            assert r["shard_refused_multicast"] == 0
            assert r["shard_refused_heartbeat"] == 0
            assert r["shard_encode_errors"] == 0
            assert r["shard_frames_out"] > 0

    def test_cross_shard_frame_conservation(self, serial):
        sharded = run_sharded_churn(
            n_connections=N, n_shards=2, n_groups=GROUPS, seed=SEED,
            recv_timeout=120.0,
        )
        out = sum(r["shard_frames_out"] for r in sharded["shards"])
        arrived = sum(r["shard_frames_in"] for r in sharded["shards"])
        # everything shipped is delivered, except frames generated in the
        # final stretch (arrival > until, provably unexecuted serially too)
        assert 0 <= out - arrived <= 4
        assert arrived <= out


class TestDigestAssembly:
    def test_merge_is_order_insensitive(self):
        a = {3: "aa", 1: "bb"}
        b = {1: "bb", 3: "aa"}
        assert merge_conn_digests(a) == merge_conn_digests(b)

    def test_merge_detects_double_delivery(self):
        from repro.core.churn import merge_sharded_metrics

        shard = {
            "mode": "coalesced", "n_connections": 1, "n_groups": 1,
            "established": 1, "failed": 0, "closed": 1, "reopened": 0,
            "delivered": 1, "peak_concurrent": 1, "conn_digests": {0: "x"},
            "final_time": 1.0, "events_dispatched": 10,
        }
        with pytest.raises(ValueError, match="two shards"):
            merge_sharded_metrics([shard, dict(shard)], {})


class TestCoordinatorValidation:
    def test_rejects_degenerate_parameters(self):
        for kw in (
            dict(n_shards=1, until=1.0, lookahead=1e-3),
            dict(n_shards=2, until=1.0, lookahead=0.0),
            dict(n_shards=2, until=0.0, lookahead=1e-3),
        ):
            with pytest.raises(ValueError):
                ShardCoordinator(builder=None, builder_kw={}, **kw)

    def test_sync_error_is_a_runtime_error(self):
        assert issubclass(ShardSyncError, RuntimeError)
