"""Cross-shard transit edges: what the gateway refuses, and what it frees.

The egress contract under test is the same one the real transport
substrates honour: once a frame reaches the send boundary, its pooled
wire reference is *consumed* — on success, on refusal, and on encode
failure alike — because no receive path in this process will ever see
it again.
"""

import types

import pytest

from repro.netsim.frame import Frame, encode_frame
from repro.netsim.network import Network
from repro.shard.gateway import GatewayLink, ShardGateway, make_boundary
from repro.sim.kernel import Simulator
from repro.tko.pdu import PDU_POOL, PduType


def _world():
    sim = Simulator()
    net = Network(sim)
    net.add_node("A")
    net.add_node("B")
    net.add_link("A", "B", bandwidth_bps=1e6, delay=2e-3, bidirectional=False)
    gw = ShardGateway(sim, net, shard_id=0)
    link = make_boundary(net.links[("A", "B")], gw, dst_shard=1, far_node="B")
    return sim, net, gw, link


def _pooled_pdu():
    return PDU_POOL.acquire(PduType.DATA, conn_id=1, src_port=1, dst_port=2)


class TestEgressRefusals:
    def test_multicast_refused_and_payload_released(self):
        _sim, _net, gw, link = _world()
        pdu = _pooled_pdu()
        frame = Frame("A", "g", 100, payload=pdu, multicast_dsts=["B", "C"])
        r0 = PDU_POOL.recycled
        gw.ship(link, frame)
        assert gw.stats.refused_multicast == 1
        assert gw.stats.frames_out == 0
        assert not gw.drain_outbox()
        assert PDU_POOL.recycled == r0 + 1  # the wire reference was consumed

    def test_heartbeat_refused_and_counted(self):
        _sim, _net, gw, link = _world()
        frame = Frame("A", "B", 64)
        frame.heartbeat = True
        gw.ship(link, frame)
        assert gw.stats.refused_heartbeat == 1
        assert gw.stats.frames_out == 0
        assert not gw.drain_outbox()

    def test_encode_failure_releases_pooled_payload(self):
        _sim, _net, gw, link = _world()
        pdu = _pooled_pdu()
        pdu.options = {"poison": object()}  # not JSON-encodable
        frame = Frame("A", "B", 100, payload=pdu)
        a0, r0 = PDU_POOL.acquired, PDU_POOL.recycled
        gw.ship(link, frame)
        assert gw.stats.encode_errors == 1
        assert gw.stats.frames_out == 0
        assert not gw.drain_outbox()
        assert (PDU_POOL.acquired - a0, PDU_POOL.recycled - r0) == (0, 1)


class TestEgressSuccess:
    def test_shipped_frame_is_stamped_routed_and_released(self):
        sim, _net, gw, link = _world()
        pdu = _pooled_pdu()
        frame = Frame("A", "B", 100, payload=pdu)
        r0 = PDU_POOL.recycled
        gw.ship(link, frame)
        assert PDU_POOL.recycled == r0 + 1
        [(dst_shard, message)] = gw.drain_outbox()
        arrival, priority, src_shard, seq, ingress, blob = message
        assert dst_shard == 1
        assert arrival == pytest.approx(sim.now + link.delay)
        assert (src_shard, seq, ingress) == (0, 0, "B")
        assert gw.stats.frames_out == 1
        assert gw.stats.bytes_out == len(blob)
        assert not gw.drain_outbox()  # drained exactly once

    def test_egress_sequence_increments_per_frame(self):
        _sim, _net, gw, link = _world()
        for _ in range(3):
            gw.ship(link, Frame("A", "B", 64, payload=_pooled_pdu()))
        seqs = [m[3] for _dst, m in gw.drain_outbox()]
        assert seqs == [0, 1, 2]


class TestIngress:
    def test_inject_decodes_fresh_unpooled_pdu_at_stamped_arrival(self):
        sim, _net, gw, link = _world()
        gw.ship(link, Frame("A", "B", 100, payload=_pooled_pdu()))
        [(_dst, message)] = gw.drain_outbox()

        received = []
        far_sim = Simulator()
        stub = types.SimpleNamespace(
            receive=lambda f: received.append((far_sim.now, f)))
        far_net = types.SimpleNamespace(nodes={"B": stub})
        far_gw = ShardGateway(far_sim, far_net, shard_id=1)
        a0 = PDU_POOL.acquired
        far_gw.inject([message])
        far_sim.run()
        assert far_gw.stats.frames_in == 1
        [(when, frame)] = received
        assert when == pytest.approx(message[0])
        assert frame.payload is not None and frame.payload.pooled is False
        assert PDU_POOL.acquired == a0  # decode never touches the pool

    def test_inject_order_is_message_content_not_pipe_order(self):
        received = []
        sim = Simulator()
        stub = types.SimpleNamespace(receive=lambda f: received.append(f.src))
        net = types.SimpleNamespace(nodes={"B": stub})
        gw = ShardGateway(sim, net, shard_id=1)

        def msg(arrival, src_shard, seq, src_name):
            blob = encode_frame(Frame(src_name, "B", 64))
            return (arrival, 5, src_shard, seq, "B", blob)

        # delivered over the pipe in scrambled order; same arrival time
        gw.inject([msg(1e-3, 1, 7, "late"), msg(1e-3, 0, 3, "early")])
        sim.run()
        assert received == ["early", "late"]  # (src_shard, seq) tiebreak


class TestBoundaryConversion:
    def test_make_boundary_preserves_link_state(self):
        sim = Simulator()
        net = Network(sim)
        net.add_node("A")
        net.add_node("B")
        net.add_link("A", "B", bandwidth_bps=1e6, delay=3e-3,
                     bidirectional=False)
        link = net.links[("A", "B")]
        link.stats.enqueued = 17
        gw = ShardGateway(sim, net, shard_id=0)
        out = make_boundary(link, gw, dst_shard=1, far_node="B")
        assert out is link and isinstance(link, GatewayLink)
        assert link.stats.enqueued == 17
        assert link.delay == pytest.approx(3e-3)
        assert (link.gateway, link.dst_shard, link.far_node) == (gw, 1, "B")
