"""Wire-level liveness: heartbeats, dead-peer detection, and the
adaptation hand-off (ISSUE 8 tentpole, part 2).

All detector unit tests run two loopback worlds on one
:class:`~repro.sim.clock.SteppedClock` with ``poll=0`` — fully
deterministic, no wall sleeps.  The acceptance test at the bottom closes
the whole loop the ISSUE specifies: a silenced peer is detected within
``interval × miss_budget``, surfaces as a sticky ``ECONNRESET`` on bound
endpoints, and drives the unmodified monitor → AdaptationController
ladder to a teardown with a flight-recorder dump.
"""

from __future__ import annotations

import pytest

from repro.sim.clock import SteppedClock
from repro.transport import LivenessConfig, PeerLiveness, loopback_pair
from repro.transport.liveness import heartbeat_frame

_CFG = LivenessConfig(interval=0.2, miss_budget=2)


def _pair(dt=0.005, seed=2):
    clock = SteppedClock(dt=dt)
    ta, tb = loopback_pair(seed=seed, clock=clock)
    return clock, ta, tb


def _attach(ta, tb):
    got_a, got_b = [], []
    ta.network.attach_host("A", got_a.append)
    tb.network.attach_host("B", got_b.append)
    return got_a, got_b


def _run(ta, horizon, stop_when=None):
    ta.run(until=ta.clock.peek() + horizon, stop_when=stop_when, poll=0)


# ----------------------------------------------------------------------
# config and frame shape
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kwargs", [
    {"interval": 0.0},
    {"interval": -1.0},
    {"miss_budget": 0},
])
def test_config_rejects_nonsense(kwargs):
    with pytest.raises(ValueError):
        LivenessConfig(**kwargs)


def test_deadline_is_interval_times_budget():
    assert LivenessConfig(interval=0.5, miss_budget=3).deadline == 1.5


def test_heartbeat_frame_is_a_payloadless_beacon():
    f = heartbeat_frame("A", "B", 1.0)
    assert f.heartbeat and f.payload is None
    assert (f.src, f.dst) == ("A", "B")


# ----------------------------------------------------------------------
# the detector
# ----------------------------------------------------------------------

def test_mutual_heartbeats_keep_both_peers_alive():
    _clock, ta, tb = _pair()
    _attach(ta, tb)
    la = PeerLiveness(ta, "A", _CFG)
    lb = PeerLiveness(tb, "B", _CFG)
    la.watch("B")
    lb.watch("A")
    la.start()
    lb.start()
    _run(ta, 5 * _CFG.deadline)
    assert not la.is_dead("B")
    assert not lb.is_dead("A")
    assert ta.network.frames_sent > 0 and tb.network.frames_sent > 0
    ta.close()
    tb.close()


def test_heartbeats_never_reach_host_handlers():
    _clock, ta, tb = _pair()
    got_a, got_b = _attach(ta, tb)
    la = PeerLiveness(ta, "A", _CFG)
    la.watch("B")
    la.start()
    # B has no liveness installed: beacons must still be consumed
    _run(ta, 4 * _CFG.interval)
    assert got_b == [] and got_a == []
    assert tb.network.frames_delivered == 0  # consumed pre-demux
    ta.close()
    tb.close()


def test_silent_peer_dies_within_the_budget_and_loses_routes():
    clock, ta, tb = _pair()
    _attach(ta, tb)
    la = PeerLiveness(ta, "A", _CFG)
    la.watch("B")
    la.start()
    deaths = []
    la.on_death(lambda peer: deaths.append((peer, clock.peek())))
    t0 = clock.peek()
    _run(ta, 10 * _CFG.deadline, stop_when=lambda: la.is_dead("B"))
    assert la.is_dead("B")
    assert [d[0] for d in deaths] == ["B"]
    # detected within interval × miss_budget, plus timer granularity
    assert deaths[0][1] - t0 <= _CFG.deadline + 2 * _CFG.interval
    # the fabric now answers "no route": the monitor's unreachable signal
    assert ta.network.route("A", "B") is None
    assert ta.network.path_links("A", "B") == []
    ta.close()
    tb.close()


def test_dead_peer_resets_bound_endpoints_sticky():
    _clock, ta, tb = _pair()
    _attach(ta, tb)
    la = PeerLiveness(ta, "A", _CFG)
    la.watch("B")
    la.start()
    ep, _peer_ep = ta.pair()
    la.bind_endpoint("B", ep)
    _run(ta, 10 * _CFG.deadline, stop_when=lambda: la.is_dead("B"))
    assert ep.recv(timeout=0.01).reset
    assert ep.recv(timeout=0.01).reset  # sticky, per the recv contract
    ta.close()
    tb.close()


def test_revival_reopens_routes_but_not_conversations():
    _clock, ta, tb = _pair()
    _attach(ta, tb)
    la = PeerLiveness(ta, "A", _CFG)
    la.watch("B")
    la.start()
    ep, _peer_ep = ta.pair()
    la.bind_endpoint("B", ep)
    _run(ta, 10 * _CFG.deadline, stop_when=lambda: la.is_dead("B"))
    assert la.is_dead("B")
    # B comes back: its own detector starts beaconing
    lb = PeerLiveness(tb, "B", _CFG)
    lb.watch("A")
    lb.start()
    _run(ta, 10 * _CFG.interval, stop_when=lambda: not la.is_dead("B"))
    assert not la.is_dead("B")
    assert ta.network.route("A", "B") == ["A", "B"]
    # the wire healed; the conversation did not
    assert ep.recv(timeout=0.01).reset
    ta.close()
    tb.close()


def test_unwatched_peers_carry_no_lease():
    _clock, ta, tb = _pair()
    _attach(ta, tb)
    la = PeerLiveness(ta, "A", _CFG)
    la.note_heard("stranger")
    assert "stranger" not in la.last_heard
    la.start()
    _run(ta, 4 * _CFG.deadline)
    assert la.dead == set()  # nothing watched, nothing to kill
    ta.close()
    tb.close()


def test_liveness_requires_a_fabric():
    from repro.transport import SimBackend

    with pytest.raises(RuntimeError):
        PeerLiveness(SimBackend(), "A", _CFG)


# ----------------------------------------------------------------------
# acceptance: silence → detection → adaptation ladder → flight dump
# ----------------------------------------------------------------------

def test_silenced_peer_drives_adaptation_teardown_and_flight_dump():
    from repro.core.system import AdaptiveSystem
    from repro.mantts.acd import ACD
    from repro.unites.obs import AUDIT

    AUDIT.reset()
    AUDIT.enable(window=0.25, warmup_windows=1, loss_grace=10.0)
    clock = SteppedClock(dt=2e-4)
    ta, tb = loopback_pair(seed=9, clock=clock)
    try:
        sys_a = AdaptiveSystem(seed=1, transport=ta)
        sys_b = AdaptiveSystem(seed=2, transport=tb)
        a = sys_a.node("A", mips=400.0)
        b = sys_b.node("B", mips=400.0)
        b.mantts.register_service(7200, on_deliver=lambda d, m: None)

        outcome = {}
        conn = a.mantts.open(
            ACD(participants=("B",), service_port=7200),
            on_connected=lambda c: outcome.setdefault("connected", True),
            on_failed=lambda r: outcome.setdefault("failed", r),
            adaptation={"unreachable_after": 1, "max_teardown_retries": 1},
        )
        sys_a.run(until=clock.peek() + 30.0,
                  stop_when=lambda: bool(outcome), poll=0)
        assert outcome.get("connected"), f"negotiation failed: {outcome!r}"
        assert conn.adaptation is not None

        cfg = LivenessConfig(interval=0.2, miss_budget=2)
        la = PeerLiveness(ta, "A", cfg)
        lb = PeerLiveness(tb, "B", cfg)
        la.watch("B")
        lb.watch("A")
        la.start()
        lb.start()

        # healthy period: mutual beacons, no deaths, no ladder action
        sys_a.run(until=clock.peek() + 3 * cfg.deadline, poll=0)
        assert not la.is_dead("B")

        # silence B: its beacons stop; the established conversation is
        # idle, so A's only evidence of B's life disappears
        lb.stop()
        t_silence = clock.peek()
        sys_a.run(until=clock.peek() + 30.0, poll=0,
                  stop_when=lambda: conn.session is not None
                  and conn.session.closed)

        assert la.is_dead("B")
        death_t = la.last_heard["B"]  # lease froze at B's last beacon
        assert clock.peek() - t_silence >= cfg.deadline  # no early call
        assert death_t <= t_silence + cfg.interval

        actions = [ev[1] for ev in conn.adaptation.events]
        assert "teardown" in actions, f"ladder never gave up: {actions}"
        assert conn.session.closed

        dumps = [d for d in AUDIT.dumps
                 if d.get("trigger", {}).get("kind") == "abnormal-teardown"]
        assert dumps, (
            f"no teardown flight dump; kinds="
            f"{[d.get('trigger', {}).get('kind') for d in AUDIT.dumps]}")
    finally:
        AUDIT.reset()
        ta.close()
        tb.close()
