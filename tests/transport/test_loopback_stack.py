"""Two full ADAPTIVE systems over the in-process loopback substrate.

MANTTS negotiates across the fabric pair, TKO transfers data through the
versioned wire codec, and the PDU pool balances when the world quiesces
(the ISSUE 7 satellite's leak assertion) — all in wall-clock time, no
sockets, no subprocesses.
"""

from __future__ import annotations

import hashlib

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.netsim.frame import Frame
from repro.tko.message import TKOMessage
from repro.tko.pdu import PDU_POOL, PduType
from repro.transport import LoopbackBackend, loopback_pair

SERVICE_PORT = 7000
#: hard wall-clock caps so a wedged substrate fails fast, never hangs CI
CONNECT_CAP = 20.0
TRANSFER_CAP = 20.0


def _digest(chunks) -> str:
    h = hashlib.sha256()
    for c in sorted(chunks):
        h.update(c)
    return h.hexdigest()


def test_two_systems_negotiate_transfer_and_balance_pool():
    pool0 = (PDU_POOL.acquired, PDU_POOL.recycled)
    ta, tb = loopback_pair(seed=5)
    sys_a = AdaptiveSystem(seed=1, transport=ta)
    sys_b = AdaptiveSystem(seed=2, transport=tb)
    a = sys_a.node("A", mips=400.0)
    b = sys_b.node("B", mips=400.0)

    got = []
    b.mantts.register_service(SERVICE_PORT, on_deliver=lambda d, m: got.append(d))

    outcome = {}
    conn = a.mantts.open(
        ACD(participants=("B",), service_port=SERVICE_PORT),
        on_connected=lambda c: outcome.setdefault("connected", True),
        on_failed=lambda reason: outcome.setdefault("failed", reason),
    )
    sys_a.run(until=ta.clock.now() + CONNECT_CAP, stop_when=lambda: bool(outcome))
    assert outcome.get("connected"), f"negotiation failed: {outcome!r}"

    payloads = [f"{i:02d}:".encode() + bytes(range(256)) * 4 for i in range(8)]
    for p in payloads:
        conn.send(p)
    sys_a.run(until=ta.clock.now() + TRANSFER_CAP,
              stop_when=lambda: len(got) == len(payloads))
    assert len(got) == len(payloads), f"only {len(got)}/{len(payloads)} delivered"
    assert _digest(got) == _digest(payloads)

    conn.close()
    sys_a.run(until=ta.clock.now() + 1.0)

    # frames genuinely crossed the codec fabric
    assert ta.network.frames_sent > 0
    assert tb.network.frames_delivered > 0
    # the quiesced world returned every pooled shell it took
    d_acquired = PDU_POOL.acquired - pool0[0]
    d_recycled = PDU_POOL.recycled - pool0[1]
    assert d_recycled == d_acquired, (
        f"PDU pool leak: {d_acquired} acquired, {d_recycled} recycled"
    )
    ta.close()
    tb.close()


def test_wire_ref_released_on_unroutable_destination():
    backend = LoopbackBackend()
    fabric = backend.network
    pdu = PDU_POOL.acquire(PduType.DATA, 1)
    pdu.message = TKOMessage(b"doomed payload")
    pdu.retain()  # the wire ref, as the executor takes before framing
    r0, e0 = PDU_POOL.recycled, fabric.send_errors
    fabric.send(Frame("A", "nowhere", size=64, payload=pdu))
    pdu.release()  # the creator ref
    assert fabric.send_errors == e0 + 1
    assert PDU_POOL.recycled == r0 + 1  # both refs gone -> shell recycled


def test_wire_ref_released_on_encode_failure():
    backend = LoopbackBackend()
    fabric = backend.network
    pdu = PDU_POOL.acquire(PduType.DATA, 1)
    pdu.options = {"callback": object()}  # not JSON-encodable
    pdu.retain()
    r0, e0 = PDU_POOL.recycled, fabric.send_errors
    fabric.send(Frame("A", "B", size=64, payload=pdu))
    pdu.release()
    assert fabric.send_errors == e0 + 1
    assert PDU_POOL.recycled == r0 + 1
