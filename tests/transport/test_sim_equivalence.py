"""SimBackend bit-identity: the acceptance-criterion equivalence test.

The churn scenario's identity fields (delivery digest above all) must be
byte-for-byte identical whether frames take the pre-refactor call path
(``Host.transmit`` straight into ``Network.send``) or cross the transport
backend interface (``SimBackend(route_frames=True)``'s counting proxy).
"""

from __future__ import annotations

from repro.core.churn import identity_fields, run_churn
from repro.core.system import AdaptiveSystem
from repro.netsim.profiles import ethernet_10, linear_path
from repro.transport import SimBackend


def test_churn_digest_identical_through_backend_interface():
    baseline = identity_fields(run_churn(25, mode="coalesced", seed=7))
    backend = SimBackend(route_frames=True)
    routed = identity_fields(
        run_churn(25, mode="coalesced", seed=7, transport=backend)
    )
    assert routed == baseline
    # and the interface demonstrably carried the traffic
    assert backend.frames_routed > 0


def test_default_system_uses_sim_backend_with_raw_network():
    system = AdaptiveSystem(seed=3)
    assert isinstance(system.transport, SimBackend)
    assert system.sim is system.transport.simulator
    assert system.clock.domain == "sim"
    net = linear_path(system.sim, ethernet_10(), ("A", "B"), rng=system.rng)
    # default adopt is the identity: the very same Network object, so the
    # pre-refactor wiring is preserved object-for-object
    assert system.attach_network(net) is net
    assert system.network is net


def test_sim_clock_reads_simulator_time():
    system = AdaptiveSystem(seed=0)
    assert system.clock.now() == system.sim.now == 0.0
    system.sim.schedule(1.5, lambda: None)
    system.run(until=2.0)
    assert system.clock.now() == system.sim.now == 2.0
    assert system.clock.timestamp_ns() == int(2.0e9)
