"""UDP substrate hardening (ISSUE 8 satellites): peer-address rebind
learning, idempotent shutdown, and keepalive recv-contract conformance.

Real sockets, real threads, 127.0.0.1 only — every wait is bounded so a
wedged loop fails the test instead of hanging CI.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.netsim.frame import Frame
from repro.transport import UdpBackend

#: generous bound for cross-thread/socket effects on a slow CI box
_PATIENCE = 5.0


def _wait_for(cond, timeout=_PATIENCE):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(0.01)
    return cond()


@pytest.fixture
def anchor():
    """The stable backend whose fabric learns peer addresses."""
    b = UdpBackend(local_name="anchor", seed=1)
    b.network.attach_host("anchor", lambda f: None)
    yield b
    b.close()


def test_peer_address_relearned_on_rebind(anchor):
    def _talker():
        t = UdpBackend(local_name="talker", seed=2,
                       peers={"anchor": ("127.0.0.1", anchor.port)})
        return t

    t1 = _talker()
    t1.network.send(Frame("talker", "anchor", 64))
    assert _wait_for(lambda: "talker" in anchor.network.peers)
    first = anchor.network.peers["talker"]
    assert anchor.network.peer_rebinds == 0  # first sighting is not a rebind
    t1.close()

    # the peer process restarts on a fresh ephemeral port
    t2 = _talker()
    assert t2.port != t1.port or True  # ports are kernel-chosen; either way
    t2.network.send(Frame("talker", "anchor", 64))
    assert _wait_for(lambda: anchor.network.peers.get("talker") != first)
    assert anchor.network.peers["talker"][1] == t2.port
    assert anchor.network.peer_rebinds == 1

    # replies now reach the new incarnation, not the stale address
    # (delivery lands on t2's driver thread, so drive it here)
    seen = []
    t2.network.attach_host("talker", seen.append)
    anchor.network.send(Frame("anchor", "talker", 64))
    t2.run(until=t2.clock.now() + _PATIENCE, stop_when=lambda: bool(seen))
    assert seen and seen[0].src == "anchor"
    t2.close()


def test_same_address_resend_is_not_a_rebind(anchor):
    t = UdpBackend(local_name="steady", seed=3,
                   peers={"anchor": ("127.0.0.1", anchor.port)})
    for _ in range(3):
        t.network.send(Frame("steady", "anchor", 64))
    assert _wait_for(lambda: "steady" in anchor.network.peers)
    time.sleep(0.1)
    assert anchor.network.peer_rebinds == 0
    t.close()


def test_close_is_idempotent_and_releases_the_loop():
    b = UdpBackend(local_name="closer", seed=4)
    a, _ = b.pair()
    b.close()
    assert b._loop.is_closed()
    assert not b._thread.is_alive()
    b.close()  # second call must be a clean no-op
    assert b._loop.is_closed()
    # endpoint I/O after shutdown drops like the wire, never raises
    a.send(b"late datagram")
    a.close()


def test_close_while_driver_is_running():
    b = UdpBackend(local_name="runner", seed=5)
    started = threading.Event()

    def _drive():
        started.set()
        b.run(until=b.clock.now() + 30.0)

    t = threading.Thread(target=_drive, daemon=True)
    t.start()
    assert started.wait(_PATIENCE)
    time.sleep(0.1)
    b.close()
    t.join(timeout=_PATIENCE)
    assert not t.is_alive(), "close() did not end a mid-run driver"
    assert b._loop.is_closed()


def test_keepalive_refreshes_lease_but_recv_still_times_out():
    b = UdpBackend(local_name="keeper", seed=6)
    try:
        a, peer = b.pair()
        r = a.recv(timeout=0.2)
        assert r.timed_out
        heard0 = a.last_heard
        time.sleep(0.05)
        peer.keepalive()
        assert _wait_for(lambda: a.last_heard > heard0)
        # the lease moved, but a keepalive is not data: the contract says
        # a blocked recv over a beacon-only peer still times out
        assert a.recv(timeout=0.2).timed_out
        # and real data still flows after beacons
        peer.send(b"actual bytes")
        got = a.recv(timeout=_PATIENCE)
        assert got.ok and got.data == b"actual bytes"
    finally:
        b.close()
