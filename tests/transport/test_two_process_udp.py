"""The acceptance-criterion run: two OS processes over real UDP.

Spawns ``examples/two_process_udp_demo.py`` in orchestrator mode, which
itself spawns the responder and initiator as separate Python processes:
MANTTS negotiates over real datagrams, TKO transfers a checksummed
payload with zero loss on loopback, and the responder's ``/metrics``
endpoint serves ``transport_*`` counters live during the run.  A hard
subprocess timeout guarantees a hung socket can never wedge CI.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[2]
DEMO = REPO / "examples" / "two_process_udp_demo.py"
#: hard wall-clock cap for the whole three-process run
HARD_TIMEOUT = 180.0


def test_two_process_transfer_with_live_metrics():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO / "src"), env.get("PYTHONPATH")) if p)
    try:
        proc = subprocess.run(
            [sys.executable, str(DEMO)],
            capture_output=True, text=True, env=env, timeout=HARD_TIMEOUT)
    except subprocess.TimeoutExpired as exc:
        raise AssertionError(
            f"two-process UDP run exceeded {HARD_TIMEOUT}s hard timeout; "
            f"partial output: {exc.stdout!r}") from exc
    assert proc.returncode == 0, (
        f"demo failed (rc={proc.returncode}):\n{proc.stdout}\n{proc.stderr}")
    out = proc.stdout
    assert "zero-loss transfer" in out
    assert "matches on both sides" in out
    # the live telemetry plane really served transport counters mid-run
    assert "transport_frames_sent_total" in out
    assert "transport_frames_delivered_total" in out
