"""The deterministic impairment fabric (ISSUE 8 tentpole, part 1).

Every datagram's fate must be a pure function of (spec seed, send
index); the wrapper must preserve the inner fabric's pool discipline no
matter what it drops; and each impairment kind must land with the right
semantics (loss = silence, wire corruption = receiver-side decode drop,
mark corruption = delivered-but-damaged, reorder/jitter = sim-scheduled
hold-back).
"""

from __future__ import annotations

import pytest

from repro.netsim.frame import Frame
from repro.sim.clock import SteppedClock
from repro.tko.message import TKOMessage
from repro.tko.pdu import PDU_POOL, PduType
from repro.transport import ImpairmentSpec, LoopbackBackend
from repro.transport.impair import ImpairedFabric


def _impaired_backend(spec, dt=0.01, seed=3):
    """One backend, two local hosts, impaired sends A->B."""
    backend = LoopbackBackend(clock=SteppedClock(dt=dt), seed=seed)
    imp = backend.impair(spec)
    got = []
    imp.attach_host("A", lambda f: None)
    imp.attach_host("B", got.append)
    return backend, imp, got


def _pump(backend, horizon=2.0):
    """Run the driver until the stepped timeline crosses ``horizon``."""
    backend.run(until=backend.clock.peek() + horizon, poll=0)


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kwargs", [
    {"loss": 1.5},
    {"loss": -0.1},
    {"dup": 2.0},
    {"corrupt": -1.0},
    {"reorder": 1.01},
    {"corrupt_mode": "sideways"},
    {"jitter": -0.5},
    {"reorder_delay": -0.01},
])
def test_spec_rejects_nonsense(kwargs):
    with pytest.raises(ValueError):
        ImpairmentSpec(**kwargs)


def test_healthy_spec_is_a_passthrough():
    backend, imp, got = _impaired_backend(ImpairmentSpec())
    for i in range(4):
        imp.send(Frame("A", "B", 64 + i))
    backend.driver.step()
    assert len(got) == 4
    assert all(line.endswith("pass") for line in imp.trace)
    backend.close()


# ----------------------------------------------------------------------
# determinism: decisions depend only on (seed, index)
# ----------------------------------------------------------------------

def test_same_seed_same_frames_same_trace():
    spec = ImpairmentSpec(seed=7, loss=0.4, dup=0.3, reorder=0.2)
    traces = []
    for _ in range(2):
        backend, imp, _ = _impaired_backend(spec)
        for _i in range(50):
            imp.send(Frame("A", "B", 128))
        _pump(backend)
        traces.append((list(imp.trace), imp.trace_digest()))
        backend.close()
    assert traces[0] == traces[1]
    # the mix is genuinely mixed, not all-drop or all-pass
    decisions = [ln.split()[-1] for ln in traces[0][0]]
    assert any(d == "drop" for d in decisions)
    assert any(d != "drop" for d in decisions)


def test_different_seed_diverges():
    a = ImpairmentSpec(seed=1, loss=0.5)
    b = ImpairmentSpec(seed=2, loss=0.5)
    digests = []
    for spec in (a, b):
        backend, imp, _ = _impaired_backend(spec)
        for _i in range(40):
            imp.send(Frame("A", "B", 128))
        backend.driver.step()
        digests.append(imp.trace_digest())
        backend.close()
    assert digests[0] != digests[1]


# ----------------------------------------------------------------------
# each impairment kind
# ----------------------------------------------------------------------

def test_loss_drops_before_dispatch():
    backend, imp, got = _impaired_backend(ImpairmentSpec(loss=1.0))
    for _i in range(5):
        imp.send(Frame("A", "B", 64))
    backend.driver.step()
    assert got == []
    assert imp.inner.frames_sent == 0  # dropped pre-dispatch, not counted
    assert all(line.endswith("drop") for line in imp.trace)
    backend.close()


def test_dup_delivers_two_copies():
    backend, imp, got = _impaired_backend(ImpairmentSpec(dup=1.0))
    imp.send(Frame("A", "B", 64))
    backend.driver.step()
    assert len(got) == 2
    assert imp.inner.frames_sent == 2
    assert "dup" in imp.trace[0]
    backend.close()


def test_wire_corruption_is_receiver_side_loss():
    backend, imp, got = _impaired_backend(
        ImpairmentSpec(corrupt=1.0, corrupt_mode="wire"))
    for _i in range(3):
        imp.send(Frame("A", "B", 64))
    backend.driver.step()
    # the damaged datagram left the sender (counted) but the receiving
    # codec refused it: upper layers experience pure loss
    assert got == []
    assert imp.inner.frames_sent == 3
    assert all("corrupt-wire" in line for line in imp.trace)
    backend.close()


def test_mark_corruption_arrives_damaged_but_intact():
    backend, imp, got = _impaired_backend(
        ImpairmentSpec(corrupt=1.0, corrupt_mode="mark"))
    imp.send(Frame("A", "B", 64))
    backend.driver.step()
    assert len(got) == 1
    f = got[0]
    assert f.corrupted  # the semantic damage marker survived the CRC re-seal
    assert (f.src, f.dst) == ("A", "B")
    assert "corrupt-mark" in imp.trace[0]
    backend.close()


def test_reorder_holds_a_datagram_behind_a_later_one():
    backend, imp, got = _impaired_backend(
        ImpairmentSpec(reorder=1.0, reorder_delay=0.05))
    imp.send(Frame("A", "B", 100))   # held back 50ms
    imp.spec.reorder = 0.0           # spec is live; next send goes straight
    imp.send(Frame("A", "B", 200))
    _pump(backend)
    assert [f.size for f in got] == [200, 100]
    assert "reorder" in imp.trace[0]
    backend.close()


def test_jitter_delays_and_traces_magnitude():
    backend, imp, got = _impaired_backend(ImpairmentSpec(jitter=0.02))
    imp.send(Frame("A", "B", 64))
    assert got == []  # scheduled into the sim, not dispatched inline
    assert backend.simulator.next_event_time() is not None
    _pump(backend)
    assert len(got) == 1
    assert "jitter=" in imp.trace[0] and imp.trace[0].endswith("ms")
    backend.close()


# ----------------------------------------------------------------------
# pool discipline and delegation
# ----------------------------------------------------------------------

def test_dropped_pooled_pdu_still_releases_wire_ref():
    backend, imp, got = _impaired_backend(ImpairmentSpec(loss=1.0))
    pdu = PDU_POOL.acquire(PduType.DATA, 1)
    pdu.message = TKOMessage(b"doomed by the path")
    pdu.retain()  # the wire ref, as the executor takes before framing
    r0 = PDU_POOL.recycled
    imp.send(Frame("A", "B", 64, payload=pdu))
    pdu.release()  # the creator ref
    assert PDU_POOL.recycled == r0 + 1  # drop happened after encode+consume
    assert got == []
    backend.close()


def test_wrapper_delegates_the_network_surface():
    backend, imp, _got = _impaired_backend(ImpairmentSpec())
    assert isinstance(imp, ImpairedFabric)
    assert backend.network is imp
    assert imp.route("A", "B") == ["A", "B"]
    assert imp.path_mtu("A", "B") == imp.inner.link.mtu
    imp.join_group("g", "B")
    assert imp.group_members("g") == {"B"}
    # the liveness slot must reach the *inner* fabric: deliver() is the
    # inner's bound method and reads its own attribute
    sentinel = object()
    imp.liveness = sentinel
    assert imp.inner.liveness is sentinel
    imp.liveness = None
    backend.close()


def test_sim_backend_refuses_impairment():
    from repro.transport import SimBackend

    with pytest.raises(RuntimeError):
        SimBackend().impair(ImpairmentSpec())
