"""The shared recv-contract conformance suite (ISSUE 7 satellite).

One parametrized suite, three substrates.  Every backend's endpoint pair
must exhibit the identical CORTEX-style contract: data delivery, short
reads, EOF == 0 only after buffered data drains, ETIMEDOUT on silence,
ECONNRESET on abort (with pending data discarded) and on recv after a
local close.
"""

from __future__ import annotations

import time

import pytest

from repro.transport import (
    ECONNRESET,
    LoopbackBackend,
    SimBackend,
    UdpBackend,
)

#: wall-domain backends need a beat for cross-thread feeds to land
_SETTLE = 0.25
#: generous recv bound so a slow CI box never flakes
_PATIENCE = 5.0


@pytest.fixture(params=["sim", "loopback", "udp"])
def backend(request):
    b = {
        "sim": SimBackend,
        "loopback": LoopbackBackend,
        "udp": UdpBackend,
    }[request.param]()
    yield b
    b.close()


def _settle(backend) -> None:
    """Give wall-domain substrates time to carry in-flight control
    datagrams; the sim substrate needs none (recv pumps the kernel)."""
    if backend.clock.domain == "wall":
        time.sleep(_SETTLE)


def test_data_roundtrip(backend):
    a, b = backend.pair()
    assert a.send(b"hello substrate") == 15
    r = b.recv(timeout=_PATIENCE)
    assert r.ok
    assert r.data == b"hello substrate"


def test_short_read_preserves_order(backend):
    a, b = backend.pair()
    a.send(b"abcdef")
    got = bytearray()
    while len(got) < 6:
        r = b.recv(4, timeout=_PATIENCE)
        assert r.ok, f"expected data, got {r!r}"
        assert len(r.data) <= 4
        got += r.data
    assert bytes(got) == b"abcdef"


def test_eof_only_after_data_drained(backend):
    a, b = backend.pair()
    a.send(b"final bytes")
    a.close()
    _settle(backend)
    got = bytearray()
    while True:
        r = b.recv(timeout=_PATIENCE)
        if r.eof:
            break
        assert r.ok, f"expected data or EOF, got {r!r}"
        got += r.data
    assert bytes(got) == b"final bytes"
    # EOF is sticky
    assert b.recv(timeout=0.1).eof


def test_timeout_when_silent(backend):
    _, b = backend.pair()
    t0 = backend.clock.now()
    r = b.recv(timeout=0.2)
    assert r.timed_out
    # the substrate's own clock must have advanced past the deadline
    assert backend.clock.now() - t0 >= 0.2


def test_reset_discards_pending(backend):
    a, b = backend.pair()
    a.send(b"never seen")
    a.abort()
    _settle(backend)
    r = b.recv(timeout=_PATIENCE)
    assert r.reset, f"expected reset, got {r!r}"
    assert r.data == b""
    # reset is sticky
    assert b.recv(timeout=0.1).reset


def test_local_close_resets_own_recv_and_send(backend):
    a, _ = backend.pair()
    a.close()
    assert a.recv(timeout=0.1).reset
    assert a.send(b"late") == ECONNRESET


def test_timestamp_is_monotonic_ns(backend):
    a, b = backend.pair()
    t1 = a.timestamp()
    a.send(b"tick")
    assert b.recv(timeout=_PATIENCE).ok
    t2 = a.timestamp()
    assert isinstance(t1, int) and isinstance(t2, int)
    assert t2 >= t1
