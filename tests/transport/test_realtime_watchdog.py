"""RealtimeDriver watchdog + co-driving hygiene (ISSUE 8 tentpole part 3
and the ``drive()`` wake-aliasing satellite).

The watchdog's job: a posted callback or timer handler that blocks the
pacing loop must be *seen* — one incident per stall episode, carrying
the wedged thread's stack so the flight report answers "what was it
doing".
"""

from __future__ import annotations

import threading
import time

from repro.sim.kernel import Simulator
from repro.transport import DriverWatchdog, RealtimeDriver, drive
from repro.unites.obs.flight import analyze

import pytest


def _driver(poll=0.005) -> RealtimeDriver:
    return RealtimeDriver(Simulator(), poll=poll)


def _wait_for(cond, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(0.01)
    return cond()


# ----------------------------------------------------------------------
# drive() must not leave co-driven drivers entangled
# ----------------------------------------------------------------------

def test_drive_restores_private_wake_events():
    d1, d2 = _driver(), _driver()
    w1, w2 = d1._wake, d2._wake
    drive([d1, d2], duration=0.02)
    # regression: drive() used to alias every driver to the lead's wake
    # event forever; a later solo run() then slept on an event nobody set
    assert d1._wake is w1
    assert d2._wake is w2
    assert d1._wake is not d2._wake
    assert not d1.running and not d2.running


def test_drive_restores_wakes_even_when_a_step_raises():
    d1, d2 = _driver(), _driver()
    w2 = d2._wake
    d1.post(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
    with pytest.raises(RuntimeError):
        drive([d1, d2], duration=1.0)
    assert d2._wake is w2
    assert not d2.running


def test_post_wakes_a_solo_run_after_co_driving():
    d1, d2 = _driver(poll=2.0), _driver(poll=2.0)
    drive([d1, d2], duration=0.01, poll=0.005)
    hit = threading.Event()
    t = threading.Thread(
        target=lambda: d2.run(duration=10.0, stop_when=hit.is_set),
        daemon=True)
    t.start()
    time.sleep(0.1)
    d2.post(hit.set)  # with an aliased wake this sleeps out the 2s poll
    t0 = time.monotonic()
    t.join(timeout=5.0)
    assert not t.is_alive()
    assert time.monotonic() - t0 < 1.0, "post() failed to wake the solo run"


# ----------------------------------------------------------------------
# the watchdog
# ----------------------------------------------------------------------

def test_watchdog_rejects_nonpositive_stall():
    with pytest.raises(ValueError):
        DriverWatchdog(_driver(), stall_after=0.0)


def test_idle_driver_never_trips():
    d = _driver()
    d.last_round -= 100.0  # ancient stamp, but the loop is not running
    wd = DriverWatchdog(d, stall_after=0.05, check_every=0.02).start()
    time.sleep(0.2)
    wd.stop()
    assert wd.incidents == []


def test_wedged_loop_files_one_incident_with_the_thread_stack():
    d = _driver()
    release = threading.Event()
    incidents_cb = []
    wd = DriverWatchdog(d, stall_after=0.2, check_every=0.05,
                        on_incident=incidents_cb.append).start()
    t = threading.Thread(target=lambda: d.run(duration=10.0), daemon=True)
    t.start()
    assert _wait_for(lambda: d.running)
    d.post(release.wait, 8.0)  # the wedge: a blocking call on the loop

    assert _wait_for(lambda: wd.incidents), "stall never detected"
    inc = wd.incidents[0]
    trig = inc["trigger"]
    assert trig["kind"] == "watchdog-stall"
    assert inc["stalled_for"] >= 0.2
    assert inc["driver_thread"] == t.ident
    # the stack answers "what was it doing": the blocking wait is visible
    assert inc["driver_stack"] and "wait" in inc["driver_stack"]

    # one incident per stall episode, not one per check tick
    time.sleep(0.4)
    assert len(wd.incidents) == 1

    release.set()
    d.stop()
    t.join(timeout=5.0)
    assert not t.is_alive()

    # the incident renders through the standard flight-report path
    report = analyze(inc)
    assert "watchdog-stall" in report
    assert "driver stack at stall" in report

    # a healthy loop re-arms the watchdog: wedge it again after recovery
    # and a second episode files a second incident
    release2 = threading.Event()
    t2 = threading.Thread(target=lambda: d.run(duration=10.0), daemon=True)
    t2.start()
    assert _wait_for(lambda: d.running)
    time.sleep(0.15)  # healthy rounds reset the trip latch
    d.post(release2.wait, 8.0)
    assert _wait_for(lambda: len(wd.incidents) == 2)
    release2.set()
    d.stop()
    t2.join(timeout=5.0)
    wd.stop()
    assert len(incidents_cb) == len(wd.incidents) == 2
