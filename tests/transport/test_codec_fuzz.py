"""Seeded wire-codec fuzz (ISSUE 8 satellite).

The v2 codec carries a trailing CRC32 precisely so that a hostile path
flipping bytes can never silently re-frame a datagram.  The contract
under fuzz: for *any* mutation of a valid datagram, ``decode_frame``
either raises :class:`WireFormatError` or returns a frame whose
``(src, dst)`` match the original — a mis-decode into a different
conversation must be impossible.
"""

from __future__ import annotations

import random

import pytest

from repro.netsim.frame import (
    Frame,
    WireFormatError,
    decode_frame,
    encode_frame,
)
from repro.tko.message import TKOMessage
from repro.tko.pdu import PDU, PduType

_SEED = 0xADAB
_TRIALS = 400


def _frame(i: int = 0) -> Frame:
    pdu = PDU(
        PduType.DATA,
        42,
        src_port=7,
        dst_port=9,
        seq=i,
        ack=3,
        msg_id=1000 + i,
        window=8,
        timestamp=1.5,
        options={"config": {"recovery": "gbn"}},
        message=TKOMessage(bytes(range(256)) * 2),
    )
    f = Frame("alpha", "bravo", 1500, payload=pdu, created_at=2.25)
    return f


def _mutate(data: bytes, rng: random.Random) -> bytes:
    """One adversarial edit: byte flips, truncation, garbage extension,
    or a random splice.  Guaranteed to differ from ``data``."""
    op = rng.randrange(4)
    out = bytearray(data)
    if op == 0:  # flip 1-4 bytes
        for _ in range(rng.randrange(1, 5)):
            pos = rng.randrange(len(out))
            out[pos] ^= rng.randrange(1, 256)
        return bytes(out)
    if op == 1:  # truncate
        return bytes(out[: rng.randrange(len(out))])
    if op == 2:  # extend with garbage
        return bytes(out) + bytes(
            rng.randrange(256) for _ in range(rng.randrange(1, 9)))
    # splice a random run
    start = rng.randrange(len(out))
    run = rng.randrange(1, 17)
    repl = bytes(rng.randrange(256) for _ in range(run))
    spliced = bytes(out[:start]) + repl + bytes(out[start + run:])
    return spliced if spliced != data else spliced + b"\x00"


def test_mutations_never_misdecode_src_dst():
    rng = random.Random(_SEED)
    refused = 0
    for i in range(_TRIALS):
        original = _frame(i)
        data = encode_frame(original)
        damaged = _mutate(data, rng)
        assert damaged != data
        try:
            decoded = decode_frame(damaged)
        except WireFormatError:
            refused += 1
            continue
        # astronomically unlikely (a CRC32 collision) — but if the codec
        # accepts, it must not have re-framed the conversation
        assert (decoded.src, decoded.dst) == (original.src, original.dst)
    # the CRC must be doing real work: essentially every edit is refused
    assert refused >= _TRIALS - 1


def test_every_truncation_prefix_is_refused():
    data = encode_frame(_frame())
    for n in range(len(data)):
        with pytest.raises(WireFormatError):
            decode_frame(data[:n])


def test_single_byte_flip_reads_as_checksum_damage():
    data = bytearray(encode_frame(_frame()))
    # flip a byte inside the src-name region (past the fixed header) —
    # pre-CRC this was exactly the silent-reframe hazard
    data[len(data) // 2] ^= 0x40
    with pytest.raises(WireFormatError):
        decode_frame(bytes(data))


def test_valid_frame_roundtrips_unharmed():
    f = _frame(3)
    q = decode_frame(encode_frame(f))
    assert (q.src, q.dst, q.size) == (f.src, f.dst, f.size)
    assert q.created_at == f.created_at
    assert q.payload.seq == f.payload.seq
    assert q.payload.message.materialize() == f.payload.message.materialize()
    assert not q.heartbeat


def test_heartbeat_flag_roundtrips():
    f = Frame("alpha", "bravo", 64, created_at=1.0)
    f.heartbeat = True
    q = decode_frame(encode_frame(f))
    assert q.heartbeat
    assert q.payload is None
