"""Chaos acceptance for the real transport (ISSUE 8 acceptance gate).

The bar, verbatim from the ISSUE: a 10×2KiB checksummed transfer over an
``ImpairedFabric`` at 20% loss + reorder + duplication completes with
intact digests and zero pooled-PDU leaks, and the impairment trace is
byte-identical across two runs with the same seed.

Trace identity is asserted across two *fresh subprocesses*: the
process-global message-id counter rides the wire, so in-process reruns
shift encoded datagram lengths even though every drop/dup/delay decision
still replays exactly.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

from repro.transport.chaos import run_impaired_transfer

_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")

_CHILD = """\
import json, sys
from repro.transport.chaos import run_impaired_transfer
r = run_impaired_transfer(seed=int(sys.argv[1]))
print(json.dumps({"digest": r["trace_digest"], "delivered": r["delivered"],
                  "digest_ok": r["digest_ok"]}))
"""


def _child_run(seed: int) -> dict:
    env = dict(os.environ, PYTHONPATH=_SRC)
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, str(seed)],
        capture_output=True, text=True, timeout=120, env=env, check=True)
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_lossy_transfer_completes_with_intact_digests_and_balanced_pool():
    res = run_impaired_transfer()  # 20% loss, 10% dup, 10% reorder, both ways
    assert res["connected"], f"never connected: {res['failed']!r}"
    assert res["sent"] == res["delivered"] == 10
    assert res["digest_ok"], "payload digests diverged across the lossy path"
    d_acq, d_rec = res["pool_delta"]
    assert d_acq == d_rec, f"pooled-PDU leak: {d_acq} acquired, {d_rec} recycled"
    assert res["frames_sent"] > 20  # retransmissions genuinely happened
    # the trace recorded real hostility, not a clean path
    assert any(" drop" in line for line in res["trace"])


def test_same_seed_trace_is_byte_identical_across_runs():
    first = _child_run(1)
    second = _child_run(1)
    assert first["delivered"] == second["delivered"] == 10
    assert first["digest_ok"] and second["digest_ok"]
    assert first["digest"] == second["digest"]


def test_different_seed_trace_diverges():
    assert _child_run(1)["digest"] != _child_run(3)["digest"]


def test_harness_reports_a_clean_path_cleanly():
    from repro.transport.impair import ImpairmentSpec

    res = run_impaired_transfer(spec=ImpairmentSpec(), n_messages=3,
                                msg_size=512, seed=5)
    assert res["connected"] and res["digest_ok"]
    assert res["delivered"] == 3
    assert res["pool_delta"][0] == res["pool_delta"][1]
