"""The versioned frame wire codec: round-trip fidelity and rejection."""

from __future__ import annotations

import pytest

from repro.netsim.frame import (
    PRIO_CONTROL,
    WIRE_MAGIC,
    WIRE_VERSION,
    Frame,
    WireFormatError,
    decode_frame,
    encode_frame,
)
from repro.tko.message import TKOMessage
from repro.tko.pdu import PDU, PduType


def _data_frame() -> Frame:
    pdu = PDU(
        PduType.DATA,
        41,
        src_port=7001,
        dst_port=7000,
        seq=12,
        ack=9,
        sack=(3, 5, 7),
        msg_id=4,
        frag_index=1,
        frag_count=3,
        window=16,
        timestamp=1.25,
        options={"fec_group": 2, "piggy": {"rto": 0.25}},
        message=TKOMessage(b"\x00payload bytes\xff"),
        compact=True,
    )
    pdu.checksum = 0xDEAD
    pdu.checksum_placement = "trailer"
    pdu.aux_size = 8
    f = Frame("A", "B", size=1540, payload=pdu, priority=PRIO_CONTROL,
              created_at=2.5)
    f.hops = 3
    f.corrupted = True
    return f


def test_roundtrip_preserves_every_field():
    f = _data_frame()
    g = decode_frame(encode_frame(f))
    assert (g.src, g.dst, g.size, g.priority) == ("A", "B", 1540, PRIO_CONTROL)
    assert g.created_at == 2.5
    assert g.hops == 3
    assert g.corrupted is True
    p, q = f.payload, g.payload
    assert isinstance(q, PDU) and not q.pooled
    for field in ("conn_id", "src_port", "dst_port", "seq", "ack", "sack",
                  "msg_id", "frag_index", "frag_count", "window",
                  "timestamp", "options", "compact", "checksum",
                  "checksum_placement", "aux_size"):
        assert getattr(q, field) == getattr(p, field), field
    assert q.ptype is PduType.DATA
    assert q.message.materialize() == b"\x00payload bytes\xff"


def test_roundtrip_payloadless_control_pdu():
    pdu = PDU(PduType.SYN_ACK, 7, options={"config": {"recovery": "gbn"}})
    f = Frame("init", "resp", size=64, payload=pdu, created_at=0.0)
    q = decode_frame(encode_frame(f)).payload
    assert q.ptype is PduType.SYN_ACK
    assert q.message is None
    assert q.options == {"config": {"recovery": "gbn"}}


def test_roundtrip_opaque_payload_dropped_but_frame_survives():
    # non-PDU payloads (test doubles) are not wire-encodable content;
    # the frame envelope still round-trips
    f = Frame("A", "B", size=100, payload=None)
    g = decode_frame(encode_frame(f))
    assert g.payload is None
    assert (g.src, g.dst, g.size) == ("A", "B", 100)


def test_semantic_size_is_preserved_not_recomputed():
    # receiver-side CPU charges and audit byte accounting key off
    # frame.size as the *sender's* cost model set it
    f = _data_frame()
    encoded = encode_frame(f)
    assert decode_frame(encoded).size == f.size
    assert len(encoded) != f.size


def test_multicast_frames_refused():
    pdu = PDU(PduType.DATA, 1, message=TKOMessage(b"x"))
    f = Frame("A", "G", size=10, payload=pdu, multicast_dsts=["B", "C"])
    with pytest.raises(WireFormatError, match="multicast"):
        encode_frame(f)


def test_unencodable_options_refused():
    pdu = PDU(PduType.DATA, 1, options={"cb": object()})
    f = Frame("A", "B", size=10, payload=pdu)
    with pytest.raises(WireFormatError, match="options"):
        encode_frame(f)


@pytest.mark.parametrize(
    "mutate",
    [
        lambda d: b"XXXX" + d[4:],                     # bad magic
        lambda d: d[:4] + bytes([WIRE_VERSION + 1]) + d[5:],  # future version
        lambda d: d[: len(d) // 2],                    # truncated
        lambda d: d + b"\x00",                         # trailing garbage
        lambda d: b"",                                 # empty
    ],
)
def test_malformed_datagrams_raise(mutate):
    data = encode_frame(_data_frame())
    assert data[:4] == WIRE_MAGIC
    with pytest.raises(WireFormatError):
        decode_frame(mutate(data))
