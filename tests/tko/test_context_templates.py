"""Unit tests for TKOContext (segue) and the template cache."""

import pytest

from repro.mechanisms.retransmission import GoBackN, NoRecovery
from repro.mechanisms.transmission import RateControl
from repro.tko.config import SessionConfig
from repro.tko.context import SLOTS, TKOContext
from repro.tko.synthesizer import TKOSynthesizer
from repro.tko.templates import (
    SYNTH_COST_DYNAMIC,
    SYNTH_COST_RECONFIGURABLE,
    SYNTH_COST_STATIC,
    TemplateCache,
)


def make_context(cfg=None):
    return TKOSynthesizer().synthesize_context(cfg or SessionConfig())


class TestContext:
    def test_all_slots_present(self):
        ctx = make_context()
        for slot in SLOTS:
            assert ctx.get(slot) is not None

    def test_missing_slot_rejected(self):
        ctx = make_context()
        mechs = dict(ctx.items())
        del mechs["recovery"]
        with pytest.raises(ValueError):
            TKOContext(mechs)

    def test_unknown_slot_rejected(self):
        ctx = make_context()
        mechs = dict(ctx.items())
        mechs["weird"] = mechs["recovery"]
        with pytest.raises(ValueError):
            TKOContext(mechs)

    def test_attribute_access(self):
        ctx = make_context()
        assert ctx.recovery.name == "gbn"
        assert ctx.transmission.name == "sliding-window"

    def test_segue_replaces(self):
        ctx = make_context()
        old = ctx.segue("recovery", NoRecovery())
        assert isinstance(old, GoBackN)
        assert ctx.recovery.name == "none"
        assert ctx.segue_count == 1

    def test_segue_wrong_category_rejected(self):
        ctx = make_context()
        with pytest.raises(ValueError):
            ctx.segue("recovery", RateControl(rate_pps=10))

    def test_segue_unknown_slot_rejected(self):
        ctx = make_context()
        with pytest.raises(KeyError):
            ctx.segue("nope", NoRecovery())

    def test_describe_lists_mechanisms(self):
        text = make_context().describe()
        assert "recovery=gbn" in text


class TestTemplateCache:
    def test_miss_then_hit(self):
        cache = TemplateCache()
        cfg = SessionConfig()
        assert cache.lookup(cfg) is None
        assert cache.misses == 1
        cache.store(cfg)
        t = cache.lookup(cfg)
        assert t is not None and t.hits == 1

    def test_instantiation_cost_tiers(self):
        cache = TemplateCache()
        dyn = SessionConfig()
        cost, hit = cache.instantiation_cost(dyn)
        assert (cost, hit) == (SYNTH_COST_DYNAMIC, False)
        cache.store(dyn)
        cost, hit = cache.instantiation_cost(dyn)
        assert (cost, hit) == (SYNTH_COST_RECONFIGURABLE, True)
        static = SessionConfig(binding="static")
        cache.store(static)
        cost, hit = cache.instantiation_cost(static)
        assert (cost, hit) == (SYNTH_COST_STATIC, True)

    def test_static_templates_cost_code_space(self):
        cache = TemplateCache()
        cache.store(SessionConfig(binding="static"))
        assert cache.total_code_bytes > 0
        cache2 = TemplateCache()
        cache2.store(SessionConfig())
        assert cache2.total_code_bytes == 0

    def test_eviction_at_capacity(self):
        cache = TemplateCache(max_entries=2)
        a = SessionConfig()
        b = SessionConfig(recovery="sr", ack="selective")
        c = SessionConfig(recovery="none", ack="none", transmission="rate", rate_pps=10)
        cache.store(a)
        cache.lookup(a)  # a has a hit, b will be the cold victim
        cache.store(b)
        cache.store(c)
        assert len(cache) == 2
        assert a in cache and c in cache and b not in cache

    def test_store_idempotent(self):
        cache = TemplateCache()
        t1 = cache.store(SessionConfig())
        t2 = cache.store(SessionConfig())
        assert t1 is t2

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            TemplateCache(max_entries=0)


class TestSynthesizer:
    def test_builds_per_config(self):
        cfg = SessionConfig(recovery="fec-rs", ack="none", transmission="rate",
                            rate_pps=100, fec_k=5, fec_r=2)
        ctx = TKOSynthesizer().synthesize_context(cfg)
        assert ctx.recovery.name == "fec-rs"
        assert ctx.recovery.k == 5 and ctx.recovery.r == 2

    def test_multicast_needs_group(self):
        cfg = SessionConfig(connection="implicit", delivery="multicast",
                            transmission="rate", rate_pps=10, ack="none",
                            recovery="none")
        with pytest.raises(ValueError):
            TKOSynthesizer().synthesize_context(cfg)
        ctx = TKOSynthesizer().synthesize_context(cfg, group="g", members=["B"])
        assert ctx.delivery.group == "g"
