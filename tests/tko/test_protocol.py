"""Unit tests for the TKO protocol object: demux, listeners, graph ops."""


from repro.netsim.frame import Frame
from repro.tko.config import SessionConfig
from repro.tko.message import CopyMeter, TKOMessage
from repro.tko.protocol import PassthroughLayer
from tests.conftest import TwoHosts


class TestDemux:
    def test_unclaimed_frame_counted(self):
        w = TwoHosts()
        w.net.send(Frame("A", "B", 100, payload="not a pdu"))
        w.sim.run(until=1.0)
        assert w.pb.frames_unclaimed == 1

    def test_pdu_to_unknown_port_unclaimed(self):
        w = TwoHosts()
        s = w.pa.create_session(SessionConfig(connection="implicit"), "B", 4242)
        s.connect()
        s.send(b"x")
        w.sim.run(until=1.0)
        assert w.pb.frames_unclaimed >= 1

    def test_sessions_tracked_and_released(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        s.send(b"x")
        w.sim.run(until=1.0)
        assert s.conn_id in w.pa.sessions
        s.close()
        w.sim.run(until=5.0)
        assert s.conn_id not in w.pa.sessions
        assert w.rx_sessions[0].conn_id not in w.pb.sessions

    def test_burst_of_first_datas_creates_one_session(self):
        w = TwoHosts()
        w.listen(SessionConfig(connection="implicit"))
        s = w.open(SessionConfig(connection="implicit"))
        for _ in range(5):
            s.send(b"x" * 100)
        w.sim.run(until=2.0)
        assert len(w.rx_sessions) == 1
        assert len(w.delivered) == 5

    def test_two_concurrent_sessions_demuxed(self):
        w = TwoHosts()
        w.listen()
        s1 = w.open(SessionConfig())
        s2 = w.open(SessionConfig())
        s1.send(b"one")
        s2.send(b"two")
        w.sim.run(until=2.0)
        assert sorted(d for d, _ in w.delivered) == [b"one", b"two"]
        assert len(w.rx_sessions) == 2

    def test_unlisten_stops_accepting(self):
        w = TwoHosts()
        w.listen()
        w.pb.unlisten(7000)
        s = w.open(SessionConfig(connection="implicit"))
        s.send(b"x")
        w.sim.run(until=1.0)
        assert w.delivered == []


class TestPassthroughLayer:
    def test_zero_copy_layer_moves_no_bytes(self):
        meter = CopyMeter()
        msg = TKOMessage(b"d" * 4096, meter=meter)
        layer = PassthroughLayer("ip", header_bytes=20)
        out = layer.encapsulate(msg)
        assert out.header_length == 20
        out = layer.decapsulate(out)
        assert out.header_length == 0
        assert meter.bytes_copied == 0

    def test_naive_layer_copies_payload(self):
        meter = CopyMeter()
        msg = TKOMessage(b"d" * 4096, meter=meter)
        layer = PassthroughLayer("ip", header_bytes=20, zero_copy=False)
        layer.encapsulate(msg)
        assert meter.bytes_copied == 4096

    def test_graph_insert_remove(self):
        w = TwoHosts()
        layer = PassthroughLayer("llc")
        w.pa.insert_layer(layer)
        assert layer in w.pa.layers
        w.pa.remove_layer(layer)
        assert layer not in w.pa.layers
