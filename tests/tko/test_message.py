"""Unit + property tests for the zero-copy TKO_Message."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tko.message import CopyMeter, Header, TKOMessage


class TestHeaders:
    def test_push_pop_lifo(self):
        m = TKOMessage(b"data")
        m.push(Header("tp", 24))
        m.push(Header("net", 20))
        assert m.pop().name == "net"
        assert m.pop().name == "tp"

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            TKOMessage(b"x").pop()

    def test_lengths(self):
        m = TKOMessage(b"12345")
        m.push(Header("h", 10))
        assert (m.data_length, m.header_length, m.length) == (5, 10, 15)

    def test_peek(self):
        m = TKOMessage(b"")
        assert m.peek() is None
        m.push(Header("h", 4))
        assert m.peek().name == "h"

    def test_negative_header_size_rejected(self):
        with pytest.raises(ValueError):
            Header("h", -1)

    def test_push_pop_move_no_payload_bytes(self):
        meter = CopyMeter()
        m = TKOMessage(b"x" * 10_000, meter=meter)
        for i in range(50):
            m.push(Header(f"h{i}", 8))
        for _ in range(50):
            m.pop()
        assert meter.bytes_copied == 0


class TestSplitConcat:
    def test_split_sizes(self):
        m = TKOMessage(b"abcdefghij")
        left, right = m.split(4)
        assert left.materialize() == b"abcd"
        assert right.materialize() == b"efghij"

    def test_split_at_bounds(self):
        m = TKOMessage(b"abc")
        l, r = m.split(0)
        assert l.data_length == 0 and r.data_length == 3
        m2 = TKOMessage(b"abc")
        l2, r2 = m2.split(3)
        assert l2.data_length == 3 and r2.data_length == 0

    def test_split_out_of_range(self):
        with pytest.raises(ValueError):
            TKOMessage(b"abc").split(4)

    def test_split_is_zero_copy(self):
        meter = CopyMeter()
        m = TKOMessage(b"q" * 4096, meter=meter)
        m.split(1000)
        assert meter.bytes_copied == 0

    def test_headers_stay_with_left(self):
        m = TKOMessage(b"abcdef")
        m.push(Header("h", 8))
        left, right = m.split(3)
        assert left.header_length == 8
        assert right.header_length == 0

    def test_concat_reassembles(self):
        a = TKOMessage(b"hello ")
        b = TKOMessage(b"world")
        a.concat(b)
        assert a.materialize() == b"hello world"

    def test_take_detaches_prefix(self):
        m = TKOMessage(b"0123456789")
        first = m.take(3)
        second = m.take(3)
        assert first.materialize() == b"012"
        assert second.materialize() == b"345"
        assert m.data_length == 4

    def test_split_of_multisegment(self):
        m = TKOMessage(b"abcd")
        m.concat(TKOMessage(b"efgh"))
        left, right = m.split(6)
        assert left.materialize() == b"abcdef"
        assert right.materialize() == b"gh"


class TestCopies:
    def test_clone_shares_segments(self):
        meter = CopyMeter()
        m = TKOMessage(b"z" * 1000, meter=meter)
        c = m.clone()
        assert meter.bytes_copied == 0
        assert c.materialize() == b"z" * 1000  # this one copies
        assert meter.bytes_copied == 1000

    def test_clone_header_stack_independent(self):
        m = TKOMessage(b"d")
        m.push(Header("h", 4))
        c = m.clone()
        c.pop()
        assert m.header_length == 4

    def test_copy_through_counts(self):
        meter = CopyMeter()
        m = TKOMessage(b"y" * 500, meter=meter)
        m.copy_through()
        assert meter.copies == 1
        assert meter.bytes_copied == 500

    def test_materialize_collapses_segments(self):
        m = TKOMessage(b"ab")
        m.concat(TKOMessage(b"cd"))
        assert m.segment_count == 2
        m.materialize()
        assert m.segment_count == 1

    def test_meter_reset(self):
        meter = CopyMeter()
        meter.record(10)
        meter.reset()
        assert meter.copies == 0 and meter.bytes_copied == 0


class TestZeroCopyDiscipline:
    """Copy-count assertions for the bytes plane (Issue 9 satellite).

    ``memoryview`` cannot be subclassed, so the instrument is two-fold:
    the shared :class:`CopyMeter` (every real byte move is metered) plus
    ``memoryview.obj`` identity — a surviving segment must still view one
    of the *original* underlying buffers, proving no intermediate
    flattening happened behind the meter's back.
    """

    def _multisegment(self, meter):
        bufs = [b"a" * 700, b"b" * 900, b"c" * 400]
        m = TKOMessage(memoryview(bufs[0]), meter=meter)
        for b in bufs[1:]:
            m.concat(TKOMessage(memoryview(b), meter=meter))
        return m, bufs

    def _assert_views_originals(self, msg, bufs):
        owners = {id(b) for b in bufs}
        for seg in msg.segments_view():
            assert id(seg.obj) in owners, "segment no longer views an original buffer"

    def test_split_moves_zero_payload_bytes(self):
        meter = CopyMeter()
        m, bufs = self._multisegment(meter)
        left, right = m.split(1100)  # cuts inside the second segment
        assert meter.bytes_copied == 0
        self._assert_views_originals(left, bufs)
        self._assert_views_originals(right, bufs)

    def test_extend_moves_zero_payload_bytes(self):
        meter = CopyMeter()
        m, bufs = self._multisegment(meter)
        extra = b"d" * 300
        m.extend(TKOMessage(memoryview(extra), meter=meter))
        assert meter.bytes_copied == 0
        self._assert_views_originals(m, bufs + [extra])

    def test_clone_moves_zero_payload_bytes(self):
        meter = CopyMeter()
        m, bufs = self._multisegment(meter)
        c = m.clone()
        assert meter.bytes_copied == 0
        self._assert_views_originals(c, bufs)

    def test_fragmentation_reassembly_pipeline_copies_once(self):
        # the whole segmentation -> clone-for-retransmit -> reassembly
        # pipeline moves payload bytes exactly once: the final delivery
        # materialize
        meter = CopyMeter()
        m, _ = self._multisegment(meter)
        total = m.data_length
        frags = []
        while m.data_length > 512:
            frags.append(m.take(512))
        frags.append(m)
        for f in frags:
            f.clone()  # the retransmission queue's reference
        whole = TKOMessage((), meter=meter)
        for f in frags:
            whole.extend(f)
        assert meter.bytes_copied == 0, "zero bytes moved before delivery"
        assert whole.materialize() == b"a" * 700 + b"b" * 900 + b"c" * 400
        assert meter.copies == 1
        assert meter.bytes_copied == total

    def test_materialize_meters_its_single_copy(self):
        meter = CopyMeter()
        m, _ = self._multisegment(meter)
        n = m.data_length
        m.materialize()
        assert (meter.copies, meter.bytes_copied) == (1, n)

    def test_write_into_meters_its_single_copy(self):
        meter = CopyMeter()
        m, bufs = self._multisegment(meter)
        dest = bytearray(m.data_length)
        wrote = m.write_into(memoryview(dest))
        assert wrote == m.data_length
        assert bytes(dest) == b"".join(bufs)
        assert (meter.copies, meter.bytes_copied) == (1, wrote)
        # staging into the wire buffer does not collapse the segments
        self._assert_views_originals(m, bufs)


class TestChecksum:
    def test_known_value_stability(self):
        assert TKOMessage(b"hello").checksum16() == TKOMessage(b"hello").checksum16()

    def test_detects_single_bit_flip(self):
        a = TKOMessage(b"hello world!").checksum16()
        b = TKOMessage(b"hellp world!").checksum16()
        assert a != b

    def test_segmentation_invariant(self):
        whole = TKOMessage(b"the quick brown fox")
        parts = TKOMessage(b"the quick")
        parts.concat(TKOMessage(b" brown fox"))
        assert whole.checksum16() == parts.checksum16()

    def test_empty_message(self):
        assert TKOMessage(b"").checksum16() == 0xFFFF

    def test_odd_length(self):
        # odd-length final byte path
        assert TKOMessage(b"abc").checksum16() == TKOMessage(b"abc").checksum16()


# ----------------------------------------------------------------------
# property tests
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(data=st.binary(min_size=0, max_size=2000), at=st.integers(min_value=0, max_value=2000))
def test_split_concat_roundtrip(data, at):
    at = min(at, len(data))
    m = TKOMessage(data)
    left, right = m.split(at)
    left.concat(right)
    assert left.materialize() == data


@settings(max_examples=60, deadline=None)
@given(
    chunks=st.lists(st.binary(min_size=1, max_size=200), min_size=1, max_size=10),
    seg=st.integers(min_value=1, max_value=100),
)
def test_fragmentation_reassembly_roundtrip(chunks, seg):
    """take() in seg-size pieces then concat reproduces the original."""
    whole = b"".join(chunks)
    m = TKOMessage((), meter=CopyMeter())
    for c in chunks:
        m.concat(TKOMessage(c))
    frags = []
    while m.data_length:
        frags.append(m.take(min(seg, m.data_length)))
    out = TKOMessage(b"")
    for f in frags:
        out.concat(f)
    assert out.materialize() == whole


@settings(max_examples=40, deadline=None)
@given(data=st.binary(min_size=1, max_size=500), flip=st.integers(min_value=0, max_value=4000))
def test_checksum_catches_any_single_bit_flip(data, flip):
    bit = flip % (len(data) * 8)
    corrupted = bytearray(data)
    corrupted[bit // 8] ^= 1 << (bit % 8)
    assert TKOMessage(data).checksum16() != TKOMessage(bytes(corrupted)).checksum16()


@settings(max_examples=40, deadline=None)
@given(data=st.binary(min_size=0, max_size=1000))
def test_checksum_split_invariance(data):
    m = TKOMessage(data)
    if len(data) >= 2:
        l, r = TKOMessage(data).split(len(data) // 2)
        l.concat(r)
        assert l.checksum16() == m.checksum16()
