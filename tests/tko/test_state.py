"""Unit tests for shared session state: RTT, receive window, reassembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tko.pdu import PDU, PduType
from repro.tko.state import (
    Reassembler,
    ReceiveWindow,
    RttEstimator,
    SenderState,
    SessionStats,
)


def data(seq, msg_id=0, frag_index=0, frag_count=1):
    return PDU(PduType.DATA, 1, seq=seq, msg_id=msg_id,
               frag_index=frag_index, frag_count=frag_count)


class TestSenderState:
    def test_next_seq_monotone(self):
        s = SenderState()
        assert [s.next_seq() for _ in range(3)] == [0, 1, 2]

    def test_release_advances_una(self):
        from repro.tko.state import SendEntry

        s = SenderState()
        for i in range(3):
            s.track(SendEntry(data(s.next_seq()), 0.0, 0.0))
        s.release(0)
        assert s.snd_una == 1
        s.release(2)
        assert s.snd_una == 1  # 1 still outstanding
        s.release(1)
        assert s.snd_una == 3

    def test_release_unknown_returns_none(self):
        assert SenderState().release(9) is None


class TestRttEstimator:
    def test_first_sample_initialises(self):
        r = RttEstimator()
        r.update(0.1)
        assert r.srtt == pytest.approx(0.1)
        assert r.rto >= 0.1

    def test_smoothing_converges(self):
        r = RttEstimator(rto_min=0.02)
        for _ in range(100):
            r.update(0.05)
        assert r.srtt == pytest.approx(0.05, rel=0.01)
        # converged: srtt + granularity floor G, well under the initial RTO
        assert r.rto == pytest.approx(0.05 + r.G, rel=0.05)

    def test_progress_resets_backoff(self):
        r = RttEstimator()
        r.update(0.05)
        base = r.rto
        r.backoff()
        r.backoff()
        r.note_progress()
        assert r.rto == pytest.approx(base)

    def test_backoff_doubles(self):
        r = RttEstimator(rto_initial=0.5)
        base = r.rto
        r.backoff()
        assert r.rto == pytest.approx(min(60.0, base * 2))

    def test_sample_resets_backoff(self):
        r = RttEstimator()
        r.update(0.05)
        before = r.rto
        r.backoff()
        r.update(0.05)
        assert r.rto == pytest.approx(before, rel=0.3)

    def test_rto_respects_min(self):
        r = RttEstimator(rto_min=0.2)
        for _ in range(50):
            r.update(0.001)
        assert r.rto >= 0.2

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().update(-0.1)


class TestReceiveWindowOrdered:
    def test_in_order_delivers(self):
        w = ReceiveWindow()
        out, ok, gap = w.accept(data(0), True, True, True)
        assert [p.seq for p in out] == [0] and ok and not gap
        assert w.rcv_nxt == 1

    def test_out_of_order_buffered_then_released(self):
        w = ReceiveWindow()
        out, ok, gap = w.accept(data(1), True, True, True)
        assert out == [] and ok and gap
        out, ok, gap = w.accept(data(0), True, True, True)
        assert [p.seq for p in out] == [0, 1]
        assert w.rcv_nxt == 2

    def test_duplicate_dropped_with_dedup(self):
        w = ReceiveWindow()
        w.accept(data(0), True, True, True)
        out, ok, gap = w.accept(data(0), True, True, True)
        assert out == [] and not ok
        assert w.duplicates == 1

    def test_duplicate_of_buffered_dropped(self):
        w = ReceiveWindow()
        w.accept(data(2), True, True, True)
        out, ok, _ = w.accept(data(2), True, True, True)
        assert not ok

    def test_gbn_mode_discards_ooo(self):
        w = ReceiveWindow()
        out, ok, gap = w.accept(data(3), False, True, True)
        assert out == [] and not ok and gap
        assert w.discarded_ooo == 1
        assert w.rcv_nxt == 0

    def test_skip_gap_jumps(self):
        w = ReceiveWindow()
        w.accept(data(2), True, True, True)
        w.accept(data(3), True, True, True)
        released = w.skip_gap()
        assert [p.seq for p in released] == [2, 3]
        assert w.rcv_nxt == 4

    def test_skip_gap_empty_noop(self):
        assert ReceiveWindow().skip_gap() == []


class TestReceiveWindowUnordered:
    def test_ooo_delivered_immediately(self):
        w = ReceiveWindow()
        out, ok, gap = w.accept(data(5), True, False, False)
        assert [p.seq for p in out] == [5] and ok and gap

    def test_no_redelivery_when_prefix_fills(self):
        w = ReceiveWindow()
        out1, _, _ = w.accept(data(1), True, False, False)
        out0, _, _ = w.accept(data(0), True, False, False)
        assert [p.seq for p in out1] == [1]
        assert [p.seq for p in out0] == [0]  # seq 1 not delivered twice
        assert w.rcv_nxt == 2

    def test_duplicate_tolerated_without_dedup(self):
        w = ReceiveWindow()
        w.accept(data(0), True, False, False)
        out, ok, _ = w.accept(data(0), True, False, False)
        assert ok and [p.seq for p in out] == [0]
        assert w.duplicates == 1


class TestReassembler:
    def test_single_fragment_passthrough(self):
        r = Reassembler()
        p = data(0)
        assert r.add(p) == [p]

    def test_multi_fragment_completion(self):
        r = Reassembler()
        assert r.add(data(0, msg_id=1, frag_index=0, frag_count=3)) is None
        assert r.add(data(1, msg_id=1, frag_index=1, frag_count=3)) is None
        done = r.add(data(2, msg_id=1, frag_index=2, frag_count=3))
        assert [p.frag_index for p in done] == [0, 1, 2]
        assert r.partial_count == 0

    def test_out_of_order_fragments(self):
        r = Reassembler()
        r.add(data(1, msg_id=2, frag_index=1, frag_count=2))
        done = r.add(data(0, msg_id=2, frag_index=0, frag_count=2))
        assert [p.frag_index for p in done] == [0, 1]

    def test_interleaved_messages(self):
        r = Reassembler()
        r.add(data(0, msg_id=1, frag_index=0, frag_count=2))
        r.add(data(2, msg_id=2, frag_index=0, frag_count=2))
        assert r.partial_count == 2
        assert r.add(data(3, msg_id=2, frag_index=1, frag_count=2)) is not None
        assert r.add(data(1, msg_id=1, frag_index=1, frag_count=2)) is not None

    def test_drop_partial(self):
        r = Reassembler()
        r.add(data(0, msg_id=9, frag_index=0, frag_count=2))
        r.drop_partial(9)
        assert r.partial_count == 0


class TestSessionStats:
    def test_latency_accounting(self):
        s = SessionStats()
        for v in (0.1, 0.2, 0.3):
            s.record_latency(v)
        assert s.mean_latency == pytest.approx(0.2)
        assert s.latency_max == 0.3
        assert s.jitter == pytest.approx(0.0816, rel=0.01)

    def test_jitter_zero_for_single_sample(self):
        s = SessionStats()
        s.record_latency(0.5)
        assert s.jitter == 0.0

    def test_setup_time(self):
        s = SessionStats()
        assert s.connection_setup_time is None
        s.opened_at, s.established_at = 1.0, 1.5
        assert s.connection_setup_time == pytest.approx(0.5)


# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(order=st.permutations(list(range(12))))
def test_ordered_window_delivers_in_sequence_any_arrival_order(order):
    w = ReceiveWindow()
    delivered = []
    for seq in order:
        out, _, _ = w.accept(data(seq), True, True, True)
        delivered.extend(p.seq for p in out)
    assert delivered == list(range(12))


@settings(max_examples=50, deadline=None)
@given(
    arrivals=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=40)
)
def test_dedup_window_never_delivers_twice(arrivals):
    w = ReceiveWindow()
    delivered = []
    for seq in arrivals:
        out, _, _ = w.accept(data(seq), True, True, True)
        delivered.extend(p.seq for p in out)
    assert len(delivered) == len(set(delivered))
