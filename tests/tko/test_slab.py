"""SlabArena/SlabLease refcounting and the PDU-pool edges built on them.

The slab ownership discipline (docs/performance.md): ``store``/``alloc``
hand the caller one owning reference; zero-copy message ops retain on
share; the terminal points — ``materialize()``, ``PduPool.recycle``, the
codec's failure paths — release.  A quiesced endpoint must balance
(``leases_released == leases_issued``), same leak contract as the PDU
pool's ``recycled == acquired`` check.
"""

import pytest

from repro.tko.message import TKOMessage
from repro.tko.pdu import PDU, PDU_POOL, PduType
from repro.tko.slab import DEFAULT_SLAB_SIZE, SlabArena, SlabLease


class TestArenaBasics:
    def test_store_round_trips_bytes(self):
        arena = SlabArena()
        lease = arena.store(b"hello slab")
        assert bytes(lease.view) == b"hello slab"
        assert arena.leases_issued == 1
        assert arena.bytes_stored == 10
        assert lease.live

    def test_release_balances_and_is_idempotent(self):
        arena = SlabArena()
        lease = arena.store(b"x" * 64)
        lease.release()
        assert not lease.live
        assert arena.live_leases == 0
        lease.release()  # inert on a dead lease
        assert arena.leases_released == 1

    def test_retain_defers_release(self):
        arena = SlabArena()
        lease = arena.store(b"shared")
        lease.retain()
        lease.release()
        assert lease.live  # one claim still out
        lease.release()
        assert not lease.live
        assert arena.live_leases == 0

    def test_zero_byte_lease_is_born_released(self):
        arena = SlabArena()
        lease = arena.store(b"")
        assert not lease.live
        assert arena.leases_issued == arena.leases_released == 1
        lease.retain()   # no-ops: there is no slab to claim
        lease.release()
        assert arena.leases_released == 1

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            SlabArena().alloc(-1)


class TestSlabRecycling:
    def test_current_slab_rewinds_when_leases_die(self):
        arena = SlabArena(slab_size=256)
        a = arena.store(b"a" * 100)
        b = arena.store(b"b" * 100)
        a.release()
        b.release()
        # the still-current slab rewinds instead of sealing
        c = arena.store(b"c" * 200)
        assert bytes(c.view) == b"c" * 200
        assert arena.slabs_built == 1

    def test_sealed_slab_returns_to_free_list(self):
        arena = SlabArena(slab_size=128)
        first = arena.store(b"x" * 100)   # fills most of slab 1
        second = arena.store(b"y" * 100)  # seals slab 1, opens slab 2
        assert arena.slabs_built == 2
        first.release()                   # slab 1's last lease dies
        arena.store(b"z" * 120)           # seals slab 2 -> reuses slab 1
        assert arena.slabs_recycled == 1
        assert arena.slabs_built == 2
        second.release()

    def test_oversize_allocation_is_one_shot(self):
        arena = SlabArena(slab_size=64)
        lease = arena.store(b"q" * 200)
        assert bytes(lease.view) == b"q" * 200
        built = arena.slabs_built
        lease.release()
        arena.store(b"r" * 200).release()
        # oversize slabs are never pooled: each one is built fresh
        assert arena.slabs_built == built + 1
        assert arena.slabs_recycled == 0

    def test_free_list_is_bounded(self):
        arena = SlabArena(slab_size=64, max_free=1)
        leases = [arena.store(b"s" * 60) for _ in range(4)]
        for lease in leases:
            lease.release()
        assert len(arena._free) <= 1


class TestMessageLeasePropagation:
    def _slab_message(self, arena, payload):
        lease = arena.store(payload)
        msg = TKOMessage(lease.view)
        msg.attach_lease(lease)
        return msg, lease

    def test_clone_retains_and_both_release(self):
        arena = SlabArena()
        msg, lease = self._slab_message(arena, b"p" * 300)
        clone = msg.clone()
        assert lease.refs == 2
        msg.release_payload()
        assert lease.live  # the clone still claims the slab
        clone.release_payload()
        assert not lease.live
        assert arena.live_leases == 0

    def test_split_shares_one_lease_per_side(self):
        arena = SlabArena()
        msg, lease = self._slab_message(arena, b"s" * 100)
        left, right = msg.split(40)
        assert lease.refs == 3
        for part in (msg, left, right):
            part.release_payload()
        assert arena.live_leases == 0

    def test_materialize_is_a_terminal_point(self):
        arena = SlabArena()
        msg, lease = self._slab_message(arena, b"m" * 80)
        flat = msg.materialize()
        assert flat == b"m" * 80
        assert not lease.live
        # idempotent: a second materialize has no slab claim to drop
        assert msg.materialize() == b"m" * 80
        assert arena.live_leases == 0

    def test_pool_recycle_is_a_terminal_point(self):
        arena = SlabArena()
        msg, lease = self._slab_message(arena, b"r" * 128)
        pdu = PDU_POOL.acquire(PduType.DATA, 1)
        pdu.message = msg
        pdu.release()
        assert not lease.live
        assert arena.live_leases == 0


class TestPduPoolEdges:
    """Refcount edges the slab scheme leans on (Issue 9 satellite)."""

    def test_retransmit_clone_survives_original_recycle(self):
        # the retransmission queue's claim must outlive the wire's: the
        # clone retains the slab lease before the original shell recycles
        arena = SlabArena()
        lease = arena.store(b"d" * 256)
        msg = TKOMessage(lease.view)
        msg.attach_lease(lease)
        original = PDU_POOL.acquire(PduType.DATA, 7)
        original.message = msg
        clone = original.retransmit_clone()
        assert lease.refs == 2
        original.release()  # wire reference consumed -> shell recycled
        assert lease.live
        assert bytes(clone.message.segments_view()[0]) == b"d" * 256
        clone.message.release_payload()
        assert not lease.live

    def test_clone_for_retransmit_during_segue(self):
        """A mid-transfer mechanism swap must not unbalance the pool.

        Lossy path + reliable config => retransmit clones are in flight
        when ``segue`` swaps the detection mechanism; after the world
        quiesces and the sessions close, every acquired shell must have
        been recycled (delta-recycled == delta-acquired).
        """
        from repro.mechanisms.acknowledgment import SelectiveAck
        from repro.mechanisms.retransmission import SelectiveRepeat
        from repro.netsim.profiles import ethernet_10
        from repro.tko.config import SessionConfig
        from tests.conftest import TwoHosts

        acquired0 = PDU_POOL.acquired
        recycled0 = PDU_POOL.recycled

        # lossy enough to keep retransmit clones in flight at the segue
        profile = ethernet_10().scaled(ber=2e-5)
        w = TwoHosts(profile=profile, seed=3)
        cfg = SessionConfig()  # gbn + cumulative ACK, reliable by default
        w.listen(cfg)
        s = w.open(cfg)
        w.sim.run(until=0.05)
        t = 0.05
        for i in range(30):
            t += 0.01
            w.sim.run(until=t)
            s.send(b"\xa5" * 512)
            if i == 15:
                s.segue("recovery", SelectiveRepeat())
                s.segue("ack", SelectiveAck())
        w.sim.run(until=t + 3.0)
        assert s.stats.retransmissions > 0, "workload must exercise recovery"
        s.close()
        for rx in w.rx_sessions:
            rx.close()
        w.sim.run(until=t + 6.0)

        d_acquired = PDU_POOL.acquired - acquired0
        d_recycled = PDU_POOL.recycled - recycled0
        assert d_acquired > 0
        assert d_recycled == d_acquired, (
            f"pool leak: {d_acquired} shells acquired, "
            f"{d_recycled} recycled"
        )

    def test_pool_balances_after_impaired_transfer(self):
        from repro.transport.chaos import run_impaired_transfer

        res = run_impaired_transfer()
        assert res["digest_ok"]
        d_acquired, d_recycled = res["pool_delta"]
        assert d_acquired == d_recycled


class TestCodecFailureRelease:
    """Every decode failure after the slab allocation must release it."""

    def _encode(self, payload=b"w" * 64, conn=3):
        from repro.netsim.frame import Frame, encode_frame

        pdu = PDU(PduType.DATA, conn, seq=1, message=TKOMessage(payload))
        frame = Frame("A", "B", 512, payload=pdu)
        return encode_frame(frame)

    def _retail(self, body: bytes) -> bytes:
        """Append a fresh CRC trailer to a tampered CRC-less ``body``."""
        import struct
        import zlib

        return body + struct.pack("!I", zlib.crc32(body))

    def test_valid_datagram_stores_payload_in_arena(self):
        from repro.netsim.frame import decode_frame

        arena = SlabArena()
        frame = decode_frame(self._encode(), arena=arena)
        assert arena.live_leases == 1
        frame.payload.message.release_payload()
        assert arena.live_leases == 0

    def test_malformed_pdu_fields_release_the_lease(self):
        from repro.netsim.frame import WireFormatError, decode_frame

        arena = SlabArena()
        data = self._encode()
        # corrupt the PDU type in the JSON header (same length keeps the
        # layout intact), then re-trail so the CRC admits the datagram
        bad = self._retail(data[:-4].replace(b'"t":"data"', b'"t":"dada"'))
        with pytest.raises(WireFormatError):
            decode_frame(bad, arena=arena)
        assert arena.leases_issued == 1
        assert arena.live_leases == 0

    def test_trailing_garbage_releases_the_lease(self):
        from repro.netsim.frame import WireFormatError, decode_frame

        arena = SlabArena()
        bad = self._retail(self._encode()[:-4] + b"\x00")
        with pytest.raises(WireFormatError):
            decode_frame(bad, arena=arena)
        assert arena.leases_issued == 1
        assert arena.live_leases == 0

    def test_bad_frame_size_releases_the_lease(self):
        import struct

        from repro.netsim.frame import WireFormatError, _FIXED, decode_frame

        arena = SlabArena()
        data = bytearray(self._encode())
        # zero the semantic frame size -> Frame.__init__ rejects it after
        # the payload was already stored
        struct.pack_into("!I", data, _FIXED.size - 12, 0)
        bad = self._retail(bytes(data)[:-4])
        with pytest.raises((WireFormatError, ValueError)):
            decode_frame(bad, arena=arena)
        assert arena.leases_issued == 1
        assert arena.live_leases == 0

    def test_damaged_datagram_never_allocates(self):
        from repro.netsim.frame import WireFormatError, decode_frame

        arena = SlabArena()
        data = bytearray(self._encode())
        data[len(data) // 2] ^= 0xFF  # CRC refuses before any allocation
        with pytest.raises(WireFormatError):
            decode_frame(bytes(data), arena=arena)
        assert arena.leases_issued == 0
