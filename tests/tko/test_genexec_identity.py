"""GeneratedExecutor: bit-identity, fast-path engagement, fallback contract.

The generated executor (``repro.tko.genexec``) renders one specialized
send/recv closure per session shape and installs it over the compiled
path.  Three families of guarantees:

* **identity** — on the connection-churn workload the generated executor
  produces the same delivery digest as ``ReferenceExecutor`` and
  ``CompiledExecutor``, per seed, under both connection-manager modes.
* **engagement** — on a shape it specializes for (teleconference SCS,
  wire-size ``bytes`` payloads) every send takes the generated closure;
  ``fast_sends`` counts them so identity checks cannot pass vacuously.
* **fallback** — anything the fast path does not specialize for
  (telemetry on, observers attached, protocol-graph layers, mutable
  buffers, multi-fragment messages) drops to the compiled path *before*
  consuming any state, so behaviour stays bit-identical.
"""

from __future__ import annotations

import pytest

from repro.core.churn import identity_fields, run_churn
from repro.mantts.acd import ACD
from repro.mantts.monitor import NetworkState
from repro.mantts.transform import specify_scs
from repro.mantts.tsc import APP_PROFILES
from repro.tko import genexec
from repro.tko.executor import DEFAULT_KIND, EXECUTOR_KINDS, use_executor
from repro.unites.obs.telemetry import TELEMETRY

from tests.conftest import TwoHosts


@pytest.fixture(autouse=True)
def _default_executor():
    """Every test leaves the process-wide executor selection restored."""
    yield
    use_executor(DEFAULT_KIND)


def teleconference_config():
    """The §2.1(B) teleconference SCS via the real Stage I/II transform.

    The richest config that runs the fast path: tracked delivery,
    retransmission recovery, Internet-checksum trailer, window+rate
    transmission control.
    """
    profile = APP_PROFILES["tele-conferencing"]
    acd = ACD(
        participants=("B",),
        quantitative=profile.quantitative(),
        qualitative=profile.qualitative(),
    )
    lan = NetworkState("A", "B", True, 0.004, 0.004, 10e6, 1500, 1e-6, 0.0, 0.0, 3)
    return specify_scs(acd, lan).config


def conference_run(kind, cfg, payloads, mutate=None):
    """Run one A→B conference under executor ``kind``; return
    ``(identity tuple, fast_sends)``.  ``mutate(world, sender)`` runs
    after connect, before the sends (for fallback-trigger setups)."""
    use_executor(kind)
    try:
        w = TwoHosts(seed=5)
        w.listen(cfg)
        sender = w.open(cfg)
        w.sim.run(until=0.05)
        if mutate is not None:
            mutate(w, sender)
        t = 0.05
        for data in payloads:
            t += 0.02
            w.sim.run(until=t)
            sender.send(data)
        w.sim.run(until=t + 2.0)
        identity = (
            len(w.delivered),
            sum(len(d) for d, _ in w.delivered),
            w.sim.now,
            sender.stats.pdus_sent,
            sender.stats.retransmissions,
            w.ha.cpu.instructions_retired,
            w.hb.cpu.instructions_retired,
        )
        return identity, getattr(sender.executor, "fast_sends", None)
    finally:
        use_executor(DEFAULT_KIND)


class TestChurnIdentity:
    """The delivery digest is the cross-executor identity check."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("mode", ["coalesced", "legacy"])
    def test_executors_bit_identical(self, seed, mode):
        idents = []
        for kind in EXECUTOR_KINDS:
            use_executor(kind)
            idents.append((kind, identity_fields(run_churn(40, mode=mode, seed=seed))))
        base_kind, base = idents[0]
        for kind, ident in idents[1:]:
            assert ident == base, (
                f"{kind} diverged from {base_kind} at seed {seed} ({mode})"
            )
        assert base["delivered"] > 0


class TestFastPathEngagement:
    def test_wire_size_bytes_take_fast_path(self):
        cfg = teleconference_config()
        payloads = [b"\xa5" * 512] * 50
        compiled, _ = conference_run("compiled", cfg, payloads)
        generated, fast = conference_run("generated", cfg, payloads)
        assert fast == len(payloads), "every send must take the fast path"
        assert generated == compiled

    def test_warm_template_records_codegen_shape(self):
        # the template cache's diagnostic linkage: a warmed template
        # remembers which generated-closure shape serves it
        use_executor("generated")
        cfg = teleconference_config()
        w = TwoHosts(seed=5)
        w.listen(cfg)
        sender = w.open(cfg)
        w.sim.run(until=0.1)
        template = w.pa.synthesizer.templates.peek(cfg)
        assert template is not None
        assert template.codegen == sender.executor.codegen_key
        assert template.codegen[-3:] == ("window-rate", "retransmit", "internet")

    def test_codegen_factory_is_shared_across_sessions(self):
        cfg = teleconference_config()
        before = dict(genexec.codegen_stats)
        conference_run("generated", cfg, [b"x" * 64] * 3)
        mid = dict(genexec.codegen_stats)
        conference_run("generated", cfg, [b"x" * 64] * 3)
        after = dict(genexec.codegen_stats)
        assert mid["installed"] > before["installed"]
        assert after["installed"] > mid["installed"]
        # the second world re-uses the first world's rendered factories
        assert after["rendered"] == mid["rendered"]
        assert after["factory_hits"] > mid["factory_hits"]


class TestFallback:
    """Unspecialized shapes must fall back — and stay bit-identical."""

    def _identical_with_fallback(self, payloads, mutate=None, engaged=0):
        cfg = teleconference_config()
        compiled, _ = conference_run("compiled", cfg, payloads, mutate)
        generated, fast = conference_run("generated", cfg, payloads, mutate)
        assert fast == engaged
        assert generated == compiled

    def test_bytearray_payload_falls_back(self):
        # mutable buffers: the compiled ctor snapshots them, the fast
        # path would alias them
        self._identical_with_fallback([bytearray(b"\xa5" * 256)] * 20)

    def test_multi_fragment_message_falls_back(self):
        # larger than the segment size → segmentation loop, not the
        # single-PDU fast path
        self._identical_with_fallback([b"\xa5" * 60_000] * 5)

    def test_observers_force_fallback(self):
        def attach(world, sender):
            sender.observers.append(lambda event, session, **details: None)

        self._identical_with_fallback([b"\xa5" * 256] * 20, mutate=attach)

    def test_telemetry_forces_fallback(self):
        cfg = teleconference_config()
        payloads = [b"\xa5" * 256] * 20
        try:
            TELEMETRY.enable()
            _, fast = conference_run("generated", cfg, payloads)
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        assert fast == 0

    def test_mixed_traffic_splits_between_paths(self):
        # alternating wire-size bytes and mutable buffers: only the
        # former engage, and the stream stays identical to compiled
        payloads = []
        for i in range(20):
            payloads.append(b"\xa5" * 256 if i % 2 == 0 else bytearray(b"\x5a" * 256))
        self._identical_with_fallback(payloads, engaged=10)
