"""Compiled-pipeline tests: charge equality, template isolation, PDU pool.

The pipeline compiler's contract (§4.2.2, Synthesis/SELF) is that
compilation changes *wall* time only:

* the closed-form per-PDU charges must equal the interpreter's
  :class:`~repro.tko.interpreter.CostModel` bit for bit;
* a cached template hands out fresh mechanism instances per hit — a segue
  on one session must never mutate the cached table under another;
* pooled PDU shells are an executor-private optimisation that never leaks
  into configurations that retain payload references (FEC) or into the
  reference executor.
"""

import pytest

from repro.mechanisms.fec import FecXor
from repro.mechanisms.retransmission import GoBackN, SelectiveRepeat
from repro.mechanisms.acknowledgment import SelectiveAck
from repro.tko.config import SessionConfig
from repro.tko.executor import use_executor
from repro.tko.message import TKOMessage
from repro.tko.pdu import PDU_POOL, PduType
from tests.conftest import TwoHosts

CONFIGS = {
    "default": SessionConfig(),
    "rate-unreliable": SessionConfig(
        connection="implicit", transmission="rate", rate_pps=500.0,
        ack="none", recovery="none", sequencing="none",
    ),
    "sr-selective": SessionConfig(ack="selective", recovery="sr"),
    "legacy-headers": SessionConfig(compact_headers=False),
    "header-checksum": SessionConfig(checksum_placement="header"),
    "fec-playout": SessionConfig(
        connection="implicit", transmission="rate", rate_pps=400.0,
        ack="none", recovery="fec-xor", sequencing="none", jitter="playout",
    ),
    "static": SessionConfig(binding="static"),
    "reconfigurable": SessionConfig(binding="reconfigurable"),
}


class TestChargeEquality:
    """Closed-form scalars vs the interpreted CostModel: exact equality."""

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_closed_form_matches_cost_model(self, name):
        cfg = CONFIGS[name]
        w = TwoHosts()
        s = w.pa.create_session(cfg, "B", 7000)
        pipe = s.executor.pipeline
        for nbytes in (0, 1, 137, 1453):
            pdu = s.make_pdu(PduType.DATA)
            if nbytes:
                pdu.message = TKOMessage(b"x" * nbytes)
            assert pipe.send_charge(pdu.data_size) == s.cost_model.send_charge(pdu)
            assert pipe.recv_charge(pdu.data_size, pdu.compact) == s.cost_model.recv_charge(pdu)
        ack = s.make_pdu(PduType.ACK)
        assert pipe.control_charge(ack.compact) == s.cost_model.control_charge(ack)

    def test_segue_recompiles_only_the_swapped_slot(self):
        w = TwoHosts()
        s = w.pa.create_session(SessionConfig(), "B", 7000)
        before = dict(s.executor.pipeline.specs)
        s.segue("recovery", SelectiveRepeat())
        after = s.executor.pipeline.specs
        assert after["recovery"].name == "sr"
        for slot, spec in before.items():
            if slot != "recovery":
                assert after[slot] == spec
        # and the recompiled scalars still agree with the interpreter
        pdu = s.make_pdu(PduType.DATA)
        pdu.message = TKOMessage(b"y" * 512)
        assert s.executor.pipeline.send_charge(512) == s.cost_model.send_charge(pdu)


class TestTemplateCacheIsolation:
    """Cache hits build *fresh* mechanisms from the stored recipe."""

    def test_second_session_gets_fresh_mechanisms(self):
        w = TwoHosts()
        cfg = SessionConfig()
        s1 = w.pa.create_session(cfg, "B", 7000)
        s2 = w.pa.create_session(cfg, "B", 7001)
        t = w.pa.synthesizer.templates.peek(cfg)
        assert t is not None and t.plan is not None and t.specs is not None
        for slot in ("connection", "transmission", "recovery", "ack", "buffer"):
            assert s1.context.get(slot) is not s2.context.get(slot)

    def test_segue_on_cached_session_does_not_poison_cache(self):
        w = TwoHosts()
        cfg = SessionConfig()
        s1 = w.pa.create_session(cfg, "B", 7000)
        s2 = w.pa.create_session(cfg, "B", 7001)  # template hit
        s2.segue("recovery", SelectiveRepeat())
        s2.segue("ack", SelectiveAck())
        plan = {slot: cls for slot, cls, _ in w.pa.synthesizer.templates.peek(cfg).plan}
        assert plan["recovery"] is GoBackN
        assert type(s1.context.recovery) is GoBackN
        s3 = w.pa.create_session(cfg, "B", 7002)  # later hit: unpoisoned
        assert type(s3.context.recovery) is GoBackN

    def test_update_config_does_not_mutate_cached_specs(self):
        w = TwoHosts()
        cfg = SessionConfig()
        w.pa.create_session(cfg, "B", 7000)
        s2 = w.pa.create_session(cfg, "B", 7001)
        t = w.pa.synthesizer.templates.peek(cfg)
        before = dict(t.specs)
        s2.update_config(cfg.with_(rate_pps=250.0))
        assert t.specs == before


class TestPduPool:
    def test_transfer_reuses_shells(self):
        before = PDU_POOL.reused
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        for _ in range(12):
            s.send(b"p" * 600)
        w.sim.run(until=5.0)
        assert len(w.delivered) == 12
        assert PDU_POOL.reused > before

    def test_reference_executor_never_pools(self):
        use_executor("reference")
        try:
            w = TwoHosts()
            s = w.pa.create_session(SessionConfig(), "B", 7000)
            assert not s._pooling
            assert s.make_pdu(PduType.DATA).pooled is False
        finally:
            use_executor("compiled")

    def test_fec_sessions_are_not_pool_eligible(self):
        w = TwoHosts()
        s = w.pa.create_session(CONFIGS["fec-playout"], "B", 7000)
        assert not s._pooling
        assert s.make_pdu(PduType.DATA).pooled is False

    def test_segue_to_fec_demotes_queued_pdus(self):
        w = TwoHosts()
        w.listen()
        cfg = SessionConfig(
            connection="implicit", transmission="rate", rate_pps=5.0,
            ack="none", recovery="none", sequencing="none",
        )
        s = w.open(cfg)
        for _ in range(6):
            s.send(b"q" * 200)
        assert s._pooling
        assert any(p.pooled for p in s._send_queue)
        s.segue("recovery", FecXor())
        # FEC holds PDU references across sends, so pooling is off and the
        # already-queued shells are demoted to ordinary PDUs
        assert not s._pooling
        assert all(not p.pooled for p in s._send_queue)


class TestExecutorEquivalence:
    """Reference and compiled paths produce the same simulated world."""

    @pytest.mark.parametrize(
        "name", ["default", "sr-selective", "legacy-headers", "fec-playout", "static"]
    )
    def test_same_simulated_world(self, name):
        cfg = CONFIGS[name]
        outcomes = {}
        for kind in ("reference", "compiled"):
            use_executor(kind)
            try:
                w = TwoHosts(seed=7)
                s = w.transfer(cfg, [b"m" * 900] * 10, until=8.0)
                outcomes[kind] = (
                    len(w.delivered),
                    sum(len(data) for data, _ in w.delivered),
                    w.sim.now,
                    s.stats.pdus_sent,
                    s.stats.retransmissions,
                    w.ha.cpu.instructions_retired,
                    w.hb.cpu.instructions_retired,
                )
            finally:
                use_executor("compiled")
        assert outcomes["reference"] == outcomes["compiled"]
