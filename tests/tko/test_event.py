"""Unit tests for TKOEvent (the paper's TKO_Event timer class)."""


from repro.host.cpu import Cpu
from repro.tko.event import TKOEvent


class TestTKOEvent:
    def test_schedule_expire_cancel_contract(self, sim):
        fired = []
        ev = TKOEvent(sim, fired.append, "x", interval=0.5)
        ev.schedule()
        assert ev.armed
        sim.run()
        assert fired == ["x"]
        assert ev.expirations == 1

    def test_periodic(self, sim):
        fired = []
        ev = TKOEvent(sim, lambda: fired.append(sim.now), interval=0.2, periodic=True)
        ev.schedule()
        sim.run(until=0.7)
        assert len(fired) == 3
        ev.cancel()

    def test_schedule_charges_timer_op(self, sim):
        cpu = Cpu(sim, mips=25)
        ev = TKOEvent(sim, lambda: None, interval=1.0, cpu=cpu)
        before = cpu.instructions_retired
        ev.schedule()
        assert cpu.instructions_retired == before + cpu.costs.timer_op

    def test_cancel_charges_only_when_armed(self, sim):
        cpu = Cpu(sim, mips=25)
        ev = TKOEvent(sim, lambda: None, interval=1.0, cpu=cpu)
        ev.cancel()                     # not armed: free
        assert cpu.instructions_retired == 0
        ev.schedule()
        after_schedule = cpu.instructions_retired
        ev.cancel()                     # armed: one timer op
        assert cpu.instructions_retired == after_schedule + cpu.costs.timer_op

    def test_without_cpu_no_accounting(self, sim):
        ev = TKOEvent(sim, lambda: None, interval=1.0)
        ev.schedule()
        ev.cancel()  # no crash without a bound CPU
