"""End-to-end session tests over the simulated network.

These exercise full configurations through real topologies: connection
establishment styles, fragmentation, reliability under loss, FEC repair,
flow control, implicit piggyback setup, and close semantics.
"""

import pytest

from repro.netsim.profiles import ethernet_10
from repro.tko.config import SessionConfig
from tests.conftest import TwoHosts


class TestEstablishment:
    @pytest.mark.parametrize("conn", ["implicit", "explicit-2way", "explicit-3way"])
    def test_delivery_under_each_connection_style(self, conn):
        w = TwoHosts()
        s = w.transfer(SessionConfig(connection=conn), [b"hello"] * 3, until=3.0)
        assert len(w.delivered) == 3
        assert s.stats.established_at is not None

    def test_implicit_has_zero_setup_rtt(self):
        w = TwoHosts()
        s = w.transfer(SessionConfig(connection="implicit"), [b"x"], until=1.0)
        assert s.stats.connection_setup_time == 0.0

    def test_explicit_3way_costs_more_than_2way(self):
        t = {}
        for conn in ("explicit-2way", "explicit-3way"):
            w = TwoHosts()
            s = w.transfer(SessionConfig(connection=conn), [b"x"], until=2.0)
            t[conn] = s.stats.connection_setup_time
        assert t["explicit-2way"] > 0
        # 2-way client connects on SYN-ACK; both are one round trip at the
        # initiator, so allow equality but never inversion
        assert t["explicit-3way"] >= t["explicit-2way"]

    def test_open_failure_when_no_listener(self):
        w = TwoHosts()
        failures = []
        s = w.pa.create_session(
            SessionConfig(connection="explicit-2way"),
            "B",
            9999,
            on_open_failed=failures.append,
        )
        s.connect()
        w.sim.run(until=60.0)
        assert failures and "timeout" in failures[0]


class TestDataTransfer:
    def test_payload_integrity(self):
        w = TwoHosts()
        payloads = [bytes([i]) * (100 + i) for i in range(10)]
        w.transfer(SessionConfig(), payloads, until=5.0)
        assert [d for d, _ in w.delivered] == payloads

    def test_fragmentation_and_reassembly(self):
        w = TwoHosts()
        big = bytes(range(256)) * 40  # 10240 B >> MTU 1500
        s = w.transfer(SessionConfig(), [big], until=5.0)
        assert len(w.delivered) == 1
        assert w.delivered[0][0] == big
        assert s.stats.pdus_sent > 7  # really was fragmented

    def test_empty_message_allowed(self):
        w = TwoHosts()
        w.transfer(SessionConfig(), [b""], until=2.0)
        assert len(w.delivered) == 1
        assert w.delivered[0][0] == b""

    def test_send_on_closed_session_raises(self):
        w = TwoHosts()
        s = w.transfer(SessionConfig(), [b"x"], until=2.0)
        s.close()
        w.sim.run(until=4.0)
        with pytest.raises(RuntimeError):
            s.send(b"nope")

    def test_ordered_delivery_metadata(self):
        w = TwoHosts()
        w.transfer(SessionConfig(), [b"a", b"b"], until=2.0)
        metas = [m for _, m in w.delivered]
        assert all(m["latency"] > 0 for m in metas)
        assert metas[0]["msg_id"] != metas[1]["msg_id"]


class TestReliabilityUnderLoss:
    def _lossy_world(self):
        # copper-grade BER high enough to corrupt several frames
        return TwoHosts(profile=ethernet_10().scaled(ber=3e-6))

    def test_gbn_delivers_everything(self):
        w = self._lossy_world()
        msgs = [b"m" * 1000] * 40
        s = w.transfer(SessionConfig(recovery="gbn", ack="cumulative"), msgs, until=30.0)
        assert len(w.delivered) == 40
        assert s.stats.retransmissions > 0

    def test_sr_delivers_everything_with_fewer_retransmissions(self):
        results = {}
        for name, cfg in [
            ("gbn", SessionConfig(recovery="gbn", ack="cumulative")),
            ("sr", SessionConfig(recovery="sr", ack="selective")),
        ]:
            w = self._lossy_world()
            s = w.transfer(cfg, [b"m" * 1000] * 40, until=30.0)
            assert len(w.delivered) == 40
            results[name] = s.stats.retransmissions
        assert results["sr"] <= results["gbn"]

    def test_no_recovery_loses_messages(self):
        w = TwoHosts(profile=ethernet_10().scaled(ber=2e-5))
        cfg = SessionConfig(
            connection="implicit", transmission="rate", rate_pps=300,
            ack="none", recovery="none", sequencing="none", jitter="none",
        )
        w.transfer(cfg, [b"m" * 1000] * 50, until=10.0)
        assert 0 < len(w.delivered) < 50

    def test_fec_xor_repairs_single_losses(self):
        w = TwoHosts(profile=ethernet_10().scaled(ber=4e-6))
        cfg = SessionConfig(
            connection="implicit", transmission="rate", rate_pps=300,
            ack="none", recovery="fec-xor", fec_k=4, sequencing="none",
        )
        w.transfer(cfg, [b"m" * 800] * 60, until=10.0)
        rx = w.rx_sessions[0]
        assert rx.stats.fec_recoveries > 0
        reconstructed = [m for _, m in w.delivered if m["reconstructed"]]
        assert reconstructed

    def test_fec_repairs_beat_no_recovery(self):
        def run(recovery):
            w = TwoHosts(profile=ethernet_10().scaled(ber=4e-6))
            cfg = SessionConfig(
                connection="implicit", transmission="rate", rate_pps=300,
                ack="none", recovery=recovery, fec_k=4, fec_r=2,
                sequencing="none",
            )
            w.transfer(cfg, [b"m" * 800] * 80, until=12.0)
            return len(w.delivered)

        assert run("fec-rs") > run("none")

    def test_corrupted_delivered_without_checksum(self):
        w = TwoHosts(profile=ethernet_10().scaled(ber=2e-5))
        cfg = SessionConfig(
            connection="implicit", transmission="rate", rate_pps=200,
            ack="none", recovery="none", detection="none", sequencing="none",
        )
        w.transfer(cfg, [b"m" * 1000] * 40, until=10.0)
        rx = w.rx_sessions[0]
        assert rx.stats.corrupted_delivered > 0
        assert len(w.delivered) == 40  # nothing dropped, some damaged


class TestFlowControl:
    def test_stop_and_wait_one_outstanding(self):
        w = TwoHosts()
        cfg = SessionConfig(transmission="stop-and-wait", window=1)
        w.listen()
        s = w.open(cfg)
        for _ in range(5):
            s.send(b"d" * 500)
        max_outstanding = 0
        # sample outstanding while running
        def probe():
            nonlocal max_outstanding
            max_outstanding = max(max_outstanding, s.state.outstanding_count())
            return True

        w.sim.call_each(0.0005, probe)
        w.sim.run(until=2.0)
        assert len(w.delivered) == 5
        assert max_outstanding <= 1

    def test_window_caps_outstanding(self):
        w = TwoHosts()
        cfg = SessionConfig(window=4)
        w.listen()
        s = w.open(cfg)
        for _ in range(20):
            s.send(b"d" * 1000)
        max_out = 0

        def probe():
            nonlocal max_out
            max_out = max(max_out, s.state.outstanding_count())
            return True

        w.sim.call_each(0.0005, probe)
        w.sim.run(until=5.0)
        assert len(w.delivered) == 20
        assert max_out <= 4

    def test_rate_pacing_spreads_transmissions(self):
        w = TwoHosts()
        cfg = SessionConfig(
            connection="implicit", transmission="rate", rate_pps=100,
            ack="none", recovery="none", sequencing="none",
        )
        w.listen()
        s = w.open(cfg)
        for _ in range(30):
            s.send(b"d" * 200)
        w.sim.run(until=5.0)
        # 30 PDUs at 100 pps take ~0.3 s; delivery times must span that
        times = [m["sent_at"] for _, m in w.delivered]
        assert max(times) - min(times) == pytest.approx(29 / 100, rel=0.1)


class TestClose:
    def test_graceful_close_drains_first(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        for _ in range(10):
            s.send(b"z" * 1000)
        s.close()
        w.sim.run(until=10.0)
        assert len(w.delivered) == 10
        assert s.closed
        assert w.rx_sessions[0].closed

    def test_abort_tears_down_immediately(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        s.send(b"z")
        s.abort("test abort")
        assert s.closed
        assert s.stats.aborted == "test abort"
        w.sim.run(until=2.0)

    @pytest.mark.parametrize("kind", ["reference", "compiled", "generated"])
    def test_final_ack_completing_close_is_clean(self, kind):
        # close() with the window still outstanding parks the session in
        # _closing; under implicit (non-blocking) connection management the
        # ack that releases the last entry finishes the close *inside*
        # handle_ack, unbinding the mechanism table mid-call.  The executor
        # must stop driving the unbound mechanisms at that point instead of
        # dereferencing mechanism.session == None.
        from repro.tko.executor import current_executor, use_executor

        prev = current_executor()
        use_executor(kind)
        try:
            w = TwoHosts()
            w.listen()
            s = w.open(SessionConfig(connection="implicit"))
            for _ in range(4):
                s.send(b"z" * 600)
            s.close()
            w.sim.run(until=10.0)
        finally:
            use_executor(prev)
        assert s.closed
        assert len(w.delivered) == 4

    def test_close_flushes_fec_partial_group(self):
        w = TwoHosts()
        cfg = SessionConfig(
            connection="implicit", transmission="rate", rate_pps=500,
            ack="none", recovery="fec-xor", fec_k=8, sequencing="none",
        )
        w.listen()
        s = w.open(cfg)
        for _ in range(3):  # fewer than k: parity only on flush
            s.send(b"p" * 200)
        w.sim.run(until=1.0)
        assert s.stats.parity_sent == 0
        s.close()
        w.sim.run(until=3.0)
        assert s.stats.parity_sent == 1
