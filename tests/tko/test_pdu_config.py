"""Unit tests for PDUs and session configurations."""

import pytest

from repro.tko.config import SessionConfig
from repro.tko.message import TKOMessage
from repro.tko.pdu import (
    COMPACT_HEADER_SIZE,
    LEGACY_HEADER_BASE,
    LEGACY_OPTION_SIZE,
    TRAILER_CHECKSUM_SIZE,
    PDU,
    PduType,
)


class TestPdu:
    def test_compact_header_fixed_size(self):
        p = PDU(PduType.DATA, 1, options={"a": 1, "b": 2})
        assert p.header_size == COMPACT_HEADER_SIZE

    def test_legacy_header_grows_with_options(self):
        p = PDU(PduType.DATA, 1, compact=False, options={"a": 1, "b": 2})
        assert p.header_size == LEGACY_HEADER_BASE + 2 * LEGACY_OPTION_SIZE

    def test_trailer_checksum_adds_bytes(self):
        p = PDU(PduType.DATA, 1)
        base = p.header_size
        p.checksum_placement = "trailer"
        assert p.header_size == base + TRAILER_CHECKSUM_SIZE

    def test_wire_size_includes_data(self):
        p = PDU(PduType.DATA, 1, message=TKOMessage(b"x" * 100))
        assert p.wire_size == p.header_size + 100

    def test_aux_size_counted(self):
        p = PDU(PduType.PARITY, 1)
        base = p.header_size
        p.aux_size = 32
        assert p.header_size == base + 32

    def test_control_classification(self):
        assert PDU(PduType.SYN, 1).is_control
        assert PDU(PduType.CONFIG, 1).is_control
        assert not PDU(PduType.DATA, 1).is_control
        assert not PDU(PduType.ACK, 1).is_control

    def test_retransmit_clone_preserves_identity(self):
        p = PDU(PduType.DATA, 7, src_port=1, dst_port=2, seq=42,
                msg_id=5, frag_index=1, frag_count=3,
                message=TKOMessage(b"payload"))
        p.checksum_placement = "trailer"
        c = p.retransmit_clone()
        assert (c.seq, c.msg_id, c.frag_index, c.frag_count) == (42, 5, 1, 3)
        assert (c.src_port, c.dst_port) == (1, 2)
        assert c.id != p.id
        assert c.message is not p.message
        assert c.message.materialize() == b"payload"

    def test_retransmit_clone_is_lazy(self):
        from repro.tko.message import CopyMeter

        meter = CopyMeter()
        p = PDU(PduType.DATA, 1, message=TKOMessage(b"q" * 1000, meter=meter))
        p.retransmit_clone()
        assert meter.bytes_copied == 0

    def test_as_header(self):
        p = PDU(PduType.DATA, 3, seq=9)
        h = p.as_header()
        assert h.size == p.header_size
        assert h.aligned is True


class TestSessionConfig:
    def test_defaults_valid(self):
        SessionConfig()

    def test_invalid_choice_rejected(self):
        with pytest.raises(ValueError):
            SessionConfig(recovery="magic")

    def test_sr_requires_selective_acks(self):
        with pytest.raises(ValueError):
            SessionConfig(recovery="sr", ack="cumulative")
        SessionConfig(recovery="sr", ack="selective")

    def test_retransmission_requires_acks(self):
        with pytest.raises(ValueError):
            SessionConfig(recovery="gbn", ack="none", transmission="rate", rate_pps=10)

    def test_window_requires_acks(self):
        with pytest.raises(ValueError):
            SessionConfig(transmission="sliding-window", ack="none",
                          recovery="none")

    def test_multicast_requires_implicit(self):
        with pytest.raises(ValueError):
            SessionConfig(delivery="multicast", connection="explicit-3way")
        SessionConfig(delivery="multicast", connection="implicit")

    def test_bad_numbers_rejected(self):
        with pytest.raises(ValueError):
            SessionConfig(window=0)
        with pytest.raises(ValueError):
            SessionConfig(rate_pps=0.0, transmission="rate")
        with pytest.raises(ValueError):
            SessionConfig(fec_k=0)
        with pytest.raises(ValueError):
            SessionConfig(segment_size=32)

    def test_signature_ignores_tuning_knobs(self):
        a = SessionConfig(window=8)
        b = SessionConfig(window=64)
        assert a.signature() == b.signature()

    def test_signature_differs_on_mechanisms(self):
        a = SessionConfig()
        b = SessionConfig(recovery="sr", ack="selective")
        assert a.signature() != b.signature()

    def test_with_creates_modified_copy(self):
        a = SessionConfig()
        b = a.with_(window=99)
        assert b.window == 99 and a.window != 99

    def test_dict_roundtrip(self):
        cfg = SessionConfig(recovery="fec-rs", ack="none", transmission="rate",
                            rate_pps=120.0, fec_k=6, fec_r=2)
        again = SessionConfig.from_dict(cfg.to_dict())
        assert again == cfg

    def test_from_dict_rejects_unknown(self):
        with pytest.raises(ValueError):
            SessionConfig.from_dict({"bogus": 1})

    def test_describe_mentions_mechanisms(self):
        d = SessionConfig().describe()
        assert "gbn" in d and "sliding-window" in d
