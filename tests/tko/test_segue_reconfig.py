"""Run-time reconfiguration tests: segue semantics and synthesizer diffs."""

import pytest

from repro.mechanisms.acknowledgment import SelectiveAck
from repro.mechanisms.retransmission import SelectiveRepeat
from repro.tko.config import SessionConfig
from tests.conftest import TwoHosts


def symmetric_segue(w, slot_pairs):
    """Apply the same mechanism swaps to sender and receiver sessions."""
    for session in [w.rx_sessions[0]]:
        for slot, mech_cls in slot_pairs:
            session.segue(slot, mech_cls())


class TestSegue:
    def test_gbn_to_sr_mid_transfer_no_loss(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        for _ in range(8):
            s.send(b"a" * 1000)
        w.sim.run(until=0.5)
        for sess in (s, w.rx_sessions[0]):
            sess.segue("recovery", SelectiveRepeat())
            sess.segue("ack", SelectiveAck())
        for _ in range(8):
            s.send(b"b" * 1000)
        w.sim.run(until=10.0)
        assert len(w.delivered) == 16
        assert s.stats.reconfigurations == 2

    def test_segue_preserves_outstanding_queue(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        for _ in range(10):
            s.send(b"a" * 1000)
        # swap while data is still unacknowledged
        def swap():
            if s.state.outstanding_count() > 0:
                before = s.state.outstanding_count()
                s.segue("recovery", SelectiveRepeat())
                s.segue("ack", SelectiveAck())
                assert s.state.outstanding_count() == before

        w.sim.schedule(0.002, swap)
        w.sim.run(until=10.0)
        assert len(w.delivered) == 10

    def test_static_binding_refuses_segue(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig(binding="static"))
        with pytest.raises(RuntimeError):
            s.segue("recovery", SelectiveRepeat())

    def test_segue_charges_cpu(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        w.sim.run(until=0.5)
        before = w.ha.cpu.instructions_retired
        s.segue("recovery", SelectiveRepeat())
        s.segue("ack", SelectiveAck())
        assert w.ha.cpu.instructions_retired > before


class TestSynthesizerReconfigure:
    def test_diff_only_changed_slots(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        w.sim.run(until=0.5)
        synth = w.pa.synthesizer
        new_cfg = s.cfg.with_(recovery="sr", ack="selective")
        segued = synth.reconfigure(s, new_cfg)
        assert set(segued) == {"recovery", "ack"}
        assert s.cfg.recovery == "sr"

    def test_parameter_only_change_avoids_segue(self):
        w = TwoHosts()
        w.listen()
        cfg = SessionConfig(
            connection="implicit", transmission="rate", rate_pps=100,
            ack="none", recovery="none", sequencing="none",
        )
        s = w.open(cfg)
        w.sim.run(until=0.2)
        synth = w.pa.synthesizer
        segued = synth.reconfigure(s, cfg.with_(rate_pps=500.0))
        assert segued == []
        assert s.context.transmission.rate_pps == 500.0

    def test_playout_retune_in_place(self):
        w = TwoHosts()
        w.listen()
        cfg = SessionConfig(
            connection="implicit", transmission="rate", rate_pps=100,
            ack="none", recovery="none", sequencing="none",
            jitter="playout", playout_delay=0.05,
        )
        s = w.open(cfg)
        w.sim.run(until=0.2)
        w.pa.synthesizer.reconfigure(s, cfg.with_(playout_delay=0.2))
        assert s.context.jitter.playout_delay == 0.2

    def test_retransmit_to_fec_switch_flows(self):
        """The paper's §3(C) second policy example as a raw TKO operation."""
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        for _ in range(5):
            s.send(b"x" * 500)
        w.sim.run(until=1.0)
        fec_cfg = s.cfg.with_(
            recovery="fec-xor", ack="none", transmission="rate", rate_pps=200.0
        )
        w.pa.synthesizer.reconfigure(s, fec_cfg)
        w.pb.synthesizer.reconfigure(w.rx_sessions[0], fec_cfg)
        for _ in range(8):
            s.send(b"y" * 500)
        w.sim.run(until=5.0)
        assert len(w.delivered) == 13
        assert s.stats.parity_sent > 0
