"""Run-time reconfiguration tests: segue semantics and synthesizer diffs."""

import pytest

from repro.mechanisms.acknowledgment import SelectiveAck
from repro.mechanisms.retransmission import SelectiveRepeat
from repro.netsim.profiles import ethernet_10
from repro.tko.config import SessionConfig
from repro.tko.executor import use_executor
from tests.conftest import TwoHosts


def symmetric_segue(w, slot_pairs):
    """Apply the same mechanism swaps to sender and receiver sessions."""
    for session in [w.rx_sessions[0]]:
        for slot, mech_cls in slot_pairs:
            session.segue(slot, mech_cls())


class TestSegue:
    def test_gbn_to_sr_mid_transfer_no_loss(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        for _ in range(8):
            s.send(b"a" * 1000)
        w.sim.run(until=0.5)
        for sess in (s, w.rx_sessions[0]):
            sess.segue("recovery", SelectiveRepeat())
            sess.segue("ack", SelectiveAck())
        for _ in range(8):
            s.send(b"b" * 1000)
        w.sim.run(until=10.0)
        assert len(w.delivered) == 16
        assert s.stats.reconfigurations == 2

    def test_segue_preserves_outstanding_queue(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        for _ in range(10):
            s.send(b"a" * 1000)
        # swap while data is still unacknowledged
        def swap():
            if s.state.outstanding_count() > 0:
                before = s.state.outstanding_count()
                s.segue("recovery", SelectiveRepeat())
                s.segue("ack", SelectiveAck())
                assert s.state.outstanding_count() == before

        w.sim.schedule(0.002, swap)
        w.sim.run(until=10.0)
        assert len(w.delivered) == 10

    def test_static_binding_refuses_segue(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig(binding="static"))
        with pytest.raises(RuntimeError):
            s.segue("recovery", SelectiveRepeat())

    def test_segue_charges_cpu(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        w.sim.run(until=0.5)
        before = w.ha.cpu.instructions_retired
        s.segue("recovery", SelectiveRepeat())
        s.segue("ack", SelectiveAck())
        assert w.ha.cpu.instructions_retired > before


class TestSegueUnderCompiledPipeline:
    """A mid-transfer GBN→SR swap must stay loss-free whichever executor
    runs the data path, and the compiled pipeline must agree with the
    retained reference path event for event."""

    def _gbn_to_sr_run(self, kind, ber=0.0, seed=0):
        use_executor(kind)
        try:
            w = TwoHosts(profile=ethernet_10().scaled(ber=ber), seed=seed)
            w.listen()
            s = w.open(SessionConfig())
            for _ in range(8):
                s.send(b"a" * 1000)
            observed = {}

            def swap():
                observed["before"] = s.state.outstanding_count()
                for sess in (s, w.rx_sessions[0]):
                    sess.segue("recovery", SelectiveRepeat())
                    sess.segue("ack", SelectiveAck())
                observed["after"] = s.state.outstanding_count()

            w.sim.schedule(0.005, swap)
            w.sim.run(until=0.5)
            for _ in range(8):
                s.send(b"b" * 1000)
            w.sim.run(until=10.0)
            return w, s, observed
        finally:
            use_executor("compiled")

    @pytest.mark.parametrize("kind", ["reference", "compiled"])
    def test_swap_mid_transfer_delivers_every_byte(self, kind):
        w, s, observed = self._gbn_to_sr_run(kind)
        # the retransmission queue survives the swap intact...
        assert observed["after"] == observed["before"]
        # ...and nothing in flight across the segue is lost
        assert len(w.delivered) == 16
        assert sum(len(data) for data, _ in w.delivered) == 16_000

    def test_swap_during_loss_recovery_keeps_retransmission_queue(self):
        # corrupted frames force GBN into recovery before the swap lands;
        # SelectiveRepeat adopts the queue and still delivers everything
        w, s, observed = self._gbn_to_sr_run("compiled", ber=1e-5, seed=11)
        assert observed["before"] > 0
        assert observed["after"] == observed["before"]
        assert len(w.delivered) == 16
        assert s.stats.retransmissions > 0

    def test_reference_and_compiled_agree_exactly(self):
        runs = {}
        for kind in ("reference", "compiled"):
            w, s, _ = self._gbn_to_sr_run(kind, ber=1e-5, seed=11)
            runs[kind] = (
                len(w.delivered),
                sum(len(data) for data, _ in w.delivered),
                s.stats.retransmissions,
                s.stats.pdus_sent,
                w.ha.cpu.instructions_retired,
                w.hb.cpu.instructions_retired,
            )
        assert runs["reference"] == runs["compiled"]


class TestSynthesizerReconfigure:
    def test_diff_only_changed_slots(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        w.sim.run(until=0.5)
        synth = w.pa.synthesizer
        new_cfg = s.cfg.with_(recovery="sr", ack="selective")
        segued = synth.reconfigure(s, new_cfg)
        assert set(segued) == {"recovery", "ack"}
        assert s.cfg.recovery == "sr"

    def test_parameter_only_change_avoids_segue(self):
        w = TwoHosts()
        w.listen()
        cfg = SessionConfig(
            connection="implicit", transmission="rate", rate_pps=100,
            ack="none", recovery="none", sequencing="none",
        )
        s = w.open(cfg)
        w.sim.run(until=0.2)
        synth = w.pa.synthesizer
        segued = synth.reconfigure(s, cfg.with_(rate_pps=500.0))
        assert segued == []
        assert s.context.transmission.rate_pps == 500.0

    def test_playout_retune_in_place(self):
        w = TwoHosts()
        w.listen()
        cfg = SessionConfig(
            connection="implicit", transmission="rate", rate_pps=100,
            ack="none", recovery="none", sequencing="none",
            jitter="playout", playout_delay=0.05,
        )
        s = w.open(cfg)
        w.sim.run(until=0.2)
        w.pa.synthesizer.reconfigure(s, cfg.with_(playout_delay=0.2))
        assert s.context.jitter.playout_delay == 0.2

    def test_retransmit_to_fec_switch_flows(self):
        """The paper's §3(C) second policy example as a raw TKO operation."""
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        for _ in range(5):
            s.send(b"x" * 500)
        w.sim.run(until=1.0)
        fec_cfg = s.cfg.with_(
            recovery="fec-xor", ack="none", transmission="rate", rate_pps=200.0
        )
        w.pa.synthesizer.reconfigure(s, fec_cfg)
        w.pb.synthesizer.reconfigure(w.rx_sessions[0], fec_cfg)
        for _ in range(8):
            s.send(b"y" * 500)
        w.sim.run(until=5.0)
        assert len(w.delivered) == 13
        assert s.stats.parity_sent > 0
