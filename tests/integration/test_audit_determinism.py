"""Property test: the audit plane is a pure observer.  Conformance
verdicts and violation traces must be bit-identical across the compiled
and reference executors, and across coalesced/legacy manager modes — and
enabling the auditor must not change the simulated world at all."""

import dataclasses
import json

import pytest

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.faults import FaultInjector, FaultSchedule
from repro.netsim.profiles import ethernet_10, linear_path
from repro.tko.config import SessionConfig
from repro.tko.executor import use_executor
from repro.unites.obs.audit import AUDIT, QoSContract
from repro.unites.obs.telemetry import TELEMETRY
from tests.conftest import TwoHosts

#: the undirected links of the TwoHosts linear path A-s1-s2-B
LINKS = [("A", "s1"), ("s1", "s2"), ("s2", "B")]


@pytest.fixture(autouse=True)
def clean_global_planes():
    TELEMETRY.disable()
    TELEMETRY.reset()
    AUDIT.disable()
    AUDIT.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()
    AUDIT.disable()
    AUDIT.reset()


def audit_trace(auditor):
    """Everything the auditor concluded, in comparable form."""
    return (
        tuple(v.astuple() for v in auditor.violations),
        auditor.closed_windows,
        auditor.evaluated_windows,
        auditor.violating_windows,
        json.dumps(auditor.scorecard(), sort_keys=True, default=str),
        tuple(sorted(auditor.checked.items())),
    )


def run_chaos_world(kind: str, seed: int):
    use_executor(kind)
    try:
        AUDIT.reset()
        AUDIT.enable(window=0.25, warmup_windows=1, loss_grace=1.0)
        w = TwoHosts(seed=seed)
        w.listen()
        s = w.open(SessionConfig())
        contract = QoSContract(
            connection=f"chaos-{seed}",
            avg_throughput_bps=100e3,
            peak_throughput_bps=100e3,
            max_latency=1.0,
            max_jitter=0.5,
            loss_tolerance=0.0,
            ordered=True,
            captured_at=w.sim.now,
        )
        auditor = AUDIT.attach_session(s, contract)
        for i in range(30):
            s.send(b"c%02d" % i + b"z" * 700)
        schedule = FaultSchedule.random(seed, LINKS, horizon=2.0, n_faults=6)
        FaultInjector(w.sim, w.net, schedule).arm()
        w.sim.run(until=12.0)
        AUDIT.finalize()
        world_digest = (
            len(w.delivered),
            sum(len(data) for data, _ in w.delivered),
            w.sim.now,
            s.stats.pdus_sent,
            s.stats.retransmissions,
        )
        return audit_trace(auditor), world_digest
    finally:
        use_executor("compiled")
        AUDIT.disable()
        AUDIT.reset()


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_verdicts_bit_identical_across_executors(seed):
    ref = run_chaos_world("reference", seed)
    com = run_chaos_world("compiled", seed)
    assert ref == com


def test_auditor_does_not_perturb_the_world():
    """The same chaos run with and without the auditor attached must
    produce the identical simulated world (pure-observer property)."""

    def world_digest(audited: bool, seed: int = 4):
        AUDIT.reset()
        if audited:
            AUDIT.enable(window=0.25)
        w = TwoHosts(seed=seed)
        w.listen()
        s = w.open(SessionConfig())
        if audited:
            AUDIT.attach_session(
                s,
                QoSContract(
                    connection="p", avg_throughput_bps=100e3,
                    peak_throughput_bps=100e3, max_latency=1.0,
                    max_jitter=0.5, loss_tolerance=0.0, ordered=True,
                    captured_at=0.0,
                ),
            )
        for i in range(20):
            s.send(b"m%02d" % i + b"z" * 500)
        schedule = FaultSchedule.random(4, LINKS, horizon=2.0, n_faults=5)
        FaultInjector(w.sim, w.net, schedule).arm()
        w.sim.run(until=10.0)
        digest = (
            len(w.delivered),
            sum(len(d) for d, _ in w.delivered),
            w.sim.now,
            s.stats.pdus_sent,
            s.stats.retransmissions,
            w.ha.cpu.instructions_retired,
            w.hb.cpu.instructions_retired,
        )
        AUDIT.disable()
        AUDIT.reset()
        return digest

    assert world_digest(audited=False) == world_digest(audited=True)


def run_manager_world(mode: str, seed: int):
    AUDIT.reset()
    AUDIT.enable(window=0.2, warmup_windows=1)
    try:
        sysm = AdaptiveSystem(seed=seed)
        sysm.attach_network(
            linear_path(sysm.sim, ethernet_10(), ("A", "B"), rng=sysm.rng)
        )
        a = sysm.node("A", manager_mode=mode)
        b = sysm.node("B", manager_mode=mode)
        got = []
        b.mantts.register_service(7000, on_deliver=lambda d, m: got.append(d))
        acd = ACD(
            participants=("B",),
            quantitative=QuantitativeQoS(
                avg_throughput_bps=150e3, duration=600, max_latency=0.8
            ),
            qualitative=QualitativeQoS(),
        )
        conn = a.mantts.open(acd, adaptation=True)
        sysm.run(until=0.5)
        for i in range(25):
            conn.send(b"x%02d" % i + b"z" * 600)
        schedule = FaultSchedule.random(seed, LINKS, horizon=3.0, n_faults=4)
        shifted = FaultSchedule(
            dataclasses.replace(f, at=f.at + sysm.now) for f in schedule.faults
        )
        FaultInjector(sysm.sim, sysm.network, shifted).arm()
        sysm.run(until=8.0)
        AUDIT.finalize()
        auditor = AUDIT.auditors[conn.ref]
        return audit_trace(auditor), len(got), sysm.now
    finally:
        AUDIT.disable()
        AUDIT.reset()


@pytest.mark.parametrize("seed", [2, 5])
def test_verdicts_bit_identical_across_manager_modes(seed):
    coalesced = run_manager_world("coalesced", seed)
    legacy = run_manager_world("legacy", seed)
    assert coalesced == legacy
