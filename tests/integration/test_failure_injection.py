"""Failure-injection integration tests: flaps, partitions, pressure, garbage."""


from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.frame import Frame
from repro.netsim.profiles import dual_path, ethernet_10, linear_path
from repro.tko.config import SessionConfig
from tests.conftest import TwoHosts


class TestLinkFlap:
    def test_reliable_session_survives_brief_outage(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        for _ in range(20):
            s.send(b"d" * 1000)
        # the only path goes down for 200 ms mid-transfer
        w.sim.schedule(0.01, w.net.fail_link, "s1", "s2")
        w.sim.schedule(0.21, w.net.restore_link, "s1", "s2")
        w.sim.run(until=20.0)
        assert len(w.delivered) == 20
        assert s.stats.retransmissions > 0

    def test_failover_to_backup_path_mid_transfer(self):
        from repro.sim.kernel import Simulator
        from repro.host.nic import Host
        from repro.tko.protocol import TKOProtocol

        sim = Simulator()
        net = dual_path(sim, ethernet_10(), ethernet_10())
        ha, hb = Host(sim, net, "A"), Host(sim, net, "B")
        pa, pb = TKOProtocol(ha), TKOProtocol(hb)
        got = []
        pb.listen(7000, lambda p, f: SessionConfig(),
                  lambda s: setattr(s, "on_deliver", lambda d, m: got.append(d)))
        s = pa.create_session(SessionConfig(), "B", 7000)
        s.connect()
        for _ in range(30):
            s.send(b"x" * 1000)
        sim.schedule(0.02, net.fail_link, "p1", "p2")  # permanent failover
        sim.run(until=20.0)
        assert len(got) == 30

    def test_permanent_partition_aborts(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig(max_retries=3))
        s.send(b"d" * 500)
        w.sim.run(until=0.002)
        w.net.fail_link("A", "s1")     # total partition, never restored
        w.sim.run(until=120.0)
        assert s.stats.aborted is not None


class TestBufferPressure:
    def test_tiny_receiver_pool_throttles_not_breaks(self):
        from repro.sim.kernel import Simulator
        from repro.host.nic import Host
        from repro.tko.protocol import TKOProtocol
        from repro.netsim.profiles import linear_path, ethernet_10

        sim = Simulator()
        net = linear_path(sim, ethernet_10(), ("A", "B"))
        ha = Host(sim, net, "A")
        hb = Host(sim, net, "B", buffer_capacity=8_000)  # ~5 PDUs worth
        pa, pb = TKOProtocol(ha), TKOProtocol(hb)
        got = []
        pb.listen(7000, lambda p, f: SessionConfig(window=64),
                  lambda s: setattr(s, "on_deliver", lambda d, m: got.append(d)))
        s = pa.create_session(SessionConfig(window=64), "B", 7000)
        s.connect()
        for _ in range(30):
            s.send(b"d" * 1200)
        sim.run(until=30.0)
        # everything arrives despite the receiver's tiny pool: the
        # advertised window (pool-pressure-scaled) throttles the sender
        assert len(got) == 30

    def test_advertised_window_shrinks_under_pressure(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig(window=32))
        s.send(b"x")
        w.sim.run(until=1.0)
        rx = w.rx_sessions[0]
        open_window = rx.advertised_window()
        # consume 95% of the receiver's pool
        w.hb.buffers.alloc(int(w.hb.buffers.capacity * 0.95))
        assert rx.advertised_window() < open_window / 2


class TestGarbageTolerance:
    def test_garbage_to_signalling_port_ignored(self):
        sysm = AdaptiveSystem(seed=0)
        sysm.attach_network(
            linear_path(sysm.sim, ethernet_10(), ("A", "B"), rng=sysm.rng)
        )
        a, b = sysm.node("A"), sysm.node("B")
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        # a signalling session delivering non-JSON bytes must be shrugged off
        sig = a.mantts._sig_session("B")
        sig.send(b"\xff\xfe this is not a signalling message")
        sysm.run(until=1.0)
        # the entity still works afterwards
        conn = a.mantts.open(ACD(participants=("B",)))
        sysm.run(until=1.5)
        conn.send(b"ok")
        sysm.run(until=2.5)
        assert conn.session is not None

    def test_non_pdu_frames_discarded(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        w.net.send(Frame("A", "B", 64, payload=12345))
        s.send(b"real data")
        w.sim.run(until=2.0)
        assert len(w.delivered) == 1


class TestChangeTsc:
    def test_adjust_tsc_rederives_whole_config(self):
        sysm = AdaptiveSystem(seed=6)
        sysm.attach_network(
            linear_path(sysm.sim, ethernet_10(), ("A", "B"), rng=sysm.rng)
        )
        a, b = sysm.node("A"), sysm.node("B")
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        acd = ACD(
            participants=("B",),
            quantitative=QuantitativeQoS(duration=600, loss_tolerance=0.05,
                                         max_jitter=0.02),
            qualitative=QualitativeQoS(ordered=True, duplicate_sensitive=True),
        )
        conn = a.mantts.open(acd)
        sysm.run(until=1.0)
        assert conn.tsc.value == "non-real-time-non-isochronous"
        before = conn.cfg.jitter
        state = conn.monitor.snapshot()
        ok = conn.change_tsc("interactive-isochronous", state)
        assert ok
        sysm.run(until=2.0)
        assert conn.tsc.value == "interactive-isochronous"
        # the §4.1.2 example: app switched coding, now needs isochronous
        assert conn.cfg.jitter == "playout" or conn.cfg.transmission in ("rate", "window-rate")
        conn.send(b"still alive")
        sysm.run(until=3.0)
