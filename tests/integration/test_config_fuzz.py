"""Property-based fuzzing over the configuration space.

Two system-level invariants:

* every *valid* SessionConfig moves data end-to-end on a clean LAN —
  whatever combination of mechanisms the synthesizer is asked to compose;
* reliable configurations deliver *everything* even under loss.

Config validity is the SessionConfig constructor's own contract; the
strategies draw from the full choice space and discard combinations the
constructor rejects, so these tests also pin that the validator and the
engine agree about what is runnable.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.tko.config import (
    ACK_CHOICES,
    CONNECTION_CHOICES,
    DETECTION_CHOICES,
    PLACEMENT_CHOICES,
    RECOVERY_CHOICES,
    SEQUENCING_CHOICES,
    SessionConfig,
)
from tests.conftest import TwoHosts


@st.composite
def session_configs(draw):
    """Any constructor-valid unicast configuration."""
    kwargs = dict(
        connection=draw(st.sampled_from(CONNECTION_CHOICES)),
        transmission=draw(
            st.sampled_from(("none", "stop-and-wait", "sliding-window", "rate",
                             "window-rate"))
        ),
        detection=draw(st.sampled_from(DETECTION_CHOICES)),
        checksum_placement=draw(st.sampled_from(PLACEMENT_CHOICES)),
        ack=draw(st.sampled_from(ACK_CHOICES)),
        recovery=draw(st.sampled_from(RECOVERY_CHOICES)),
        sequencing=draw(st.sampled_from(SEQUENCING_CHOICES)),
        jitter=draw(st.sampled_from(("none", "playout"))),
        buffer=draw(st.sampled_from(("fixed", "variable"))),
        window=draw(st.integers(min_value=1, max_value=64)),
        rate_pps=draw(st.sampled_from((None, 50.0, 500.0))),
        fec_k=draw(st.integers(min_value=1, max_value=8)),
        fec_r=draw(st.integers(min_value=1, max_value=3)),
        compact_headers=draw(st.booleans()),
        binding=draw(st.sampled_from(("dynamic", "reconfigurable", "static"))),
    )
    if kwargs["transmission"] in ("rate", "window-rate") and kwargs["rate_pps"] is None:
        kwargs["rate_pps"] = 200.0
    try:
        return SessionConfig(**kwargs)
    except ValueError:
        return None


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(cfg=session_configs())
def test_any_valid_config_moves_data_on_clean_lan(cfg):
    if cfg is None:
        return  # constructor rejected the combination: nothing to run
    from repro.netsim.profiles import ethernet_10

    w = TwoHosts(profile=ethernet_10().scaled(ber=0.0))
    w.transfer(cfg, [b"payload-%d" % i * 20 for i in range(5)], until=30.0)
    assert len(w.delivered) == 5
    assert sorted(d for d, _ in w.delivered) == sorted(
        b"payload-%d" % i * 20 for i in range(5)
    )


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    recovery_ack=st.sampled_from((("gbn", "cumulative"), ("sr", "selective"),
                                  ("gbn", "delayed"))),
    connection=st.sampled_from(CONNECTION_CHOICES),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_reliable_configs_deliver_all_under_loss(recovery_ack, connection, seed):
    from repro.netsim.profiles import ethernet_10

    recovery, ack = recovery_ack
    cfg = SessionConfig(connection=connection, recovery=recovery, ack=ack)
    w = TwoHosts(profile=ethernet_10().scaled(ber=3e-6), seed=seed)
    w.transfer(cfg, [bytes([i % 256]) * 900 for i in range(15)], until=60.0)
    assert len(w.delivered) == 15
