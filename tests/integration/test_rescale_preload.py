"""Tests for the window-rescale policy and TSC template preloading."""


from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.policies import rtt_window_rescale
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.profiles import dual_path, ethernet_10, satellite
from repro.tko.templates import TemplateCache, preload_tsc_templates


class TestWindowRescale:
    def test_failover_grows_window_to_new_bdp(self):
        sat = satellite().scaled(bandwidth_bps=8e6)
        sysm = AdaptiveSystem(seed=14)
        sysm.attach_network(dual_path(sysm.sim, ethernet_10(), sat, rng=sysm.rng))
        a, b = sysm.node("A"), sysm.node("B")
        got = []
        b.mantts.register_service(7000, on_deliver=lambda d, m: got.append(d))
        acd = ACD(
            participants=("B",),
            quantitative=QuantitativeQoS(avg_throughput_bps=1e6, duration=600,
                                         message_size=1024),
            qualitative=QualitativeQoS(),
            tsa=rtt_window_rescale(threshold=0.15),
        )
        conn = a.mantts.open(acd)
        sysm.run(until=1.0)
        w_before = conn.cfg.window
        sysm.network.fail_link("p1", "p2")
        sysm.run(until=6.0)
        assert conn.cfg.window > w_before * 3
        # data still flows at the new regime
        for _ in range(5):
            conn.send(b"m" * 1024)
        sysm.run(until=12.0)
        assert len(got) == 5

    def test_rescale_is_parameter_only_no_segue(self):
        sat = satellite().scaled(bandwidth_bps=8e6)
        sysm = AdaptiveSystem(seed=15)
        sysm.attach_network(dual_path(sysm.sim, ethernet_10(), sat, rng=sysm.rng))
        a, b = sysm.node("A"), sysm.node("B")
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        acd = ACD(
            participants=("B",),
            quantitative=QuantitativeQoS(duration=600),
            qualitative=QualitativeQoS(),
            tsa=rtt_window_rescale(threshold=0.15),
        )
        conn = a.mantts.open(acd)
        sysm.run(until=1.0)
        segues_before = conn.session.stats.reconfigurations
        sysm.network.fail_link("p1", "p2")
        sysm.run(until=6.0)
        # window is a tuning knob: reconfigure retunes in place
        assert conn.session.stats.reconfigurations == segues_before
        assert conn.reconfig_log


class TestTemplatePreload:
    def test_preload_fills_cache(self):
        cache = TemplateCache()
        n = preload_tsc_templates(cache)
        assert n >= 5
        assert len(cache) == n

    def test_common_profiles_hit_after_preload(self):
        from repro.mantts.monitor import NetworkState
        from repro.mantts.transform import specify_scs
        from repro.mantts.tsc import APP_PROFILES

        cache = TemplateCache()
        preload_tsc_templates(cache)
        path = NetworkState("A", "B", True, 0.004, 0.004, 10e6, 1500, 1e-6,
                            0.0, 0.0, 3)
        p = APP_PROFILES["file-transfer"]
        acd = ACD(participants=("B",), quantitative=p.quantitative(),
                  qualitative=p.qualitative())
        cfg = specify_scs(acd, path).config
        cost, hit = cache.instantiation_cost(cfg)
        assert hit

    def test_preload_idempotent(self):
        cache = TemplateCache()
        n1 = preload_tsc_templates(cache)
        n2 = preload_tsc_templates(cache)
        assert n2 == 0
        assert len(cache) == n1

    def test_preloaded_sessions_instantiate_cheaply(self):
        sysm = AdaptiveSystem(seed=16)
        from repro.netsim.profiles import linear_path

        sysm.attach_network(
            linear_path(sysm.sim, ethernet_10(), ("A", "B"), rng=sysm.rng)
        )
        preload_tsc_templates(sysm.templates)
        misses_before = sysm.templates.misses
        a, b = sysm.node("A"), sysm.node("B")
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        from repro.mantts.tsc import APP_PROFILES

        p = APP_PROFILES["oltp"]
        acd = ACD(participants=("B",), quantitative=p.quantitative(),
                  qualitative=p.qualitative())
        conn = a.mantts.open(acd)
        sysm.run(until=1.0)
        assert conn.session is not None
