"""Property test: under randomized fault schedules, the compiled pipeline
and the reference interpreter still produce bit-identical simulated worlds.

The compiler's contract (wall time only — see ``docs/pipelines.md``) must
hold not just on clean runs but through link flaps, bandwidth collapses,
BER storms, and queue squeezes: every drop, retransmission, and recovery
decision has to land on the same virtual timestamps either way."""

import pytest

from repro.netsim.faults import FaultInjector, FaultSchedule
from repro.tko.config import SessionConfig
from repro.tko.executor import use_executor
from tests.conftest import TwoHosts

#: the undirected links of the TwoHosts linear path A-s1-s2-B
LINKS = [("A", "s1"), ("s1", "s2"), ("s2", "B")]

CONFIGS = {
    "gbn": SessionConfig(),
    "sr": SessionConfig(ack="selective", recovery="sr"),
    "rate-unreliable": SessionConfig(
        connection="implicit", transmission="rate", rate_pps=500.0,
        ack="none", recovery="none", sequencing="none",
    ),
}


def run_world(kind: str, seed: int, cfg: SessionConfig):
    use_executor(kind)
    try:
        w = TwoHosts(seed=seed)
        w.listen()
        s = w.open(cfg)
        for i in range(30):
            s.send(b"c%02d" % i + b"z" * 700)
        schedule = FaultSchedule.random(seed, LINKS, horizon=2.0, n_faults=6)
        inj = FaultInjector(w.sim, w.net, schedule).arm()
        w.sim.run(until=12.0)
        return (
            tuple(inj.trace),
            len(w.delivered),
            sum(len(data) for data, _ in w.delivered),
            w.sim.now,
            s.stats.pdus_sent,
            s.stats.retransmissions,
            w.ha.cpu.instructions_retired,
            w.hb.cpu.instructions_retired,
            tuple(
                (link.stats.delivered, link.stats.dropped_overflow,
                 link.stats.dropped_down, link.stats.corrupted)
                for _, link in sorted(w.net.links.items())
            ),
        )
    finally:
        use_executor("compiled")


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
def test_executors_bit_identical_under_chaos(seed):
    cfg = CONFIGS[list(CONFIGS)[seed % len(CONFIGS)]]
    assert run_world("reference", seed, cfg) == run_world("compiled", seed, cfg)


def test_chaos_run_is_repeatable_within_one_executor():
    cfg = CONFIGS["gbn"]
    assert run_world("compiled", 9, cfg) == run_world("compiled", 9, cfg)
