"""Path-MTU black hole after failover: the fault surfaces, never hangs."""


from repro.netsim.profiles import NetworkProfile
from repro.netsim.network import Network
from repro.host.nic import Host
from repro.sim.kernel import Simulator
from repro.tko.config import SessionConfig
from repro.tko.protocol import TKOProtocol

FAT = NetworkProfile("fat", 100e6, 1e-4, 0.0, 4500, 64)
THIN = NetworkProfile("thin", 100e6, 1e-4, 0.0, 1500, 64)


def dual_mtu_net(sim):
    """A↔B with a fat primary path and a thin-MTU backup."""
    net = Network(sim)
    for n in ("A", "B", "p", "q"):
        net.add_node(n)
    net.add_link("A", "p", FAT.bandwidth_bps, FAT.delay, mtu=FAT.mtu)
    net.add_link("p", "B", FAT.bandwidth_bps, FAT.delay, mtu=FAT.mtu)
    net.add_link("A", "q", THIN.bandwidth_bps, THIN.delay * 3, mtu=THIN.mtu)
    net.add_link("q", "B", THIN.bandwidth_bps, THIN.delay * 3, mtu=THIN.mtu)
    return net


class TestMtuBlackHole:
    def test_oversize_retransmissions_abort_not_hang(self):
        sim = Simulator()
        net = dual_mtu_net(sim)
        ha, hb = Host(sim, net, "A"), Host(sim, net, "B")
        pa, pb = TKOProtocol(ha), TKOProtocol(hb)
        got = []
        pb.listen(7000, lambda p, f: SessionConfig(),
                  lambda s: setattr(s, "on_deliver", lambda d, m: got.append(d)))
        # 4 KB segments sized for the fat path
        s = pa.create_session(SessionConfig(max_retries=4), "B", 7000)
        s.connect()
        for _ in range(100):
            s.send(b"x" * 4000)
        sim.run(until=0.004)      # mid-transfer, queue still full
        assert s.state.outstanding_count() + len(s._send_queue) > 0
        net.fail_link("A", "p")   # reroute onto the 1500-MTU path
        sim.run(until=120.0)
        # the session does not hang forever: the give-up threshold fires
        assert s.closed
        assert s.stats.aborted is not None
        drops = sum(l.stats.dropped_mtu for l in net.links.values())
        assert drops > 0

    def test_dynamic_segment_size_recovers_new_sends(self):
        """Sessions that derive the segment size per send() adapt to the
        thinner path; only the pre-failover PDUs are lost to the hole."""
        sim = Simulator()
        net = dual_mtu_net(sim)
        ha, hb = Host(sim, net, "A"), Host(sim, net, "B")
        pa, pb = TKOProtocol(ha), TKOProtocol(hb)
        got = []
        pb.listen(7000, lambda p, f: SessionConfig(connection="implicit",
                                                   transmission="rate",
                                                   rate_pps=200, ack="none",
                                                   recovery="none",
                                                   sequencing="none"),
                  lambda s: setattr(s, "on_deliver", lambda d, m: got.append(d)))
        cfg = SessionConfig(connection="implicit", transmission="rate",
                            rate_pps=200, ack="none", recovery="none",
                            sequencing="none")  # segment_size=None: dynamic
        s = pa.create_session(cfg, "B", 7000)
        s.connect()
        s.send(b"x" * 4000)
        sim.run(until=0.05)
        assert len(got) == 1
        net.fail_link("A", "p")
        s.send(b"y" * 4000)   # re-fragmented for the 1500-MTU path
        sim.run(until=1.0)
        assert len(got) == 2
