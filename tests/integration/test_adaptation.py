"""Full-system adaptation scenarios — the paper's two worked policies,
executed end to end through MANTTS + TKO + UNITES."""


from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.policies import congestion_switch_gbn_to_sr, rtt_switch_to_fec
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.profiles import dual_path, ethernet_10, linear_path, satellite, wan_internet
from repro.netsim.traffic import BackgroundLoad


class TestCongestionPolicy:
    """§3(C) example 1: GBN → SR when congestion crosses the threshold."""

    def test_policy_switches_and_restores(self):
        sysm = AdaptiveSystem(seed=3)
        sysm.attach_network(
            linear_path(sysm.sim, wan_internet(), ("A", "B"), rng=sysm.rng)
        )
        a, b = sysm.node("A"), sysm.node("B")
        got = []
        b.mantts.register_service(7000, on_deliver=lambda d, m: got.append(d))
        acd = ACD(
            participants=("B",),
            quantitative=QuantitativeQoS(avg_throughput_bps=400e3, duration=600),
            qualitative=QualitativeQoS(),
            tsa=congestion_switch_gbn_to_sr(high=0.5, low=0.1),
        )
        conn = a.mantts.open(acd)
        sysm.run(until=1.0)
        assert conn.cfg.recovery == "gbn"
        # phase 1: congest the path
        load = BackgroundLoad(sysm.network, "s1", "s2", rate_bps=2.2e6)
        load.start(1.0)
        sysm.run(until=8.0)
        assert conn.cfg.recovery == "sr"
        # phase 2: congestion subsides → restore go-back-N
        load.stop()
        sysm.run(until=25.0)
        assert conn.cfg.recovery == "gbn"
        # traffic kept flowing across both segues
        conn.send(b"end" * 100)
        sysm.run(until=30.0)
        assert got


class TestSatellitePolicy:
    """§3(C) example 2: retransmission → FEC when the route fails over to
    a satellite path and the RTT crosses the threshold."""

    def test_failover_triggers_fec(self):
        sysm = AdaptiveSystem(seed=4)
        sysm.attach_network(
            dual_path(sysm.sim, ethernet_10(), satellite(), rng=sysm.rng)
        )
        a, b = sysm.node("A"), sysm.node("B")
        got = []
        b.mantts.register_service(7000, on_deliver=lambda d, m: got.append(d))
        acd = ACD(
            participants=("B",),
            quantitative=QuantitativeQoS(
                avg_throughput_bps=128e3, duration=600, loss_tolerance=0.02,
                message_size=512,
            ),
            qualitative=QualitativeQoS(ordered=False, duplicate_sensitive=False),
            tsa=rtt_switch_to_fec(threshold=0.2),
        )
        conn = a.mantts.open(acd)
        sysm.run(until=1.0)
        assert conn.cfg.recovery in ("gbn", "none", "fec-xor")
        before = conn.cfg.recovery
        sysm.network.fail_link("p1", "p2")
        sysm.run(until=6.0)
        assert conn.cfg.recovery == "fec-rs"
        assert conn.cfg.ack == "none"
        # data still flows over the satellite path with FEC protection
        n0 = len(got)
        for _ in range(10):
            conn.send(b"s" * 400)
        sysm.run(until=15.0)
        assert len(got) > n0


class TestAdaptiveVsStaticSketch:
    """Adaptive reconfiguration keeps goodput when conditions change."""

    def test_reconfiguration_counter_visible_in_stats(self):
        sysm = AdaptiveSystem(seed=5)
        sysm.attach_network(
            linear_path(sysm.sim, wan_internet(), ("A", "B"), rng=sysm.rng)
        )
        a, b = sysm.node("A"), sysm.node("B")
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        acd = ACD(
            participants=("B",),
            quantitative=QuantitativeQoS(duration=600),
            qualitative=QualitativeQoS(),
            tsa=congestion_switch_gbn_to_sr(high=0.4),
        )
        conn = a.mantts.open(acd)
        sysm.run(until=1.0)
        load = BackgroundLoad(sysm.network, "s1", "s2", rate_bps=2.5e6)
        load.start(1.0)
        sysm.run(until=8.0)
        assert conn.session.stats.reconfigurations >= 1
        assert conn.reconfig_log
