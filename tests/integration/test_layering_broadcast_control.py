"""Tests for live protocol-graph layering, broadcast, and control traffic."""

import numpy as np
import pytest

from repro.netsim.frame import Frame
from repro.netsim.profiles import ethernet_10, fddi_100, star
from repro.tko.config import SessionConfig
from repro.tko.protocol import PassthroughLayer
from tests.conftest import TwoHosts


class TestLiveLayering:
    def test_layers_add_wire_bytes(self):
        plain = TwoHosts()
        s0 = plain.transfer(SessionConfig(), [b"x" * 500], until=2.0)
        layered = TwoHosts()
        for i in range(4):
            layered.pa.insert_layer(PassthroughLayer(f"l{i}", header_bytes=16))
        s1 = layered.transfer(SessionConfig(), [b"x" * 500], until=2.0)
        assert len(layered.delivered) == 1
        # frame sizes grew by the layer headers on the sender side
        assert (
            layered.net.links[("A", "s1")].stats.bytes_delivered
            > plain.net.links[("A", "s1")].stats.bytes_delivered
        )

    def test_layers_charge_cpu_per_direction(self):
        plain = TwoHosts()
        plain.transfer(SessionConfig(), [b"x" * 500] * 5, until=2.0)
        base = plain.ha.cpu.instructions_retired
        layered = TwoHosts()
        for i in range(6):
            layered.pa.insert_layer(PassthroughLayer(f"l{i}", header_bytes=4))
        layered.transfer(SessionConfig(), [b"x" * 500] * 5, until=2.0)
        assert layered.ha.cpu.instructions_retired > base

    def test_naive_layers_copy_payload(self):
        w = TwoHosts()
        w.pa.insert_layer(PassthroughLayer("naive", header_bytes=4, zero_copy=False))
        before = w.ha.copy_meter.bytes_copied
        w.transfer(SessionConfig(), [b"z" * 1000], until=2.0)
        assert w.ha.copy_meter.bytes_copied > before

    def test_zero_copy_layers_do_not_copy(self):
        w = TwoHosts()
        w.pa.insert_layer(PassthroughLayer("zc", header_bytes=4, zero_copy=True))
        w.listen()
        s = w.open(SessionConfig())
        sender_meter = w.ha.copy_meter
        before = sender_meter.bytes_copied
        s.send(b"z" * 1000)
        w.sim.run(until=2.0)
        assert sender_meter.bytes_copied == before

    def test_layer_removal_restores_path(self):
        w = TwoHosts()
        layer = PassthroughLayer("tmp", header_bytes=64)
        w.pa.insert_layer(layer)
        w.pa.remove_layer(layer)
        w.transfer(SessionConfig(), [b"q" * 100], until=2.0)
        assert len(w.delivered) == 1


class TestBroadcast:
    def test_broadcast_reaches_every_attached_host(self, sim):
        net = star(sim, ethernet_10(), ["A", "B", "C", "D"])
        rx = {h: [] for h in "BCD"}
        net.attach_host("A", lambda f: None)
        for h in "BCD":
            net.attach_host(h, rx[h].append)
        net.send(Frame("A", net.BROADCAST, 200))
        sim.run()
        assert all(len(v) == 1 for v in rx.values())

    def test_broadcast_skips_sender_and_bare_switches(self, sim):
        net = star(sim, ethernet_10(), ["A", "B"])
        back_at_a = []
        net.attach_host("A", back_at_a.append)
        net.attach_host("B", lambda f: None)
        net.send(Frame("A", net.BROADCAST, 200))
        sim.run()
        assert back_at_a == []
        assert net.nodes["hub"].stats.dropped_no_route == 0


class TestControlWorkload:
    def test_periodic_scan_rate(self, sim):
        from repro.apps.control import ControlLoopSource

        class Sink:
            def __init__(self):
                self.n = 0

            def send(self, data):
                self.n += 1

        sink = Sink()
        src = ControlLoopSource(sim, sink, rng=np.random.default_rng(0),
                                scan_interval=0.01, alarm_rate=0.0)
        src.start()
        sim.run(until=1.0)
        assert sink.n == pytest.approx(100, abs=2)

    def test_alarm_bursts_fire(self, sim):
        from repro.apps.control import ControlLoopSource

        sent = []

        class Sink:
            def send(self, data):
                sent.append(data)

        src = ControlLoopSource(sim, Sink(), rng=np.random.default_rng(1),
                                scan_interval=0.01, alarm_rate=2.0, alarm_burst=5)
        src.start()
        sim.run(until=5.0)
        assert src.alarms > 3
        assert any(d.startswith(b"\xEE") for d in sent)

    def test_hard_deadline_over_priority_session(self):
        from repro.apps.control import ControlLoopSource
        from repro.apps.workloads import DeliveryTracker

        w = TwoHosts(profile=fddi_100())
        tracker = DeliveryTracker(deadline=0.01).bind_clock(w.sim)
        cfg = SessionConfig(
            connection="implicit", transmission="sliding-window",
            ack="selective", recovery="sr", sequencing="ordered-dedup",
            priority=True, segment_size=256,
        )
        w.pb.listen(7000, lambda p, f: cfg,
                    lambda s: setattr(s, "on_deliver", tracker.on_deliver))
        s = w.pa.create_session(cfg, "B", 7000)
        s.connect()
        src = ControlLoopSource(w.sim, s, rng=np.random.default_rng(2))
        src.start(0.1)
        w.sim.run(until=3.0)
        assert tracker.count > 200
        assert tracker.deadline_miss_rate() < 0.01
