"""Unit/integration tests for nodes, routing, multicast, failover."""

import pytest

from repro.netsim.frame import Frame
from repro.netsim.network import Network
from repro.netsim.profiles import dual_path, ethernet_10, satellite, star


def simple_net(sim):
    net = Network(sim)
    for n in ("A", "s1", "s2", "B"):
        net.add_node(n)
    net.add_link("A", "s1", 10e6, 1e-4)
    net.add_link("s1", "s2", 10e6, 1e-4)
    net.add_link("s2", "B", 10e6, 1e-4)
    return net


class TestTopology:
    def test_duplicate_node_rejected(self, sim):
        net = Network(sim)
        net.add_node("A")
        with pytest.raises(ValueError):
            net.add_node("A")

    def test_link_needs_existing_nodes(self, sim):
        net = Network(sim)
        net.add_node("A")
        with pytest.raises(KeyError):
            net.add_link("A", "B", 1e6, 0.001)

    def test_duplicate_link_rejected(self, sim):
        net = simple_net(sim)
        with pytest.raises(ValueError):
            net.add_link("A", "s1", 1e6, 0.001)

    def test_bidirectional_creates_both(self, sim):
        net = simple_net(sim)
        assert ("A", "s1") in net.links and ("s1", "A") in net.links

    def test_attach_host_creates_node_if_needed(self, sim):
        net = Network(sim)
        net.add_node("X")
        node = net.attach_host("H", lambda f: None)
        assert node.name == "H"

    def test_double_attach_rejected(self, sim):
        net = simple_net(sim)
        net.attach_host("A", lambda f: None)
        with pytest.raises(ValueError):
            net.attach_host("A", lambda f: None)


class TestRoutingAndDelivery:
    def test_route(self, sim):
        net = simple_net(sim)
        assert net.route("A", "B") == ["A", "s1", "s2", "B"]

    def test_unreachable_route_none(self, sim):
        net = simple_net(sim)
        net.add_node("iso")
        assert net.route("A", "iso") is None

    def test_unicast_delivery(self, sim):
        net = simple_net(sim)
        got = []
        net.attach_host("B", got.append)
        net.send(Frame("A", "B", 500))
        sim.run()
        assert len(got) == 1
        assert got[0].hops == 3
        assert got[0].trace == ["A", "s1", "s2", "B"]

    def test_unknown_source_raises(self, sim):
        net = simple_net(sim)
        with pytest.raises(KeyError):
            net.send(Frame("nobody", "B", 100))

    def test_no_route_counts_drop(self, sim):
        net = simple_net(sim)
        net.add_node("iso")
        net.send(Frame("A", "iso", 100))
        sim.run()
        assert net.nodes["A"].stats.dropped_no_route == 1

    def test_path_mtu_is_min(self, sim):
        net = Network(sim)
        for n in ("A", "m", "B"):
            net.add_node(n)
        net.add_link("A", "m", 10e6, 1e-4, mtu=4500)
        net.add_link("m", "B", 10e6, 1e-4, mtu=1500)
        assert net.path_mtu("A", "B") == 1500

    def test_path_bottleneck(self, sim):
        net = Network(sim)
        for n in ("A", "m", "B"):
            net.add_node(n)
        net.add_link("A", "m", 100e6, 1e-4)
        net.add_link("m", "B", 1.5e6, 1e-4)
        assert net.path_bottleneck_bps("A", "B") == 1.5e6

    def test_nominal_rtt_symmetricish(self, sim):
        net = simple_net(sim)
        rtt = net.nominal_rtt("A", "B")
        assert rtt == pytest.approx(2 * (3 * 1e-4 + 3 * 512 * 8 / 10e6))

    def test_path_ber_compound(self, sim):
        net = Network(sim)
        for n in ("A", "m", "B"):
            net.add_node(n)
        net.add_link("A", "m", 1e6, 0.0, ber=1e-6)
        net.add_link("m", "B", 1e6, 0.0, ber=1e-6)
        assert net.path_ber("A", "B") == pytest.approx(2e-6, rel=1e-3)


class TestFailover:
    def test_fail_link_reroutes(self, sim):
        net = dual_path(sim, ethernet_10(), satellite())
        assert net.route("A", "B") == ["A", "p1", "p2", "B"]
        net.fail_link("p1", "p2")
        assert net.route("A", "B") == ["A", "q1", "q2", "B"]
        rtt = net.nominal_rtt("A", "B")
        assert rtt > 1.0  # satellite regime

    def test_restore_link_reverts(self, sim):
        net = dual_path(sim, ethernet_10(), satellite())
        net.fail_link("p1", "p2")
        net.restore_link("p1", "p2")
        assert net.route("A", "B") == ["A", "p1", "p2", "B"]

    def test_traffic_flows_after_failover(self, sim):
        net = dual_path(sim, ethernet_10(), satellite())
        got = []
        net.attach_host("B", got.append)
        net.fail_link("p1", "p2")
        net.send(Frame("A", "B", 500))
        sim.run()
        assert len(got) == 1
        assert "q1" in got[0].trace


class TestMulticast:
    def test_join_leave(self, sim):
        net = star(sim, ethernet_10(), ["A", "B", "C"])
        net.join_group("g", "B")
        net.join_group("g", "C")
        assert net.group_members("g") == {"B", "C"}
        net.leave_group("g", "C")
        assert net.group_members("g") == {"B"}
        net.leave_group("g", "B")
        assert net.group_members("g") == set()

    def test_join_unknown_host_rejected(self, sim):
        net = star(sim, ethernet_10(), ["A"])
        with pytest.raises(KeyError):
            net.join_group("g", "ghost")

    def test_group_send_reaches_all_members(self, sim):
        net = star(sim, ethernet_10(), ["A", "B", "C", "D"])
        rx = {h: [] for h in "BCD"}
        for h in "BCD":
            net.attach_host(h, rx[h].append)
            net.join_group("g", h)
        net.send(Frame("A", "g", 400))
        sim.run()
        assert all(len(v) == 1 for v in rx.values())

    def test_single_copy_on_shared_links(self, sim):
        # A--hub with 3 members: the A->hub link carries ONE frame
        net = star(sim, ethernet_10(), ["A", "B", "C", "D"])
        for h in "BCD":
            net.attach_host(h, lambda f: None)
            net.join_group("g", h)
        net.send(Frame("A", "g", 400))
        sim.run()
        assert net.links[("A", "hub")].stats.delivered == 1
        assert net.links[("hub", "B")].stats.delivered == 1

    def test_nonmember_does_not_receive(self, sim):
        net = star(sim, ethernet_10(), ["A", "B", "C"])
        rx_c = []
        net.attach_host("C", rx_c.append)
        net.attach_host("B", lambda f: None)
        net.join_group("g", "B")
        net.send(Frame("A", "g", 400))
        sim.run()
        assert rx_c == []
