"""Tests for network profiles and background traffic sources."""

import pytest

from repro.netsim.profiles import (
    PROFILES,
    dual_path,
    ethernet_10,
    linear_path,
    satellite,
    star,
    wan_internet,
)
from repro.netsim.traffic import BackgroundLoad, OnOffLoad, PoissonLoad


class TestProfiles:
    def test_catalogue_complete(self):
        assert set(PROFILES) == {
            "ethernet-10",
            "token-ring-16",
            "fddi-100",
            "atm-155",
            "atm-622",
            "wan-internet",
            "satellite",
        }

    def test_paper_mtus(self):
        assert PROFILES["ethernet-10"].mtu == 1500
        assert PROFILES["fddi-100"].mtu == 4500

    def test_fiber_cleaner_than_copper(self):
        assert PROFILES["fddi-100"].ber < PROFILES["ethernet-10"].ber

    def test_satellite_delay_regime(self):
        assert satellite().delay >= 0.25

    def test_scaled_override(self):
        p = ethernet_10().scaled(ber=0.0, queue_limit=10)
        assert p.ber == 0.0 and p.queue_limit == 10
        assert p.bandwidth_bps == ethernet_10().bandwidth_bps

    def test_linear_path_shape(self, sim):
        net = linear_path(sim, ethernet_10(), ("X", "Y"), n_switches=3)
        assert net.route("X", "Y") == ["X", "s1", "s2", "s3", "Y"]

    def test_linear_path_two_hosts_only(self, sim):
        with pytest.raises(ValueError):
            linear_path(sim, ethernet_10(), ("X", "Y", "Z"))

    def test_star_shape(self, sim):
        net = star(sim, ethernet_10(), ["A", "B"])
        assert net.route("A", "B") == ["A", "hub", "B"]

    def test_dual_path_prefers_primary(self, sim):
        net = dual_path(sim, ethernet_10(), satellite())
        assert net.route("A", "B")[1] == "p1"


class TestTraffic:
    def _net(self, sim):
        return linear_path(sim, wan_internet(), ("A", "B"), n_switches=2)

    def test_cbr_rate(self, sim):
        net = self._net(sim)
        load = BackgroundLoad(net, "s1", "s2", rate_bps=800_000, size=1000)
        load.start()
        sim.run(until=1.0)
        assert load.sent == pytest.approx(100, abs=2)

    def test_cbr_rejects_bad_rate(self, sim):
        net = self._net(sim)
        with pytest.raises(ValueError):
            BackgroundLoad(net, "s1", "s2", rate_bps=0)

    def test_unknown_endpoint_rejected(self, sim):
        net = self._net(sim)
        with pytest.raises(KeyError):
            BackgroundLoad(net, "nope", "s2", rate_bps=1e6)

    def test_poisson_mean_rate(self, sim):
        net = self._net(sim)
        load = PoissonLoad(net, "s1", "s2", rate_pps=200, size=100)
        load.start()
        sim.run(until=5.0)
        assert 800 < load.sent < 1200

    def test_onoff_mean_rate_property(self, sim):
        net = self._net(sim)
        load = OnOffLoad(net, "s1", "s2", peak_bps=1e6, mean_on=0.4, mean_off=0.6)
        assert load.mean_rate_bps == pytest.approx(0.4e6)

    def test_stop_halts_generation(self, sim):
        net = self._net(sim)
        load = BackgroundLoad(net, "s1", "s2", rate_bps=1e6)
        load.start()
        sim.schedule(0.5, load.stop)
        sim.run(until=2.0)
        first = load.sent
        sim.run(until=3.0)
        assert load.sent == first

    def test_double_start_rejected(self, sim):
        net = self._net(sim)
        load = BackgroundLoad(net, "s1", "s2", rate_bps=1e6)
        load.start()
        with pytest.raises(RuntimeError):
            load.start()

    def test_congestion_fills_queues(self, sim):
        net = self._net(sim)
        # offered 2x the 1.5 Mbps bottleneck
        load = BackgroundLoad(net, "A", "B", rate_bps=3e6)
        load.start()
        sim.run(until=2.0)
        drops = sum(l.stats.dropped_overflow for l in net.links.values())
        assert drops > 0
        assert net.path_queue_occupancy("A", "B") > 0.2
