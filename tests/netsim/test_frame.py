"""Unit tests for the network frame."""

import pytest

from repro.netsim.frame import Frame, PRIO_CONTROL, PRIO_NORMAL


class TestFrame:
    def test_basic_fields(self):
        f = Frame("A", "B", 100, payload="p")
        assert (f.src, f.dst, f.size, f.payload) == ("A", "B", 100, "p")
        assert f.priority == PRIO_NORMAL
        assert not f.corrupted
        assert f.hops == 0

    def test_ids_unique(self):
        assert Frame("A", "B", 1).id != Frame("A", "B", 1).id

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Frame("A", "B", 0)

    def test_clone_for_shares_payload(self):
        payload = object()
        f = Frame("A", "g", 500, payload=payload, multicast_dsts=["B", "C"])
        f.corrupted = True
        f.hops = 2
        g = f.clone_for(["C"])
        assert g.payload is payload
        assert g.multicast_dsts == ["C"]
        assert g.corrupted and g.hops == 2
        assert g.id != f.id

    def test_multicast_dsts_copied(self):
        members = ["B", "C"]
        f = Frame("A", "g", 10, multicast_dsts=members)
        members.append("D")
        assert f.multicast_dsts == ["B", "C"]

    def test_control_priority_sorts_first(self):
        assert PRIO_CONTROL < PRIO_NORMAL
