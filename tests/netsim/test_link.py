"""Unit tests for the link model: serialization, queueing, errors."""

import pytest

from repro.netsim.frame import Frame, PRIO_CONTROL, PRIO_NORMAL
from repro.netsim.link import Link
from repro.sim.rng import RngStreams


def make_link(sim, **kw):
    got = []
    defaults = dict(
        bandwidth_bps=8e6, delay=0.001, ber=0.0, queue_limit=4, mtu=1500
    )
    defaults.update(kw)
    link = Link(sim, RngStreams(0), "t", deliver=got.append, **defaults)
    return link, got


class TestLinkBasics:
    def test_serialization_time(self, sim):
        link, _ = make_link(sim)
        assert link.serialization_time(1000) == pytest.approx(1000 * 8 / 8e6)

    def test_delivery_latency(self, sim):
        link, got = make_link(sim)
        arrive = []
        link.deliver = lambda f: arrive.append(sim.now)
        link.send(Frame("A", "B", 1000))
        sim.run()
        assert arrive[0] == pytest.approx(0.001 + 0.001)  # ser + prop

    def test_fifo_order(self, sim):
        link, got = make_link(sim)
        f1, f2 = Frame("A", "B", 100), Frame("A", "B", 100)
        link.send(f1)
        link.send(f2)
        sim.run()
        assert [f.id for f in got] == [f1.id, f2.id]

    def test_bad_parameters_rejected(self, sim):
        with pytest.raises(ValueError):
            Link(sim, RngStreams(0), "x", bandwidth_bps=0, delay=0.0)
        with pytest.raises(ValueError):
            Link(sim, RngStreams(0), "x", bandwidth_bps=1e6, delay=-1)
        with pytest.raises(ValueError):
            Link(sim, RngStreams(0), "x", bandwidth_bps=1e6, delay=0, ber=1.0)


class TestQueueing:
    def test_overflow_drops(self, sim):
        link, got = make_link(sim, queue_limit=2)
        results = [link.send(Frame("A", "B", 1500)) for _ in range(6)]
        # 1 transmitting immediately + 2 queued accepted; rest dropped
        assert results.count(True) == 3
        assert link.stats.dropped_overflow == 3
        sim.run()
        assert len(got) == 3

    def test_queue_len_excludes_in_flight(self, sim):
        link, _ = make_link(sim, queue_limit=10)
        link.send(Frame("A", "B", 1500))
        link.send(Frame("A", "B", 1500))
        assert link.queue_len == 1

    def test_oversize_frame_is_black_holed(self, sim):
        link, got = make_link(sim, mtu=1500)
        assert link.send(Frame("A", "B", 1501)) is False
        assert link.stats.dropped_mtu == 1
        sim.run()
        assert got == []

    def test_priority_preempts_queue_order(self, sim):
        link, got = make_link(sim, queue_limit=10)
        first = Frame("A", "B", 1500, priority=PRIO_NORMAL)
        normal = Frame("A", "B", 1500, priority=PRIO_NORMAL)
        urgent = Frame("A", "B", 1500, priority=PRIO_CONTROL)
        link.send(first)      # starts transmitting
        link.send(normal)     # queued
        link.send(urgent)     # queued, higher class
        sim.run()
        assert [f.id for f in got] == [first.id, urgent.id, normal.id]

    def test_utilization_accounting(self, sim):
        link, _ = make_link(sim)
        link.send(Frame("A", "B", 1000))
        sim.run()
        assert link.stats.busy_time == pytest.approx(0.001)
        assert link.stats.utilization(0.01) == pytest.approx(0.1)


class TestErrors:
    def test_zero_ber_never_corrupts(self, sim):
        link, got = make_link(sim)
        for _ in range(50):
            link.send(Frame("A", "B", 100))
        sim.run()
        assert link.stats.corrupted == 0
        assert not any(f.corrupted for f in got)

    def test_high_ber_corrupts_most(self, sim):
        link, got = make_link(sim, ber=1e-3, queue_limit=1000)
        for _ in range(100):
            link.send(Frame("A", "B", 1000))
        sim.run()
        # p(corrupt) = 1-(1-1e-3)^8000 ≈ 1.0
        assert link.stats.corrupted >= 95
        assert len(got) == 100  # corrupted frames still delivered

    def test_corruption_is_deterministic_per_seed(self, sim):
        def run():
            from repro.sim.kernel import Simulator

            s = Simulator()
            link = Link(s, RngStreams(5), "d", bandwidth_bps=8e6, delay=0.0, ber=1e-5, queue_limit=100)
            flags = []
            link.deliver = lambda f: flags.append(f.corrupted)
            for _ in range(200):
                link.send(Frame("A", "B", 1000))
            s.run()
            return flags

        assert run() == run()


class TestFailure:
    def test_down_link_drops_sends(self, sim):
        link, got = make_link(sim)
        link.fail()
        assert link.send(Frame("A", "B", 100)) is False
        assert link.stats.dropped_down == 1
        sim.run()
        assert got == []

    def test_fail_drops_queued(self, sim):
        link, got = make_link(sim, queue_limit=10)
        for _ in range(4):
            link.send(Frame("A", "B", 1500))
        link.fail()
        sim.run()
        assert got == []  # in-flight one also lost at tx completion
        assert link.stats.dropped_down >= 3

    def test_restore(self, sim):
        link, got = make_link(sim)
        link.fail()
        link.restore()
        assert link.send(Frame("A", "B", 100)) is True
        sim.run()
        assert len(got) == 1


class TestByteCounters:
    """UNITES byte counters alongside the frame counters (Issue 9)."""

    @pytest.fixture(autouse=True)
    def _telemetry(self, sim):
        from repro.unites.obs.telemetry import TELEMETRY

        TELEMETRY.enable(sim=sim)
        yield TELEMETRY
        TELEMETRY.disable()
        TELEMETRY.reset()

    def _counter(self, t, name, **labels):
        c = t.metrics.get(name, labels or None)
        return 0 if c is None else c.value

    def test_enqueued_and_delivered_bytes(self, sim, _telemetry):
        link, got = make_link(sim, queue_limit=10)
        sizes = [100, 700, 1400]
        for n in sizes:
            link.send(Frame("A", "B", n))
        sim.run()
        t = _telemetry
        assert self._counter(t, "link_bytes_enqueued_total", link="t") == sum(sizes)
        assert self._counter(t, "link_bytes_delivered_total", link="t") == sum(sizes)
        assert link.stats.bytes_delivered == sum(sizes)
        assert self._counter(t, "link_frames_delivered_total", link="t") == len(sizes)

    def test_overflow_drop_counts_bytes(self, sim, _telemetry):
        link, _ = make_link(sim, queue_limit=1)
        for _ in range(4):
            link.send(Frame("A", "B", 1000))
        dropped = self._counter(
            _telemetry, "link_bytes_dropped_total", link="t", reason="overflow")
        # 1 on the wire + 1 queued accepted; the rest dropped with their bytes
        assert dropped == 2000
        assert self._counter(
            _telemetry, "link_frames_dropped_total", link="t", reason="overflow") == 2

    def test_mtu_drop_counts_bytes(self, sim, _telemetry):
        link, _ = make_link(sim)
        link.send(Frame("A", "B", link.mtu + 100))
        assert self._counter(
            _telemetry, "link_bytes_dropped_total", link="t", reason="mtu") == link.mtu + 100

    def test_down_drop_counts_bytes(self, sim, _telemetry):
        link, _ = make_link(sim)
        link.fail()
        link.send(Frame("A", "B", 600))
        assert self._counter(
            _telemetry, "link_bytes_dropped_total", link="t", reason="down") == 600

    def test_fail_drain_counts_queued_bytes(self, sim, _telemetry):
        link, _ = make_link(sim, queue_limit=10)
        for _ in range(4):
            link.send(Frame("A", "B", 500))
        link.fail()
        # 3 queued frames drain (one is on the wire; it drops at tx-done)
        assert self._counter(
            _telemetry, "link_bytes_dropped_total", link="t", reason="down") == 1500
        sim.run()
        assert self._counter(
            _telemetry, "link_bytes_dropped_total", link="t", reason="down") == 2000
