"""Fault injection: schedule validation, determinism, exact restoration,
and the drop-site contract that every lost frame surrenders its payload's
wire reference (pooled PDU shells must go back to the free list)."""

import math

import pytest

from repro.netsim.faults import (
    BANDWIDTH,
    BER_STORM,
    LINK_FLAP,
    NODE_CRASH,
    PARTITION,
    QUEUE_SQUEEZE,
    Fault,
    FaultInjector,
    FaultSchedule,
)
from repro.netsim.frame import Frame
from repro.netsim.link import Link
from repro.netsim.network import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.tko.config import SessionConfig
from repro.tko.pdu import PDU_POOL
from tests.conftest import TwoHosts


def chain_net(sim):
    net = Network(sim)
    for n in ("A", "s1", "s2", "B"):
        net.add_node(n)
    net.add_link("A", "s1", 10e6, 1e-4)
    net.add_link("s1", "s2", 10e6, 1e-4)
    net.add_link("s2", "B", 10e6, 1e-4)
    return net


CHAIN_LINKS = [("A", "s1"), ("s1", "s2"), ("s2", "B")]


class TestScheduleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("gamma-ray", 0.0, 1.0, ("a", "b"))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Fault(LINK_FLAP, -0.1, 1.0, ("a", "b"))

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            Fault(LINK_FLAP, 0.0, 0.0, ("a", "b"))

    def test_link_kind_needs_pair(self):
        with pytest.raises(ValueError):
            Fault(BER_STORM, 0.0, 1.0, ("a",), 1e-4)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            Fault(BANDWIDTH, 0.0, 1.0, ("a", "b"), 0.0)
        with pytest.raises(ValueError):
            Fault(BER_STORM, 0.0, 1.0, ("a", "b"), 1.5)
        with pytest.raises(ValueError):
            Fault(QUEUE_SQUEEZE, 0.0, 1.0, ("a", "b"), 0)

    def test_overlap_same_kind_same_target_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            FaultSchedule().link_flap(1.0, "a", "b", duration=2.0).link_flap(
                2.0, "a", "b", duration=1.0
            )

    def test_overlap_permanent_fault_rejected(self):
        sched = FaultSchedule().link_flap(1.0, "a", "b")  # permanent
        with pytest.raises(ValueError, match="overlapping"):
            sched.link_flap(100.0, "a", "b", duration=0.1)

    def test_different_kind_or_target_may_overlap(self):
        sched = (
            FaultSchedule()
            .link_flap(1.0, "a", "b", duration=2.0)
            .ber_storm(1.5, "a", "b", 1e-4, duration=2.0)
            .link_flap(1.5, "b", "c", duration=2.0)
        )
        assert len(sched) == 3

    def test_back_to_back_same_target_ok(self):
        sched = FaultSchedule().link_flap(1.0, "a", "b", duration=1.0).link_flap(
            2.0, "a", "b", duration=1.0
        )
        assert len(sched) == 2


class TestRandomSchedule:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.random(42, CHAIN_LINKS, horizon=5.0)
        b = FaultSchedule.random(42, CHAIN_LINKS, horizon=5.0)
        assert a.faults == b.faults
        assert len(a) == 6

    def test_different_seeds_differ(self):
        a = FaultSchedule.random(1, CHAIN_LINKS, horizon=5.0)
        b = FaultSchedule.random(2, CHAIN_LINKS, horizon=5.0)
        assert a.faults != b.faults

    def test_link_direction_normalized(self):
        sched = FaultSchedule.random(7, [("s1", "A"), ("A", "s1")], horizon=2.0)
        assert all(f.target == ("A", "s1") for f in sched)

    def test_default_pool_is_reversible_kinds_only(self):
        sched = FaultSchedule.random(3, CHAIN_LINKS, horizon=5.0, n_faults=20)
        assert all(f.kind not in (NODE_CRASH, PARTITION) for f in sched)

    def test_no_links_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule.random(0, [], horizon=1.0)


class TestInjectorDeterminism:
    def _trace(self, seed):
        sim = Simulator()
        net = chain_net(sim)
        sched = FaultSchedule.random(seed, CHAIN_LINKS, horizon=3.0)
        inj = FaultInjector(sim, net, sched).arm()
        sim.run(until=5.0)
        return inj.trace

    def test_identical_seed_identical_trace(self):
        # The acceptance contract: identical seed + schedule => identical
        # event traces across two independently built worlds.
        assert self._trace(11) == self._trace(11)

    def test_trace_records_inject_and_clear_in_order(self):
        trace = self._trace(11)
        times = [t for t, *_ in trace]
        assert times == sorted(times)
        assert sum(1 for _, phase, *_ in trace if phase == "inject") == 6
        assert sum(1 for _, phase, *_ in trace if phase == "clear") == 6

    def test_arm_twice_rejected(self):
        sim = Simulator()
        net = chain_net(sim)
        inj = FaultInjector(sim, net, FaultSchedule().link_flap(1.0, "A", "s1"))
        inj.arm()
        with pytest.raises(RuntimeError):
            inj.arm()

    def test_fault_in_past_rejected(self):
        sim = Simulator()
        net = chain_net(sim)
        sim.schedule(2.0, lambda: None)
        sim.run()
        inj = FaultInjector(sim, net, FaultSchedule().link_flap(1.0, "A", "s1"))
        with pytest.raises(ValueError):
            inj.arm()


class TestInjectAndRestore:
    def _world(self):
        sim = Simulator()
        return sim, chain_net(sim)

    def test_link_flap_round_trip(self):
        sim, net = self._world()
        FaultInjector(
            sim, net, FaultSchedule().link_flap(1.0, "s1", "s2", duration=1.0)
        ).arm()
        sim.run(until=1.5)
        assert not net.links[("s1", "s2")].up and not net.links[("s2", "s1")].up
        assert net.route("A", "B") is None
        sim.run(until=3.0)
        assert net.links[("s1", "s2")].up and net.links[("s2", "s1")].up
        assert net.route("A", "B") == ["A", "s1", "s2", "B"]

    def test_link_flap_restores_exactly_what_it_failed(self):
        # One direction was already down before the flap: clearing the flap
        # must not resurrect it.
        sim, net = self._world()
        net.fail_link("s1", "s2", bidirectional=False)
        FaultInjector(
            sim, net, FaultSchedule().link_flap(1.0, "s1", "s2", duration=1.0)
        ).arm()
        sim.run(until=3.0)
        assert not net.links[("s1", "s2")].up  # pre-existing failure persists
        assert net.links[("s2", "s1")].up

    def test_bandwidth_collapse_restores_original_rate(self):
        sim, net = self._world()
        before = net.links[("A", "s1")].bandwidth_bps
        FaultInjector(
            sim, net,
            FaultSchedule().bandwidth_collapse(1.0, "A", "s1", 0.1, duration=1.0),
        ).arm()
        sim.run(until=1.5)
        assert net.links[("A", "s1")].bandwidth_bps == pytest.approx(before * 0.1)
        assert net.links[("s1", "A")].bandwidth_bps == pytest.approx(before * 0.1)
        sim.run(until=3.0)
        assert net.links[("A", "s1")].bandwidth_bps == before
        assert net.links[("s1", "A")].bandwidth_bps == before

    def test_ber_storm_restores_original_ber(self):
        sim, net = self._world()
        before = net.links[("A", "s1")].ber
        FaultInjector(
            sim, net, FaultSchedule().ber_storm(1.0, "A", "s1", 1e-3, duration=1.0)
        ).arm()
        sim.run(until=1.5)
        assert net.links[("A", "s1")].ber == 1e-3
        sim.run(until=3.0)
        assert net.links[("A", "s1")].ber == before

    def test_queue_squeeze_restores_original_limit(self):
        sim, net = self._world()
        before = net.links[("A", "s1")].queue_limit
        FaultInjector(
            sim, net, FaultSchedule().queue_squeeze(1.0, "A", "s1", 2, duration=1.0)
        ).arm()
        sim.run(until=1.5)
        assert net.links[("A", "s1")].queue_limit == 2
        sim.run(until=3.0)
        assert net.links[("A", "s1")].queue_limit == before

    def test_node_crash_fails_and_restores_incident_links(self):
        sim, net = self._world()
        FaultInjector(
            sim, net, FaultSchedule().node_crash(1.0, "s1", duration=1.0)
        ).arm()
        sim.run(until=1.5)
        for pair in (("A", "s1"), ("s1", "A"), ("s1", "s2"), ("s2", "s1")):
            assert not net.links[pair].up
        assert net.links[("s2", "B")].up  # untouched
        sim.run(until=3.0)
        assert all(link.up for link in net.links.values())

    def test_partition_cuts_only_crossing_links(self):
        sim, net = self._world()
        FaultInjector(
            sim, net, FaultSchedule().partition(1.0, {"A", "s1"}, duration=1.0)
        ).arm()
        sim.run(until=1.5)
        assert not net.links[("s1", "s2")].up and not net.links[("s2", "s1")].up
        assert net.links[("A", "s1")].up  # inside the group
        assert net.links[("s2", "B")].up  # inside the complement
        sim.run(until=3.0)
        assert all(link.up for link in net.links.values())

    def test_permanent_fault_never_clears(self):
        sim, net = self._world()
        inj = FaultInjector(
            sim, net, FaultSchedule().link_flap(1.0, "s1", "s2")
        ).arm()
        sim.run(until=50.0)
        assert inj.injected == 1 and inj.cleared == 0
        assert not net.links[("s1", "s2")].up


class _CountingPayload:
    """Duck-typed stand-in for a pooled PDU: counts release() calls."""

    def __init__(self):
        self.released = 0

    def release(self):
        self.released += 1


def _loaded_link(sim, n_frames):
    rng = RngStreams(0)
    link = Link(sim, rng, "t", bandwidth_bps=1e6, delay=0.001, deliver=lambda f: None)
    payloads = [_CountingPayload() for _ in range(n_frames)]
    for p in payloads:
        assert link.send(Frame("a", "b", 1000, payload=p))
    return link, payloads


class TestDropSitesReleasePayloads:
    def test_fail_drains_queue_and_releases_every_payload(self, sim):
        link, payloads = _loaded_link(sim, 5)
        link.fail()  # frame 0 is on the wire; 1-4 are drained from the queue
        sim.run()
        assert [p.released for p in payloads] == [1] * 5
        assert link.stats.dropped_down == 5

    def test_send_on_down_link_releases(self, sim):
        link, _ = _loaded_link(sim, 1)
        link.fail()
        p = _CountingPayload()
        assert not link.send(Frame("a", "b", 100, payload=p))
        assert p.released == 1

    def test_queue_squeeze_trim_releases_dropped_tail(self, sim):
        link, payloads = _loaded_link(sim, 6)  # 1 transmitting + 5 queued
        link.set_queue_limit(2)
        assert link.stats.dropped_overflow == 3
        # drop-tail: the *last* queued payloads are surrendered
        assert [p.released for p in payloads] == [0, 0, 0, 1, 1, 1]

    def test_pooled_shells_balance_across_mid_stream_flap(self):
        """End-to-end leak check: a transfer that rides through a link flap
        must return every pooled shell it acquired once the world quiesces
        (``recycled == acquired`` delta-wise, no live holders left)."""
        acq0, rec0 = PDU_POOL.acquired, PDU_POOL.recycled
        w = TwoHosts(seed=5)
        w.listen()
        s = w.open(SessionConfig())
        for _ in range(20):
            s.send(b"x" * 600)
        w.sim.schedule(0.02, w.net.fail_link, "s1", "s2")
        w.sim.schedule(0.40, w.net.restore_link, "s1", "s2")
        w.sim.run(until=20.0)
        assert len(w.delivered) == 20
        s.close()
        for rx in w.rx_sessions:
            rx.close()
        w.sim.run(until=40.0)
        assert PDU_POOL.acquired - acq0 > 20  # retransmissions happened
        assert PDU_POOL.recycled - rec0 == PDU_POOL.acquired - acq0
