"""Targeted coverage of known edge paths across subsystems."""

import pytest

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.netsim.profiles import ethernet_10, linear_path
from repro.tko.config import SessionConfig
from repro.tko.message import TKOMessage
from repro.tko.pdu import PDU, PduType
from repro.tko.state import RttEstimator
from repro.unites.analyze import time_weighted_mean
from repro.unites.present import render_series
from tests.conftest import TwoHosts


class TestChangeTscEdges:
    def test_invalid_tsc_name_rejected(self):
        sysm = AdaptiveSystem(seed=1)
        sysm.attach_network(
            linear_path(sysm.sim, ethernet_10(), ("A", "B"), rng=sysm.rng)
        )
        a, b = sysm.node("A"), sysm.node("B")
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        conn = a.mantts.open(ACD(participants=("B",)))
        sysm.run(until=1.0)
        assert conn.change_tsc("hyperspace", conn.monitor.snapshot()) is False


class TestMemberUpdateSignalling:
    def test_join_op_adds_to_delivery_tree(self):
        sysm = AdaptiveSystem(seed=2)
        from repro.netsim.profiles import star

        sysm.attach_network(star(sysm.sim, ethernet_10(), ["A", "B"], rng=sysm.rng))
        a, b = sysm.node("A"), sysm.node("B")
        a.mantts._send_signalling(
            "B", {"type": "member-update", "group": "g1", "op": "join"}
        )
        sysm.run(until=1.0)
        assert sysm.network.group_members("g1") == {"B"}
        a.mantts._send_signalling(
            "B", {"type": "member-update", "group": "g1", "op": "leave"}
        )
        sysm.run(until=2.0)
        assert sysm.network.group_members("g1") == set()


class TestFecParityFirst:
    def test_repair_opportunity_when_parity_precedes_data(self):
        """A data shard arriving *after* its group's parity completes the
        group through repair_opportunity (not on_receive_repair)."""
        w = TwoHosts()
        cfg = SessionConfig(
            connection="implicit", transmission="rate", rate_pps=500,
            ack="none", recovery="fec-xor", fec_k=2, sequencing="none",
            segment_size=200,
        )
        w.listen(cfg)
        s = w.open(cfg)
        s.send(b"a" * 150)
        w.sim.run(until=1.0)
        rx = w.rx_sessions[0]
        fec = rx.context.recovery
        # hand-feed a parity for a group whose data has not arrived yet
        from repro.mechanisms import gf256

        d0, d1 = b"x" * 100, b"y" * 100
        parity_payload = gf256.xor_encode([d0, d1])
        parity = PDU(PduType.PARITY, s.conn_id,
                     message=TKOMessage(parity_payload))
        parity.options.update({
            "fg": 100, "k": 2, "r": 1, "index": 0,
            "metas": [
                {"seq": 100, "msg_id": 900, "frag_index": 0, "frag_count": 1,
                 "size": 100},
                {"seq": 101, "msg_id": 901, "frag_index": 0, "frag_count": 1,
                 "size": 100},
            ],
        })
        assert fec.on_receive_repair(parity) == []  # 0 of 2 shards: nothing
        data0 = PDU(PduType.DATA, s.conn_id, seq=100, msg_id=900,
                    options={"fg": 100}, message=TKOMessage(d0))
        fec.note_data_received(data0)
        rebuilt = fec.repair_opportunity(data0)
        assert len(rebuilt) == 1
        assert rebuilt[0].seq == 101
        assert rebuilt[0].message.materialize() == d1


class TestRttEstimatorEdges:
    def test_rto_max_clamp(self):
        r = RttEstimator(rto_initial=10.0, rto_max=20.0)
        for _ in range(10):
            r.backoff()
        assert r.rto == 20.0


class TestAnalyzePresentEdges:
    def test_time_weighted_mean_empty_raises(self):
        with pytest.raises(ValueError):
            time_weighted_mean([])

    def test_time_weighted_mean_single_point(self):
        assert time_weighted_mean([(0.0, 7.0)]) == 7.0

    def test_render_series_single_point(self):
        out = render_series([(1.0, 2.0)], label="pt")
        assert "pt" in out and "*" in out


class TestControlChargeLayouts:
    def test_legacy_control_headers_parse_costlier(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        w.sim.run(until=0.5)
        compact = s.make_pdu(PduType.ACK)
        legacy = PDU(PduType.ACK, s.conn_id, compact=False)
        assert s.cost_model.control_charge(legacy) > s.cost_model.control_charge(compact)
