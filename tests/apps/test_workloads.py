"""Tests for the application workload generators."""

import numpy as np
import pytest

from repro.apps import (
    BulkSource,
    CbrVideoSource,
    DeliveryTracker,
    RequestResponseClient,
    TelnetSource,
    VbrVideoSource,
    VoiceSource,
    make_source,
)
from repro.tko.config import SessionConfig
from tests.conftest import TwoHosts


class SinkSender:
    """Records sends without a network (pure generator tests)."""

    def __init__(self):
        self.sent = []

    def send(self, data):
        self.sent.append(data)
        return len(self.sent)


class TestVoice:
    def test_talk_spurt_pattern(self, sim):
        rng = np.random.default_rng(0)
        src = VoiceSource(sim, SinkSender(), rng=rng)
        src.start()
        sim.run(until=10.0)
        # 40% duty at 50 pps → ~200 frames over 10 s
        assert 80 < src.messages_sent < 350
        assert src.talk_spurts > 2

    def test_frame_size_fixed(self, sim):
        sender = SinkSender()
        src = VoiceSource(sim, sender, rng=np.random.default_rng(1), frame_bytes=160)
        src.start()
        sim.run(until=2.0)
        assert all(len(p) == 160 for p in sender.sent)

    def test_bad_params(self, sim):
        with pytest.raises(ValueError):
            VoiceSource(sim, SinkSender(), frame_interval=0)


class TestVideo:
    def test_cbr_rate(self, sim):
        src = CbrVideoSource(sim, SinkSender(), fps=30, frame_bytes=1000)
        src.start()
        sim.run(until=2.0)
        assert src.messages_sent == pytest.approx(60, abs=2)
        assert src.rate_bps == pytest.approx(240_000)

    def test_vbr_i_frames_bigger(self, sim):
        sender = SinkSender()
        src = VbrVideoSource(sim, sender, rng=np.random.default_rng(2),
                             fps=30, mean_frame_bytes=2000)
        src.start()
        sim.run(until=4.0)
        sizes = [len(p) for p in sender.sent]
        i_frames = sizes[:: src.GOP]
        p_frames = [s for i, s in enumerate(sizes) if i % src.GOP]
        assert np.mean(i_frames) > 2 * np.mean(p_frames)


class TestBulk:
    def test_sends_exact_volume(self, sim):
        sender = SinkSender()
        src = BulkSource(sim, sender, total_bytes=10_000, chunk_bytes=3000)
        src.start()
        sim.run(until=1.0)
        assert src.done
        assert sum(len(p) for p in sender.sent) == 10_000
        assert [len(p) for p in sender.sent] == [3000, 3000, 3000, 1000]


class TestTelnet:
    def test_small_bursty(self, sim):
        sender = SinkSender()
        src = TelnetSource(sim, sender, rng=np.random.default_rng(3), rate_per_s=5)
        src.start()
        sim.run(until=10.0)
        assert 20 < src.messages_sent < 100
        assert all(1 <= len(p) <= 8 for p in sender.sent)


class TestRpcEndToEnd:
    def test_closed_loop_over_network(self):
        from repro.apps.rpc import EchoResponder

        w = TwoHosts()
        responder = EchoResponder(response_bytes=256)
        w.pb.listen(7000, lambda p, f: SessionConfig(connection="implicit"),
                    responder.attach)
        s = w.pa.create_session(SessionConfig(connection="implicit"), "B", 7000)
        s.connect()
        client = RequestResponseClient(w.sim, s, rng=np.random.default_rng(4),
                                       think_time=0.01)
        s.on_deliver = client.on_deliver
        client.start()
        w.sim.run(until=3.0)
        assert client.completed > 10
        assert client.timeouts == 0
        assert responder.requests_served == client.completed
        assert client.mean_response_time > 0


class TestFactoryAndTracker:
    def test_factory_known_kinds(self, sim):
        for kind in ("voice", "video-cbr", "video-vbr", "bulk", "telnet", "rpc"):
            src = make_source(kind, sim, SinkSender())
            assert src is not None

    def test_factory_unknown(self, sim):
        with pytest.raises(KeyError):
            make_source("quantum", sim, SinkSender())

    def test_tracker_deadline_accounting(self, sim):
        t = DeliveryTracker(deadline=0.1).bind_clock(sim)
        t.on_deliver(b"x", {"latency": 0.05})
        t.on_deliver(b"y", {"latency": 0.5})
        assert t.deadline_misses == 1
        assert t.deadline_miss_rate() == 0.5
        assert t.mean_latency == pytest.approx(0.275)

    def test_source_tolerates_unestablished_sender(self, sim):
        class Closed:
            def send(self, data):
                raise RuntimeError("closed")

        src = BulkSource(sim, Closed(), total_bytes=5000, chunk_bytes=1000)
        src.start()
        sim.run(until=1.0)
        assert src.send_errors == 5
        assert src.messages_sent == 0
