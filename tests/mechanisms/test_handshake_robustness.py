"""Deterministic handshake-robustness tests.

Each test surgically drops one specific control PDU by intercepting the
initiating session's (or responder's) ``emit_control`` and verifies the
handshake state machines recover via their retransmission timers —
lost SYN, lost SYN-ACK, lost CONFIRM, duplicate SYN.
"""


from repro.tko.config import SessionConfig
from repro.tko.pdu import PduType
from tests.conftest import TwoHosts


def drop_nth_control(session, ptype: PduType, n: int = 1):
    """Make ``session`` silently drop its n-th control PDU of ``ptype``."""
    original = session.emit_control
    state = {"seen": 0}

    def filtered(pdu):
        if pdu.ptype is ptype:
            state["seen"] += 1
            if state["seen"] == n:
                return  # dropped on the floor
        original(pdu)

    session.emit_control = filtered
    return state


class TestLostHandshakePdus:
    def test_lost_syn_is_retransmitted(self):
        w = TwoHosts()
        w.listen()
        connected = []
        s = w.pa.create_session(
            SessionConfig(connection="explicit-3way"), "B", 7000,
            on_connected=lambda: connected.append(w.sim.now),
        )
        dropped = drop_nth_control(s, PduType.SYN, n=1)
        s.connect()
        w.sim.run(until=10.0)
        assert connected, "handshake never completed after SYN loss"
        assert dropped["seen"] >= 1
        assert s.stats.control_retransmissions >= 1
        # the retry costs at least one initial RTO
        assert connected[0] >= s.cfg.rto_initial

    def test_lost_synack_recovered_by_syn_retry(self):
        w = TwoHosts()
        w.listen()
        s = w.pa.create_session(SessionConfig(connection="explicit-2way"), "B", 7000)
        s.connect()
        # run just long enough for the responder session to exist
        w.sim.run(until=0.002)
        rx = w.rx_sessions[0]
        # too late to drop the first SYN-ACK; instead verify duplicate SYN
        # handling: a re-sent SYN must be re-acknowledged, not ignored
        syn = s.make_pdu(PduType.SYN)
        syn.options["cfg"] = s.cfg.to_dict()
        before = rx.stats.pdus_sent
        rx.context.connection.handle_control(syn)
        assert rx.stats.pdus_sent == before + 1  # a fresh SYN-ACK went out

    def test_lost_confirm_responder_retries_synack(self):
        w = TwoHosts()
        w.listen(SessionConfig(connection="explicit-3way"))
        s = w.pa.create_session(SessionConfig(connection="explicit-3way"), "B", 7000)
        dropped = drop_nth_control(s, PduType.CONFIRM, n=1)
        s.connect()
        w.sim.run(until=10.0)
        # initiator opened on SYN-ACK; responder, whose CONFIRM was lost,
        # must also have reached the open state via its SYN-ACK retry
        rx = w.rx_sessions[0]
        assert rx.context.connection.connected
        assert dropped["seen"] >= 1
        s.send(b"after recovery")
        w.sim.run(until=12.0)
        assert len(w.delivered) == 1

    def test_fin_ack_loss_does_not_wedge_peer(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig(connection="explicit-2way"))
        s.send(b"payload")
        w.sim.run(until=1.0)
        rx = w.rx_sessions[0]
        # the responder's FIN-ACK is dropped: the closer already released
        # state on its side; the responder closed when it sent the FIN-ACK
        drop_nth_control(rx, PduType.FIN_ACK, n=1)
        s.close()
        w.sim.run(until=15.0)
        assert rx.closed


class TestHandshakeGiveUp:
    def test_syn_retries_then_open_failed(self):
        w = TwoHosts()
        w.listen()
        failures = []
        s = w.pa.create_session(
            SessionConfig(connection="explicit-3way"), "B", 7000,
            on_open_failed=failures.append,
        )
        # drop every SYN: the initiator must give up, not spin forever
        original = s.emit_control
        s.emit_control = lambda pdu: (
            None if pdu.ptype is PduType.SYN else original(pdu)
        )
        s.connect()
        w.sim.run(until=120.0)
        assert failures and "timeout" in failures[0]
        assert s.closed
