"""Unit tests for individual mechanisms outside a full session."""

import pytest

from repro.mechanisms.base import Mechanism
from repro.mechanisms.buffer_mgmt import FixedBuffers, VariableBuffers
from repro.mechanisms.delivery import MulticastDelivery
from repro.mechanisms.detection import Crc32, InternetChecksum, NoDetection
from repro.mechanisms.registry import MECHANISM_REGISTRY, build_mechanism
from repro.mechanisms.sequencing import Ordered, OrderedDedup, Unsequenced
from repro.tko.config import SessionConfig
from repro.tko.context import SLOTS
from repro.tko.message import TKOMessage
from repro.tko.pdu import PDU, PduType


class FakeStats:
    def __init__(self):
        self.corrupted_delivered = 0
        self.undetected_errors = 0
        self.checksum_rejections = 0


class FakeSession:
    """Just enough surface for mechanism unit tests."""

    def __init__(self):
        self.stats = FakeStats()
        import numpy as np

        self.rng = np.random.default_rng(0)


def data_pdu(payload=b"hello world"):
    return PDU(PduType.DATA, 1, message=TKOMessage(payload))


class TestDetection:
    def test_no_detection_accepts_corruption(self):
        d = NoDetection()
        s = FakeSession()
        d.bind(s)
        assert d.verify(data_pdu(), corrupted=True)
        assert s.stats.corrupted_delivered == 1

    def test_checksum_attaches_and_places(self):
        d = InternetChecksum(placement="trailer")
        d.bind(FakeSession())
        p = data_pdu()
        d.attach(p)
        assert p.checksum is not None
        assert p.checksum_placement == "trailer"
        assert d.overlaps_tx

    def test_header_placement_does_not_overlap(self):
        d = InternetChecksum(placement="header")
        assert not d.overlaps_tx

    def test_checksum_rejects_corrupted(self):
        d = InternetChecksum()
        s = FakeSession()
        d.bind(s)
        assert not d.verify(data_pdu(), corrupted=True)
        assert s.stats.checksum_rejections == 1

    def test_clean_pdu_accepted(self):
        d = Crc32()
        d.bind(FakeSession())
        assert d.verify(data_pdu(), corrupted=False)

    def test_crc_never_misses(self):
        d = Crc32()
        s = FakeSession()
        d.bind(s)
        for _ in range(500):
            assert not d.verify(data_pdu(), corrupted=True)
        assert s.stats.undetected_errors == 0

    def test_per_byte_cost_scales(self):
        d = InternetChecksum()
        small, big = data_pdu(b"x" * 10), data_pdu(b"x" * 1000)
        assert d.send_cost(big) > d.send_cost(small)

    def test_crc_costlier_than_checksum(self):
        p = data_pdu(b"x" * 1000)
        assert Crc32().send_cost(p) > InternetChecksum().send_cost(p)

    def test_bad_placement_rejected(self):
        with pytest.raises(ValueError):
            InternetChecksum(placement="middle")


class TestDeliveryUnits:
    def test_multicast_ack_aggregation(self):
        d = MulticastDelivery("g", ["B", "C", "D"])
        assert not d.ack_complete(5, "B")
        assert not d.ack_complete(5, "C")
        assert d.ack_complete(5, "D")

    def test_stale_member_ack_ignored(self):
        d = MulticastDelivery("g", ["B"])
        assert not d.ack_complete(1, "ghost")
        assert d.ack_complete(1, "B")

    def test_duplicate_acks_idempotent(self):
        d = MulticastDelivery("g", ["B", "C"])
        assert not d.ack_complete(2, "B")
        assert not d.ack_complete(2, "B")
        assert d.ack_complete(2, "C")

    def test_frame_dst_is_group(self):
        d = MulticastDelivery("conf", ["B"])
        assert d.frame_dst() == "conf"

    def test_pending_complete_after_departure(self):
        d = MulticastDelivery("g", ["B", "C"])
        d.ack_complete(3, "B")
        d._members = {"B"}  # C left
        assert d.pending_complete(3)

    def test_send_cost_grows_with_members(self):
        small = MulticastDelivery("g", ["B"])
        big = MulticastDelivery("g", ["B", "C", "D", "E"])
        p = data_pdu()
        assert big.send_cost(p) > small.send_cost(p)


class TestSequencingFlags:
    def test_flag_matrix(self):
        assert (Unsequenced.ordered, Unsequenced.dedup) == (False, False)
        assert (Ordered.ordered, Ordered.dedup) == (True, False)
        assert (OrderedDedup.ordered, OrderedDedup.dedup) == (True, True)


class TestRegistry:
    def test_every_slot_has_choices(self):
        for slot in SLOTS:
            assert MECHANISM_REGISTRY[slot]

    def test_build_for_default_config(self):
        cfg = SessionConfig()
        for slot in SLOTS:
            m = build_mechanism(slot, cfg)
            assert isinstance(m, Mechanism)
            assert m.category == slot

    def test_unknown_slot_rejected(self):
        with pytest.raises(KeyError):
            build_mechanism("quantum", SessionConfig())

    def test_registry_names_match_config_choices(self):
        from repro.tko.config import (
            ACK_CHOICES,
            CONNECTION_CHOICES,
            DETECTION_CHOICES,
            RECOVERY_CHOICES,
            SEQUENCING_CHOICES,
        )

        assert set(CONNECTION_CHOICES) == set(MECHANISM_REGISTRY["connection"])
        assert set(DETECTION_CHOICES) == set(MECHANISM_REGISTRY["detection"])
        assert set(ACK_CHOICES) == set(MECHANISM_REGISTRY["ack"])
        assert set(RECOVERY_CHOICES) == set(MECHANISM_REGISTRY["recovery"])
        assert set(SEQUENCING_CHOICES) == set(MECHANISM_REGISTRY["sequencing"])

    def test_buffer_mechanism_disciplines(self):
        assert FixedBuffers.discipline == "fixed"
        assert VariableBuffers.discipline == "variable"
