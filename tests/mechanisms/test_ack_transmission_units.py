"""Behavioural unit tests for acknowledgment and transmission mechanisms,
exercised through minimal live sessions."""


from repro.tko.config import SessionConfig
from tests.conftest import TwoHosts


def rx_of(w):
    return w.rx_sessions[0]


class TestDelayedAck:
    def test_fewer_acks_than_cumulative(self):
        counts = {}
        for ack in ("cumulative", "delayed"):
            w = TwoHosts()
            s = w.transfer(SessionConfig(ack=ack), [b"x" * 400] * 20, until=5.0)
            counts[ack] = rx_of(w).stats.acks_sent
            assert len(w.delivered) == 20
        assert counts["delayed"] < counts["cumulative"]

    def test_lone_pdu_still_acked_after_delay(self):
        w = TwoHosts()
        s = w.transfer(SessionConfig(ack="delayed"), [b"solo"], until=5.0)
        assert rx_of(w).stats.acks_sent >= 1
        assert s.state.outstanding_count() == 0

    def test_ack_delay_bounds_holding_time(self):
        # a single PDU's ACK is emitted within ~ack_delay of arrival
        w = TwoHosts()
        cfg = SessionConfig(ack="delayed", ack_delay=0.05)
        w.listen()
        s = w.open(cfg)
        s.send(b"z")
        w.sim.run(until=1.0)
        # RTT sample = path + ack delay; must be under path + 2*ack_delay
        assert s.rtt.srtt is not None
        assert s.rtt.srtt < 0.05 * 2 + 0.05


class TestSelectiveAckContent:
    def test_sack_reports_buffered_gaps(self):
        from repro.netsim.profiles import ethernet_10

        # random single-frame losses create out-of-order buffering at the
        # SR receiver, which the SACK vector must report
        w = TwoHosts(profile=ethernet_10().scaled(ber=4e-6), seed=9)
        cfg = SessionConfig(ack="selective", recovery="sr")
        w.listen(cfg)
        s = w.open(cfg)
        sacks = []
        orig = s._handle_ack

        def spy(pdu, from_host):
            if pdu.sack:
                sacks.append(pdu.sack)
            orig(pdu, from_host)

        s._handle_ack = spy
        for _ in range(40):
            s.send(b"d" * 1000)
        w.sim.run(until=20.0)
        assert len(w.delivered) == 40
        assert sacks, "loss never produced a SACK"
        # every SACKed sequence was above the cumulative point at the time
        assert all(min(v) >= 0 for v in sacks)


class TestStopAndWaitTiming:
    def test_throughput_is_one_pdu_per_rtt(self):
        w = TwoHosts()
        cfg = SessionConfig(transmission="stop-and-wait", segment_size=1000)
        w.listen()
        s = w.open(cfg)
        for _ in range(10):
            s.send(b"k" * 1000)
        w.sim.run(until=5.0)
        assert len(w.delivered) == 10
        # total time ≈ 10 × RTT; with RTT ~4 ms that is well under 1 s but
        # far above the back-to-back serialization time
        times = [m["sent_at"] for _, m in w.delivered]
        span = max(times) - min(times)
        ser = 10 * 1056 * 8 / 10e6
        assert span > 3 * ser


class TestWindowRate:
    def test_obeys_both_constraints(self):
        w = TwoHosts()
        cfg = SessionConfig(transmission="window-rate", window=4, rate_pps=100.0)
        w.listen()
        s = w.open(cfg)
        for _ in range(20):
            s.send(b"r" * 200)
        max_out = 0

        def probe():
            nonlocal max_out
            max_out = max(max_out, s.state.outstanding_count())
            return True

        w.sim.call_each(0.001, probe)
        w.sim.run(until=5.0)
        assert len(w.delivered) == 20
        assert max_out <= 4
        times = [m["sent_at"] for _, m in w.delivered]
        assert max(times) - min(times) >= 19 / 100 * 0.95  # paced at ≤100 pps

    def test_rate_retune_via_set_rate(self):
        w = TwoHosts()
        cfg = SessionConfig(transmission="window-rate", window=8, rate_pps=50.0)
        w.listen()
        s = w.open(cfg)
        s.context.transmission.set_rate(500.0)
        assert s.context.transmission.rate_pps == 500.0


class TestBidirectionalSession:
    def test_both_directions_on_one_session(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig(connection="implicit"))
        replies = []
        s.on_deliver = lambda d, m: replies.append(d)
        s.send(b"ping")
        w.sim.run(until=1.0)
        assert len(w.delivered) == 1
        rx = rx_of(w)
        rx.send(b"pong")
        w.sim.run(until=2.0)
        assert replies == [b"pong"]
