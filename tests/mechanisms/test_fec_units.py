"""Unit tests for the FEC mechanisms' grouping/reconstruction machinery,
exercised against live sessions with surgically dropped DATA frames."""


from repro.tko.config import SessionConfig
from repro.tko.pdu import PduType
from tests.conftest import TwoHosts


def fec_cfg(recovery="fec-xor", k=4, r=1, **kw):
    return SessionConfig(
        connection="implicit", transmission="rate", rate_pps=500.0,
        ack="none", recovery=recovery, fec_k=k, fec_r=r,
        sequencing="none", segment_size=500, **kw,
    )


def drop_data_seqs(w, seqs):
    """Black-hole specific DATA sequence numbers at the sender's NIC."""
    original = w.ha.transmit

    def filtered(frame, extra_instructions=0.0):
        pdu = frame.payload
        if getattr(pdu, "ptype", None) is PduType.DATA and pdu.seq in seqs:
            return  # lost
        original(frame, extra_instructions)

    w.ha.transmit = filtered


class TestXorGroups:
    def test_parity_every_k_data_pdus(self):
        w = TwoHosts()
        w.listen(fec_cfg())
        s = w.open(fec_cfg())
        for _ in range(8):  # exactly two full groups
            s.send(b"p" * 400)
        w.sim.run(until=2.0)
        assert s.stats.parity_sent == 2
        assert len(w.delivered) == 8

    def test_single_loss_in_group_recovered(self):
        w = TwoHosts()
        w.listen(fec_cfg())
        s = w.open(fec_cfg())
        drop_data_seqs(w, {1})
        payloads = [bytes([i]) * 400 for i in range(4)]
        for p in payloads:
            s.send(p)
        w.sim.run(until=3.0)
        assert len(w.delivered) == 4
        rx = w.rx_sessions[0]
        assert rx.stats.fec_recoveries == 1
        # the reconstructed payload is byte-exact
        assert sorted(d for d, _ in w.delivered) == sorted(payloads)

    def test_two_losses_exceed_xor(self):
        w = TwoHosts()
        w.listen(fec_cfg())
        s = w.open(fec_cfg())
        drop_data_seqs(w, {1, 2})
        for i in range(4):
            s.send(bytes([i]) * 400)
        w.sim.run(until=3.0)
        assert len(w.delivered) == 2
        assert w.rx_sessions[0].stats.fec_recoveries == 0

    def test_reconstructed_metadata_flag(self):
        w = TwoHosts()
        w.listen(fec_cfg())
        s = w.open(fec_cfg())
        drop_data_seqs(w, {2})
        for i in range(4):
            s.send(bytes([i]) * 400)
        w.sim.run(until=3.0)
        flags = [m["reconstructed"] for _, m in w.delivered]
        assert flags.count(True) == 1


class TestRsGroups:
    def test_two_losses_recovered_with_r2(self):
        cfg = fec_cfg(recovery="fec-rs", k=4, r=2)
        w = TwoHosts()
        w.listen(cfg)
        s = w.open(cfg)
        drop_data_seqs(w, {0, 3})
        payloads = [bytes([50 + i]) * 400 for i in range(4)]
        for p in payloads:
            s.send(p)
        w.sim.run(until=3.0)
        assert len(w.delivered) == 4
        assert w.rx_sessions[0].stats.fec_recoveries == 2
        assert sorted(d for d, _ in w.delivered) == sorted(payloads)

    def test_parity_loss_tolerated(self):
        cfg = fec_cfg(recovery="fec-rs", k=4, r=2)
        w = TwoHosts()
        w.listen(cfg)
        s = w.open(cfg)
        # drop one data PDU and one parity PDU: still recoverable (4 of 6)
        original = w.ha.transmit
        dropped = {"data": False, "parity": False}

        def filtered(frame, extra_instructions=0.0):
            pdu = frame.payload
            if getattr(pdu, "ptype", None) is PduType.DATA and pdu.seq == 1 \
                    and not dropped["data"]:
                dropped["data"] = True
                return
            if getattr(pdu, "ptype", None) is PduType.PARITY \
                    and not dropped["parity"]:
                dropped["parity"] = True
                return
            original(frame, extra_instructions)

        w.ha.transmit = filtered
        for i in range(4):
            s.send(bytes([i]) * 400)
        w.sim.run(until=3.0)
        assert len(w.delivered) == 4

    def test_variable_size_payloads_roundtrip(self):
        cfg = fec_cfg(recovery="fec-rs", k=3, r=1)
        w = TwoHosts()
        w.listen(cfg)
        s = w.open(cfg)
        drop_data_seqs(w, {1})
        payloads = [b"a" * 100, b"bb" * 150, b"c" * 37]
        for p in payloads:
            s.send(p)
        w.sim.run(until=3.0)
        assert sorted(d for d, _ in w.delivered) == sorted(payloads)


class TestGroupLifecycle:
    def test_flush_emits_partial_group_parity(self):
        w = TwoHosts()
        w.listen(fec_cfg(k=8))
        s = w.open(fec_cfg(k=8))
        for i in range(3):
            s.send(bytes([i]) * 300)
        w.sim.run(until=1.0)
        assert s.stats.parity_sent == 0
        s.close()
        w.sim.run(until=3.0)
        assert s.stats.parity_sent == 1

    def test_flushed_partial_group_still_repairs(self):
        w = TwoHosts()
        w.listen(fec_cfg(k=8))
        s = w.open(fec_cfg(k=8))
        drop_data_seqs(w, {1})
        payloads = [bytes([i]) * 300 for i in range(3)]
        for p in payloads:
            s.send(p)
        s.close()
        w.sim.run(until=3.0)
        assert sorted(d for d, _ in w.delivered) == sorted(payloads)

    def test_receiver_group_horizon_purges(self):
        from repro.mechanisms.fec import GROUP_HORIZON

        w = TwoHosts()
        cfg = fec_cfg(k=2)
        w.listen(cfg)
        s = w.open(cfg)
        n_groups = GROUP_HORIZON + 10
        for i in range(2 * n_groups):
            s.send(bytes([i % 256]) * 200)
        w.sim.run(until=10.0)
        rx = w.rx_sessions[0]
        assert len(rx.context.recovery._rx) <= GROUP_HORIZON
        assert len(w.delivered) == 2 * n_groups
