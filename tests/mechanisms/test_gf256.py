"""Property and unit tests for GF(256) arithmetic and the erasure code."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mechanisms import gf256


class TestFieldAxioms:
    def test_mul_identity(self):
        for a in range(256):
            assert gf256.gf_mul(a, 1) == a

    def test_mul_zero(self):
        for a in range(256):
            assert gf256.gf_mul(a, 0) == 0

    def test_mul_commutative(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            a, b = int(rng.integers(256)), int(rng.integers(256))
            assert gf256.gf_mul(a, b) == gf256.gf_mul(b, a)

    def test_inverse(self):
        for a in range(1, 256):
            assert gf256.gf_mul(a, gf256.gf_inv(a)) == 1

    def test_inv_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            gf256.gf_inv(0)

    def test_mul_associative_sample(self):
        rng = np.random.default_rng(1)
        for _ in range(100):
            a, b, c = (int(x) for x in rng.integers(0, 256, 3))
            assert gf256.gf_mul(gf256.gf_mul(a, b), c) == gf256.gf_mul(
                a, gf256.gf_mul(b, c)
            )


class TestCauchy:
    def test_entries_nonzero(self):
        c = gf256.cauchy_matrix(4, 8)
        assert (c != 0).all()

    def test_too_many_shards_rejected(self):
        with pytest.raises(ValueError):
            gf256.cauchy_matrix(200, 100)


class TestSolve:
    def test_identity_system(self):
        m = np.eye(3, dtype=np.uint8)
        rhs = np.arange(9, dtype=np.uint8).reshape(3, 3)
        assert (gf256.gf_solve(m, rhs) == rhs).all()

    def test_singular_rejected(self):
        m = np.zeros((2, 2), dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            gf256.gf_solve(m, np.zeros((2, 1), dtype=np.uint8))


class TestXor:
    def test_recover_middle_shard(self):
        shards = [b"aaaa", b"bbbbbb", b"cc"]
        parity = gf256.xor_encode(shards)
        rec = gf256.xor_recover([shards[0], shards[2]], parity, 6)
        assert rec == shards[1]

    def test_empty_group(self):
        assert gf256.xor_encode([b""]) == b""


class TestRsApi:
    def test_encode_validates(self):
        with pytest.raises(ValueError):
            gf256.rs_encode([], 1)
        with pytest.raises(ValueError):
            gf256.rs_encode([b"x"], 0)

    def test_decode_insufficient_shards(self):
        shards = [b"abc", b"def", b"ghi"]
        parity = gf256.rs_encode(shards, 1)
        with pytest.raises(ValueError):
            gf256.rs_decode(3, 1, 3, {0: shards[0]}, {0: parity[0]})

    def test_all_data_shortcut(self):
        shards = [b"ab", b"c"]
        out = gf256.rs_decode(2, 1, 2, {0: b"ab", 1: b"c"}, {})
        assert out[0] == b"ab" and out[1][:1] == b"c"


# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    shards=st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=8),
    r=st.integers(min_value=1, max_value=4),
    data=st.data(),
)
def test_any_k_of_n_recovers(shards, r, data):
    """The defining erasure-code property: ANY k of k+r shards suffice."""
    k = len(shards)
    length = max(len(s) for s in shards)
    parity = gf256.rs_encode(shards, r)
    keep = data.draw(
        st.lists(
            st.sampled_from(range(k + r)), min_size=k, max_size=k, unique=True
        )
    )
    have_data = {i: shards[i] for i in keep if i < k}
    have_parity = {i - k: parity[i - k] for i in keep if i >= k}
    out = gf256.rs_decode(k, r, length, have_data, have_parity)
    for i in range(k):
        assert out[i][: len(shards[i])] == shards[i]


@settings(max_examples=40, deadline=None)
@given(shards=st.lists(st.binary(min_size=1, max_size=64), min_size=2, max_size=8))
def test_xor_recovers_any_single_loss(shards):
    parity = gf256.xor_encode(shards)
    for missing in range(len(shards)):
        present = [s for i, s in enumerate(shards) if i != missing]
        rec = gf256.xor_recover(present, parity, len(shards[missing]))
        assert rec == shards[missing]
