"""Tests for the UNITES system report and per-mechanism cost breakdown."""

import pytest

from repro.tko.config import SessionConfig
from repro.tko.message import TKOMessage
from repro.tko.pdu import PduType
from repro.unites.collect import UNITES
from tests.conftest import TwoHosts


class TestReport:
    def test_empty_report(self, sim):
        assert "no metrics" in UNITES(sim).report()

    def test_report_has_all_scopes(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        unites = UNITES(w.sim)
        unites.watch_session(s, "conn-1", metrics=["rtt", "retransmissions"],
                             interval=0.1)
        unites.watch_host(w.ha, interval=0.1)
        for _ in range(5):
            s.send(b"x" * 500)
        w.sim.run(until=1.0)
        report = unites.report()
        assert "per-connection" in report
        assert "per-host" in report
        assert "systemwide" in report
        assert "conn-1" in report and "A" in report

    def test_system_scope_averages(self):
        w = TwoHosts()
        w.listen()
        unites = UNITES(w.sim)
        s1, s2 = w.open(SessionConfig()), w.open(SessionConfig())
        unites.watch_session(s1, "c1", metrics=["acks_sent"], interval=0.1)
        unites.watch_session(s2, "c2", metrics=["acks_sent"], interval=0.1)
        s1.send(b"x")
        w.sim.run(until=1.0)
        report = unites.report()
        assert "system" in report


class TestCostBreakdown:
    def _session(self, cfg=None):
        w = TwoHosts()
        w.listen()
        s = w.open(cfg or SessionConfig())
        w.sim.run(until=0.5)
        return s

    def _data_pdu(self, s, nbytes=1000):
        p = s.make_pdu(PduType.DATA)
        p.message = TKOMessage(b"x" * nbytes)
        return p

    def test_breakdown_covers_all_slots(self):
        s = self._session()
        b = s.cost_model.breakdown(self._data_pdu(s))
        for slot in ("connection", "transmission", "detection", "recovery",
                     "sequencing", "delivery", "jitter", "buffer",
                     "os-fixed", "dispatch"):
            assert slot in b

    def test_detection_dominates_large_pdus(self):
        s = self._session()
        b = s.cost_model.breakdown(self._data_pdu(s, nbytes=8000))
        mech_costs = {k: v for k, v in b.items() if k not in ("os-fixed", "dispatch")}
        assert max(mech_costs, key=mech_costs.get) == "detection"

    def test_breakdown_sums_close_to_charges(self):
        s = self._session()
        pdu = self._data_pdu(s)
        b = s.cost_model.breakdown(pdu)
        send_crit, send_def = s.cost_model.send_charge(pdu)
        recv_crit, recv_def = s.cost_model.recv_charge(pdu)
        total_breakdown = sum(b.values())
        total_charges = send_crit + send_def + recv_crit + recv_def
        # ack slot is in neither charge path (it costs on its own PDUs),
        # so the breakdown can only exceed the charge sum by that much
        assert total_breakdown == pytest.approx(
            total_charges + b.get("ack", 0.0), rel=0.01
        )

    def test_static_binding_zeroes_dispatch(self):
        s = self._session(SessionConfig(binding="static"))
        b = s.cost_model.breakdown(self._data_pdu(s))
        assert b["dispatch"] == 0.0
        s2 = self._session(SessionConfig(binding="dynamic"))
        assert s2.cost_model.breakdown(self._data_pdu(s2))["dispatch"] > 0.0
