"""Instance labels on the exported metrics plane (sharded scrapes).

A shard worker serving its own ``/metrics`` stamps ``shard="N"`` onto
every sample so a fleet-wide scrape never collides on a series.  The
label value rides the same single escaping choke point as metric-level
labels — hostile values cannot corrupt the exposition stream.
"""

from repro.unites.obs.exporters import render_prometheus, validate_prometheus
from repro.unites.obs.registry import MetricRegistry
from repro.unites.obs.server import TelemetryServer


def _registry():
    reg = MetricRegistry()
    reg.counter("frames_total", help="frames").inc(3)
    reg.gauge("queue_depth", labels={"link": "a->b"}).set(7)
    h = reg.histogram("latency_seconds", bounds=[0.1, 1.0])
    h.observe(0.05)
    return reg


class TestExtraLabels:
    def test_stamped_on_every_sample_kind(self):
        text = render_prometheus(_registry(), extra_labels={"shard": "2"})
        assert 'frames_total{shard="2"} 3' in text
        assert 'queue_depth{shard="2",link="a->b"} 7' in text
        for suffix in ("_bucket", "_sum", "_count"):
            assert f'latency_seconds{suffix}{{shard="2"' in text
        assert validate_prometheus(text) == []

    def test_absent_by_default(self):
        text = render_prometheus(_registry())
        assert "shard=" not in text
        assert render_prometheus(_registry(), extra_labels=None) == text

    def test_metric_level_label_wins_a_collision(self):
        reg = MetricRegistry()
        reg.counter("c_total", labels={"shard": "own"}).inc(1)
        text = render_prometheus(reg, extra_labels={"shard": "9"})
        assert 'c_total{shard="own"} 1' in text
        assert 'shard="9"' not in text

    def test_hostile_values_are_escaped_not_injected(self):
        hostile = 'a"b\\c\nd'
        text = render_prometheus(
            _registry(), extra_labels={"shard": hostile}
        )
        assert 'shard="a\\"b\\\\c\\nd"' in text
        # no raw newline may split a sample line in two
        for line in text.splitlines():
            assert line.startswith(("#", "frames_total", "queue_depth",
                                    "latency_seconds"))
        assert validate_prometheus(text) == []


class TestServerThreading:
    def test_server_stamps_instance_labels_on_scrape(self):
        from repro.unites.obs.telemetry import TELEMETRY

        TELEMETRY.metrics.counter("probe_total", help="probe").inc()
        server = TelemetryServer(instance_labels={"shard": "3"})
        text = server.render_metrics()
        assert 'probe_total{shard="3"}' in text

    def test_server_without_labels_is_unchanged(self):
        from repro.unites.obs.telemetry import TELEMETRY

        TELEMETRY.metrics.counter("bare_probe_total", help="probe").inc()
        server = TelemetryServer()
        assert server.instance_labels == {}
        # the unlabelled metric renders with no stamped labels at all
        assert "\nbare_probe_total 1" in "\n" + server.render_metrics()
