"""Flight recorder: bounded ring semantics, dump analysis, and the
``python -m repro.unites.obs.flight`` CLI."""

import json

import pytest

from repro.unites.obs.flight import FlightRecorder, analyze, load, main


class TestRing:
    def test_capacity_bounds_the_ring(self):
        r = FlightRecorder(capacity=4)
        for i in range(10):
            r.note("tick", float(i), n=i)
        assert len(r) == 4
        assert r.noted_total == 10
        assert r.dropped == 6
        assert [rec["n"] for rec in r.snapshot()] == [6, 7, 8, 9]

    def test_snapshot_returns_copies(self):
        r = FlightRecorder()
        r.note("tick", 0.0, n=1)
        snap = r.snapshot()
        snap[0]["n"] = 99
        assert r.snapshot()[0]["n"] == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


def sample_dump():
    return {
        "version": 1,
        "kind": "flight-recorder-dump",
        "trigger": {
            "kind": "violation",
            "time": 1.25,
            "violation": {
                "kind": "throughput", "measured": 96000.0, "bound": 200000.0,
            },
        },
        "connection": "A-1",
        "contract": {
            "connection": "A-1", "avg_throughput_bps": 200000.0,
            "max_latency": 0.5, "loss_tolerance": 0.0, "ordered": True,
            "captured_at": 0.1,
        },
        "scorecard": {
            "overall_score": 0.875, "windows_evaluated": 8, "violations": 1,
            "dimensions": {
                "throughput": {"windows": 8, "violations": 1, "score": 0.875},
            },
        },
        "violations": [
            {"time": 1.25, "kind": "throughput", "measured": 96000.0,
             "bound": 200000.0, "detail": "delivered 96000bps of 200000bps"},
        ],
        "adaptation": [
            {"time": 1.1, "action": "retune", "detail": "applied",
             "rung": "normal", "outcome": "applied",
             "thresholds": [["congestion", 0.9, 0.5]]},
        ],
        "records": [
            {"kind": "deliver", "time": 1.2, "msg_id": 7, "nbytes": 600},
            {"kind": "violation", "time": 1.25, "dimension": "throughput"},
        ],
        "config": {"transmission": "sliding-window", "window": 8},
    }


class TestAnalyze:
    def test_report_walks_cause_ladder_effect(self):
        report = analyze(sample_dump())
        assert "connection A-1" in report
        assert "trigger : violation at t=1.250000s" in report
        assert "throughput: measured 96000 vs bound 200000" in report
        assert "scorecard: overall 0.875" in report
        assert "adaptation trail" in report
        assert "congestion 0.9>0.5" in report        # thresholds crossed
        assert "-> applied" in report                # outcome
        assert "event ring" in report
        assert "session config" in report

    def test_teardown_trigger_reason(self):
        d = sample_dump()
        d["trigger"] = {"kind": "abnormal-teardown", "time": 2.0,
                        "reason": "destination unreachable"}
        report = analyze(d)
        assert "abnormal-teardown" in report
        assert "(destination unreachable)" in report

    def test_minimal_dump_does_not_crash(self):
        assert analyze({}) .startswith("=== flight recorder dump")


class TestCli:
    def test_main_analyzes_files(self, tmp_path, capsys):
        p = tmp_path / "dump.json"
        p.write_text(json.dumps(sample_dump()))
        assert main([str(p)]) == 0
        out = capsys.readouterr().out
        assert "connection A-1" in out
        assert load(str(p))["connection"] == "A-1"

    def test_main_usage_and_errors(self, tmp_path, capsys):
        assert main([]) == 2
        assert main(["-h"]) == 0
        missing = tmp_path / "nope.json"
        assert main([str(missing)]) == 1
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main([str(bad)]) == 1
        err = capsys.readouterr().err
        assert "cannot read dump" in err
