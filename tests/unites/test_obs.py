"""Tests for UNITES-X: registry, telemetry bus, exporters, instrumentation."""

import json

import pytest

from repro.sim.kernel import Simulator
from repro.tko.config import SessionConfig
from repro.unites.obs.exporters import (
    render_prometheus,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
)
from repro.unites.obs.registry import MetricRegistry
from repro.unites.obs.telemetry import NULL_SPAN, TELEMETRY, Telemetry
from repro.unites.repository import MetricRepository
from tests.conftest import TwoHosts


@pytest.fixture(autouse=True)
def clean_global_telemetry():
    """The global handle must never leak state between tests."""
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


# ----------------------------------------------------------------------
# metric registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_monotone(self):
        r = MetricRegistry()
        c = r.counter("pdus_total")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricRegistry().gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0

    def test_get_or_create_is_stable(self):
        r = MetricRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.counter("a", {"x": "1"}) is not r.counter("a", {"x": "2"})
        assert r.counter("a", {"x": "1", "y": "2"}) is r.counter("a", {"y": "2", "x": "1"})

    def test_kind_conflict_rejected(self):
        r = MetricRegistry()
        r.counter("n")
        with pytest.raises(ValueError):
            r.gauge("n")

    def test_flat_name_labels(self):
        c = MetricRegistry().counter("drops", {"link": "a->b", "reason": "mtu"})
        assert c.flat_name == 'drops{link="a->b",reason="mtu"}'

    def test_histogram_quantiles(self):
        h = MetricRegistry().histogram("lat", bounds=[0.1, 0.2, 0.5, 1.0])
        for v in (0.05, 0.05, 0.15, 0.3, 0.7):
            h.observe(v)
        assert h.count == 5
        assert h.mean == pytest.approx(sum((0.05, 0.05, 0.15, 0.3, 0.7)) / 5)
        assert h.quantile(0.0) is not None
        assert h.quantile(0.5) == 0.2
        assert h.quantile(1.0) == 1.0
        h.observe(99.0)  # lands in +Inf bucket
        assert h.quantile(1.0) == float("inf")

    def test_histogram_empty_and_bad_bounds(self):
        h = MetricRegistry().histogram("x")
        assert h.quantile(0.5) is None and h.mean is None
        with pytest.raises(ValueError):
            MetricRegistry().histogram("y", bounds=[2.0, 1.0])
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_snapshot_and_collect(self):
        r = MetricRegistry()
        r.counter("c").inc(2)
        r.gauge("g").set(1.5)
        h = r.histogram("h", bounds=[1.0, 2.0])
        h.observe(0.5)
        snap = r.snapshot()
        assert snap["c"] == 2 and snap["g"] == 1.5
        assert snap["h_count"] == 1 and snap["h_sum"] == 0.5
        assert snap["h_p50"] == 1.0
        assert [m.name for m in r.collect()] == ["c", "g", "h"]
        assert len(r) == 3

    def test_to_repository_bridge(self):
        r = MetricRegistry()
        r.counter("kernel_events_total").inc(7)
        repo = MetricRepository()
        n = r.to_repository(repo, time=1.0)
        assert n == 1
        assert repo.latest("kernel_events_total", "system", "") == 7.0

    def test_link_scope_accepted(self):
        repo = MetricRepository()
        repo.record(0.5, "link", "a->b", "frames_dropped", 3.0)
        assert repo.latest("frames_dropped", "link", "a->b") == 3.0
        with pytest.raises(ValueError):
            repo.record(0.5, "galaxy", "", "x", 1.0)


# ----------------------------------------------------------------------
# telemetry bus
# ----------------------------------------------------------------------
class TestTelemetry:
    def test_disabled_is_nullspan(self):
        t = Telemetry()
        assert t.span("a") is NULL_SPAN
        assert t.begin("a") is NULL_SPAN
        t.instant("a")
        t.complete("a", "c", 0.0, 1.0)
        NULL_SPAN.annotate(x=1).end()
        with NULL_SPAN:
            pass
        assert not t.spans and not t.instants

    def test_stacked_spans_nest(self):
        t = Telemetry().enable()
        with t.span("outer", "x"):
            with t.span("inner", "x") as inner:
                assert inner.parent == "outer"
                assert inner.depth == 1
        assert [s.name for s in t.spans] == ["inner", "outer"]

    def test_sim_clock_and_duration(self):
        sim = Simulator()
        t = Telemetry().enable(sim=sim)
        span = t.begin("phase")
        sim.schedule(2.5, lambda: span.end())
        sim.run()
        assert span.sim_start == 0.0
        assert span.sim_end == 2.5
        assert span.sim_duration == 2.5
        assert span.wall_us >= 0.0

    def test_end_is_idempotent(self):
        t = Telemetry().enable()
        s = t.begin("once")
        s.end(outcome="first")
        s.end(outcome="second")
        assert len(t.spans) == 1
        assert t.spans[0].args["outcome"] == "first"

    def test_exception_annotates_error(self):
        t = Telemetry().enable()
        with pytest.raises(RuntimeError):
            with t.span("risky"):
                raise RuntimeError("boom")
        assert t.spans[0].args["error"] == "RuntimeError"

    def test_record_cap_counts_drops(self):
        t = Telemetry().enable(max_records=3)
        for i in range(5):
            with t.span(f"s{i}"):
                pass
        assert len(t.spans) == 3
        assert t.dropped == 2
        for _ in range(4):
            t.instant("i")
        assert len(t.instants) == 3 and t.dropped == 3

    def test_reset_clears_everything(self):
        sim = Simulator()
        t = Telemetry().enable(sim=sim)
        with t.span("a"):
            pass
        t.instant("b")
        t.metrics.counter("c").inc()
        t.reset()
        assert not t.spans and not t.instants and len(t.metrics) == 0
        assert t.now == 0.0

    def test_categories_and_summary(self):
        t = Telemetry().enable()
        with t.span("a", "kernel"):
            pass
        with t.span("b", "tko"):
            pass
        t.instant("x", "tko")
        assert t.categories() == {"kernel": 1, "tko": 1}
        assert t.spans_named("a")
        assert "2 spans" in t.summary() and "kernel" in t.summary()


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def _populated_telemetry() -> Telemetry:
    sim = Simulator()
    t = Telemetry().enable(sim=sim)
    span = t.begin("negotiation", "mantts", conn="A-1")
    sim.schedule(0.5, span.end)
    sim.run()
    t.instant("link-fail", "netsim", link="a->b")
    t.complete("link-tx", "netsim", 0.1, 0.2, link="a->b")
    t.metrics.counter("frames_total", {"link": "a->b"}, help="frames").inc(3)
    t.metrics.histogram("handler_s", help="secs").observe(0.002)
    return t


class TestExporters:
    def test_jsonl_round_trips(self):
        t = _populated_telemetry()
        records = [json.loads(line) for line in to_jsonl(t).splitlines()]
        kinds = {r["type"] for r in records}
        assert kinds == {"span", "instant", "metric"}
        span = next(r for r in records if r["type"] == "span")
        assert {"name", "category", "sim_start", "sim_end", "wall_us"} <= set(span)

    def test_chrome_trace_shape(self):
        t = _populated_telemetry()
        trace = to_chrome_trace(t)
        events = trace["traceEvents"]
        assert events[0]["ph"] == "M" and events[0]["name"] == "process_name"
        xs = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(xs) == 2 and len(instants) == 1
        nego = next(e for e in xs if e["name"] == "negotiation")
        assert nego["ts"] == 0.0 and nego["dur"] == pytest.approx(0.5e6)
        # per-category tracks: both netsim events share a tid
        netsim_tids = {e["tid"] for e in events
                       if e.get("cat") == "netsim" and e["ph"] in "Xi"}
        assert len(netsim_tids) == 1
        ts = [e["ts"] for e in events if e["ph"] in "Xi"]
        assert ts == sorted(ts)

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        t = _populated_telemetry()
        path = tmp_path / "trace.json"
        n = write_chrome_trace(t, str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == n
        assert loaded["otherData"]["spans"] == 2

    def test_prometheus_text(self):
        t = _populated_telemetry()
        text = render_prometheus(t.metrics)
        assert "# HELP frames_total frames" in text
        assert "# TYPE frames_total counter" in text
        assert 'frames_total{link="a->b"} 3' in text
        assert "# TYPE handler_s histogram" in text
        assert 'handler_s_bucket{le="+Inf"} 1' in text
        assert "handler_s_sum 0.002" in text
        assert "handler_s_count 1" in text
        # cumulative buckets never decrease
        counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()
                  if line.startswith("handler_s_bucket")]
        assert counts == sorted(counts)

    def test_present_render_prometheus_wrapper(self):
        from repro.unites.present import render_prometheus as present_render

        TELEMETRY.enable()
        TELEMETRY.metrics.counter("via_wrapper_total").inc()
        assert "via_wrapper_total 1" in present_render()


# ----------------------------------------------------------------------
# kernel instrumentation
# ----------------------------------------------------------------------
class TestKernelInstrumentation:
    def test_dispatch_metrics_and_spans(self):
        sim = Simulator()
        TELEMETRY.enable(sim=sim)
        for i in range(5):
            sim.schedule(0.1 * (i + 1), lambda: None)
        sim.run()
        m = TELEMETRY.metrics
        assert m.get("kernel_events_dispatched_total").value == 5
        assert m.get("kernel_heap_depth").value == 0.0
        hist = next(x for x in m.collect() if x.name == "kernel_handler_seconds")
        assert hist.count == 5
        assert TELEMETRY.categories()["kernel"] == 5
        assert all(s.wall_us >= 0 for s in TELEMETRY.spans)

    def test_lazy_deletion_ratio(self):
        sim = Simulator()
        # cancelled timers sit at the top of the heap, so the kernel must
        # lazily skip all three before reaching the live event
        for _ in range(3):
            sim.cancel(sim.schedule(0.5, lambda: None))
        keep = sim.schedule(1.0, lambda: None)
        assert sim._queue.heap_depth == 4
        sim.run()
        q = sim._queue
        assert q.popped_live == 1 and q.skipped_cancelled == 3
        assert q.lazy_deletion_ratio == pytest.approx(0.75)
        assert keep.cancelled is False

    def test_uninstrumented_step_matches(self):
        fired = []
        sim = Simulator()
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(0.5, fired.append, "b")
        while sim._step_uninstrumented():
            pass
        assert fired == ["b", "a"] and sim.now == 1.0

    def test_disabled_records_nothing(self):
        sim = Simulator()
        sim.schedule(0.5, lambda: None)
        sim.run()
        assert not TELEMETRY.spans and len(TELEMETRY.metrics) == 0


# ----------------------------------------------------------------------
# full-stack integration
# ----------------------------------------------------------------------
class TestFullStack:
    def test_transfer_spans_every_layer(self):
        w = TwoHosts()
        TELEMETRY.enable(sim=w.sim)
        w.transfer(SessionConfig(), [b"x" * 2000] * 5, until=5.0)
        cats = TELEMETRY.categories()
        assert {"kernel", "netsim", "tko", "mechanism"} <= set(cats)
        sends = TELEMETRY.spans_named("session-send")
        assert len(sends) == 5
        assert all(s.category == "tko" for s in sends)
        m = TELEMETRY.metrics
        flat = m.snapshot()
        assert any(k.startswith("link_frames_enqueued_total") for k in flat)
        assert any(k.startswith("link_frames_delivered_total") for k in flat)
        assert any(k.startswith("mechanism_invocations_total") for k in flat)

    def test_link_drop_counters_by_reason(self):
        w = TwoHosts()
        TELEMETRY.enable(sim=w.sim)
        link = w.net.link("A", "s1")
        from repro.netsim.frame import Frame

        big = Frame(src="A", dst="B", size=link.mtu + 1, payload=None)
        assert link.send(big) is False
        w.net.fail_link("A", "s1")
        down = Frame(src="A", dst="B", size=100, payload=None)
        assert link.send(down) is False
        m = TELEMETRY.metrics
        assert m.get("link_frames_dropped_total",
                     {"link": "A->s1", "reason": "mtu"}).value == 1
        assert m.get("link_frames_dropped_total",
                     {"link": "A->s1", "reason": "down"}).value == 1
        names = {i["name"] for i in TELEMETRY.instants}
        assert {"link-drop", "link-fail"} <= names
        w.net.restore_link("A", "s1")
        assert "link-restore" in {i["name"] for i in TELEMETRY.instants}

    def test_mantts_connection_spans(self):
        from repro import ACD, APP_PROFILES, AdaptiveSystem
        from repro.netsim.profiles import fddi_100, star

        system = AdaptiveSystem(seed=3)
        system.attach_network(
            star(system.sim, fddi_100(), ["a", "b"], rng=system.rng)
        )
        na = system.node("a")
        nb = system.node("b")
        nb.mantts.register_service(7000)
        system.enable_telemetry()
        profile = APP_PROFILES["tele-conferencing"]
        acd = ACD(
            participants=("b",),
            quantitative=profile.quantitative(),
            qualitative=profile.qualitative(),
            service_port=7000,
        )
        conn = na.mantts.open(acd)
        system.run(until=1.0)
        assert conn.session is not None
        setup = TELEMETRY.spans_named("connection-setup")
        assert len(setup) == 1
        assert setup[0].args["outcome"] == "connected"
        assert setup[0].sim_end is not None
        assert TELEMETRY.spans_named("session-instantiate")

    def test_unites_watchers_and_prometheus(self):
        from repro.unites.collect import UNITES

        w = TwoHosts()
        TELEMETRY.enable(sim=w.sim)
        u = UNITES(w.sim)
        u.watch_network(w.net, interval=0.5)
        u.watch_telemetry(interval=0.5)
        w.transfer(SessionConfig(), [b"y" * 1500] * 3, until=4.0)
        links = u.repository.entities("link")
        assert "A->s1" in links
        assert u.repository.latest("frames_delivered", "link", "A->s1") > 0
        assert (
            u.repository.latest("kernel_events_dispatched_total", "system", "")
            > 0
        )
        text = u.prometheus()
        assert "# TYPE kernel_events_dispatched_total counter" in text
        report = u.report()
        assert "per-link" in report

    def test_session_snapshot_mirrors_to_registry(self):
        from repro.unites.metrics import session_snapshot

        w = TwoHosts()
        s = w.transfer(SessionConfig(), [b"z" * 800], until=2.0)
        reg = MetricRegistry()
        values = session_snapshot(s, registry=reg, entity="conn-1")
        g = reg.get("unites_throughput_bps", {"session": "conn-1"})
        assert g is not None
        assert g.value == pytest.approx(values["throughput_bps"])


# ----------------------------------------------------------------------
# lazy package exports
# ----------------------------------------------------------------------
def test_unites_package_lazy_exports():
    import repro.unites as unites

    assert unites.TELEMETRY is TELEMETRY
    assert unites.MetricRegistry is MetricRegistry
    assert unites.UNITES.__name__ == "UNITES"
    assert "TELEMETRY" in dir(unites)
    with pytest.raises(AttributeError):
        unites.no_such_export
