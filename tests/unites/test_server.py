"""The live telemetry plane: HTTP endpoint routing, payload shape, and the
Prometheus exposition served by ``/metrics``.

This file is also the body of the CI ``telemetry-smoke`` job: it stands up
a real simulated world with telemetry + audit enabled, scrapes every
route over actual HTTP, and validates the Prometheus payload.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.profiles import ethernet_10, linear_path
from repro.unites.obs import AUDIT, TELEMETRY, TelemetryServer, validate_prometheus


@pytest.fixture(autouse=True)
def clean_global_planes():
    TELEMETRY.disable()
    TELEMETRY.reset()
    AUDIT.disable()
    AUDIT.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()
    AUDIT.disable()
    AUDIT.reset()


def build_world():
    sysm = AdaptiveSystem(seed=2)
    sysm.attach_network(
        linear_path(sysm.sim, ethernet_10(), ("A", "B"), rng=sysm.rng)
    )
    a, b = sysm.node("A"), sysm.node("B")
    got = []
    b.mantts.register_service(7000, on_deliver=lambda d, m: got.append(d))
    sysm.enable_telemetry()
    sysm.enable_audit(window=0.1)
    acd = ACD(
        participants=("B",),
        quantitative=QuantitativeQoS(
            avg_throughput_bps=50e3, duration=600, max_latency=0.5
        ),
        qualitative=QualitativeQoS(),
    )
    conn = a.mantts.open(acd)
    sysm.run(until=0.5)
    for _ in range(10):
        conn.send(b"x" * 400)
        sysm.run(until=sysm.now + 0.02)
    sysm.run(until=sysm.now + 0.2)
    return sysm, conn


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read()


class TestEndpoints:
    def test_live_world_scrape(self):
        sysm, conn = build_world()
        with sysm.serve_telemetry() as server:
            assert server.port != 0

            status, ctype, body = fetch(server.url + "/healthz")
            assert status == 200 and ctype == "application/json"
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["telemetry_enabled"] and health["audit_enabled"]
            assert health["sim_time"] == pytest.approx(sysm.now)
            assert health["audited_connections"] == 1

            status, ctype, body = fetch(server.url + "/metrics")
            assert status == 200
            assert ctype.startswith("text/plain")
            text = body.decode()
            assert "qos_conformance_score" in text
            assert validate_prometheus(text) == []

            status, _, body = fetch(server.url + "/connections")
            rows = json.loads(body)
            assert len(rows) == 1
            row = rows[0]
            assert row["ref"] == conn.ref
            assert row["state"] == "open"
            assert row["remote_host"] == "B" and row["remote_port"] == 7000
            assert "qos_score" in row

            status, _, body = fetch(server.url + "/audit")
            cards = json.loads(body)
            assert conn.ref in cards
            assert cards[conn.ref]["contract"]["avg_throughput_bps"] == 50e3

            # root aliases healthz; unknown routes 404 with a JSON error
            status, _, _ = fetch(server.url + "/")
            assert status == 200
            with pytest.raises(urllib.error.HTTPError) as exc:
                fetch(server.url + "/nope")
            assert exc.value.code == 404
            assert json.loads(exc.value.read())["error"].startswith("unknown route")

            assert server.requests_served >= 6
        # context-manager exit stopped the server
        with pytest.raises(urllib.error.URLError):
            fetch(server.url + "/healthz")

    def test_server_without_system_serves_empty_tables(self):
        server = TelemetryServer().start()
        try:
            status, _, body = fetch(server.url + "/connections")
            assert status == 200 and json.loads(body) == []
            status, _, body = fetch(server.url + "/healthz")
            assert json.loads(body)["audited_connections"] == 0
        finally:
            server.stop()

    def test_stop_is_idempotent_and_start_reentrant(self):
        server = TelemetryServer()
        assert server.start() is server.start()
        server.stop()
        server.stop()

    def test_renderers_work_without_http(self):
        sysm, conn = build_world()
        server = TelemetryServer(system=sysm)
        assert validate_prometheus(server.render_metrics()) == []
        assert server.render_connections()[0]["ref"] == conn.ref
        assert conn.ref in server.render_audit()
        assert server.render_health()["status"] == "ok"


class TestBindBehaviour:
    """ISSUE 7 satellite: explicit SO_REUSEADDR + ephemeral port-0 bind."""

    def test_port_zero_reports_kernel_chosen_port(self):
        server = TelemetryServer(port=0).start()
        try:
            assert server.port != 0
            assert str(server.port) in server.url
            status, _, _ = fetch(server.url + "/healthz")
            assert status == 200
        finally:
            server.stop()

    def test_socket_has_reuseaddr_set(self):
        import socket

        server = TelemetryServer().start()
        try:
            assert server._httpd.allow_reuse_address is True
            flag = server._httpd.socket.getsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR
            )
            assert flag != 0
        finally:
            server.stop()

    def test_immediate_rebind_of_same_port(self):
        # without SO_REUSEADDR a lingering TIME_WAIT peer makes this flaky;
        # with it, stop-then-rebind on the same port must always succeed
        first = TelemetryServer().start()
        port = first.port
        fetch(first.url + "/healthz")  # create at least one connection
        first.stop()
        second = TelemetryServer(port=port).start()
        try:
            assert second.port == port
            status, _, _ = fetch(second.url + "/healthz")
            assert status == 200
        finally:
            second.stop()
