"""Tests for UNITES: metrics, repository, collection, analysis, display."""

import pytest

from repro.tko.config import SessionConfig
from repro.unites.analyze import compare, percentile, summarize, time_weighted_mean
from repro.unites.collect import UNITES, SessionCollector
from repro.unites.experiment import Experiment
from repro.unites.metrics import BLACKBOX, METRICS, WHITEBOX, session_snapshot
from repro.unites.present import render_csv, render_series, render_table
from repro.unites.repository import MetricRepository
from tests.conftest import TwoHosts


class TestMetricCatalogue:
    def test_paper_blackbox_metrics_present(self):
        # §4.3: throughput (packets/s) and latency are the blackbox pair
        assert "throughput_pps" in BLACKBOX
        assert "latency" in BLACKBOX

    def test_paper_whitebox_metrics_present(self):
        for name in (
            "connection_setup_time",
            "retransmissions",
            "instructions_per_pdu",
            "jitter",
            "loss_rate",
        ):
            assert name in WHITEBOX

    def test_classes_partition(self):
        assert set(BLACKBOX) | set(WHITEBOX) == set(METRICS)
        assert not set(BLACKBOX) & set(WHITEBOX)

    def test_snapshot_on_live_session(self):
        w = TwoHosts()
        s = w.transfer(SessionConfig(), [b"x" * 1000] * 5, until=3.0)
        snap = session_snapshot(s)
        assert snap["throughput_pps"] > 0
        assert snap["retransmission_rate"] is not None
        assert snap["cpu_utilization"] > 0

    def test_snapshot_subset_and_unknown(self):
        w = TwoHosts()
        s = w.transfer(SessionConfig(), [b"x"], until=1.0)
        snap = session_snapshot(s, ["rtt", "acks_sent"])
        assert set(snap) == {"rtt", "acks_sent"}
        with pytest.raises(KeyError):
            session_snapshot(s, ["bogus"])


class TestRepository:
    def test_record_and_series(self):
        r = MetricRepository()
        r.record(0.0, "session", "c1", "rtt", 0.01)
        r.record(1.0, "session", "c1", "rtt", 0.02)
        assert r.series("rtt", "session", "c1") == [(0.0, 0.01), (1.0, 0.02)]
        assert r.latest("rtt", "session", "c1") == 0.02

    def test_scopes_validated(self):
        with pytest.raises(ValueError):
            MetricRepository().record(0, "galaxy", "x", "m", 1.0)

    def test_systemwide_values(self):
        r = MetricRepository()
        r.record(0, "session", "c1", "loss", 0.1)
        r.record(0, "session", "c2", "loss", 0.3)
        r.record(0, "host", "A", "loss", 0.9)
        assert sorted(r.values("loss", scope="session")) == [0.1, 0.3]
        assert len(r.values("loss")) == 3

    def test_entities_and_metrics_listing(self):
        r = MetricRepository()
        r.record(0, "session", "c1", "rtt", 1)
        r.record(0, "session", "c1", "loss", 0)
        assert r.entities("session") == ["c1"]
        assert r.metrics_for("session", "c1") == ["loss", "rtt"]

    def test_none_values_skipped(self):
        r = MetricRepository()
        r.record_many(0, "session", "c1", {"a": None, "b": 1.0})
        assert len(r) == 1


class TestCollector:
    def test_periodic_sampling(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        unites = UNITES(w.sim)
        unites.watch_session(s, "c1", metrics=["rtt", "acks_received"], interval=0.1)
        for _ in range(5):
            s.send(b"x" * 500)
        w.sim.run(until=1.05)
        series = unites.repository.series("acks_received", "session", "c1")
        assert len(series) == 10

    def test_collector_stops_after_close(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        unites = UNITES(w.sim)
        c = unites.watch_session(s, "c1", metrics=["rtt"], interval=0.1)
        s.send(b"x")
        w.sim.schedule(0.5, s.close)
        w.sim.run(until=3.0)
        n = c.samples_taken
        w.sim.schedule(3.0, lambda: None)
        w.sim.run(until=5.0)
        assert c.samples_taken == n

    def test_unknown_metric_rejected(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        with pytest.raises(KeyError):
            SessionCollector(w.sim, MetricRepository(), s, "c", ["zap"])

    def test_watch_host(self):
        w = TwoHosts()
        unites = UNITES(w.sim)
        timer = unites.watch_host(w.ha, interval=0.2)
        w.sim.run(until=1.0)
        assert unites.repository.series("cpu_utilization", "host", "A")
        timer.cancel()


class TestAnalysis:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["n"] == 4 and s["mean"] == 2.5 and s["min"] == 1.0

    def test_summarize_empty(self):
        assert summarize([])["n"] == 0

    def test_percentile(self):
        assert percentile(list(range(101)), 95) == pytest.approx(95.0)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_compare_direction(self):
        base = {"throughput_bps": 100.0, "latency": 0.2}
        cand = {"throughput_bps": 150.0, "latency": 0.1}
        out = compare(base, cand)
        assert out["throughput_bps"]["better"] == 1
        assert out["latency"]["better"] == 1
        out2 = compare(cand, base)
        assert out2["throughput_bps"]["better"] == -1

    def test_compare_skips_missing(self):
        assert compare({"a": 1.0}, {"b": 2.0}) == {}

    def test_time_weighted_mean(self):
        series = [(0.0, 10.0), (1.0, 0.0), (3.0, 0.0)]
        # 10 for 1s, then 0 for 2s
        assert time_weighted_mean(series) == pytest.approx(10 / 3)


class TestPresentation:
    ROWS = [{"variant": "a", "x": 1.0}, {"variant": "b", "x": 23456.789}]

    def test_table_alignment(self):
        out = render_table(self.ROWS, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "variant" in lines[1]
        assert len(lines) == 5

    def test_table_empty(self):
        assert "no data" in render_table([])

    def test_csv(self):
        out = render_csv(self.ROWS)
        assert out.splitlines()[0] == "variant,x"
        assert out.splitlines()[1] == "a,1"

    def test_series_plot(self):
        out = render_series([(0.0, 1.0), (1.0, 5.0)], width=20, height=4, label="rtt")
        assert "rtt" in out and "*" in out

    def test_series_empty(self):
        assert "no samples" in render_series([])


class TestExperimentHarness:
    def test_run_and_table(self):
        e = Experiment("demo")
        e.add_variant("fast", lambda: {"throughput_bps": 200.0, "loss": 0.0})
        e.add_variant("slow", lambda: {"throughput_bps": 50.0, "loss": 0.1})
        e.run()
        assert e.winner("throughput_bps") == "fast"
        assert e.winner("loss", higher_is_better=False) == "fast"
        assert "demo" in e.table()

    def test_compare_variants(self):
        e = Experiment("demo")
        e.add_variant("a", lambda: {"x": 1.0})
        e.add_variant("b", lambda: {"x": 3.0})
        e.run()
        assert e.compare("a", "b")["x"]["ratio"] == pytest.approx(3.0)

    def test_unknown_variant(self):
        e = Experiment("demo")
        e.add_variant("a", lambda: {"x": 1.0})
        e.run()
        with pytest.raises(KeyError):
            e.result("zzz")

    def test_table_before_run_rejected(self):
        with pytest.raises(RuntimeError):
            Experiment("x").table()
