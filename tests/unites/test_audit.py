"""QoS conformance auditing: contract capture, sliding-window measurement,
violation detection per dimension, black-box dumps, adaptation cross-links,
and the zero-cost-when-disabled discipline."""

import dataclasses
import json
from types import SimpleNamespace

import pytest

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.monitor import NetworkState
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.profiles import ethernet_10, linear_path
from repro.tko.config import SessionConfig
from repro.unites.obs.audit import AUDIT, QoSAuditor, QoSContract, QoSViolation
from repro.unites.obs.telemetry import TELEMETRY
from tests.conftest import TwoHosts


@pytest.fixture(autouse=True)
def clean_global_planes():
    TELEMETRY.disable()
    TELEMETRY.reset()
    AUDIT.disable()
    AUDIT.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()
    AUDIT.disable()
    AUDIT.reset()


# ----------------------------------------------------------------------
# synthetic harness: drive an auditor without a full world
# ----------------------------------------------------------------------
class FakeSim:
    def __init__(self) -> None:
        self.now = 0.0


def contract(**over) -> QoSContract:
    base = dict(
        connection="C-1", avg_throughput_bps=0.0, peak_throughput_bps=0.0,
        max_latency=None, max_jitter=None, loss_tolerance=0.0,
        ordered=True, captured_at=0.0,
    )
    base.update(over)
    return QoSContract(**base)


def fake_session(sim):
    return SimpleNamespace(
        sim=sim,
        observers=[],
        state=SimpleNamespace(outstanding={}),
        _send_queue=[],
    )


def harness(c: QoSContract, **kw):
    sim = FakeSim()
    sender = fake_session(sim)
    receiver = fake_session(sim)
    kw.setdefault("window", 0.1)
    kw.setdefault("warmup_windows", 0)
    auditor = QoSAuditor(c, **kw)
    auditor.attach_sender(sender)
    auditor.attach_receiver(receiver)
    return sim, sender, receiver, auditor


def deliver(auditor, receiver, msg_id, nbytes=100, latency=0.01):
    auditor._on_receiver_event(
        "deliver", receiver, msg_id=msg_id, nbytes=nbytes, latency=latency
    )


def data_pdu(seq):
    return SimpleNamespace(ptype=SimpleNamespace(value="data"), seq=seq)


class TestWindowMechanics:
    def test_clean_run_scores_one(self):
        sim, s, r, a = harness(contract(max_latency=0.5, max_jitter=0.5))
        for i in range(10):
            sim.now = 0.02 * (i + 1)
            deliver(a, r, msg_id=i)
        sim.now = 1.0
        a.on_network_sample(SimpleNamespace(rtt=0.01))
        a.finalize()
        assert a.violations == []
        assert a.overall_score == 1.0
        assert a.evaluated_windows >= 2
        card = a.scorecard()
        assert card["connection"] == "C-1"
        assert card["dimensions"]["delay"]["score"] == 1.0

    def test_windows_advance_lazily_on_any_event(self):
        sim, s, r, a = harness(contract())
        deliver(a, r, msg_id=0)
        sim.now = 0.55  # five whole windows elapse with no events
        deliver(a, r, msg_id=1)
        assert a.closed_windows == 5

    def test_delay_violation(self):
        sim, s, r, a = harness(contract(max_latency=0.05))
        deliver(a, r, msg_id=0, latency=0.2)
        sim.now = 0.2
        a.finalize()
        kinds = [v.kind for v in a.violations]
        assert kinds == ["delay"]
        v = a.violations[0]
        assert v.measured == pytest.approx(0.2)
        assert v.bound == pytest.approx(0.05)

    def test_jitter_violation_needs_two_deliveries(self):
        sim, s, r, a = harness(contract(max_jitter=0.001))
        deliver(a, r, msg_id=0, latency=0.01)
        a.finalize()
        assert a.violations == []  # one delivery: jitter undefined
        sim.now = 0.15
        deliver(a, r, msg_id=1, latency=0.01)
        deliver(a, r, msg_id=2, latency=0.30)
        sim.now = 0.35
        a.finalize()
        assert [v.kind for v in a.violations] == ["jitter"]

    def test_ordering_violation_only_when_contracted(self):
        for ordered, expected in ((True, ["ordering"]), (False, [])):
            sim, s, r, a = harness(contract(ordered=ordered))
            deliver(a, r, msg_id=5)
            deliver(a, r, msg_id=3)  # regression
            a.finalize()
            assert [v.kind for v in a.violations] == expected

    def test_throughput_checked_only_under_offered_load(self):
        c = contract(avg_throughput_bps=80_000.0)
        sim, s, r, a = harness(c)
        # idle windows with an idle sender: no throughput verdicts
        sim.now = 0.5
        a.on_network_sample(SimpleNamespace(rtt=0.01))
        assert a.checked.get("throughput", 0) == 0
        # sender becomes backlogged: subsequent silent windows violate
        s.state.outstanding[1] = object()
        a.on_network_sample(SimpleNamespace(rtt=0.01))
        sim.now = 1.0
        a.on_network_sample(SimpleNamespace(rtt=0.01))
        assert a.checked["throughput"] >= 1
        assert any(v.kind == "throughput" for v in a.violations)

    def test_throughput_warmup_windows_are_skipped(self):
        c = contract(avg_throughput_bps=1e9)
        sim, s, r, a = harness(c, warmup_windows=3)
        for i in range(3):
            sim.now = 0.1 * i + 0.05
            deliver(a, r, msg_id=i, nbytes=10)
        a.finalize()
        assert a.checked.get("throughput", 0) == 0
        sim.now = 0.35
        deliver(a, r, msg_id=9, nbytes=10)
        sim.now = 0.55
        deliver(a, r, msg_id=10, nbytes=10)
        assert a.checked["throughput"] >= 1

    def test_loss_holes_resolve_after_grace(self):
        c = contract(loss_tolerance=0.0)
        sim, s, r, a = harness(c, loss_grace=0.2)
        a._on_receiver_event("pdu-received", r, pdu=data_pdu(0))
        a._on_receiver_event("pdu-received", r, pdu=data_pdu(3))  # holes 1,2
        sim.now = 0.15
        a._on_receiver_event("pdu-received", r, pdu=data_pdu(1))  # hole filled
        assert a.violations == []
        sim.now = 0.6  # hole 2 outlives the grace period
        a.on_network_sample(SimpleNamespace(rtt=0.01))
        assert [v.kind for v in a.violations] == ["loss"]
        # the hole resolves in the window whose close passed the grace
        # cutoff: 1 lost vs the 1 DATA PDU that window itself received
        assert a.violations[0].measured == pytest.approx(0.5)

    def test_duplicate_and_corrupted_pdus_do_not_count_as_loss(self):
        sim, s, r, a = harness(contract(), loss_grace=0.0)
        a._on_receiver_event("pdu-received", r, pdu=data_pdu(0))
        a._on_receiver_event("pdu-received", r, pdu=data_pdu(0))  # dup
        a._on_receiver_event("pdu-received", r, pdu=data_pdu(1), corrupted=True)
        sim.now = 0.5
        a.finalize()
        assert a.violations == []
        assert a._cur is not None

    def test_violation_astuple_is_json_stable(self):
        v = QoSViolation(1.0, "C-1", "loss", 0.5, 0.1, 9, "d")
        assert v.astuple() == (1.0, "C-1", "loss", 0.5, 0.1, 9, "d")
        json.dumps(v.to_dict())

    def test_violation_list_is_capped(self):
        sim, s, r, a = harness(contract(max_latency=1e-6))
        for i in range(QoSAuditor.MAX_VIOLATIONS + 20):
            sim.now = 0.1 * i + 0.05
            deliver(a, r, msg_id=i, latency=0.5)
        sim.now += 1.0
        a.finalize()
        assert len(a.violations) == QoSAuditor.MAX_VIOLATIONS
        assert a.violations_dropped >= 20
        assert a.scorecard()["violations"] > QoSAuditor.MAX_VIOLATIONS


class TestAuditPlaneDumps:
    def test_violation_triggers_exactly_one_dump(self):
        AUDIT.enable(window=0.1, warmup_windows=0)
        sim = FakeSim()
        sender = fake_session(sim)
        sender.remote_host = "B"
        sender.host = SimpleNamespace(name="A")
        sender.local_port = 1
        a = AUDIT.attach_session(sender, contract(max_latency=0.01))
        r = fake_session(sim)
        for i in range(4):
            sim.now = 0.1 * i + 0.05
            a._on_receiver_event("deliver", r, msg_id=i, nbytes=10, latency=0.5)
        sim.now = 0.6
        a.finalize()
        assert len(a.violations) >= 2
        assert len(AUDIT.dumps) == 1  # one per trigger kind, not per breach
        dump = AUDIT.dumps[0]
        assert dump["trigger"]["kind"] == "violation"
        assert dump["connection"] == "C-1"
        assert dump["records"]
        json.dumps(dump)

    def test_dump_dir_writes_self_contained_json(self, tmp_path):
        AUDIT.enable(window=0.1, warmup_windows=0, dump_dir=str(tmp_path))
        sim = FakeSim()
        sender = fake_session(sim)
        a = AUDIT.attach_session(sender, contract(max_latency=0.01), watch_peer=False)
        r = fake_session(sim)
        a._on_receiver_event("deliver", r, msg_id=0, nbytes=10, latency=0.5)
        sim.now = 0.3
        a.finalize()
        assert AUDIT.dump_paths
        with open(AUDIT.dump_paths[0]) as fh:
            dump = json.load(fh)
        assert dump["kind"] == "flight-recorder-dump"
        assert dump["scorecard"]["connection"] == "C-1"

    def test_abnormal_teardown_dumps(self):
        AUDIT.enable(window=0.1)
        sim = FakeSim()
        sender = fake_session(sim)
        a = AUDIT.attach_session(sender, contract(), watch_peer=False)
        a._on_sender_event("abort", sender, reason="link dead")
        assert a.teardown == "link dead"
        assert [d["trigger"]["kind"] for d in AUDIT.dumps] == ["abnormal-teardown"]


class TestRealWorldAttachment:
    def test_disabled_plane_leaves_sessions_unobserved(self):
        w = TwoHosts(seed=3)
        s = w.transfer(SessionConfig(), [b"x" * 400] * 5)
        assert s.observers == []
        assert all(rx.observers == [] for rx in w.rx_sessions)
        assert len(AUDIT) == 0

    def test_receiver_session_matched_through_demux(self):
        AUDIT.enable(window=0.25)
        w = TwoHosts(seed=4)
        w.listen()
        s = w.open(SessionConfig())
        a = AUDIT.attach_session(
            s, contract(connection="T-1", max_latency=5.0, ordered=True)
        )
        for i in range(8):
            s.send(b"m%d" % i + b"z" * 300)
        w.sim.run(until=5.0)
        AUDIT.finalize()
        assert a.sender is s
        assert a.receiver is w.rx_sessions[0]
        assert len(w.delivered) == 8
        assert a.violations == []
        card = a.scorecard()
        assert card["dimensions"]["delay"]["windows"] >= 1
        assert card["dimensions"]["loss"]["windows"] >= 1
        # the ring saw real traffic from both endpoints
        kinds = {rec["kind"] for rec in a.recorder.snapshot()}
        assert "deliver" in kinds


def bad_state(**over):
    base = NetworkState(
        src="A", dst="B", reachable=True, rtt=0.003, base_rtt=0.003,
        bottleneck_bps=10e6, mtu=1500, ber=1e-9, congestion=0.9,
        loss_rate=0.0, hops=3, path=("A", "s1", "s2", "B"),
    )
    return dataclasses.replace(base, **over) if over else base


class TestMANTTSIntegration:
    def _world(self, seed=1):
        sysm = AdaptiveSystem(seed=seed)
        sysm.attach_network(
            linear_path(sysm.sim, ethernet_10(), ("A", "B"), rng=sysm.rng)
        )
        a, b = sysm.node("A"), sysm.node("B")
        got = []
        b.mantts.register_service(7000, on_deliver=lambda d, m: got.append(d))
        return sysm, a, b, got

    def _acd(self, **qover):
        q = dict(avg_throughput_bps=200e3, duration=600,
                 max_latency=0.5, max_jitter=0.2)
        q.update(qover)
        return ACD(
            participants=("B",),
            quantitative=QuantitativeQoS(**q),
            qualitative=QualitativeQoS(),
        )

    def test_contract_captured_at_instantiation(self):
        sysm, a, b, got = self._world()
        sysm.enable_audit(window=0.1)
        conn = a.mantts.open(self._acd())
        sysm.run(until=0.5)
        assert conn._established
        auditor = AUDIT.auditors[conn.ref]
        c = auditor.contract
        assert c.avg_throughput_bps == pytest.approx(200e3)
        assert c.max_latency == pytest.approx(0.5)
        assert c.ordered is True
        assert auditor.sender is conn.session
        assert auditor.receiver is not None  # responder matched via demux

    def test_conformant_transfer_scores_clean(self):
        sysm, a, b, got = self._world()
        sysm.enable_telemetry()
        sysm.enable_audit(window=0.1)
        conn = a.mantts.open(self._acd(avg_throughput_bps=50e3))
        sysm.run(until=0.5)
        for _ in range(20):
            conn.send(b"x" * 400)
            sysm.run(until=sysm.now + 0.02)
        sysm.run(until=sysm.now + 0.3)
        AUDIT.finalize()
        auditor = AUDIT.auditors[conn.ref]
        assert got and auditor.violations == []
        assert auditor.overall_score == 1.0
        snap = TELEMETRY.metrics.snapshot()
        assert any(k.startswith("qos_conformance_score") for k in snap)
        assert any(k.startswith("qos_conformance_windows_total") for k in snap)

    def test_underdelivery_violates_and_surfaces_in_manager_table(self):
        sysm, a, b, got = self._world()
        sysm.enable_audit(window=0.1)
        # demand far beyond what this send pattern delivers
        conn = a.mantts.open(self._acd(avg_throughput_bps=5e6))
        sysm.run(until=0.5)
        for _ in range(10):
            conn.send(b"x" * 200)
            sysm.run(until=sysm.now + 0.05)
        AUDIT.finalize()
        auditor = AUDIT.auditors[conn.ref]
        assert any(v.kind == "throughput" for v in auditor.violations)
        assert any(d["trigger"]["kind"] == "violation" for d in AUDIT.dumps)
        rows = a.mantts.manager.table()
        row = next(r for r in rows if r["ref"] == conn.ref)
        assert row["qos_violations"] >= 1
        assert row["qos_score"] < 1.0
        cards = a.mantts.manager.audit_scorecards()
        assert cards and cards[0]["connection"] == conn.ref

    def test_adaptation_decisions_cross_link_into_audit_trail(self):
        sysm, a, b, got = self._world(seed=7)
        sysm.enable_audit(window=0.1)
        conn = a.mantts.open(self._acd(), adaptation=True)
        sysm.run(until=0.5)
        ad = conn.adaptation
        ad.on_sample(bad_state(congestion=0.05))  # healthy baseline
        for _ in range(20):
            ad.on_sample(bad_state())
            if ad.level >= 2:
                break
        assert ad.level >= 2  # climbed retune -> segue on sustained congestion
        ad._degrade(bad_state())  # bottom rung: graceful degradation
        assert ad.decisions and ad.decisions[0].rung in (
            "normal", "retuned", "segued", "renegotiated", "degraded"
        )
        # structured trail: the trigger sample and crossed thresholds ride along
        d = next(d for d in ad.decisions if d.action == "retune")
        assert d.trigger["congestion"] == pytest.approx(0.9)
        assert ("congestion", pytest.approx(0.9), pytest.approx(0.5)) in [
            (n, m, b) for n, m, b in d.thresholds
        ] or d.thresholds  # thresholds recorded
        auditor = AUDIT.auditors[conn.ref]
        assert auditor.decisions  # cross-linked into the audit plane
        assert any(x["action"] == "retune" for x in auditor.decisions)
        # reaching "degrade" snapshots a degradation black box
        assert any(d["trigger"]["kind"] == "degradation" for d in AUDIT.dumps)

    def test_events_tuple_format_is_unchanged(self):
        sysm, a, b, got = self._world(seed=8)
        conn = a.mantts.open(self._acd(), adaptation=True)
        sysm.run(until=0.5)
        ad = conn.adaptation
        ad.on_sample(bad_state(congestion=0.05))
        for _ in range(10):
            ad.on_sample(bad_state())
        assert ad.events
        for ev in ad.events:
            assert len(ev) == 3
            t, action, detail = ev
            assert isinstance(t, float) and isinstance(action, str)
