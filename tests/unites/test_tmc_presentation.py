"""Tests for TMC-driven presentation formats (Table 2's last parameter)."""


from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD, TMC
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.profiles import ethernet_10, linear_path


def run_with_presentation(fmt: str):
    sysm = AdaptiveSystem(seed=21)
    sysm.attach_network(
        linear_path(sysm.sim, ethernet_10(), ("A", "B"), rng=sysm.rng)
    )
    a, b = sysm.node("A"), sysm.node("B")
    b.mantts.register_service(7000, on_deliver=lambda d, m: None)
    acd = ACD(
        participants=("B",),
        quantitative=QuantitativeQoS(duration=600),
        qualitative=QualitativeQoS(),
        tmc=TMC(metrics=("rtt", "acks_received"), sampling_interval=0.1,
                presentation=fmt),
    )
    conn = a.mantts.open(acd)
    sysm.run(until=0.5)
    for _ in range(5):
        conn.send(b"x" * 400)
    sysm.run(until=2.0)
    return sysm.unites.render_tmc(conn.ref)


class TestTmcPresentation:
    def test_table_format(self):
        out = run_with_presentation("table")
        assert "TMC report" in out
        assert "rtt" in out and "acks_received" in out

    def test_csv_format(self):
        out = run_with_presentation("csv")
        assert out.splitlines()[0] == "metric,samples,latest"
        assert any(line.startswith("rtt,") for line in out.splitlines())

    def test_series_format(self):
        out = run_with_presentation("series")
        assert "*" in out  # the ASCII plot
        assert "rtt" in out

    def test_unknown_connection(self, sim):
        from repro.unites.collect import UNITES

        assert "no samples" in UNITES(sim).render_tmc("ghost")
