"""Prometheus exposition edge cases: hostile label values, histogram
bucket invariants, number formatting, and the payload validator."""

import math

from repro.unites.obs.exporters import (
    _prom_num,
    format_labels,
    render_prometheus,
    validate_prometheus,
)
from repro.unites.obs.registry import MetricRegistry


class TestLabelEscaping:
    def test_hostile_label_values_are_escaped(self):
        """Regression: quotes/backslashes/newlines in a label value used to
        be emitted raw, corrupting the exposition stream."""
        r = MetricRegistry()
        hostile = 'conn "A"\\path\nB'
        r.counter("evil_total", labels={"conn": hostile}, help="hostile").inc()
        text = render_prometheus(r)
        assert '\\"A\\"' in text          # quote escaped
        assert "\\\\path" in text         # backslash escaped
        assert "\\npath" not in text      # ...before, not after, the backslash
        assert "\\nB" in text             # newline escaped
        # one HELP, one TYPE, one sample — the newline did not split the line
        sample_lines = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        assert len(sample_lines) == 1
        assert validate_prometheus(text) == []

    def test_backslash_escaped_before_quote(self):
        # escaping order matters: \" must not become \\" -> \\\"
        assert format_labels("m", {"k": '\\"'}) == 'm{k="\\\\\\""}'

    def test_no_labels_returns_bare_name(self):
        assert format_labels("m", {}) == "m"

    def test_non_string_values_coerced(self):
        assert format_labels("m", {"port": 7000}) == 'm{port="7000"}'

    def test_help_text_newlines_escaped(self):
        r = MetricRegistry()
        r.gauge("g", help="line1\nline2").set(1)
        text = render_prometheus(r)
        assert "# HELP g line1\\nline2" in text
        assert validate_prometheus(text) == []


class TestHistogramExposition:
    def _parse_buckets(self, text, name):
        buckets = []
        for line in text.splitlines():
            if line.startswith(f"{name}_bucket"):
                le = line.split('le="', 1)[1].split('"', 1)[0]
                buckets.append((le, float(line.rsplit(" ", 1)[1])))
        return buckets

    def test_cumulative_buckets_are_monotone_and_inf_matches_count(self):
        r = MetricRegistry()
        h = r.histogram("lat", bounds=(0.001, 0.01, 0.1, 1.0))
        for v in (0.0005, 0.005, 0.005, 0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        text = render_prometheus(r)
        buckets = self._parse_buckets(text, "lat")
        assert buckets[-1][0] == "+Inf"
        counts = [c for _, c in buckets]
        assert counts == sorted(counts)          # cumulative: non-decreasing
        assert counts[-1] == h.count == 7        # +Inf bucket == count
        assert f"lat_count {h.count}" in text
        assert f"lat_sum {_prom_num(h.sum)}" in text
        assert validate_prometheus(text) == []

    def test_labelled_histogram_keeps_series_distinct(self):
        r = MetricRegistry()
        r.histogram("d", labels={"conn": "a"}, bounds=(1.0,)).observe(0.5)
        r.histogram("d", labels={"conn": "b"}, bounds=(1.0,)).observe(2.0)
        text = render_prometheus(r)
        assert validate_prometheus(text) == []
        assert 'd_bucket{conn="a",le="1"} 1' in text
        assert 'd_bucket{conn="b",le="1"} 0' in text


class TestPromNum:
    def test_infinities(self):
        assert _prom_num(float("inf")) == "+Inf"
        assert _prom_num(float("-inf")) == "-Inf"

    def test_integral_floats_render_without_decimal(self):
        assert _prom_num(4.0) == "4"
        assert _prom_num(-7.0) == "-7"

    def test_large_magnitudes_stay_float_repr(self):
        big = 1e18
        assert _prom_num(big) == repr(big)

    def test_fractions_roundtrip(self):
        assert float(_prom_num(0.875)) == 0.875
        assert math.isnan(float("nan"))  # NaN accepted by the validator below
        assert validate_prometheus("# TYPE x gauge\nx NaN\n") == []


class TestValidator:
    def test_clean_payload_passes(self):
        r = MetricRegistry()
        r.counter("a_total", help="a").inc()
        r.gauge("b", labels={"x": "1"}).set(2)
        r.histogram("c", bounds=(1.0,)).observe(0.5)
        assert validate_prometheus(render_prometheus(r)) == []

    def test_duplicate_type_flagged(self):
        text = "# TYPE a counter\n# TYPE a counter\na 1\n"
        assert any("duplicate TYPE" in p for p in validate_prometheus(text))

    def test_type_after_samples_flagged(self):
        text = "a 1\n# TYPE a counter\n"
        probs = validate_prometheus(text)
        assert any("no TYPE declaration" in p for p in probs)
        assert any("after its samples" in p for p in probs)

    def test_duplicate_series_flagged(self):
        text = '# TYPE a counter\na{x="1"} 1\na{x="1"} 2\n'
        assert any("duplicate series" in p for p in validate_prometheus(text))

    def test_unparseable_value_flagged(self):
        text = "# TYPE a counter\na one\n"
        assert any("unparseable value" in p for p in validate_prometheus(text))

    def test_help_without_type_flagged(self):
        text = "# HELP a about a\n"
        assert any("HELP but no TYPE" in p for p in validate_prometheus(text))

    def test_histogram_suffixes_resolve_to_family(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 1\nh_sum 0.5\nh_count 1\n'
        )
        assert validate_prometheus(text) == []
