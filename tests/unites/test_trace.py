"""Tests for the session tracer."""

import pytest

from repro.netsim.profiles import ethernet_10
from repro.tko.config import SessionConfig
from repro.unites.trace import EVENTS, SessionTracer, TraceEvent
from tests.conftest import TwoHosts


class TestSessionTracer:
    def test_records_send_receive_deliver(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer().attach(s)
        for _ in range(3):
            s.send(b"x" * 400)
        w.sim.run(until=2.0)
        assert tracer.counts["pdu-sent"] >= 3
        assert tracer.counts["pdu-received"] >= 3   # ACKs arrive back
        assert tracer.counts["connected"] == 1

    def test_receiver_side_deliver_events(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        s.send(b"hello")
        w.sim.run(until=1.0)
        rx_tracer = SessionTracer().attach(w.rx_sessions[0])
        s.send(b"again")
        w.sim.run(until=2.0)
        delivers = rx_tracer.of_kind("deliver")
        assert len(delivers) == 1
        assert delivers[0].details["nbytes"] == 5

    def test_retransmit_events_under_loss(self):
        w = TwoHosts(profile=ethernet_10().scaled(ber=4e-6), seed=7)
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer().attach(s)
        for _ in range(30):
            s.send(b"d" * 1000)
        w.sim.run(until=20.0)
        assert tracer.of_kind("retransmit")
        r = tracer.of_kind("retransmit")[0]
        assert "seq" in r.details and r.details["retries"] >= 1

    def test_segue_events(self):
        from repro.mechanisms.acknowledgment import SelectiveAck
        from repro.mechanisms.retransmission import SelectiveRepeat

        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer().attach(s)
        w.sim.run(until=0.5)
        s.segue("recovery", SelectiveRepeat())
        s.segue("ack", SelectiveAck())
        segues = tracer.of_kind("segue")
        assert [(e.details["slot"], e.details["mechanism"]) for e in segues] == [
            ("recovery", "sr"),
            ("ack", "selective"),
        ]

    def test_event_filter(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer(events=["deliver"]).attach(s)
        s.send(b"x")
        w.sim.run(until=1.0)
        assert "pdu-sent" not in tracer.counts

    def test_unknown_filter_rejected(self):
        with pytest.raises(ValueError):
            SessionTracer(events=["teleportation"])

    def test_ring_bounded(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer(max_events=5).attach(s)
        for _ in range(10):
            s.send(b"x" * 100)
        w.sim.run(until=2.0)
        assert len(tracer) == 5
        assert tracer.dropped > 0

    def test_detach_stops_recording(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer().attach(s)
        s.send(b"x")
        w.sim.run(until=1.0)
        n = len(tracer)
        tracer.detach(s)
        s.send(b"y")
        w.sim.run(until=2.0)
        assert len(tracer) == n

    def test_render_timeline(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer().attach(s)
        s.send(b"x")
        w.sim.run(until=1.0)
        out = tracer.render(last=3)
        assert "== trace:" in out
        assert "A:" in out

    def test_between_window(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer().attach(s)
        s.send(b"x")
        w.sim.run(until=1.0)
        assert tracer.between(0.0, 1.0)
        assert tracer.between(5.0, 6.0) == []

    def test_abort_event(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig(max_retries=2))
        tracer = SessionTracer().attach(s)
        s.send(b"x" * 500)
        w.sim.run(until=0.001)
        w.net.fail_link("A", "s1")
        w.sim.run(until=60.0)
        aborts = tracer.of_kind("abort")
        assert aborts and "reason" in aborts[0].details
