"""Tests for the session tracer."""

import pytest

from repro.netsim.profiles import ethernet_10
from repro.tko.config import SessionConfig
from repro.unites.trace import EVENTS, SessionTracer
from tests.conftest import TwoHosts


class TestSessionTracer:
    def test_records_send_receive_deliver(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer().attach(s)
        for _ in range(3):
            s.send(b"x" * 400)
        w.sim.run(until=2.0)
        assert tracer.counts["pdu-sent"] >= 3
        assert tracer.counts["pdu-received"] >= 3   # ACKs arrive back
        assert tracer.counts["connected"] == 1

    def test_receiver_side_deliver_events(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        s.send(b"hello")
        w.sim.run(until=1.0)
        rx_tracer = SessionTracer().attach(w.rx_sessions[0])
        s.send(b"again")
        w.sim.run(until=2.0)
        delivers = rx_tracer.of_kind("deliver")
        assert len(delivers) == 1
        assert delivers[0].details["nbytes"] == 5

    def test_retransmit_events_under_loss(self):
        w = TwoHosts(profile=ethernet_10().scaled(ber=4e-6), seed=7)
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer().attach(s)
        for _ in range(30):
            s.send(b"d" * 1000)
        w.sim.run(until=20.0)
        assert tracer.of_kind("retransmit")
        r = tracer.of_kind("retransmit")[0]
        assert "seq" in r.details and r.details["retries"] >= 1

    def test_segue_events(self):
        from repro.mechanisms.acknowledgment import SelectiveAck
        from repro.mechanisms.retransmission import SelectiveRepeat

        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer().attach(s)
        w.sim.run(until=0.5)
        s.segue("recovery", SelectiveRepeat())
        s.segue("ack", SelectiveAck())
        segues = tracer.of_kind("segue")
        assert [(e.details["slot"], e.details["mechanism"]) for e in segues] == [
            ("recovery", "sr"),
            ("ack", "selective"),
        ]

    def test_event_filter(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer(events=["deliver"]).attach(s)
        s.send(b"x")
        w.sim.run(until=1.0)
        assert "pdu-sent" not in tracer.counts

    def test_unknown_filter_rejected(self):
        with pytest.raises(ValueError):
            SessionTracer(events=["teleportation"])

    def test_ring_bounded(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer(max_events=5).attach(s)
        for _ in range(10):
            s.send(b"x" * 100)
        w.sim.run(until=2.0)
        assert len(tracer) == 5
        assert tracer.dropped > 0

    def test_detach_stops_recording(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer().attach(s)
        s.send(b"x")
        w.sim.run(until=1.0)
        n = len(tracer)
        tracer.detach(s)
        s.send(b"y")
        w.sim.run(until=2.0)
        assert len(tracer) == n

    def test_render_timeline(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer().attach(s)
        s.send(b"x")
        w.sim.run(until=1.0)
        out = tracer.render(last=3)
        assert "== trace:" in out
        assert "A:" in out

    def test_between_window(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig())
        tracer = SessionTracer().attach(s)
        s.send(b"x")
        w.sim.run(until=1.0)
        assert tracer.between(0.0, 1.0)
        assert tracer.between(5.0, 6.0) == []

    def test_abort_event(self):
        w = TwoHosts()
        w.listen()
        s = w.open(SessionConfig(max_retries=2))
        tracer = SessionTracer().attach(s)
        s.send(b"x" * 500)
        w.sim.run(until=0.001)
        w.net.fail_link("A", "s1")
        w.sim.run(until=60.0)
        aborts = tracer.of_kind("abort")
        assert aborts and "reason" in aborts[0].details


class _StubHost:
    name = "A"


class _StubSession:
    """The minimal surface ``SessionTracer._observe`` reads."""

    def __init__(self):
        self.now = 0.0
        self.conn_id = 1
        self.host = _StubHost()
        self.observers = []


class TestTracerRingExact:
    """Deterministic ring-bounding and filtering, no network required."""

    def test_ring_keeps_exactly_last_n(self):
        stub = _StubSession()
        tracer = SessionTracer(max_events=4)
        for i in range(10):
            stub.now = float(i)
            tracer._observe("deliver", stub, nbytes=i)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        # the retained window is the most recent four, in arrival order
        assert [e.details["nbytes"] for e in tracer.events] == [6, 7, 8, 9]
        assert tracer.counts["deliver"] == 10  # counts survive eviction

    def test_single_slot_ring(self):
        stub = _StubSession()
        tracer = SessionTracer(max_events=1)
        tracer._observe("pdu-sent", stub, seq=1)
        tracer._observe("pdu-sent", stub, seq=2)
        assert len(tracer) == 1
        assert tracer.events[0].details["seq"] == 2
        assert tracer.dropped == 1
        with pytest.raises(ValueError):
            SessionTracer(max_events=0)

    def test_filter_drops_before_counting(self):
        stub = _StubSession()
        tracer = SessionTracer(max_events=8, events=["deliver", "abort"])
        for event in ("pdu-sent", "deliver", "pdu-received", "abort", "deliver"):
            tracer._observe(event, stub)
        assert len(tracer) == 3
        assert tracer.counts == {"deliver": 2, "abort": 1}
        assert tracer.dropped == 0  # filtered events are not "drops"
        assert {e.event for e in tracer.events} == {"deliver", "abort"}

    def test_filter_accepts_every_known_event(self):
        stub = _StubSession()
        tracer = SessionTracer(events=list(EVENTS))
        for event in EVENTS:
            tracer._observe(event, stub)
        assert sorted(tracer.counts) == sorted(EVENTS)

    def test_render_reports_drop_count(self):
        stub = _StubSession()
        tracer = SessionTracer(max_events=2)
        for i in range(5):
            tracer._observe("deliver", stub, nbytes=i)
        out = tracer.render()
        assert "2 events (3 dropped)" in out

    def test_shared_tracer_tags_sessions(self):
        a, b = _StubSession(), _StubSession()
        b.host = type("H", (), {"name": "B"})()
        b.conn_id = 9
        tracer = SessionTracer()
        tracer._observe("connected", a)
        tracer._observe("connected", b)
        assert [e.session for e in tracer.events] == ["A:1", "B:9"]
