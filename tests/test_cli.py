"""Tests for the ``python -m repro`` command-line entry point."""


from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "quickstart" in out
        assert "test_table1_tsc.py" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "voice-conversation" in out
        assert "interactive-isochronous" in out

    def test_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "ethernet-10" in out and "satellite" in out

    def test_unknown_example(self, capsys):
        assert main(["example", "no-such-example"]) == 2

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "ADAPTIVE" in capsys.readouterr().out
