"""The sweep subsystem's contracts.

The load-bearing guarantee is determinism: a spec fully describes its
grid (ordering, parameters, per-cell seeds), and a parallel run is
bit-identical to a serial run — worker count and completion order cannot
leak into results or repository rows.
"""

import os

import pytest

from repro.core.scenario import run_point_to_point
from repro.sweep import ScenarioSpec, SweepRunner, derive_cell_seed, run_sweep
from repro.sweep.spec import SweepCell
from repro.tko.config import SessionConfig
from repro.unites.repository import MetricRepository


# ---------------------------------------------------------------------------
# module-level cells (workers unpickle them by reference)
# ---------------------------------------------------------------------------
def arithmetic_cell(x, y, seed=0):
    return {"sum": x + y, "product": x * y, "seed_seen": seed}


def scenario_cell(bg_bps, seed=0):
    m = run_point_to_point(
        config=SessionConfig(), workload="bulk", duration=3.0,
        seed=seed, bg_bps=bg_bps,
    )
    return {k: m[k] for k in ("msgs_delivered", "goodput_bps", "pdus_sent",
                              "retransmissions", "wire_bytes")}


def failing_cell(x):
    raise RuntimeError(f"cell blew up on {x}")


# ---------------------------------------------------------------------------
# ScenarioSpec
# ---------------------------------------------------------------------------
class TestScenarioSpec:
    def test_grid_is_row_major_product_in_declaration_order(self):
        spec = ScenarioSpec("g", arithmetic_cell,
                            grid={"x": [1, 2], "y": [10, 20, 30]})
        assert len(spec) == 6
        combos = [(c.params["x"], c.params["y"]) for c in spec.cells()]
        assert combos == [(1, 10), (1, 20), (1, 30), (2, 10), (2, 20), (2, 30)]
        assert [c.index for c in spec.cells()] == list(range(6))

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec("g", arithmetic_cell, grid={})
        with pytest.raises(ValueError):
            ScenarioSpec("g", arithmetic_cell, grid={"x": []})

    def test_seed_depends_on_values_not_grid_shape(self):
        # the same (x, y) point gets the same seed in a 2×2 and a 3×3 grid
        small = ScenarioSpec("g", arithmetic_cell,
                             grid={"x": [1, 2], "y": [1, 2]}, base_seed=5)
        big = ScenarioSpec("g", arithmetic_cell,
                           grid={"x": [1, 2, 3], "y": [1, 2, 3]}, base_seed=5)
        seeds_small = {tuple(c.params.items()): c.seed for c in small.cells()}
        seeds_big = {tuple(c.params.items()): c.seed for c in big.cells()}
        for point, seed in seeds_small.items():
            assert seeds_big[point] == seed

    def test_seed_varies_with_base_seed_name_and_params(self):
        p = {"x": 1}
        assert derive_cell_seed(0, "a", p) != derive_cell_seed(1, "a", p)
        assert derive_cell_seed(0, "a", p) != derive_cell_seed(0, "b", p)
        assert derive_cell_seed(0, "a", p) != derive_cell_seed(0, "a", {"x": 2})
        # and is order-insensitive over parameter dicts
        assert (derive_cell_seed(3, "a", {"x": 1, "y": 2})
                == derive_cell_seed(3, "a", {"y": 2, "x": 1}))

    def test_cell_label(self):
        cell = SweepCell(index=0, params={"w": 16, "loss": 0.01}, seed=1)
        assert cell.label == "w=16,loss=0.01"


# ---------------------------------------------------------------------------
# SweepRunner — serial semantics
# ---------------------------------------------------------------------------
class TestSerialRunner:
    def test_results_in_grid_order_with_derived_seeds(self):
        spec = ScenarioSpec("g", arithmetic_cell,
                            grid={"x": [3, 4], "y": [5]}, base_seed=9)
        result = SweepRunner(spec, workers=1).run()
        assert len(result) == 2
        assert result.cells[0].metrics["sum"] == 8
        assert result.cells[1].metrics["sum"] == 9
        for c in result:
            assert c.metrics["seed_seen"] == c.cell.seed

    def test_seed_param_none_leaves_seeding_to_the_cell(self):
        spec = ScenarioSpec("g", arithmetic_cell,
                            grid={"x": [1], "y": [2]}, seed_param=None)
        result = run_sweep(spec)
        # the cell's own default (0) survives — no injection happened
        assert result.cells[0].metrics["seed_seen"] == 0

    def test_fixed_kwargs_reach_every_cell(self):
        spec = ScenarioSpec("g", arithmetic_cell,
                            grid={"x": [1, 2]}, fixed={"y": 100},
                            seed_param=None)
        assert run_sweep(spec).values("sum") == [101, 102]

    def test_result_helpers(self):
        spec = ScenarioSpec("g", arithmetic_cell,
                            grid={"x": [1, 2], "y": [10]}, seed_param=None)
        r = run_sweep(spec)
        assert r.values("product") == [10, 20]
        assert r.find(x=2).metrics["product"] == 20
        assert r.find(x=99) is None
        assert r.rows()[0] == {"x": 1, "y": 10, "sum": 11, "product": 10,
                               "seed_seen": 0}

    def test_repository_streaming(self):
        spec = ScenarioSpec("camp", arithmetic_cell,
                            grid={"x": [1, 2], "y": [10]}, seed_param=None)
        repo = MetricRepository()
        run_sweep(spec, repository=repo)
        assert repo.entities("sweep") == ["camp[x=1,y=10]", "camp[x=2,y=10]"]
        # sample time is the grid index; non-numeric metrics are skipped
        assert repo.series("sum", scope="sweep", entity="camp[x=2,y=10]") \
            == [(1.0, 12.0)]

    def test_cell_exception_propagates(self):
        spec = ScenarioSpec("g", failing_cell, grid={"x": [1]},
                            seed_param=None)
        with pytest.raises(RuntimeError, match="blew up"):
            run_sweep(spec)


# ---------------------------------------------------------------------------
# SweepRunner — parallel ≡ serial
# ---------------------------------------------------------------------------
SCENARIO_SPEC = ScenarioSpec(
    name="parallel-identity",
    cell=scenario_cell,
    grid={"bg_bps": [0.0, 2e6, 5e6]},
    base_seed=23,
)


class TestParallelIdentity:
    def test_parallel_bit_identical_to_serial(self):
        serial = SweepRunner(SCENARIO_SPEC, workers=1).run()
        parallel = SweepRunner(SCENARIO_SPEC, workers=3).run()
        assert parallel.metrics_only() == serial.metrics_only()
        assert [c.cell for c in parallel] == [c.cell for c in serial]

    def test_parallel_repository_rows_identical_to_serial(self):
        r1, r2 = MetricRepository(), MetricRepository()
        SweepRunner(SCENARIO_SPEC, workers=1, repository=r1).run()
        SweepRunner(SCENARIO_SPEC, workers=3, repository=r2).run()
        assert r1._samples == r2._samples

    def test_worker_count_capped_by_cells(self):
        spec = ScenarioSpec("g", arithmetic_cell, grid={"x": [1, 2]},
                            fixed={"y": 0}, seed_param=None)
        result = SweepRunner(spec, workers=16).run()
        assert result.workers == 2
        assert result.values("sum") == [1, 2]

    def test_parallel_cell_exception_propagates(self):
        spec = ScenarioSpec("g", failing_cell, grid={"x": [1, 2]},
                            seed_param=None)
        with pytest.raises(RuntimeError, match="blew up"):
            SweepRunner(spec, workers=2).run()


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup assertion needs >= 4 cores")
def test_parallel_speedup_on_multicore():
    """The migrated grids must actually buy wall-clock on real hardware."""
    spec = ScenarioSpec(
        name="speedup",
        cell=scenario_cell,
        grid={"bg_bps": [0.0, 1e6, 2e6, 3e6, 4e6, 5e6, 6e6, 7e6]},
        base_seed=41,
    )
    serial = SweepRunner(spec, workers=1).run()
    parallel = SweepRunner(spec, workers=4).run()
    assert parallel.metrics_only() == serial.metrics_only()
    assert parallel.wall_s < serial.wall_s / 2.0, (
        f"expected >=2x speedup, got {serial.wall_s / parallel.wall_s:.2f}x"
    )
