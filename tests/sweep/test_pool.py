"""The shared worker-pool substrate: crash surfacing, ordering, liveness.

The contract both consumers (SweepRunner and the shard coordinator) rely
on: a worker that raises, exits, or is killed produces a
:class:`WorkerCrashError` naming the failing cell or shard — never a
hung barrier, never a bare pool traceback.
"""

import os
import signal
import sys
import time

import pytest

from repro.sweep.pool import (
    OrderedStreamer,
    WorkerCrashError,
    WorkerTeam,
    map_unordered,
)


# ---------------------------------------------------------------------------
# module-level targets (workers unpickle them by reference)
# ---------------------------------------------------------------------------
def square(x):
    return x * x


def explode_on_three(x):
    if x == 3:
        raise RuntimeError("payload three is poison")
    return x


def echo_worker(conn, worker_id):
    while True:
        msg = conn.recv()
        if msg == "stop":
            return
        conn.send((worker_id, msg))


def crashing_worker(conn, worker_id):
    msg = conn.recv()
    raise RuntimeError(f"worker {worker_id} refused {msg!r}")


def exiting_worker(conn, worker_id):
    conn.recv()
    os._exit(3)  # simulates a hard kill: no traceback, no farewell


def wedged_worker(conn, worker_id):
    conn.recv()
    time.sleep(60)  # never replies within any sane test timeout


def suicidal_worker(conn, worker_id):
    conn.recv()
    os.kill(os.getpid(), signal.SIGKILL)


class TestMapUnordered:
    def test_results_cover_all_items(self):
        out = dict(map_unordered(square, [1, 2, 3, 4], workers=2))
        assert out == {0: 1, 1: 4, 2: 9, 3: 16}

    def test_custom_ids_are_carried_through(self):
        out = dict(map_unordered(square, [2, 3], workers=2, ids=["a", "b"]))
        assert out == {"a": 4, "b": 9}

    def test_worker_exception_names_the_failing_cell(self):
        with pytest.raises(WorkerCrashError) as err:
            list(map_unordered(explode_on_three, [1, 2, 3], workers=2,
                               ids=["cell 0", "cell 1", "cell 2"]))
        assert err.value.task_id == "cell 2"
        assert "payload three is poison" in err.value.detail

    def test_mismatched_ids_rejected(self):
        with pytest.raises(ValueError):
            list(map_unordered(square, [1, 2], workers=1, ids=[0]))


class TestOrderedStreamer:
    def test_contiguous_prefix_reported_incrementally(self):
        s = OrderedStreamer([None] * 4)
        assert s.put(2, "c") == (0, 0)      # gap at 0: nothing streams
        assert s.put(0, "a") == (0, 1)      # 0 arrives: [0,1) flushes
        assert s.put(3, "d") == (1, 1)      # gap at 1 remains
        assert s.put(1, "b") == (1, 4)      # backlog flushes to the end
        assert s.slots == ["a", "b", "c", "d"]


class TestWorkerTeam:
    def test_round_trip_and_barrier_order(self):
        with WorkerTeam(echo_worker, 3, name="echo", timeout=30.0) as team:
            team.broadcast(["x", "y", "z"])
            assert team.gather() == [(0, "x"), (1, "y"), (2, "z")]
            team.close(farewell="stop")

    def test_raising_worker_surfaces_named_crash(self):
        with WorkerTeam(crashing_worker, 2, name="shard", timeout=30.0) as team:
            team.send(1, "work")
            with pytest.raises(WorkerCrashError) as err:
                team.recv(1)
        assert err.value.task_id == "shard 1"
        assert "refused 'work'" in err.value.detail

    def test_exiting_worker_surfaces_instead_of_hanging(self):
        with WorkerTeam(exiting_worker, 2, name="shard", timeout=30.0) as team:
            team.send(0, "go")
            with pytest.raises(WorkerCrashError, match="shard 0"):
                team.recv(0)

    @pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
    def test_sigkilled_worker_surfaces_instead_of_hanging(self):
        with WorkerTeam(suicidal_worker, 2, name="shard", timeout=30.0) as team:
            team.send(1, "go")
            with pytest.raises(WorkerCrashError, match="shard 1"):
                team.recv(1)

    def test_wedged_worker_times_out_with_barrier_hint(self):
        with WorkerTeam(wedged_worker, 1, name="shard", timeout=30.0) as team:
            team.send(0, "go")
            with pytest.raises(WorkerCrashError, match="wedged"):
                team.recv(0, timeout=1.0)

    def test_send_to_dead_worker_raises(self):
        team = WorkerTeam(echo_worker, 1, name="shard", timeout=30.0)
        team.close(farewell="stop")
        with pytest.raises(WorkerCrashError, match="shard 0"):
            team.send(0, "too late")

    def test_empty_team_rejected(self):
        with pytest.raises(ValueError):
            WorkerTeam(echo_worker, 0)
