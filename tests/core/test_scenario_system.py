"""Tests for the core façade: system assembly and canned scenarios."""

import pytest

from repro.core.scenario import PointToPointScenario, run_point_to_point
from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.tsc import APP_PROFILES
from repro.netsim.profiles import ethernet_10, linear_path, wan_internet
from repro.tko.config import SessionConfig


class TestAdaptiveSystem:
    def test_node_requires_network(self):
        sysm = AdaptiveSystem()
        with pytest.raises(RuntimeError):
            sysm.node("A")

    def test_double_network_rejected(self):
        sysm = AdaptiveSystem()
        sysm.attach_network(linear_path(sysm.sim, ethernet_10(), ("A", "B")))
        with pytest.raises(RuntimeError):
            sysm.attach_network(linear_path(sysm.sim, ethernet_10(), ("C", "D")))

    def test_duplicate_node_rejected(self):
        sysm = AdaptiveSystem()
        sysm.attach_network(linear_path(sysm.sim, ethernet_10(), ("A", "B")))
        sysm.node("A")
        with pytest.raises(ValueError):
            sysm.node("A")

    def test_nodes_share_template_cache(self):
        sysm = AdaptiveSystem()
        sysm.attach_network(linear_path(sysm.sim, ethernet_10(), ("A", "B")))
        a, b = sysm.node("A"), sysm.node("B")
        assert a.protocol.synthesizer.templates is b.protocol.synthesizer.templates


class TestScenario:
    def test_exactly_one_driver_required(self):
        with pytest.raises(ValueError):
            PointToPointScenario()
        with pytest.raises(ValueError):
            PointToPointScenario(
                config=SessionConfig(), acd=ACD(participants=("B",))
            )

    def test_config_mode_metrics(self):
        m = run_point_to_point(
            config=SessionConfig(),
            workload="bulk",
            workload_kw={"total_bytes": 100_000, "chunk_bytes": 4096},
            duration=5.0,
        )
        assert m["msgs_delivered"] == m["msgs_sent"]
        assert m["goodput_bps"] > 1e5
        assert m["cpu_a"] > 0

    def test_acd_mode_metrics(self):
        p = APP_PROFILES["file-transfer"]
        acd = ACD(participants=("B",), quantitative=p.quantitative(),
                  qualitative=p.qualitative(), service_port=7000)
        m = run_point_to_point(
            acd=acd, workload="bulk",
            workload_kw={"total_bytes": 50_000, "chunk_bytes": 4096},
            duration=5.0,
        )
        assert m["msgs_delivered"] == m["msgs_sent"]

    def test_rpc_mode(self):
        m = run_point_to_point(
            config=SessionConfig(connection="implicit"),
            workload="rpc",
            duration=3.0,
        )
        assert m["rpc_completed"] > 5
        assert m["rpc_mean_response"] > 0

    def test_congestion_produces_drops(self):
        m = run_point_to_point(
            config=SessionConfig(),
            workload="bulk",
            workload_kw={"total_bytes": 300_000, "chunk_bytes": 4096},
            profile=wan_internet(),
            bg_bps=1.4e6,
            duration=15.0,
        )
        assert m["link_drops"] > 0

    def test_seed_reproducibility(self):
        kw = dict(
            config=SessionConfig(),
            workload="voice",
            profile=ethernet_10().scaled(ber=2e-6),
            duration=5.0,
            seed=42,
        )
        assert run_point_to_point(**kw) == run_point_to_point(**kw)


class TestTeardownNode:
    def build(self):
        sysm = AdaptiveSystem(seed=9)
        sysm.attach_network(
            linear_path(sysm.sim, ethernet_10(), ("A", "B"), rng=sysm.rng)
        )
        a = sysm.node("A")
        b = sysm.node("B", admission_bps=1e9)
        b.mantts.register_service(7000, on_deliver=lambda d, m: None)
        return sysm, a, b

    def video_acd(self):
        p = APP_PROFILES["full-motion-video-compressed"]
        return ACD(participants=("B",), quantitative=p.quantitative(),
                   qualitative=p.qualitative())

    def test_unknown_node_raises(self):
        sysm, a, b = self.build()
        with pytest.raises(KeyError):
            sysm.teardown_node("C")

    def test_teardown_twice_raises(self):
        sysm, a, b = self.build()
        sysm.teardown_node("A")
        with pytest.raises(KeyError):
            sysm.teardown_node("A")

    def test_teardown_with_live_connections(self):
        sysm, a, b = self.build()
        conn = a.mantts.open(self.video_acd())
        sysm.run(until=1.0)
        assert conn.session is not None
        assert len(b.mantts.resources) == 1
        sysm.teardown_node("A")
        sysm.run(until=8.0)
        # initiator state is gone and its name can be reused
        assert "A" not in sysm.nodes
        assert conn.session.closed
        assert len(a.mantts.manager) == 0
        # the responder's reservation was released by the close handshake
        assert len(b.mantts.resources) == 0
        a2 = sysm.node("A")
        assert a2.host.name == "A"

    def test_responder_teardown_releases_unclaimed_reservations(self):
        sysm, a, b = self.build()
        conn = a.mantts.open(self.video_acd())
        sysm.run(until=1.0)
        sysm.teardown_node("B")
        assert len(b.mantts.resources) == 0
        assert not b.mantts._unclaimed
        assert not b.mantts.protocol._listeners
