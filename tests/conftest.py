"""Shared fixtures: assembled two-host worlds and tiny builders."""

from __future__ import annotations

import pytest

from repro.host.nic import Host
from repro.netsim.profiles import ethernet_10, linear_path
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.tko.config import SessionConfig
from repro.tko.protocol import TKOProtocol


class TwoHosts:
    """A↔B over Ethernet with TKO protocols and delivery capture."""

    def __init__(self, profile=None, n_switches: int = 2, seed: int = 0, mips: float = 25.0):
        self.sim = Simulator()
        self.rng = RngStreams(seed)
        self.net = linear_path(
            self.sim, profile or ethernet_10(), ("A", "B"), n_switches=n_switches, rng=self.rng
        )
        self.ha = Host(self.sim, self.net, "A", mips=mips)
        self.hb = Host(self.sim, self.net, "B", mips=mips)
        self.pa = TKOProtocol(self.ha)
        self.pb = TKOProtocol(self.hb)
        self.delivered: list = []
        self.rx_sessions: list = []

    def listen(self, cfg: SessionConfig | None = None, port: int = 7000):
        def factory(pdu, frame):
            if cfg is not None:
                return cfg
            carried = pdu.options.get("cfg")
            if isinstance(carried, dict):
                c = SessionConfig.from_dict(carried)
                if c.delivery == "multicast":
                    c = c.with_(delivery="unicast", connection="implicit")
                return c
            return SessionConfig(connection="implicit")

        def on_session(s):
            s.on_deliver = lambda data, meta: self.delivered.append((data, meta))
            self.rx_sessions.append(s)

        self.pb.listen(port, factory, on_session)

    def open(self, cfg: SessionConfig, port: int = 7000, **callbacks):
        s = self.pa.create_session(cfg, "B", port, **callbacks)
        s.connect()
        return s

    def transfer(self, cfg: SessionConfig, messages, until: float = 10.0):
        """Round-trip helper: listen, open, send all, run; returns sender."""
        self.listen()
        s = self.open(cfg)
        for m in messages:
            s.send(m)
        self.sim.run(until=until)
        return s


@pytest.fixture
def world():
    return TwoHosts()


@pytest.fixture
def sim():
    return Simulator()
