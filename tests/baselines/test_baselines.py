"""Tests for the monolithic baseline protocols."""

import pytest

from repro.baselines import tcp_like_config, tp4_like_config, udp_like_config
from repro.baselines.tcp_like import TcpCongestionControl
from repro.netsim.profiles import ethernet_10, wan_internet
from repro.netsim.traffic import BackgroundLoad
from tests.conftest import TwoHosts


class TestConfigs:
    def test_tcp_shape(self):
        cfg = tcp_like_config()
        assert cfg.connection == "explicit-3way"
        assert cfg.transmission == "tcp-aimd"
        assert cfg.checksum_placement == "header"
        assert not cfg.compact_headers
        assert cfg.binding == "static"

    def test_udp_shape(self):
        cfg = udp_like_config()
        assert cfg.recovery == "none" and cfg.ack == "none"
        assert cfg.transmission == "none"

    def test_tp4_heavier_than_tcp(self):
        tp4 = tp4_like_config()
        assert tp4.detection == "crc32"
        assert tp4.rto_initial >= 1.0
        assert tp4.window <= 8


class TestTcpBehaviour:
    def test_reliable_delivery(self):
        w = TwoHosts(profile=ethernet_10().scaled(ber=3e-6))
        s = w.transfer(tcp_like_config(binding="dynamic"), [b"d" * 1000] * 30, until=20.0)
        assert len(w.delivered) == 30

    def test_slow_start_grows_cwnd(self):
        w = TwoHosts()
        w.listen()
        s = w.open(tcp_like_config(binding="dynamic"))
        cc = s.context.transmission
        assert isinstance(cc, TcpCongestionControl)
        start = cc.cwnd
        for _ in range(30):
            s.send(b"d" * 1000)
        w.sim.run(until=5.0)
        assert cc.cwnd > start

    def test_loss_halves_into_recovery(self):
        w = TwoHosts(profile=wan_internet().scaled(queue_limit=8))
        w.listen()
        s = w.open(tcp_like_config(binding="dynamic"))
        bg = BackgroundLoad(w.net, "s1", "s2", rate_bps=1.2e6)
        bg.start()
        for _ in range(60):
            s.send(b"d" * 1000)
        w.sim.run(until=30.0)
        cc = s.context.transmission
        assert s.stats.retransmissions > 0
        assert cc.ssthresh < 64.0  # multiplicative decrease happened

    def test_static_tcp_template_cannot_segue(self):
        w = TwoHosts()
        w.listen()
        s = w.open(tcp_like_config())  # binding=static
        from repro.mechanisms.retransmission import SelectiveRepeat

        with pytest.raises(RuntimeError):
            s.segue("recovery", SelectiveRepeat())


class TestUdpBehaviour:
    def test_no_acks_no_retransmissions(self):
        w = TwoHosts()
        s = w.transfer(udp_like_config(), [b"d" * 500] * 20, until=3.0)
        assert s.stats.retransmissions == 0
        assert s.stats.acks_received == 0
        assert len(w.delivered) == 20

    def test_loses_under_loss_without_repair(self):
        w = TwoHosts(profile=ethernet_10().scaled(ber=3e-5))
        w.transfer(udp_like_config(), [b"d" * 1000] * 50, until=5.0)
        assert len(w.delivered) < 50
