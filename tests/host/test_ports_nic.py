"""Unit tests for port demultiplexing and the host NIC."""

import pytest

from repro.host.nic import Host
from repro.host.ports import PortExhaustedError, PortTable
from repro.netsim.frame import Frame
from repro.netsim.profiles import ethernet_10, linear_path


class TestPortTable:
    def test_connected_beats_listener(self):
        t = PortTable()
        t.listen(80, "listener")
        t.connect(80, "peer", 1234, "conn")
        assert t.demux(80, "peer", 1234) == "conn"
        assert t.demux(80, "other", 999) == "listener"

    def test_unknown_port_none(self):
        assert PortTable().demux(81, "x", 1) is None

    def test_duplicate_listener_rejected(self):
        t = PortTable()
        t.listen(80, "a")
        with pytest.raises(ValueError):
            t.listen(80, "b")

    def test_duplicate_connection_rejected(self):
        t = PortTable()
        t.connect(80, "p", 1, "a")
        with pytest.raises(ValueError):
            t.connect(80, "p", 1, "b")

    def test_release_listener(self):
        t = PortTable()
        t.listen(80, "a")
        t.release(80)
        assert t.demux(80, "x", 1) is None

    def test_release_connection_keeps_listener(self):
        t = PortTable()
        t.listen(80, "l")
        t.connect(80, "p", 1, "c")
        t.release(80, "p", 1)
        assert t.demux(80, "p", 1) == "l"

    def test_ephemeral_ports_unique_and_high(self):
        t = PortTable()
        ports = {t.ephemeral_port() for _ in range(10)}
        assert len(ports) == 10
        assert min(ports) >= PortTable.EPHEMERAL_BASE

    def test_len(self):
        t = PortTable()
        t.listen(1, "a")
        t.connect(2, "h", 3, "b")
        assert len(t) == 2


class TestEphemeralExhaustion:
    def make(self):
        return PortTable(ephemeral_base=100, ephemeral_limit=104)

    def test_exhaustion_raises_clean_error(self):
        t = self.make()
        for _ in range(4):
            t.connect(t.ephemeral_port(), "peer", 9, object())
        with pytest.raises(PortExhaustedError):
            t.ephemeral_port()

    def test_wraparound_reuses_released_port(self):
        t = self.make()
        for _ in range(4):
            t.connect(t.ephemeral_port(), "peer", 9, object())
        t.release(101, "peer", 9)
        assert t.ephemeral_port() == 101  # wrapped past 103, skipped bound

    def test_skips_listener_bound_port(self):
        t = self.make()
        t.listen(100, "listener")
        assert t.ephemeral_port() == 101

    def test_port_freed_only_after_last_binding(self):
        t = self.make()
        port = t.ephemeral_port()
        t.connect(port, "p1", 9, object())
        t.connect(port, "p2", 9, object())
        t.release(port, "p1", 9)
        assert t.port_in_use(port)  # p2's binding still holds it
        t.release(port, "p2", 9)
        assert not t.port_in_use(port)

    def test_session_teardown_returns_port_to_pool(self):
        """End-to-end: closing a session frees its ephemeral port."""
        sim, rng = _world()
        net = linear_path(sim, ethernet_10(), ("A", "B"), rng=rng)
        host_a = Host(sim, net, "A")
        Host(sim, net, "B")
        from repro.tko.config import SessionConfig
        from repro.tko.protocol import TKOProtocol

        pa = TKOProtocol(host_a)
        session = pa.create_session(SessionConfig(connection="implicit"), "B", 7)
        port = session.local_port
        assert host_a.ports.port_in_use(port)
        session.connect()
        session.close()
        sim.run(until=1.0)
        assert not host_a.ports.port_in_use(port)


def _world():
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngStreams

    return Simulator(), RngStreams(5)


class TestHost:
    def _world(self, sim):
        net = linear_path(sim, ethernet_10(), ("A", "B"))
        return Host(sim, net, "A"), Host(sim, net, "B"), net

    def test_transmit_reaches_peer(self, sim):
        ha, hb, net = self._world(sim)
        got = []
        hb.register_protocol_entry(got.append)
        ha.transmit(Frame("A", "B", 500))
        sim.run()
        assert len(got) == 1
        assert ha.frames_sent == 1 and hb.frames_received == 1

    def test_rx_without_protocol_discards(self, sim):
        ha, hb, net = self._world(sim)
        ha.transmit(Frame("A", "B", 500))
        sim.run()
        assert hb.frames_discarded == 1

    def test_double_protocol_entry_rejected(self, sim):
        ha, _, _ = self._world(sim)
        ha.register_protocol_entry(lambda f: None)
        with pytest.raises(ValueError):
            ha.register_protocol_entry(lambda f: None)

    def test_rx_charges_interrupt_and_context_switch(self, sim):
        ha, hb, _ = self._world(sim)
        hb.register_protocol_entry(lambda f: None)
        ha.transmit(Frame("A", "B", 500))
        sim.run()
        expected = hb.cpu.costs.interrupt + hb.cpu.costs.context_switch
        assert hb.cpu.instructions_retired == expected

    def test_extra_instructions_delay_transmission(self, sim):
        ha, hb, _ = self._world(sim)
        seen_at = []
        hb.register_protocol_entry(lambda f: seen_at.append(sim.now))
        ha.transmit(Frame("A", "B", 500), extra_instructions=0)
        sim.run()
        t_fast = seen_at[0]

        sim2_world = self._world(type(sim)())
        ha2, hb2, _ = sim2_world
        seen2 = []
        hb2.register_protocol_entry(lambda f: seen2.append(ha2.sim.now))
        ha2.transmit(Frame("A", "B", 500), extra_instructions=1_000_000)
        ha2.sim.run()
        assert seen2[0] > t_fast
