"""Unit tests for buffer pools (fixed vs variable disciplines)."""

import pytest

from repro.host.buffers import BufferPool


class TestVariablePool:
    def test_exact_footprint(self):
        p = BufferPool(10_000, "variable")
        b = p.alloc(333)
        assert b.footprint == 333
        assert p.in_use == 333

    def test_free_returns_capacity(self):
        p = BufferPool(1000, "variable")
        b = p.alloc(800)
        p.free(b)
        assert p.in_use == 0
        assert p.alloc(900) is not None

    def test_exhaustion_returns_none(self):
        p = BufferPool(1000, "variable")
        assert p.alloc(600) is not None
        assert p.alloc(600) is None
        assert p.failures == 1

    def test_double_free_rejected(self):
        p = BufferPool(1000)
        b = p.alloc(10)
        p.free(b)
        with pytest.raises(ValueError):
            p.free(b)

    def test_zero_alloc_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(1000).alloc(0)

    def test_high_water(self):
        p = BufferPool(1000)
        b1 = p.alloc(400)
        b2 = p.alloc(400)
        p.free(b1)
        p.free(b2)
        assert p.high_water == 800

    def test_fill_fraction(self):
        p = BufferPool(1000)
        p.alloc(250)
        assert p.fill_fraction == 0.25


class TestFixedPool:
    def test_rounds_up_to_slab(self):
        p = BufferPool(10_000, "fixed", slab_size=2048)
        b = p.alloc(100)
        assert b.footprint == 2048

    def test_multi_slab(self):
        p = BufferPool(10_000, "fixed", slab_size=2048)
        b = p.alloc(5000)
        assert b.footprint == 3 * 2048

    def test_waste_reduces_effective_capacity(self):
        var = BufferPool(8192, "variable")
        fix = BufferPool(8192, "fixed", slab_size=2048)
        n_var = sum(1 for _ in range(100) if var.alloc(100))
        n_fix = sum(1 for _ in range(100) if fix.alloc(100))
        assert n_fix < n_var  # internal fragmentation bites

    def test_exact_multiple_wastes_nothing(self):
        p = BufferPool(8192, "fixed", slab_size=2048)
        b = p.alloc(2048)
        assert b.footprint == 2048


class TestResize:
    def test_shrink_blocks_new_allocations(self):
        p = BufferPool(1000)
        p.alloc(800)
        p.resize(500)
        assert p.alloc(10) is None

    def test_grow_allows_more(self):
        p = BufferPool(100)
        assert p.alloc(200) is None
        p.resize(1000)
        assert p.alloc(200) is not None

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            BufferPool(0)
        with pytest.raises(ValueError):
            BufferPool(100, "weird")
        with pytest.raises(ValueError):
            BufferPool(100).resize(0)
