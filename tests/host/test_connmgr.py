"""Unit tests for the per-host connection-management layer.

TimerGroup coalescing, lazy ManagedMonitor arming (with phase
preservation), fire-scoped probe sharing, Stage II memoisation, the
connection table, and the UNITES gauge snapshot.
"""

import pytest

from repro.core.system import AdaptiveSystem
from repro.host.connmgr import ConnectionManager, ManagedMonitor, TimerGroup
from repro.mantts.acd import ACD
from repro.mantts.qos import QuantitativeQoS
from repro.mantts.tsc import APP_PROFILES
from repro.netsim.profiles import ethernet_10, linear_path
from repro.sim.kernel import Simulator

SERVICE_PORT = 7000


def build(mode="coalesced", seed=3):
    sysm = AdaptiveSystem(seed=seed)
    sysm.attach_network(linear_path(sysm.sim, ethernet_10(), ("A", "B"),
                                    rng=sysm.rng))
    a = sysm.node("A", manager_mode=mode)
    b = sysm.node("B", manager_mode=mode)
    b.mantts.register_service(SERVICE_PORT, on_deliver=lambda d, m: None)
    return sysm, a, b


def video_acd():
    p = APP_PROFILES["full-motion-video-compressed"]
    return ACD(participants=("B",), quantitative=p.quantitative(),
               qualitative=p.qualitative(), service_port=SERVICE_PORT)


def voice_acd():
    p = APP_PROFILES["voice-conversation"]
    return ACD(participants=("B",), quantitative=p.quantitative(),
               qualitative=p.qualitative(), service_port=SERVICE_PORT)


class TestTimerGroup:
    def test_same_deadline_shares_one_event(self):
        sim = Simulator()
        group = TimerGroup(sim)
        ran = []
        for i in range(5):
            group.at(1.0, lambda i=i: ran.append(i))
        assert group.occupancy == 5
        sim.run(until=2.0)
        assert ran == [0, 1, 2, 3, 4]  # join order within the bucket
        assert group.fires == 1
        assert group.coalesced == 4

    def test_distinct_deadlines_fire_separately(self):
        sim = Simulator()
        group = TimerGroup(sim)
        ran = []
        group.at(1.0, lambda: ran.append("a"))
        group.at(2.0, lambda: ran.append("b"))
        sim.run(until=1.5)
        assert ran == ["a"]
        sim.run(until=2.5)
        assert ran == ["a", "b"]
        assert group.fires == 2

    def test_cancel_member_skips_callback(self):
        sim = Simulator()
        group = TimerGroup(sim)
        ran = []
        group.at(1.0, lambda: ran.append("keep"))
        handle = group.at(1.0, lambda: ran.append("drop"))
        handle.cancel()
        sim.run(until=2.0)
        assert ran == ["keep"]

    def test_last_cancel_drops_kernel_event(self):
        sim = Simulator()
        group = TimerGroup(sim)
        h1 = group.at(1.0, lambda: None)
        h2 = group.at(1.0, lambda: None)
        h1.cancel()
        h2.cancel()
        assert group.occupancy == 0
        assert not group._events and not group._buckets
        sim.run(until=2.0)
        assert group.fires == 0

    def test_on_fire_hook_and_in_fire_flag(self):
        sim = Simulator()
        seen = []
        group = TimerGroup(sim, on_fire=lambda: seen.append("hook"))
        group.at(0.5, lambda: seen.append(group.in_fire))
        sim.run(until=1.0)
        assert seen == ["hook", True]
        assert group.in_fire is False


class TestManagedMonitorLaziness:
    def test_idle_connection_monitor_never_ticks(self):
        sysm, a, b = build()
        conn = a.mantts.open(voice_acd())
        sysm.run(until=2.0)
        assert isinstance(conn.monitor, ManagedMonitor)
        assert not conn.monitor.wants_samples
        assert conn.monitor.samples == 0
        assert a.mantts.manager.sampler_group.occupancy == 0

    def test_subscriber_arms_and_phase_matches_free_running(self):
        sysm, a, b = build()
        conn = a.mantts.open(voice_acd())
        sysm.run(until=1.03)  # mid-interval: a naive re-arm would drift
        times = []
        conn.monitor.on_sample.append(lambda st: times.append(sysm.sim.now))
        sysm.run(until=1.6)
        assert times  # armed by the subscription
        started = conn.monitor._started_at
        interval = conn.monitor.interval
        for t in times:
            k = round((t - started) / interval)
            boundary = started
            for _ in range(k):  # iterated addition, matching the timers
                boundary += interval
            assert t == pytest.approx(boundary, abs=1e-9)

    def test_policy_rule_arms_monitor(self):
        sysm, a, b = build()
        conn = a.mantts.open(video_acd(), default_policies=True)
        sysm.run(until=1.0)
        assert conn.policies.active
        assert conn.monitor.wants_samples
        assert conn.monitor.samples > 0

    def test_legacy_mode_monitor_free_runs(self):
        sysm, a, b = build(mode="legacy")
        conn = a.mantts.open(voice_acd())
        sysm.run(until=2.0)
        assert not isinstance(conn.monitor, ManagedMonitor)
        assert conn.monitor.samples > 0

    def test_stop_disarms(self):
        sysm, a, b = build()
        conn = a.mantts.open(voice_acd())
        conn.monitor.on_sample.append(lambda st: None)
        sysm.run(until=1.0)
        before = conn.monitor.samples
        assert before > 0
        conn.close()
        sysm.run(until=2.0)
        assert conn.monitor.samples == before


class TestProbeSharing:
    def test_monitors_share_one_walk_per_fire(self):
        sysm, a, b = build()
        manager = a.mantts.manager
        m1 = manager.monitor_for("B", interval=0.1)
        m2 = manager.monitor_for("B", interval=0.1)
        m1.start()
        m2.start()
        sysm.run(until=1.05)
        assert m1.samples == m2.samples > 0
        assert manager.probe_hits == m1.samples  # second walk served cached
        assert manager.probe_misses == m1.samples

    def test_probe_outside_fire_walks_fresh(self):
        sysm, a, b = build()
        manager = a.mantts.manager
        manager.probe(a.host.network, "A", "B")
        manager.probe(a.host.network, "A", "B")
        assert manager.probe_hits == 0  # eager snapshots never share


class TestScsCache:
    def test_identical_transform_served_from_cache(self):
        sysm, a, b = build()
        manager = a.mantts.manager
        acd = video_acd()
        from repro.mantts.monitor import probe_path  # noqa: F401
        state = manager.monitor_for("B", interval=0.1).snapshot()
        from repro.mantts.tsc import TSC

        tsc = TSC.DISTRIBUTIONAL_ISOCHRONOUS
        s1 = manager.scs_for(acd, state, tsc, "dynamic")
        s2 = manager.scs_for(acd, state, tsc, "dynamic")
        assert manager.scs_hits == 1
        assert s1 is not s2  # fresh clone per connection
        assert s1.config == s2.config
        s1.note("private rationale")
        assert "private rationale" not in s2.rationale

    def test_legacy_mode_never_caches(self):
        sysm, a, b = build(mode="legacy")
        manager = a.mantts.manager
        state = manager.monitor_for("B", interval=0.1).snapshot()
        from repro.mantts.tsc import TSC

        manager.scs_for(video_acd(), state, TSC.DISTRIBUTIONAL_ISOCHRONOUS,
                        "dynamic")
        assert manager.scs_hits == manager.scs_misses == 0


class TestConnectionTable:
    def test_lifecycle_counts_and_key_index(self):
        sysm, a, b = build()
        manager = a.mantts.manager
        conn = a.mantts.open(video_acd())
        assert conn.ref in manager.pending_refs
        sysm.run(until=1.0)
        assert conn.ref in manager.open_refs
        session = conn.session
        key = (session.local_port, session.remote_host, session.remote_port)
        assert manager.lookup(*key) is conn
        conn.close()
        sysm.run(until=2.0)
        assert len(manager) == 0
        assert manager.lookup(*key) is None
        snap = manager.snapshot()
        assert snap["conn_established_total"] == 1.0
        assert snap["conn_closed_total"] == 1.0
        # the admission verdict is recorded where admission ran: B
        assert b.mantts.manager.admission_accepted >= 1

    def test_failed_open_lands_in_failed_total(self):
        sysm, a, b = build()
        acd = ACD(participants=("C",), service_port=SERVICE_PORT,
                  quantitative=QuantitativeQoS(duration=600))
        a.mantts.open(acd)  # no such host: negotiation times out
        sysm.run(until=12.0)
        manager = a.mantts.manager
        assert manager.failed_total == 1
        assert len(manager) == 0

    def test_defer_coalesces_equal_deadlines(self):
        sysm, a, b = build()
        manager = a.mantts.manager
        ran = []
        manager.defer(0.5, lambda: ran.append(1))
        manager.defer(0.5, lambda: ran.append(2))
        sysm.run(until=1.0)
        assert ran == [1, 2]
        assert manager.sampler_group.fires == 1

    def test_unknown_mode_rejected(self):
        sysm, a, b = build()
        with pytest.raises(ValueError):
            ConnectionManager(a.host, mode="turbo")


class TestTelemetryGauges:
    def test_population_gauges_published(self):
        sysm, a, b = build()
        telemetry = sysm.enable_telemetry()
        try:
            conn = a.mantts.open(video_acd())
            sysm.run(until=1.0)
            gauge = telemetry.metrics.gauge(
                "connmgr_open_connections", labels={"host": "A"}
            )
            assert gauge.value == 1.0
            conn.close()
            sysm.run(until=2.0)
            assert gauge.value == 0.0
            accepted = telemetry.metrics.counter(
                "connmgr_admission_decisions_total",
                labels={"host": "B", "verdict": "accept"},
            )
            assert accepted.value >= 1.0
        finally:
            telemetry.disable()
            telemetry.reset()
