"""Unit tests for the CPU cost model."""

import pytest

from repro.host.cpu import Cpu, CpuCosts


class TestCpu:
    def test_seconds_for(self, sim):
        cpu = Cpu(sim, mips=10.0)
        assert cpu.seconds_for(10e6) == pytest.approx(1.0)

    def test_submit_delays_callback(self, sim):
        cpu = Cpu(sim, mips=1.0)  # 1e6 instr/sec
        done = []
        cpu.submit(500_000, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.5)]

    def test_serialization_of_work(self, sim):
        cpu = Cpu(sim, mips=1.0)
        done = []
        cpu.submit(100_000, lambda: done.append(sim.now))
        cpu.submit(100_000, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_backlog(self, sim):
        cpu = Cpu(sim, mips=1.0)
        cpu.submit(1_000_000, lambda: None)
        assert cpu.backlog == pytest.approx(1.0)
        sim.run()
        assert cpu.backlog == 0.0

    def test_busy_time_and_utilization(self, sim):
        cpu = Cpu(sim, mips=1.0)
        cpu.submit(250_000, lambda: None)
        sim.run(until=1.0)
        assert cpu.busy_time == pytest.approx(0.25)
        assert cpu.utilization(1.0) == pytest.approx(0.25)

    def test_utilization_caps_at_one(self, sim):
        cpu = Cpu(sim, mips=1.0)
        cpu.submit(5_000_000, lambda: None)
        assert cpu.utilization(1.0) == 1.0

    def test_instructions_retired(self, sim):
        cpu = Cpu(sim, mips=10)
        cpu.submit(123, lambda: None)
        cpu.submit(77, lambda: None)
        assert cpu.instructions_retired == 200

    def test_zero_cost_submit_runs_now(self, sim):
        cpu = Cpu(sim, mips=1.0)
        done = []
        cpu.submit(0, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_negative_instructions_rejected(self, sim):
        cpu = Cpu(sim)
        with pytest.raises(ValueError):
            cpu.submit(-1, lambda: None)

    def test_bad_mips_rejected(self, sim):
        with pytest.raises(ValueError):
            Cpu(sim, mips=0)

    def test_faster_cpu_finishes_sooner(self, sim):
        slow, fast = Cpu(sim, mips=10), Cpu(sim, mips=100)
        done = {}
        slow.submit(1e6, lambda: done.setdefault("slow", sim.now))
        fast.submit(1e6, lambda: done.setdefault("fast", sim.now))
        sim.run()
        assert done["fast"] < done["slow"]

    def test_default_costs_relative_magnitudes(self):
        c = CpuCosts()
        # the paper's ordering: context switches dominate, parsing an
        # unaligned header costs several times an aligned one
        assert c.context_switch > c.interrupt > c.header_parse_unaligned
        assert c.header_parse_unaligned > c.header_parse_aligned
        assert c.buffer_alloc_variable > c.buffer_alloc_fixed
