"""Tests for the multi-core CPU model (§3(B)(6b) parallel processing)."""

import pytest

from repro.core.scenario import PointToPointScenario
from repro.host.cpu import Cpu
from repro.netsim.profiles import fddi_100
from repro.tko.config import SessionConfig


class TestMultiCoreCpu:
    def test_two_cores_run_in_parallel(self, sim):
        cpu = Cpu(sim, mips=1.0, cores=2)
        done = []
        cpu.submit(1_000_000, lambda: done.append(sim.now))
        cpu.submit(1_000_000, lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 1.0]

    def test_third_job_queues_behind_earliest(self, sim):
        cpu = Cpu(sim, mips=1.0, cores=2)
        done = []
        cpu.submit(1_000_000, lambda: done.append(sim.now))
        cpu.submit(2_000_000, lambda: done.append(sim.now))
        cpu.submit(1_000_000, lambda: done.append(sim.now))
        sim.run()
        assert sorted(done) == [1.0, 2.0, 2.0]

    def test_single_core_serializes(self, sim):
        cpu = Cpu(sim, mips=1.0, cores=1)
        done = []
        cpu.submit(1_000_000, lambda: done.append(sim.now))
        cpu.submit(1_000_000, lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 2.0]

    def test_utilization_normalized_per_core(self, sim):
        cpu = Cpu(sim, mips=1.0, cores=4)
        cpu.submit(1_000_000, lambda: None)
        sim.run(until=1.0)
        assert cpu.utilization(1.0) == pytest.approx(0.25)

    def test_bad_core_count(self, sim):
        with pytest.raises(ValueError):
            Cpu(sim, cores=0)


class TestParallelProtocolProcessing:
    """The Zitterbart-style claim: more processors → more protocol
    throughput when the host, not the wire, is the bottleneck."""

    def _goodput(self, cores: int) -> float:
        sc = PointToPointScenario(
            config=SessionConfig(window=12),
            workload="bulk",
            workload_kw={"total_bytes": 2_000_000, "chunk_bytes": 16_384},
            profile=fddi_100().scaled(ber=0.0),
            duration=4.0,
            seed=51,
            mips=10.0,
            cores=cores,
        )
        sc.run(4.0)
        return sc.tracker.goodput_bps()

    def test_cores_scale_cpu_bound_throughput(self):
        g1 = self._goodput(1)
        g4 = self._goodput(4)
        assert g4 > g1 * 1.5
