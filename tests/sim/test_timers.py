"""Unit tests for Timer / TimerWheel (the TKO_Event substrate)."""


from repro.sim.timers import Timer, TimerWheel


class TestTimer:
    def test_one_shot_fires_once(self, sim):
        out = []
        t = Timer(sim, out.append, "x", interval=1.0)
        t.schedule()
        sim.run()
        assert out == ["x"]
        assert t.expirations == 1
        assert not t.armed

    def test_cancel_before_expiry(self, sim):
        out = []
        t = Timer(sim, out.append, 1, interval=1.0)
        t.schedule()
        t.cancel()
        sim.run()
        assert out == []

    def test_cancel_idempotent(self, sim):
        t = Timer(sim, lambda: None, interval=1.0)
        t.cancel()
        t.cancel()
        assert not t.armed

    def test_reschedule_restarts_countdown(self, sim):
        fired_at = []
        t = Timer(sim, lambda: fired_at.append(sim.now), interval=1.0)
        t.schedule()
        sim.schedule(0.5, t.schedule)  # restart at t=0.5
        sim.run()
        assert fired_at == [1.5]

    def test_reschedule_with_new_interval(self, sim):
        fired_at = []
        t = Timer(sim, lambda: fired_at.append(sim.now), interval=1.0)
        t.schedule(interval=0.25)
        sim.run()
        assert fired_at == [0.25]
        assert t.interval == 0.25

    def test_periodic_fires_repeatedly(self, sim):
        out = []
        t = Timer(sim, lambda: out.append(sim.now), interval=1.0, periodic=True)
        t.schedule()
        sim.run(until=3.5)
        assert out == [1.0, 2.0, 3.0]
        t.cancel()
        sim.run()
        assert len(out) == 3

    def test_periodic_cancel_stops_rearm(self, sim):
        out = []
        t = Timer(sim, lambda: out.append(1), interval=1.0, periodic=True)
        t.schedule()
        sim.schedule(2.5, t.cancel)
        sim.run(until=10.0)
        assert len(out) == 2

    def test_armed_property(self, sim):
        t = Timer(sim, lambda: None, interval=1.0)
        assert not t.armed
        t.schedule()
        assert t.armed
        sim.run()
        assert not t.armed

    def test_callback_may_rearm(self, sim):
        fired = []

        def cb():
            fired.append(sim.now)
            if len(fired) < 3:
                t.schedule()

        t = Timer(sim, cb, interval=1.0)
        t.schedule()
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestTimerWheel:
    def test_after_arms_one_shot(self, sim):
        out = []
        w = TimerWheel(sim)
        w.after(0.5, out.append, "a")
        sim.run()
        assert out == ["a"]

    def test_every_arms_periodic(self, sim):
        out = []
        w = TimerWheel(sim)
        w.every(1.0, out.append, "t")
        sim.run(until=2.5)
        assert out == ["t", "t"]
        w.cancel_all()

    def test_timer_is_not_armed_initially(self, sim):
        w = TimerWheel(sim)
        t = w.timer(lambda: None, interval=1.0)
        assert not t.armed

    def test_cancel_all_disarms_everything(self, sim):
        out = []
        w = TimerWheel(sim)
        w.after(1.0, out.append, 1)
        w.every(0.5, out.append, 2)
        w.cancel_all()
        sim.run()
        assert out == []

    def test_len_counts_created_timers(self, sim):
        w = TimerWheel(sim)
        w.timer(lambda: None)
        w.after(1.0, lambda: None)
        assert len(w) == 2
        w.cancel_all()
