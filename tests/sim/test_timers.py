"""Unit tests for Timer / TimerWheel (the TKO_Event substrate)."""


import pytest

from repro.sim.timers import Timer, TimerWheel


class TestTimer:
    def test_one_shot_fires_once(self, sim):
        out = []
        t = Timer(sim, out.append, "x", interval=1.0)
        t.schedule()
        sim.run()
        assert out == ["x"]
        assert t.expirations == 1
        assert not t.armed

    def test_cancel_before_expiry(self, sim):
        out = []
        t = Timer(sim, out.append, 1, interval=1.0)
        t.schedule()
        t.cancel()
        sim.run()
        assert out == []

    def test_cancel_idempotent(self, sim):
        t = Timer(sim, lambda: None, interval=1.0)
        t.cancel()
        t.cancel()
        assert not t.armed

    def test_reschedule_restarts_countdown(self, sim):
        fired_at = []
        t = Timer(sim, lambda: fired_at.append(sim.now), interval=1.0)
        t.schedule()
        sim.schedule(0.5, t.schedule)  # restart at t=0.5
        sim.run()
        assert fired_at == [1.5]

    def test_reschedule_with_new_interval(self, sim):
        fired_at = []
        t = Timer(sim, lambda: fired_at.append(sim.now), interval=1.0)
        t.schedule(interval=0.25)
        sim.run()
        assert fired_at == [0.25]
        assert t.interval == 0.25

    def test_periodic_fires_repeatedly(self, sim):
        out = []
        t = Timer(sim, lambda: out.append(sim.now), interval=1.0, periodic=True)
        t.schedule()
        sim.run(until=3.5)
        assert out == [1.0, 2.0, 3.0]
        t.cancel()
        sim.run()
        assert len(out) == 3

    def test_periodic_cancel_stops_rearm(self, sim):
        out = []
        t = Timer(sim, lambda: out.append(1), interval=1.0, periodic=True)
        t.schedule()
        sim.schedule(2.5, t.cancel)
        sim.run(until=10.0)
        assert len(out) == 2

    def test_armed_property(self, sim):
        t = Timer(sim, lambda: None, interval=1.0)
        assert not t.armed
        t.schedule()
        assert t.armed
        sim.run()
        assert not t.armed

    def test_callback_may_rearm(self, sim):
        fired = []

        def cb():
            fired.append(sim.now)
            if len(fired) < 3:
                t.schedule()

        t = Timer(sim, cb, interval=1.0)
        t.schedule()
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestTimerEdgeCases:
    """Expiry/restart corners at the kernel wheel ↔ heap boundary."""

    def test_zero_delay_restart_from_callback(self, sim):
        # expiring and instantly re-arming with interval=0 fires again at
        # the same virtual time, strictly after the current callback
        fired = []

        def cb():
            fired.append(sim.now)
            if len(fired) < 3:
                t.schedule(interval=0.0)

        t = Timer(sim, cb, interval=1.0)
        t.schedule()
        sim.run()
        assert fired == [1.0, 1.0, 1.0]
        assert t.expirations == 3
        assert not t.armed

    def test_zero_delay_initial_schedule(self, sim):
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now), interval=0.0)
        t.schedule()
        sim.run()
        assert fired == [0.0]

    def test_cancel_then_restart_same_instant(self, sim):
        # cancel+schedule back-to-back restarts the countdown; the old
        # expiry must never fire even though its record may still be
        # parked in the kernel wheel
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now), interval=1.0)
        t.schedule()

        def churn():
            t.cancel()
            t.schedule()

        sim.schedule(0.5, churn)
        sim.run()
        assert fired == [1.5]
        assert t.expirations == 1

    def test_rapid_cancel_restart_only_last_expiry_fires(self, sim):
        # a retransmission-style churn loop: restart every 0.1s, let the
        # last arm survive — exactly one expiry
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now), interval=1.0)
        t.schedule()
        for i in range(1, 9):
            sim.schedule(0.1 * i, t.schedule)  # each restarts the countdown
        sim.run()
        assert fired == [pytest.approx(1.8)]
        assert t.expirations == 1

    def test_wheel_and_heap_events_interleave_in_schedule_order(self, sim):
        # a timer expiry (wheel-routed) and a plain event (heap-routed) at
        # the same virtual time keep FIFO order: seq decides, not routing
        out = []
        t = Timer(sim, out.append, "timer", interval=1.0)
        t.schedule()
        sim.schedule(1.0, out.append, "plain")
        t2 = Timer(sim, out.append, "timer2", interval=1.0)
        t2.schedule()
        sim.run()
        assert out == ["timer", "plain", "timer2"]

    def test_timer_beyond_top_wheel_level_fires_in_order(self, sim):
        # an interval past the coarsest wheel level's span still parks and
        # fires in global order with near-term events
        from repro.sim.kernel import WHEEL_GRANULARITY, WHEEL_LEVELS, WHEEL_SPAN

        far = WHEEL_GRANULARITY * WHEEL_SPAN ** WHEEL_LEVELS * 3  # ~768s
        out = []
        t = Timer(sim, lambda: out.append(("far", sim.now)), interval=far)
        t.schedule()
        sim.schedule(1.0, lambda: out.append(("near", sim.now)))
        sim.run()
        assert out == [("near", 1.0), ("far", far)]

    def test_cancel_at_expiry_boundary_suppresses_fire(self, sim):
        # cancelling at the exact expiry time but earlier in the dispatch
        # order must suppress the expiry (the wheel may have flushed it to
        # the heap already — lazy deletion still catches it)
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now), interval=1.0)
        t.schedule()
        sim.schedule(1.0, t.cancel, priority=-1)  # runs before the expiry
        sim.run()
        assert fired == []
        assert not t.armed


class TestTimerWheel:
    def test_after_arms_one_shot(self, sim):
        out = []
        w = TimerWheel(sim)
        w.after(0.5, out.append, "a")
        sim.run()
        assert out == ["a"]

    def test_every_arms_periodic(self, sim):
        out = []
        w = TimerWheel(sim)
        w.every(1.0, out.append, "t")
        sim.run(until=2.5)
        assert out == ["t", "t"]
        w.cancel_all()

    def test_timer_is_not_armed_initially(self, sim):
        w = TimerWheel(sim)
        t = w.timer(lambda: None, interval=1.0)
        assert not t.armed

    def test_cancel_all_disarms_everything(self, sim):
        out = []
        w = TimerWheel(sim)
        w.after(1.0, out.append, 1)
        w.every(0.5, out.append, 2)
        w.cancel_all()
        sim.run()
        assert out == []

    def test_len_counts_created_timers(self, sim):
        w = TimerWheel(sim)
        w.timer(lambda: None)
        w.after(1.0, lambda: None)
        assert len(w) == 2
        w.cancel_all()
