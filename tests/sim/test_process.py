"""Unit tests for generator-based processes."""

import pytest

from repro.sim.process import Process


class TestProcess:
    def test_yields_are_delays(self, sim):
        out = []

        def body():
            out.append(sim.now)
            yield 1.0
            out.append(sim.now)
            yield 2.0
            out.append(sim.now)

        Process(sim, body)
        sim.run()
        assert out == [0.0, 1.0, 3.0]

    def test_start_delay(self, sim):
        out = []

        def body():
            out.append(sim.now)
            yield 1.0

        Process(sim, body, start_delay=0.5)
        sim.run()
        assert out == [0.5]

    def test_finishes_on_return(self, sim):
        def body():
            yield 0.1

        p = Process(sim, body)
        sim.run()
        assert p.finished
        assert not p.alive

    def test_kill_stops_future_resumes(self, sim):
        out = []

        def body():
            while True:
                out.append(sim.now)
                yield 1.0

        p = Process(sim, body)
        sim.schedule(2.5, p.kill)
        sim.run(until=10.0)
        assert out == [0.0, 1.0, 2.0]
        assert p.finished

    def test_kill_twice_is_safe(self, sim):
        def body():
            yield 1.0

        p = Process(sim, body)
        p.kill()
        p.kill()
        assert p.finished

    def test_invalid_yield_raises(self, sim):
        def body():
            yield -1.0

        Process(sim, body)
        with pytest.raises(ValueError):
            sim.run()

    def test_args_passed_to_body(self, sim):
        out = []

        def body(a, b):
            out.append(a + b)
            yield 0.1

        Process(sim, body, 2, 3)
        sim.run()
        assert out == [5]

    def test_zero_delay_resumes_same_time(self, sim):
        out = []

        def body():
            yield 0.0
            out.append(sim.now)

        Process(sim, body)
        sim.run()
        assert out == [0.0]
