"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import (
    COMPACT_MIN_CANCELLED,
    Event,
    EventQueue,
    RepeatingEvent,
    SimulationError,
    Simulator,
)


class TestEventQueue:
    def test_pop_orders_by_time(self):
        q = EventQueue()
        for i, t in enumerate([3.0, 1.0, 2.0]):
            q.push(Event(t, 0, i, lambda: None, ()))
        assert [q.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(Event(1.0, 5, 1, lambda: None, ()))
        q.push(Event(1.0, 0, 2, lambda: None, ()))
        assert q.pop().priority == 0

    def test_seq_breaks_full_ties_fifo(self):
        q = EventQueue()
        q.push(Event(1.0, 0, 10, lambda: None, ()))
        q.push(Event(1.0, 0, 11, lambda: None, ()))
        assert q.pop().seq == 10

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        e1 = Event(1.0, 0, 1, lambda: None, ())
        e2 = Event(2.0, 0, 2, lambda: None, ())
        q.push(e1)
        q.push(e2)
        e1.cancel()
        q.note_cancel()
        assert q.pop() is e2
        assert q.pop() is None

    def test_len_tracks_live_events(self):
        q = EventQueue()
        e = Event(1.0, 0, 1, lambda: None, ())
        q.push(e)
        assert len(q) == 1
        e.cancel()
        q.note_cancel()
        assert len(q) == 0
        assert not q

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e1 = Event(1.0, 0, 1, lambda: None, ())
        q.push(e1)
        q.push(Event(2.0, 0, 2, lambda: None, ()))
        e1.cancel()
        q.note_cancel()
        assert q.peek_time() == 2.0


class TestSimulator:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_and_run(self, sim):
        out = []
        sim.schedule(1.0, out.append, "x")
        sim.run()
        assert out == ["x"]
        assert sim.now == 1.0

    def test_execution_order(self, sim):
        out = []
        sim.schedule(2.0, out.append, 2)
        sim.schedule(1.0, out.append, 1)
        sim.schedule(3.0, out.append, 3)
        sim.run()
        assert out == [1, 2, 3]

    def test_same_time_fifo(self, sim):
        out = []
        for i in range(5):
            sim.schedule(1.0, out.append, i)
        sim.run()
        assert out == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_run_until_advances_clock_exactly(self, sim):
        sim.schedule(0.3, lambda: None)
        sim.run(until=2.0)
        assert sim.now == 2.0

    def test_run_until_excludes_later_events(self, sim):
        out = []
        sim.schedule(1.0, out.append, "early")
        sim.schedule(5.0, out.append, "late")
        sim.run(until=2.0)
        assert out == ["early"]
        sim.run()
        assert out == ["early", "late"]

    def test_run_until_includes_boundary(self, sim):
        out = []
        sim.schedule(2.0, out.append, "edge")
        sim.run(until=2.0)
        assert out == ["edge"]

    def test_cancel(self, sim):
        out = []
        ev = sim.schedule(1.0, out.append, "no")
        sim.cancel(ev)
        sim.run()
        assert out == []
        assert sim.pending() == 0

    def test_cancel_idempotent(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.cancel(ev)
        sim.cancel(ev)
        assert sim.pending() == 0

    def test_events_scheduled_during_run(self, sim):
        out = []

        def chain(n):
            out.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert out == [0, 1, 2, 3]
        assert sim.now == 4.0

    def test_stop_inside_run(self, sim):
        out = []
        sim.schedule(1.0, lambda: (out.append(1), sim.stop()))
        sim.schedule(2.0, out.append, 2)
        sim.run()
        assert out == [1]
        sim.run()
        assert out == [1, 2]

    def test_max_events(self, sim):
        out = []
        for i in range(10):
            sim.schedule(float(i + 1), out.append, i)
        sim.run(max_events=4)
        assert len(out) == 4

    def test_not_reentrant(self, sim):
        def nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, nested)
        sim.run()

    def test_events_dispatched_counter(self, sim):
        for i in range(7):
            sim.schedule(0.1 * (i + 1), lambda: None)
        sim.run()
        assert sim.events_dispatched == 7

    def test_call_each_stops_on_false(self, sim):
        out = []

        def tick():
            out.append(sim.now)
            return len(out) < 3

        sim.call_each(1.0, tick)
        sim.run()
        assert out == [1.0, 2.0, 3.0]

    def test_call_each_rejects_nonpositive_interval(self, sim):
        with pytest.raises(SimulationError):
            sim.call_each(0.0, lambda: None)

    def test_priority_order_same_time(self, sim):
        out = []
        sim.schedule(1.0, out.append, "normal", priority=1)
        sim.schedule(1.0, out.append, "urgent", priority=0)
        sim.run()
        assert out == ["urgent", "normal"]

    def test_drain(self, sim):
        evs = [sim.schedule(1.0, lambda: None) for _ in range(3)]
        sim.drain(evs)
        assert sim.pending() == 0

    def test_determinism_across_instances(self):
        def build():
            s = Simulator()
            out = []
            for i in range(20):
                s.schedule(((i * 7) % 5) * 0.1, out.append, i)
            s.run()
            return out

        assert build() == build()


class TestFastPath:
    """The wheel/pool/compaction fast path vs. the legacy heap-only kernel."""

    @staticmethod
    def _mixed_workload(sim):
        """Timers + transients + plain events with heavy cancellation."""
        trace = []

        def tag(label):
            trace.append((sim.now, label))

        for i in range(40):
            delay = 0.01 + (i * 37 % 23) * 0.07
            h = sim.schedule_timer(delay, tag, f"timer{i}")
            sim.schedule(delay + 0.001, tag, f"plain{i}")
            sim.schedule_transient(delay + 0.002, tag, f"transient{i}")
            # cancel most timers at staggered times, always pre-expiry
            # (a pooled handle is only valid until it fires)
            if i % 4:
                sim.schedule(delay * (i % 3 + 1) / 4.0, sim.cancel, h)
        sim.run()
        return trace

    def test_firing_order_identical_to_legacy(self):
        fast = self._mixed_workload(Simulator())
        legacy = self._mixed_workload(Simulator(legacy=True))
        assert fast == legacy

    def test_schedule_timer_routes_through_wheel(self, sim):
        out = []
        sim.schedule_timer(1.0, out.append, "t")
        assert sim._queue.wheel.inserted == 1
        assert sim._queue.heap_depth == 0  # parked, not heaped
        sim.run()
        assert out == ["t"]
        assert sim._queue.wheel.flushed == 1

    def test_wheel_cancel_is_heapless(self, sim):
        ev = sim.schedule_timer(1.0, lambda: None)
        sim.cancel(ev)
        assert sim._queue.wheel.cancelled_killed == 1
        assert sim._queue.heap_depth == 0
        sim.run()
        assert sim.events_dispatched == 0
        assert sim.now == 0.0

    def test_free_list_recycles_fired_timer_records(self, sim):
        ev1 = sim.schedule_timer(0.5, lambda: None)
        sim.run()
        ev2 = sim.schedule_timer(0.5, lambda: None)
        assert ev2 is ev1  # same record, re-armed from the free list
        sim.run()
        assert sim.events_dispatched == 2

    def test_plain_schedule_is_never_pooled(self, sim):
        ev1 = sim.schedule(0.5, lambda: None)
        sim.run()
        ev2 = sim.schedule(0.5, lambda: None)
        assert ev2 is not ev1
        assert not ev1.pooled

    def test_heap_compaction_purges_cancelled_backlog(self, sim):
        n = COMPACT_MIN_CANCELLED * 2
        handles = [sim.schedule(1.0 + i * 0.001, lambda: None)
                   for i in range(n)]
        for h in handles[: n // 2 + 1]:
            sim.cancel(h)
        q = sim._queue
        assert q.compactions >= 1
        assert q.heap_depth < n  # cancelled records physically removed
        sim.run()
        assert sim.events_dispatched == n - (n // 2 + 1)

    def test_legacy_mode_never_compacts_or_pools(self):
        sim = Simulator(legacy=True)
        n = COMPACT_MIN_CANCELLED * 2
        handles = [sim.schedule_timer(1.0 + i * 0.001, lambda: None)
                   for i in range(n)]
        for h in handles:
            sim.cancel(h)
        q = sim._queue
        assert q.compactions == 0
        assert q.wheel.inserted == 0
        assert q.heap_depth == n  # lazy deletion only, like the old kernel
        sim.run()
        assert sim.events_dispatched == 0

    def test_repeating_event_fires_and_cancels(self, sim):
        out = []
        rep = sim.call_each(1.0, lambda: out.append(sim.now))
        assert isinstance(rep, RepeatingEvent)
        sim.run(until=3.5)
        assert out == [1.0, 2.0, 3.0]
        assert rep.armed
        rep.cancel()
        rep.cancel()  # idempotent
        assert not rep.armed
        sim.run()
        assert out == [1.0, 2.0, 3.0]

    def test_repeating_event_cancel_via_simulator(self, sim):
        out = []
        rep = sim.call_each(1.0, lambda: out.append(sim.now))
        sim.schedule(2.5, sim.cancel, rep)  # duck-typed cancel
        sim.run(until=10.0)
        assert out == [1.0, 2.0]

    def test_event_queue_push_timer_falls_back_to_heap(self):
        # an event inside the flushed horizon cannot park in the wheel
        q = EventQueue()
        q.wheel.flushed_until = 10.0
        ev = Event(5.0, 0, 1, lambda: None, ())
        q.push_timer(ev)
        assert not ev.wheeled
        assert q.heap_depth == 1
        assert q.pop() is ev
