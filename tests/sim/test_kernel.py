"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import Event, EventQueue, SimulationError, Simulator


class TestEventQueue:
    def test_pop_orders_by_time(self):
        q = EventQueue()
        for i, t in enumerate([3.0, 1.0, 2.0]):
            q.push(Event(t, 0, i, lambda: None, ()))
        assert [q.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(Event(1.0, 5, 1, lambda: None, ()))
        q.push(Event(1.0, 0, 2, lambda: None, ()))
        assert q.pop().priority == 0

    def test_seq_breaks_full_ties_fifo(self):
        q = EventQueue()
        q.push(Event(1.0, 0, 10, lambda: None, ()))
        q.push(Event(1.0, 0, 11, lambda: None, ()))
        assert q.pop().seq == 10

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        e1 = Event(1.0, 0, 1, lambda: None, ())
        e2 = Event(2.0, 0, 2, lambda: None, ())
        q.push(e1)
        q.push(e2)
        e1.cancel()
        q.note_cancel()
        assert q.pop() is e2
        assert q.pop() is None

    def test_len_tracks_live_events(self):
        q = EventQueue()
        e = Event(1.0, 0, 1, lambda: None, ())
        q.push(e)
        assert len(q) == 1
        e.cancel()
        q.note_cancel()
        assert len(q) == 0
        assert not q

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e1 = Event(1.0, 0, 1, lambda: None, ())
        q.push(e1)
        q.push(Event(2.0, 0, 2, lambda: None, ()))
        e1.cancel()
        q.note_cancel()
        assert q.peek_time() == 2.0


class TestSimulator:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_and_run(self, sim):
        out = []
        sim.schedule(1.0, out.append, "x")
        sim.run()
        assert out == ["x"]
        assert sim.now == 1.0

    def test_execution_order(self, sim):
        out = []
        sim.schedule(2.0, out.append, 2)
        sim.schedule(1.0, out.append, 1)
        sim.schedule(3.0, out.append, 3)
        sim.run()
        assert out == [1, 2, 3]

    def test_same_time_fifo(self, sim):
        out = []
        for i in range(5):
            sim.schedule(1.0, out.append, i)
        sim.run()
        assert out == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_run_until_advances_clock_exactly(self, sim):
        sim.schedule(0.3, lambda: None)
        sim.run(until=2.0)
        assert sim.now == 2.0

    def test_run_until_excludes_later_events(self, sim):
        out = []
        sim.schedule(1.0, out.append, "early")
        sim.schedule(5.0, out.append, "late")
        sim.run(until=2.0)
        assert out == ["early"]
        sim.run()
        assert out == ["early", "late"]

    def test_run_until_includes_boundary(self, sim):
        out = []
        sim.schedule(2.0, out.append, "edge")
        sim.run(until=2.0)
        assert out == ["edge"]

    def test_cancel(self, sim):
        out = []
        ev = sim.schedule(1.0, out.append, "no")
        sim.cancel(ev)
        sim.run()
        assert out == []
        assert sim.pending() == 0

    def test_cancel_idempotent(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.cancel(ev)
        sim.cancel(ev)
        assert sim.pending() == 0

    def test_events_scheduled_during_run(self, sim):
        out = []

        def chain(n):
            out.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert out == [0, 1, 2, 3]
        assert sim.now == 4.0

    def test_stop_inside_run(self, sim):
        out = []
        sim.schedule(1.0, lambda: (out.append(1), sim.stop()))
        sim.schedule(2.0, out.append, 2)
        sim.run()
        assert out == [1]
        sim.run()
        assert out == [1, 2]

    def test_max_events(self, sim):
        out = []
        for i in range(10):
            sim.schedule(float(i + 1), out.append, i)
        sim.run(max_events=4)
        assert len(out) == 4

    def test_not_reentrant(self, sim):
        def nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, nested)
        sim.run()

    def test_events_dispatched_counter(self, sim):
        for i in range(7):
            sim.schedule(0.1 * (i + 1), lambda: None)
        sim.run()
        assert sim.events_dispatched == 7

    def test_call_each_stops_on_false(self, sim):
        out = []

        def tick():
            out.append(sim.now)
            return len(out) < 3

        sim.call_each(1.0, tick)
        sim.run()
        assert out == [1.0, 2.0, 3.0]

    def test_call_each_rejects_nonpositive_interval(self, sim):
        with pytest.raises(SimulationError):
            sim.call_each(0.0, lambda: None)

    def test_priority_order_same_time(self, sim):
        out = []
        sim.schedule(1.0, out.append, "normal", priority=1)
        sim.schedule(1.0, out.append, "urgent", priority=0)
        sim.run()
        assert out == ["urgent", "normal"]

    def test_drain(self, sim):
        evs = [sim.schedule(1.0, lambda: None) for _ in range(3)]
        sim.drain(evs)
        assert sim.pending() == 0

    def test_determinism_across_instances(self):
        def build():
            s = Simulator()
            out = []
            for i in range(20):
                s.schedule(((i * 7) % 5) * 0.1, out.append, i)
            s.run()
            return out

        assert build() == build()
