"""Unit tests for deterministic named RNG streams."""

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_name_same_sequence(self):
        a = RngStreams(7).stream("x").random(10)
        b = RngStreams(7).stream("x").random(10)
        assert (a == b).all()

    def test_different_names_differ(self):
        r = RngStreams(7)
        assert (r.stream("x").random(10) != r.stream("y").random(10)).any()

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random(10)
        b = RngStreams(2).stream("x").random(10)
        assert (a != b).any()

    def test_stream_is_cached(self):
        r = RngStreams(0)
        assert r.stream("s") is r.stream("s")

    def test_contains(self):
        r = RngStreams(0)
        assert "s" not in r
        r.stream("s")
        assert "s" in r

    def test_reset_restarts_sequences(self):
        r = RngStreams(3)
        first = r.stream("a").random(5)
        r.reset()
        again = r.stream("a").random(5)
        assert (first == again).all()

    def test_stream_independence_under_interleaving(self):
        # drawing from stream B must not perturb stream A's sequence
        r1 = RngStreams(9)
        a_alone = r1.stream("a").random(5)
        r2 = RngStreams(9)
        r2.stream("b").random(100)
        a_interleaved = r2.stream("a").random(5)
        assert (a_alone == a_interleaved).all()
