"""``run_until_horizon``: the epoch primitive of the conservative kernel.

The contract the shard barrier leans on: every event *strictly before*
the horizon executes, nothing at or after it does, and afterwards the
kernel still accepts an injected arrival stamped exactly at the horizon
(a cross-shard frame whose arrival equals ``N + L``).
"""

import pytest

from repro.sim.kernel import SimulationError, Simulator


class TestRunUntilHorizon:
    def test_strictly_before_executes_at_or_after_does_not(self):
        sim = Simulator()
        fired = []
        for t in (0.5, 1.0, 1.999999, 2.0, 2.5):
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run_until_horizon(2.0)
        assert fired == [0.5, 1.0, 1.999999]
        assert sim.next_event_time() == pytest.approx(2.0)

    def test_injection_at_exactly_the_horizon_is_accepted(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until_horizon(2.0)
        fired = []
        # a cross-shard arrival stamped exactly N + L must be schedulable
        sim.schedule_transient_at(2.0, lambda: fired.append("arrival"))
        sim.run_until_horizon(3.0)
        assert fired == ["arrival"]

    def test_event_scheduled_during_epoch_respects_the_horizon(self):
        sim = Simulator()
        fired = []

        def cascade():
            fired.append("first")
            sim.schedule(0.4, lambda: fired.append("inside"))   # t=0.5
            sim.schedule(3.0, lambda: fired.append("outside"))  # t=3.1

        sim.schedule(0.1, cascade)
        sim.run_until_horizon(1.0)
        assert fired == ["first", "inside"]
        sim.run_until_horizon(4.0)
        assert fired == ["first", "inside", "outside"]

    def test_repeated_epochs_compose_like_one_run(self):
        serial, epoched = Simulator(), Simulator()
        order_a, order_b = [], []
        for sim, order in ((serial, order_a), (epoched, order_b)):
            for t in (0.25, 0.5, 0.5, 1.25, 2.75):
                sim.schedule(t, lambda t=t, o=order, s=sim: o.append((s.now, t)))
        serial.run(until=3.0)
        for horizon in (0.5, 1.0, 1.5, 2.0, 2.5, 3.0):
            epoched.run_until_horizon(horizon)
        epoched.run(until=3.0)  # the inclusive final stretch
        assert order_b == order_a
        assert epoched.now == serial.now

    def test_past_injection_still_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until_horizon(2.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)
