"""EventChain: batched monotone event streams (the link batch-drain hook).

A chain keeps one heap-resident sentinel for a whole stream of
nondecreasing-time occurrences; the run loop may drain several
occurrences off a single heap pop when nothing else can precede them.
The contract under test: total ``(time, priority, seq)`` order is
bit-identical to scheduling every occurrence as its own transient event,
and out-of-order appends transparently fall back to the plain API.
"""

from repro.sim.kernel import Simulator


def _mixed_workload(sim, fired, schedule_stream):
    """Interleave a monotone stream with foreign events at touching times.

    ``schedule_stream(time, tag)`` schedules one stream occurrence
    appending ``tag`` to ``fired``; plain events land before, between,
    and exactly *at* stream times so ties must be broken by seq
    (schedule order).
    """
    note = fired.append
    schedule_stream(0.010, "s0")
    sim.schedule_at(0.010, note, "p0")      # same time, later seq
    schedule_stream(0.010, "s1")            # same time again, later still
    sim.schedule_at(0.005, note, "p1")
    schedule_stream(0.020, "s2")
    schedule_stream(0.020, "s3")
    schedule_stream(0.020, "s4")            # back-to-back burst
    sim.schedule_at(0.030, note, "p2")
    schedule_stream(0.040, "s5")


class TestOrderIdentity:
    def test_chain_order_matches_per_event_scheme(self):
        ref_sim = Simulator()
        ref = []
        _mixed_workload(
            ref_sim, ref,
            lambda t, tag: ref_sim.schedule_transient_at(t, ref.append, tag),
        )
        ref_sim.run()

        chain_sim = Simulator()
        chain = chain_sim.make_chain()
        got = []
        _mixed_workload(
            chain_sim, got,
            lambda t, tag: chain.schedule_at(t, got.append, tag))
        chain_sim.run()

        assert got == ref
        assert chain_sim.now == ref_sim.now

    def test_equal_time_fifo_against_foreign_events(self, sim):
        fired = []
        chain = sim.make_chain()
        sim.schedule_at(0.01, fired.append, "plain-first")
        chain.schedule_at(0.01, fired.append, "chain-second")
        sim.schedule_at(0.01, fired.append, "plain-third")
        sim.run()
        assert fired == ["plain-first", "chain-second", "plain-third"]


class TestChainMechanics:
    def test_burst_drains_inline_off_one_pop(self, sim):
        chain = sim.make_chain()
        fired = []
        for i in range(8):
            chain.schedule_at(0.01, fired.append, i)
        sim.run()
        assert fired == list(range(8))
        assert chain.appended == 8
        # nothing else was pending, so the burst fired off one heap pop
        assert chain.drained_inline >= 6

    def test_non_monotone_append_falls_back(self, sim):
        chain = sim.make_chain()
        fired = []
        chain.schedule_at(0.02, fired.append, "late")
        chain.schedule_at(0.01, fired.append, "early")  # out of order
        sim.run()
        assert fired == ["early", "late"]
        assert chain.fallbacks == 1
        assert chain.appended == 1

    def test_len_and_disarm(self, sim):
        chain = sim.make_chain()
        assert len(chain) == 0
        chain.schedule(0.01, lambda: None)
        chain.schedule(0.02, lambda: None)
        assert len(chain) == 2
        sim.run()
        assert len(chain) == 0
        assert chain.armed is False

    def test_stream_reusable_after_drain(self, sim):
        chain = sim.make_chain()
        fired = []
        chain.schedule(0.01, fired.append, 1)
        sim.run()
        chain.schedule(0.01, fired.append, 2)
        sim.run()
        assert fired == [1, 2]
        assert chain.appended == 2

    def test_legacy_kernel_fires_chain_without_inline_drain(self):
        # chains work on the legacy kernel (the sentinel is an ordinary
        # heap event), but only the fast run loop batch-drains
        legacy = Simulator(legacy=True)
        chain = legacy.make_chain()
        fired = []
        for i in range(5):
            chain.schedule_at(0.01, fired.append, i)
        legacy.run()
        assert fired == list(range(5))
        assert chain.drained_inline == 0


class TestLinkUsesChains:
    def test_fast_kernel_link_batches_and_legacy_does_not(self):
        from repro.netsim.frame import Frame
        from repro.netsim.link import Link
        from repro.sim.rng import RngStreams

        def run(legacy):
            sim = Simulator(legacy=legacy)
            got = []
            link = Link(sim, RngStreams(0), "t", bandwidth_bps=8e6,
                        delay=0.001, queue_limit=16, deliver=got.append)
            for _ in range(6):
                link.send(Frame("A", "B", 500))
            sim.run()
            return sim, link, [f.id for f in got]

        fast_sim, fast_link, fast_ids = run(False)
        legacy_sim, legacy_link, legacy_ids = run(True)
        assert fast_link._tx_chain is not None
        assert legacy_link._tx_chain is None
        assert fast_link._tx_chain.appended == 6
        assert fast_link._rx_chain.appended == 6
        # batching is invisible to everything the simulation observes
        assert len(fast_ids) == len(legacy_ids) == 6
        assert fast_sim.now == legacy_sim.now
