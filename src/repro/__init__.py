"""ADAPTIVE — "A Dynamically Assembled Protocol Transformation,
Integration, and Validation Environment".

A complete Python reproduction of the transport system architecture of
Schmidt, Box & Suda (HPDC 1992): the MANTTS policy subsystem, the TKO
mechanism framework, and the UNITES measurement subsystem, running over a
deterministic discrete-event network/host simulator.

Quick start (see ``examples/quickstart.py`` for the narrated version)::

    from repro import AdaptiveSystem, ACD, QuantitativeQoS, QualitativeQoS
    from repro.netsim.profiles import ethernet_10, linear_path

    system = AdaptiveSystem(seed=1)
    system.attach_network(linear_path(system.sim, ethernet_10(), ("A", "B")))
    a, b = system.node("A"), system.node("B")
    b.mantts.register_service(7000, on_deliver=lambda data, meta: print(len(data)))
    conn = a.mantts.open(ACD(participants=("B",), service_port=7000))
    system.run(until=0.5)
    conn.send(b"hello, 1992")
    system.run(until=1.0)
"""

from repro.core.system import AdaptiveNode, AdaptiveSystem
from repro.core.churn import ChurnScenario, run_churn
from repro.core.scenario import PointToPointScenario, run_point_to_point
from repro.host.connmgr import ConnectionManager
from repro.mantts.acd import ACD, TMC, TSARule
from repro.mantts.api import MANTTS, AdaptiveConnection
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.mantts.tsc import TSC, APP_PROFILES
from repro.sim.kernel import Simulator
from repro.tko.config import SessionConfig
from repro.unites.collect import UNITES

__version__ = "1.0.0"

__all__ = [
    "AdaptiveSystem",
    "AdaptiveNode",
    "PointToPointScenario",
    "run_point_to_point",
    "ChurnScenario",
    "run_churn",
    "ConnectionManager",
    "ACD",
    "TMC",
    "TSARule",
    "MANTTS",
    "AdaptiveConnection",
    "QuantitativeQoS",
    "QualitativeQoS",
    "TSC",
    "APP_PROFILES",
    "Simulator",
    "SessionConfig",
    "UNITES",
    "__version__",
]
