"""Remote terminal traffic — Table 1's TELNET row.

Very low average throughput but highly bursty and delay-sensitive:
Poisson keystroke batches of a few bytes.  The canonical workload for
which per-packet overhead (not bandwidth) dominates.
"""

from __future__ import annotations

from repro.apps.workloads import AppSource


class TelnetSource(AppSource):
    """Poisson keystroke/line traffic."""

    def __init__(
        self,
        sim,
        sender,
        rng=None,
        rate_per_s: float = 3.0,
        min_bytes: int = 1,
        max_bytes: int = 8,
        name: str = "telnet",
    ) -> None:
        super().__init__(sim, sender, name, rng)
        if rate_per_s <= 0 or min_bytes <= 0 or max_bytes < min_bytes:
            raise ValueError("bad telnet parameters")
        self.rate = rate_per_s
        self.min_bytes = min_bytes
        self.max_bytes = max_bytes

    def _body(self):
        while True:
            yield float(self.rng.exponential(1.0 / self.rate))
            n = int(self.rng.integers(self.min_bytes, self.max_bytes + 1))
            self.emit(b"k" * n)
