"""Request-response traffic — Table 1's OLTP / remote-file-service rows.

A closed-loop client: send a request, wait for the matching response,
think, repeat.  Response latency (not throughput) is the figure of merit,
which is why these rows drive the implicit-negotiation design (§4.1.1:
"latency-sensitive applications that must not incur any QoS negotiation
delay").

The server half, :class:`EchoResponder`, is a delivery callback that
answers each request over the responder-side session; wire it to a MANTTS
service or a raw listener.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.apps.workloads import AppSource


class RequestResponseClient(AppSource):
    """Closed-loop request/response client."""

    def __init__(
        self,
        sim,
        sender,
        rng=None,
        request_bytes: int = 128,
        response_timeout: float = 5.0,
        think_time: float = 0.05,
        name: str = "rpc",
    ) -> None:
        super().__init__(sim, sender, name, rng)
        if request_bytes <= 0 or response_timeout <= 0 or think_time < 0:
            raise ValueError("bad rpc parameters")
        self.request_bytes = request_bytes
        self.response_timeout = response_timeout
        self.think_time = think_time
        self.completed = 0
        self.timeouts = 0
        self.response_times: List[float] = []
        self._awaiting_since: Optional[float] = None

    # wire this as the *client-side* delivery callback
    def on_deliver(self, data: bytes, meta: Dict) -> None:
        if self._awaiting_since is None:
            return
        self.response_times.append(self.sim.now - self._awaiting_since)
        self.completed += 1
        self._awaiting_since = None

    @property
    def mean_response_time(self) -> float:
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    def _body(self):
        while True:
            self._awaiting_since = self.sim.now
            self.emit(b"Q" * self.request_bytes)
            waited = 0.0
            step = 0.005
            while self._awaiting_since is not None and waited < self.response_timeout:
                yield step
                waited += step
            if self._awaiting_since is not None:
                self.timeouts += 1
                self._awaiting_since = None
            yield float(self.rng.exponential(self.think_time)) if self.think_time else 0.0


class EchoResponder:
    """Server half: replies ``response_bytes`` to every request."""

    def __init__(self, response_bytes: int = 512) -> None:
        self.response_bytes = response_bytes
        self.requests_served = 0
        self._session: Optional[Any] = None

    def attach(self, session) -> None:
        """Bind to the responder-side session (MANTTS on_session hook)."""
        self._session = session
        session.on_deliver = self.on_deliver

    def on_deliver(self, data: bytes, meta: Dict) -> None:
        if self._session is None or self._session.closed:
            return
        self.requests_served += 1
        self._session.send(b"R" * self.response_bytes)
