"""Manufacturing-control traffic — Table 1's real-time non-isochronous row.

A periodic sensor/actuator control loop (fixed-size updates at a fixed
scan rate) punctuated by *alarm bursts*: a machine event produces a run
of back-to-back high-priority messages.  Hard real-time: the figure of
merit is the fraction of updates delivered within the control deadline,
tracked receive-side with a :class:`~repro.apps.workloads.DeliveryTracker`
built with ``deadline=``.
"""

from __future__ import annotations

from repro.apps.workloads import AppSource


class ControlLoopSource(AppSource):
    """Periodic control updates with Poisson alarm bursts."""

    def __init__(
        self,
        sim,
        sender,
        rng=None,
        scan_interval: float = 0.01,
        update_bytes: int = 256,
        alarm_rate: float = 0.2,
        alarm_burst: int = 8,
        name: str = "control-loop",
    ) -> None:
        super().__init__(sim, sender, name, rng)
        if scan_interval <= 0 or update_bytes <= 0 or alarm_burst < 1:
            raise ValueError("bad control-loop parameters")
        self.scan_interval = scan_interval
        self.update_bytes = update_bytes
        self.alarm_rate = alarm_rate
        self.alarm_burst = alarm_burst
        self.alarms = 0
        self._next_alarm = None

    def _body(self):
        if self.alarm_rate > 0:
            self._next_alarm = float(self.rng.exponential(1.0 / self.alarm_rate))
        t = 0.0
        while True:
            self.emit(b"\x11" * self.update_bytes)
            if self._next_alarm is not None and t >= self._next_alarm:
                self.alarms += 1
                for _ in range(self.alarm_burst):
                    self.emit(b"\xEE" * self.update_bytes)
                self._next_alarm = t + float(
                    self.rng.exponential(1.0 / self.alarm_rate)
                )
            yield self.scan_interval
            t += self.scan_interval
