"""Application workload generators — Table 1's rows as traffic sources.

Real multimedia applications are replaced (per the substitution rules in
DESIGN.md) by generators reproducing their traffic shapes: talk-spurt
voice, CBR/VBR video, request-response RPC/OLTP, keystroke TELNET, and
windowed bulk transfer.  Each generator drives any object exposing
``send(bytes) -> msg_id`` — a raw :class:`~repro.tko.session.TKOSession`
or a MANTTS :class:`~repro.mantts.api.AdaptiveConnection` — so the same
workload can exercise ADAPTIVE configurations and baselines alike.
"""

from repro.apps.workloads import AppSource, DeliveryTracker, make_source
from repro.apps.voice import VoiceSource
from repro.apps.video import CbrVideoSource, VbrVideoSource
from repro.apps.bulk import BulkSource
from repro.apps.control import ControlLoopSource
from repro.apps.telnet import TelnetSource
from repro.apps.rpc import RequestResponseClient

__all__ = [
    "AppSource",
    "DeliveryTracker",
    "make_source",
    "VoiceSource",
    "CbrVideoSource",
    "VbrVideoSource",
    "BulkSource",
    "ControlLoopSource",
    "TelnetSource",
    "RequestResponseClient",
]
