"""Full-motion video sources — Table 1's distributional isochronous rows.

* ``CbrVideoSource`` — raw (uncompressed) video: constant frame size at a
  fixed frame rate; very high average throughput, low burstiness;
* ``VbrVideoSource`` — compressed video: a 12-frame I/P group-of-pictures
  pattern with lognormal size variation; high burst factor, the workload
  whose rate spikes stress switch queues.
"""

from __future__ import annotations

from repro.apps.workloads import AppSource


class CbrVideoSource(AppSource):
    """Constant-bit-rate video frames."""

    def __init__(
        self,
        sim,
        sender,
        rng=None,
        fps: float = 30.0,
        frame_bytes: int = 16_000,
        name: str = "video-cbr",
    ) -> None:
        super().__init__(sim, sender, name, rng)
        if fps <= 0 or frame_bytes <= 0:
            raise ValueError("fps and frame size must be positive")
        self.interval = 1.0 / fps
        self.frame_bytes = frame_bytes

    @property
    def rate_bps(self) -> float:
        return self.frame_bytes * 8.0 / self.interval

    def _body(self):
        payload = b"\xA5" * self.frame_bytes
        while True:
            self.emit(payload)
            yield self.interval


class VbrVideoSource(AppSource):
    """Variable-bit-rate video with an I/P GoP structure."""

    GOP = 12             #: frames per group of pictures
    I_FACTOR = 4.0       #: I-frames this much larger than mean P-frame

    def __init__(
        self,
        sim,
        sender,
        rng=None,
        fps: float = 30.0,
        mean_frame_bytes: int = 6_000,
        name: str = "video-vbr",
    ) -> None:
        super().__init__(sim, sender, name, rng)
        if fps <= 0 or mean_frame_bytes <= 0:
            raise ValueError("fps and frame size must be positive")
        self.interval = 1.0 / fps
        self.mean_frame_bytes = mean_frame_bytes
        self._frame_no = 0

    def next_frame_size(self) -> int:
        base = self.mean_frame_bytes
        if self._frame_no % self.GOP == 0:
            size = base * self.I_FACTOR * float(self.rng.lognormal(0.0, 0.2))
        else:
            size = base * float(self.rng.lognormal(0.0, 0.35))
        self._frame_no += 1
        return max(200, int(size))

    def _body(self):
        while True:
            self.emit(b"\xC3" * self.next_frame_size())
            yield self.interval
