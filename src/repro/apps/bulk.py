"""Bulk data transfer — Table 1's file-transfer row.

Queues a fixed volume as fast as the transport's flow control admits
(the source paces itself only by chunk granularity; the window/rate
mechanisms do the real shaping).  Completion is observed at the receiver
via a :class:`~repro.apps.workloads.DeliveryTracker`.
"""

from __future__ import annotations

from repro.apps.workloads import AppSource


class BulkSource(AppSource):
    """Send ``total_bytes`` in ``chunk_bytes`` application messages."""

    def __init__(
        self,
        sim,
        sender,
        rng=None,
        total_bytes: int = 1_000_000,
        chunk_bytes: int = 8_192,
        name: str = "bulk",
    ) -> None:
        super().__init__(sim, sender, name, rng)
        if total_bytes <= 0 or chunk_bytes <= 0:
            raise ValueError("sizes must be positive")
        self.total_bytes = total_bytes
        self.chunk_bytes = chunk_bytes
        self.done = False

    def _body(self):
        remaining = self.total_bytes
        while remaining > 0:
            size = min(self.chunk_bytes, remaining)
            self.emit(b"\x42" * size)
            remaining -= size
            # hand control back to the kernel so transmission interleaves;
            # the transport's window, not this delay, governs the rate
            yield 0.0005
        self.done = True
