"""Voice conversation source — Table 1's interactive isochronous row.

The classic Brady on/off model: exponentially distributed talk spurts
(mean 0.4 s) and silence gaps (mean 0.6 s); during a spurt, one fixed-size
frame per packetization interval (20 ms of 64 kbit/s PCM = 160 bytes).
Low average throughput, high delay *and* jitter sensitivity, high loss
tolerance — the canonical "a late packet is worthless, a lost one is
fine" workload that makes retransmission-based reliability overweight.
"""

from __future__ import annotations

from repro.apps.workloads import AppSource


class VoiceSource(AppSource):
    """Talk-spurt voice traffic."""

    def __init__(
        self,
        sim,
        sender,
        rng=None,
        frame_interval: float = 0.020,
        frame_bytes: int = 160,
        mean_talk: float = 0.4,
        mean_silence: float = 0.6,
        name: str = "voice",
    ) -> None:
        super().__init__(sim, sender, name, rng)
        if frame_interval <= 0 or frame_bytes <= 0:
            raise ValueError("frame interval and size must be positive")
        self.frame_interval = frame_interval
        self.frame_bytes = frame_bytes
        self.mean_talk = mean_talk
        self.mean_silence = mean_silence
        self.talk_spurts = 0

    def _body(self):
        payload = b"\x55" * self.frame_bytes
        while True:
            self.talk_spurts += 1
            spurt = float(self.rng.exponential(self.mean_talk))
            t = 0.0
            while t < spurt:
                self.emit(payload)
                yield self.frame_interval
                t += self.frame_interval
            yield float(self.rng.exponential(self.mean_silence))
