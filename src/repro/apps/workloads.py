"""Workload base machinery and the receive-side quality tracker."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.sim.kernel import Simulator
from repro.sim.process import Process


class AppSource:
    """Base traffic source driving one sender object.

    Subclasses implement :meth:`_body` as a generator yielding inter-send
    delays.  ``messages_sent`` / ``bytes_sent`` are maintained by
    :meth:`emit`.  Senders that are not yet established raise; sources
    tolerate that by buffering nothing — workloads are started once the
    connection callback fires (or immediately for implicit setups).
    """

    def __init__(self, sim: Simulator, sender: Any, name: str, rng: Optional[np.random.Generator] = None) -> None:
        self.sim = sim
        self.sender = sender
        self.name = name
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.messages_sent = 0
        self.bytes_sent = 0
        self.send_errors = 0
        self._proc: Optional[Process] = None

    def start(self, delay: float = 0.0) -> None:
        if self._proc is not None:
            raise RuntimeError(f"source {self.name} already started")
        self._proc = Process(self.sim, self._body, name=self.name, start_delay=delay)

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def emit(self, payload: bytes) -> None:
        try:
            self.sender.send(payload)
        except RuntimeError:
            self.send_errors += 1
            return
        self.messages_sent += 1
        self.bytes_sent += len(payload)

    def _body(self):  # pragma: no cover - overridden
        raise NotImplementedError
        yield


class DeliveryTracker:
    """Receive-side quality accounting shared by the experiments.

    Plug its :meth:`on_deliver` in as the delivery callback; it tracks
    count, bytes, latency distribution, and deadline violations — the
    application-perceived QoS that Stage II configurations are judged by.
    """

    def __init__(self, deadline: Optional[float] = None) -> None:
        self.deadline = deadline
        self.count = 0
        self.bytes = 0
        self.latencies: List[float] = []
        self.deadline_misses = 0
        self.first_at: Optional[float] = None
        self.last_at: Optional[float] = None
        self._now_fn: Optional[Callable[[], float]] = None

    def bind_clock(self, sim: Simulator) -> "DeliveryTracker":
        self._now_fn = lambda: sim.now
        return self

    def on_deliver(self, data: bytes, meta: Dict) -> None:
        self.count += 1
        self.bytes += len(data)
        lat = meta.get("latency", 0.0)
        self.latencies.append(lat)
        if self.deadline is not None and lat > self.deadline:
            self.deadline_misses += 1
        if self._now_fn is not None:
            now = self._now_fn()
            if self.first_at is None:
                self.first_at = now
            self.last_at = now

    # ------------------------------------------------------------------
    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    @property
    def p95_latency(self) -> float:
        return float(np.percentile(self.latencies, 95)) if self.latencies else 0.0

    @property
    def jitter(self) -> float:
        return float(np.std(self.latencies)) if len(self.latencies) > 1 else 0.0

    def goodput_bps(self) -> float:
        if self.first_at is None or self.last_at is None or self.last_at <= self.first_at:
            return 0.0
        return self.bytes * 8.0 / (self.last_at - self.first_at)

    def deadline_miss_rate(self) -> float:
        return self.deadline_misses / self.count if self.count else 0.0


def make_source(kind: str, sim: Simulator, sender: Any, rng=None, **kw) -> AppSource:
    """Factory over the Table 1 application kinds."""
    from repro.apps.bulk import BulkSource
    from repro.apps.control import ControlLoopSource
    from repro.apps.rpc import RequestResponseClient
    from repro.apps.telnet import TelnetSource
    from repro.apps.video import CbrVideoSource, VbrVideoSource
    from repro.apps.voice import VoiceSource

    table = {
        "voice": VoiceSource,
        "video-cbr": CbrVideoSource,
        "video-vbr": VbrVideoSource,
        "bulk": BulkSource,
        "telnet": TelnetSource,
        "rpc": RequestResponseClient,
        "control": ControlLoopSource,
    }
    cls = table.get(kind)
    if cls is None:
        raise KeyError(f"unknown workload kind {kind!r}; choose from {sorted(table)}")
    return cls(sim, sender, rng=rng, **kw)
