"""The shard worker: one kernel process speaking the epoch protocol.

Runs inside a :class:`~repro.sweep.pool.WorkerTeam` child.  The builder
(an importable module-level callable, pickled by reference) constructs
this shard's runtime — full topology, locally-owned hosts, boundary
links converted to gateway mode — and the loop then alternates with the
coordinator over the pipe:

===========================  ========================================
coordinator → worker          worker → coordinator
===========================  ========================================
(handshake)                  ``("ready", shard_id, next_event_time)``
``("epoch", H, inbound)``    ``("state", next_t, outbox, stats)``
``("finish", until, inbound)``  ``("state", next_t, outbox, stats)``
``("collect",)``             ``("result", runtime.collect())``
``("stop",)``                (exits)
===========================  ========================================

Each epoch injects the inbound cross-shard messages (future-timestamped
by construction), runs :meth:`~repro.sim.kernel.Simulator.run_until_horizon`
— events strictly before ``H`` — and returns the new outbox.  ``finish``
is the final stretch: an *inclusive* ``run(until=...)``, exactly the
serial semantics; any cross-frames it generates arrive after ``until``
by the lookahead bound, so they are provably never executed in a serial
run either.

The runtime object the builder returns needs ``sim``, ``gateway``, and
``collect()`` — see :class:`repro.core.churn.GroupedChurnScenario`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict

from repro.tko.pdu import PDU_POOL
from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY


def record_shard_metrics(shard_id: int, stats: Dict[str, Any]) -> None:
    """Export one shard's ``shard_*`` counters into the UNITES registry.

    Labelled ``shard="N"``; combined with the telemetry server's
    instance label this makes multi-process scrapes collision-free.
    """
    m = _TELEMETRY.metrics
    labels = {"shard": str(shard_id)}
    m.counter("shard_epochs_total", labels=labels,
              help="lookahead-barrier epochs this shard executed").inc(
                  stats.get("epochs", 0))
    m.counter("shard_horizon_stalls_total", labels=labels,
              help="epochs whose horizon did not advance").inc(
                  stats.get("horizon_stalls", 0))
    m.counter("shard_cross_frames_out_total", labels=labels,
              help="frames shipped across the shard boundary").inc(
                  stats.get("frames_out", 0))
    m.counter("shard_cross_frames_in_total", labels=labels,
              help="frames received across the shard boundary").inc(
                  stats.get("frames_in", 0))
    m.counter("shard_cross_bytes_out_total", labels=labels,
              help="wire bytes shipped across the shard boundary").inc(
                  stats.get("bytes_out", 0))
    m.gauge("shard_barrier_wait_seconds", labels=labels,
            help="wall-clock seconds spent blocked on the epoch barrier"
            ).set(stats.get("barrier_wait_s", 0.0))


def shard_worker_main(conn, shard_id: int, builder, builder_kw: Dict[str, Any]) -> None:
    """WorkerTeam entry point: build the shard world, then serve epochs."""
    pool0 = (PDU_POOL.acquired, PDU_POOL.recycled)
    runtime = builder(shard_id=shard_id, **builder_kw)
    sim = runtime.sim
    gateway = runtime.gateway
    epochs = 0
    barrier_wait = 0.0
    conn.send(("ready", shard_id, sim.next_event_time()))
    while True:
        w0 = perf_counter()
        msg = conn.recv()
        barrier_wait += perf_counter() - w0
        kind = msg[0]
        if kind == "epoch":
            _, horizon, inbound = msg
            gateway.inject(inbound)
            sim.run_until_horizon(horizon)
            epochs += 1
            conn.send(("state", sim.next_event_time(),
                       gateway.drain_outbox(), sim.events_dispatched))
        elif kind == "finish":
            _, until, inbound = msg
            gateway.inject(inbound)
            sim.run(until=until)
            conn.send(("state", sim.next_event_time(),
                       gateway.drain_outbox(), sim.events_dispatched))
        elif kind == "collect":
            result = dict(runtime.collect())
            result["shard_id"] = shard_id
            result["shard_epochs"] = epochs
            result["shard_barrier_wait_s"] = round(barrier_wait, 6)
            result.update(
                {f"shard_{k}": v for k, v in gateway.stats_dict().items()}
            )
            # pool-balance proof: every pooled wire reference this shard
            # acquired was released (gateway egress included)
            result["pdu_acquired"] = PDU_POOL.acquired - pool0[0]
            result["pdu_recycled"] = PDU_POOL.recycled - pool0[1]
            conn.send(("result", result))
        elif kind == "stop":
            return
        else:
            raise RuntimeError(f"shard {shard_id}: unknown message {kind!r}")
