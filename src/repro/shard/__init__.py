"""Conservative parallel simulation: one world, many kernel processes.

The scale leap the ROADMAP calls for: partition the topology into
host-group shards, run one :class:`~repro.sim.kernel.Simulator` per
worker process, and synchronize with a lookahead barrier derived from
cross-shard ``Link.delay`` — the classic Chandy–Misra–Bryant bound,
realised as a synchronous epoch protocol (no null-message flood; the
coordinator computes the global horizon each epoch).

Layout:

* :mod:`repro.shard.partition` — node-ownership plans and the lookahead
  math (:class:`ShardPlan`);
* :mod:`repro.shard.gateway` — boundary links whose far endpoint is a
  serializing proxy (:class:`GatewayLink`, :class:`ShardGateway`): frames
  cross shards via the v2 wire codec with slab-aware release on egress;
* :mod:`repro.shard.worker` — the child-process event loop speaking the
  epoch protocol over a pipe;
* :mod:`repro.shard.coordinator` — the parent-side barrier
  (:class:`ShardCoordinator`) on the shared
  :class:`~repro.sweep.pool.WorkerTeam` substrate.

Determinism contract: a sharded run is **bit-identical to a serial run**
of the same scenario and seed on the receiver-side delivery digest (see
``docs/sharding.md`` for the argument and its topology preconditions).
"""

from repro.shard.coordinator import ShardCoordinator, ShardSyncError
from repro.shard.gateway import GatewayLink, ShardGateway, make_boundary
from repro.shard.partition import PartitionError, ShardPlan

__all__ = [
    "GatewayLink",
    "PartitionError",
    "ShardCoordinator",
    "ShardGateway",
    "ShardPlan",
    "ShardSyncError",
    "make_boundary",
]
