"""Topology partitioning and lookahead for the sharded world.

Per-node ownership is the partitioning function — the same node-granular
boundary the per-host :class:`~repro.host.connmgr.ConnectionManager`
already established for connection state: every simulated entity
(host OS, protocol machines, monitors, timers) hangs off exactly one
node, so assigning nodes to shards assigns *all* mutable state to
exactly one kernel.  Links are owned by their **source** node's shard
(the single writer: only the source side enqueues, serializes, and draws
channel errors); a link whose destination lives elsewhere is a
*boundary* link, and its propagation delay is the shard's lookahead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Set, Tuple


class PartitionError(ValueError):
    """The proposed shard plan cannot yield a conservative schedule."""


@dataclass(frozen=True)
class ShardPlan:
    """An immutable node-name → shard-id assignment.

    Build one with :meth:`from_groups` (contiguous blocks of node
    groups — the churn scenario's natural shape) or pass an explicit
    ``owner`` mapping.  The plan is pure data: it is pickled into every
    worker so all shards agree on ownership without sharing objects.
    """

    n_shards: int
    owner: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise PartitionError("need at least one shard")
        for node, shard in self.owner.items():
            if not (0 <= shard < self.n_shards):
                raise PartitionError(
                    f"node {node!r} assigned to shard {shard} "
                    f"outside [0, {self.n_shards})"
                )

    # ------------------------------------------------------------------
    @classmethod
    def from_groups(
        cls, groups: Sequence[Set[str]], n_shards: int
    ) -> "ShardPlan":
        """Contiguous-block assignment: group ``g`` of ``G`` lands on
        shard ``g * n_shards // G``.

        Groups are the unit of co-location (a group's nodes always share
        a kernel); blocks are contiguous so neighbouring groups — the
        ones the churn topology wires trunks between — split across the
        fewest boundaries.
        """
        if n_shards < 1:
            raise PartitionError("need at least one shard")
        if len(groups) < n_shards:
            raise PartitionError(
                f"{len(groups)} groups cannot fill {n_shards} shards"
            )
        owner: Dict[str, int] = {}
        for g, nodes in enumerate(groups):
            shard = g * n_shards // len(groups)
            for node in nodes:
                if node in owner:
                    raise PartitionError(f"node {node!r} appears in two groups")
                owner[node] = shard
        return cls(n_shards=n_shards, owner=owner)

    # ------------------------------------------------------------------
    def shard_of(self, node: str) -> int:
        try:
            return self.owner[node]
        except KeyError:
            raise PartitionError(f"node {node!r} has no shard owner")

    def is_local(self, node: str, shard_id: int) -> bool:
        return self.shard_of(node) == shard_id

    def nodes_of(self, shard_id: int) -> List[str]:
        return sorted(n for n, s in self.owner.items() if s == shard_id)

    # ------------------------------------------------------------------
    def boundary_links(self, network) -> Dict[Tuple[str, str], Tuple[int, int]]:
        """Directed boundary links: ``(u, v) -> (src_shard, dst_shard)``.

        Every node of the network must be owned — an unowned node would
        be simulated nowhere (or twice).
        """
        out: Dict[Tuple[str, str], Tuple[int, int]] = {}
        for name in network.nodes:
            self.shard_of(name)  # raises on an orphan node
        for (u, v) in network.links:
            su, sv = self.shard_of(u), self.shard_of(v)
            if su != sv:
                out[(u, v)] = (su, sv)
        return out

    def lookahead(self, network) -> float:
        """The conservative bound: minimum boundary-link propagation delay.

        A cross-shard frame generated at time ``t`` cannot arrive before
        ``t + L`` with ``L`` this minimum, which is what lets every shard
        safely execute events strictly before ``N + L`` each epoch.  A
        zero-delay boundary link would make the bound vacuous (the
        parallel schedule could never advance), so it is rejected here,
        at plan time, not discovered as a wedged barrier at run time.
        """
        boundary = self.boundary_links(network)
        if not boundary:
            raise PartitionError("plan has no boundary links (single shard?)")
        lookahead = min(network.links[key].delay for key in boundary)
        if lookahead <= 0.0:
            offenders = sorted(
                f"{u}->{v}" for (u, v) in boundary
                if network.links[(u, v)].delay <= 0.0
            )
            raise PartitionError(
                f"zero-delay boundary link(s) {offenders} give no lookahead"
            )
        return lookahead
