"""Cross-shard frame transit: boundary links and the serializing gateway.

A boundary link's near half — queueing, serialization, channel errors,
drop accounting — runs byte-identically to a serial run on the shard
that owns the source node.  Only the final propagation step differs:
:class:`GatewayLink` overrides :meth:`~repro.netsim.link.Link._propagate`
to hand the frame to the shard's :class:`ShardGateway`, which encodes it
with the v2 wire codec (the same ``encode_frame``/``decode_frame`` pair
the real transport substrates use) and stamps its arrival time
``now + link.delay`` — exactly when the serial run's ``_arrive`` event
would have fired on the far side.

Egress release discipline mirrors
``repro.transport.fabric.RealFabric._encode_for_send``: the pooled wire
reference is consumed in a ``finally`` no matter what happens (encode
error, refusal, success), because past this point no receive path in
this process will ever release it.  The far side decodes a *fresh,
unpooled* PDU, so each shard's PDU pool balances independently
(Δrecycled == Δacquired at quiesce).

Refused at the gate, by design rather than by accident:

* **multicast** frames — the delivery tree is topology state, not frame
  state; a boundary link is strictly point-to-point (and the wire codec
  refuses multicast anyway — the gateway counts it explicitly);
* **heartbeat** frames — liveness beacons probe a *wire*, and the shard
  pipe is not the simulated wire; control-plane liveness stays local;
* payloads the codec cannot frame (counted as ``encode_errors``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.netsim.frame import (
    Frame,
    WireFormatError,
    decode_frame,
    encode_frame_into,
)
from repro.netsim.link import Link
from repro.tko.pdu import PDU

#: inbound message tuple layout (also the deterministic injection sort
#: key): (arrival_time, priority, src_shard, egress_seq, ingress_node, blob)
Message = Tuple[float, int, int, int, str, bytes]


@dataclass
class GatewayStats:
    """Per-shard transit counters (exported as ``shard_*`` metrics)."""

    frames_out: int = 0
    bytes_out: int = 0
    frames_in: int = 0
    refused_multicast: int = 0
    refused_heartbeat: int = 0
    encode_errors: int = 0


class GatewayLink(Link):
    """The near half of a boundary link.

    Created in place by :func:`make_boundary` (a class swap, so the
    link's queues, stats, RNG stream, and event chains — everything the
    serial run already computed — carry over untouched).  Frames that
    survive the channel hand themselves to the gateway instead of
    scheduling a local arrival.
    """

    gateway: "ShardGateway"
    dst_shard: int
    far_node: str

    def _propagate(self, frame: Frame) -> None:
        self.gateway.ship(self, frame)


def make_boundary(link: Link, gateway: "ShardGateway", dst_shard: int,
                  far_node: str) -> GatewayLink:
    """Convert an ordinary link into a gateway-backed boundary link."""
    link.__class__ = GatewayLink
    link.gateway = gateway
    link.dst_shard = dst_shard
    link.far_node = far_node
    return link


class ShardGateway:
    """Serializing egress/ingress proxy for one shard's boundary links.

    Egress (:meth:`ship`) accumulates wire-encoded messages in the epoch
    outbox; the worker drains it at each barrier and the coordinator
    routes messages to their destination shards.  Ingress
    (:meth:`inject`) decodes and schedules them at their stamped arrival
    time, in a deterministic global order.
    """

    def __init__(self, sim, network, shard_id: int) -> None:
        self.sim = sim
        self.network = network
        self.shard_id = shard_id
        self.stats = GatewayStats()
        self._outbox: List[Tuple[int, Message]] = []
        self._seq = 0
        self._buf = bytearray()

    # ------------------------------------------------------------------
    # egress
    # ------------------------------------------------------------------
    def ship(self, link: GatewayLink, frame: Frame) -> None:
        """Carry one frame off-shard, consuming its pooled wire reference."""
        stats = self.stats
        pdu = frame.payload if isinstance(frame.payload, PDU) else None
        try:
            if frame.multicast_dsts is not None:
                stats.refused_multicast += 1
                return
            if frame.heartbeat:
                stats.refused_heartbeat += 1
                return
            try:
                data = bytes(encode_frame_into(frame, self._buf))
            except WireFormatError:
                stats.encode_errors += 1
                return
        finally:
            if pdu is not None:
                pdu.release()  # the wire's reference, consumed either way
        stats.frames_out += 1
        stats.bytes_out += len(data)
        message: Message = (
            self.sim.now + link.delay,   # when serial _arrive would fire
            frame.priority,
            self.shard_id,
            self._seq,
            link.far_node,
            data,
        )
        self._seq += 1
        self._outbox.append((link.dst_shard, message))

    def drain_outbox(self) -> List[Tuple[int, Message]]:
        """Hand this epoch's accumulated messages to the barrier."""
        out, self._outbox = self._outbox, []
        return out

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------
    def inject(self, messages: List[Message]) -> None:
        """Decode inbound frames and schedule their arrivals.

        Sorted by ``(arrival, priority, src_shard, egress_seq)`` so the
        kernel's same-timestamp tiebreak (schedule order) is a pure
        function of message content, never of pipe timing.  The decoded
        frame is scheduled directly onto the ingress node's ``receive``
        — the continuation of the serial run's ``_arrive -> deliver``
        hand-off — at the stamped arrival time, which the lookahead
        barrier guarantees is still in this shard's future.
        """
        for arrival, _priority, _src, _seq, ingress, blob in sorted(messages):
            frame = decode_frame(blob)
            node = self.network.nodes[ingress]
            self.sim.schedule_transient_at(arrival, node.receive, frame)
            self.stats.frames_in += 1

    # ------------------------------------------------------------------
    def stats_dict(self) -> Dict[str, Any]:
        s = self.stats
        return {
            "frames_out": s.frames_out,
            "bytes_out": s.bytes_out,
            "frames_in": s.frames_in,
            "refused_multicast": s.refused_multicast,
            "refused_heartbeat": s.refused_heartbeat,
            "encode_errors": s.encode_errors,
        }
