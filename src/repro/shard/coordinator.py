"""The epoch barrier: conservative parallel scheduling over WorkerTeam.

The synchronous variant of Chandy–Misra–Bryant null messages: instead of
flooding per-link null messages, a coordinator computes, each epoch,

* ``N`` — the global minimum over every shard's next-event time and
  every still-undelivered cross-shard message's arrival time, and
* ``H = N + L`` — the horizon, with ``L`` the lookahead (minimum
  boundary-link propagation delay, :meth:`ShardPlan.lookahead`).

Every event strictly before ``H`` is safe: the earliest anything anywhere
can execute is ``N``, so the earliest message an epoch can *generate*
arrives at ``>= N + L = H``.  Workers run ``run_until_horizon(H)``, the
coordinator routes the outboxes, and the epoch repeats.  When ``H``
passes the experiment end, one inclusive final stretch
(``run(until=...)``) reproduces the serial ``run(until)`` semantics
exactly — leftover cross-frames arrive after ``until`` and would never
have executed serially either.

Liveness is enforced twice: the :class:`~repro.sweep.pool.WorkerTeam`
receive timeout catches a dead or wedged *worker*, and the coordinator's
progress check catches a wedged *barrier* (a horizon that stops
advancing with no events dispatched — e.g. a zero-lookahead cycle that
slipped past plan validation), raising :class:`ShardSyncError` instead
of spinning forever.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from repro.shard.worker import record_shard_metrics, shard_worker_main
from repro.sweep.pool import WorkerTeam


class ShardSyncError(RuntimeError):
    """The epoch barrier stopped making progress (wedged barrier)."""


class ShardCoordinator:
    """Drive ``n_shards`` worker kernels to ``until`` in lockstep epochs.

    Parameters
    ----------
    builder:
        Importable module-level callable; each worker calls
        ``builder(shard_id=i, **builder_kw)`` and gets the shard runtime
        (``sim`` / ``gateway`` / ``collect()``).
    lookahead:
        The conservative bound ``L`` — must not exceed the true minimum
        boundary-link delay of the built topology (the builder should
        derive both from the same plan; see
        :meth:`repro.shard.partition.ShardPlan.lookahead`).
    recv_timeout:
        Worker-reply budget per barrier, seconds.  Generous by default:
        it is a crash/wedge detector, not a performance target.
    """

    def __init__(
        self,
        builder: Callable[..., Any],
        builder_kw: Dict[str, Any],
        n_shards: int,
        until: float,
        lookahead: float,
        recv_timeout: float = 300.0,
        name: str = "shard",
    ) -> None:
        if n_shards < 2:
            raise ValueError("sharding needs at least two shards")
        if lookahead <= 0.0:
            raise ValueError("lookahead must be positive")
        if until <= 0.0:
            raise ValueError("until must be positive")
        self.builder = builder
        self.builder_kw = dict(builder_kw)
        self.n_shards = n_shards
        self.until = float(until)
        self.lookahead = float(lookahead)
        self.recv_timeout = float(recv_timeout)
        self.name = name
        #: filled by :meth:`run`
        self.stats: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        """Execute the world; returns per-shard results + barrier stats."""
        team = WorkerTeam(
            shard_worker_main,
            self.n_shards,
            args_for=lambda i: (self.builder, self.builder_kw),
            name=self.name,
            timeout=self.recv_timeout,
        )
        try:
            return self._drive(team)
        finally:
            team.close(farewell=("stop",))

    # ------------------------------------------------------------------
    def _drive(self, team: WorkerTeam) -> Dict[str, Any]:
        n = self.n_shards
        until, lookahead = self.until, self.lookahead
        next_ts: List[Optional[float]] = [None] * n
        for i in range(n):
            _tag, shard_id, next_t = team.recv(i)
            next_ts[shard_id] = next_t

        pending: List[List[Any]] = [[] for _ in range(n)]
        epochs = 0
        stalls = 0
        barrier_wait = 0.0
        last_n_min: Optional[float] = None
        last_events: Optional[int] = None
        # hard backstop well above any live schedule's epoch count: the
        # horizon advances by >= lookahead whenever N advances, so a
        # healthy run needs about until/lookahead epochs
        max_epochs = int(until / lookahead) * 4 + 1024

        while True:
            candidates = [t for t in next_ts if t is not None]
            candidates += [msg[0] for box in pending for msg in box]
            n_min = min(candidates) if candidates else None
            if n_min is None:
                break  # every shard idle, nothing in flight: done early
            horizon = n_min + lookahead
            if horizon > until:
                break  # the final stretch covers the rest inclusively

            if epochs >= max_epochs:
                raise ShardSyncError(
                    f"barrier exceeded {max_epochs} epochs before t={until} "
                    f"(horizon {horizon:.9f})"
                )
            for i in range(n):
                team.send(i, ("epoch", horizon, pending[i]))
                pending[i] = []
            w0 = perf_counter()
            replies = team.gather()
            barrier_wait += perf_counter() - w0
            total_events = 0
            for i, (_tag, next_t, outbox, events) in enumerate(replies):
                next_ts[i] = next_t
                total_events += events
                for dst_shard, message in outbox:
                    pending[dst_shard].append(message)
            epochs += 1
            if last_n_min is not None and n_min <= last_n_min:
                stalls += 1
                if total_events == last_events:
                    raise ShardSyncError(
                        f"wedged barrier: horizon stuck at {horizon:.9f} "
                        f"with no events dispatched (epoch {epochs})"
                    )
            last_n_min = n_min
            last_events = total_events

        # final stretch: inclusive run to the experiment end, with any
        # still-pending messages injected; frames generated here arrive
        # after `until` (lookahead bound) and are dropped with the team —
        # their pooled payload references were already consumed at egress
        for i in range(n):
            team.send(i, ("finish", until, pending[i]))
            pending[i] = []
        w0 = perf_counter()
        team.gather()
        barrier_wait += perf_counter() - w0

        results: List[Dict[str, Any]] = [{} for _ in range(n)]
        for i in range(n):
            team.send(i, ("collect",))
        for i in range(n):
            _tag, result = team.recv(i)
            results[result["shard_id"]] = result

        self.stats = {
            "n_shards": n,
            "epochs": epochs,
            "horizon_stalls": stalls,
            "barrier_wait_s": round(barrier_wait, 6),
            "lookahead": lookahead,
            "cross_frames": sum(r.get("shard_frames_out", 0) for r in results),
            "cross_bytes": sum(r.get("shard_bytes_out", 0) for r in results),
        }
        for r in results:
            record_shard_metrics(r["shard_id"], {
                "epochs": epochs,
                "horizon_stalls": stalls,
                "frames_out": r.get("shard_frames_out", 0),
                "frames_in": r.get("shard_frames_in", 0),
                "bytes_out": r.get("shard_bytes_out", 0),
                "barrier_wait_s": r.get("shard_barrier_wait_s", 0.0),
            })
        return {"shards": results, "coordinator": dict(self.stats)}
