"""Host CPU cost model.

Costs are expressed in *instructions*; the CPU converts them to virtual time
at its MIPS rating and serializes all submitted work.  The default cost
constants follow the relative magnitudes the paper cites: interrupts and
context switches are thousands of instructions (§2.2(A)(3-4): RISC machines
"penalize interrupt-driven network communication" via cache/pipeline/TLB
flushes); copying and checksumming are per-byte costs that dominate large
PDUs (§4.2.1: "memory-to-memory copying is a significant source of
transport system overhead"); header parsing is cheap when fields are
word-aligned and fixed-size, expensive otherwise (§2.2(C) footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class CpuCosts:
    """Instruction costs for the primitive host operations.

    The defaults model an early-90s RISC workstation; experiments sweep
    individual fields (e.g. ``context_switch``) to show their effect.
    """

    interrupt: int = 2500            #: NIC interrupt entry/exit
    context_switch: int = 4000       #: process/context switch to the stack
    per_byte_copy: float = 0.5       #: memory-to-memory copy, per byte
    per_byte_checksum: float = 1.0   #: software checksum, per byte
    header_parse_aligned: int = 60   #: fixed-size, word-aligned header
    header_parse_unaligned: int = 200  #: variable options, unaligned fields
    layer_fixed: int = 400           #: fixed bookkeeping per protocol layer
    virtual_dispatch: int = 12       #: one dynamically-bound mechanism call
    timer_op: int = 150              #: schedule/cancel a timer
    buffer_alloc_fixed: int = 80     #: grab a slab from a fixed-size pool
    buffer_alloc_variable: int = 300 #: exact-fit allocation bookkeeping


class Cpu:
    """An instruction-executing resource with utilization statistics.

    By default a single serialized processor.  With ``cores > 1`` it
    models the "parallel processing of protocol functions" direction the
    paper cites (§3(B)(6b), after Zitterbart/La Porta): submitted work is
    dispatched to the earliest-available core, so independent per-PDU
    processing overlaps while each unit of work remains sequential.
    """

    def __init__(
        self,
        sim: Simulator,
        mips: float = 25.0,
        costs: CpuCosts | None = None,
        cores: int = 1,
    ) -> None:
        if mips <= 0:
            raise ValueError("MIPS rating must be positive")
        if cores < 1:
            raise ValueError("need at least one core")
        self.sim = sim
        self.mips = float(mips)
        self.costs = costs or CpuCosts()
        self.cores = int(cores)
        self._busy_until = [0.0] * self.cores
        self.busy_time = 0.0
        self.instructions_retired = 0.0

    # ------------------------------------------------------------------
    def seconds_for(self, instructions: float) -> float:
        """Virtual time needed to retire ``instructions`` on one core."""
        return instructions / (self.mips * 1e6)

    def submit(self, instructions: float, fn: Callable[..., Any], *args: Any) -> float:
        """Queue ``instructions`` of work, then call ``fn(*args)``.

        Work goes to the earliest-free core (FCFS per core); with one core
        this is a plain serialized queue.  Returns the absolute completion
        time, letting callers reason about induced latency.
        """
        if instructions < 0:
            raise ValueError("instruction count cannot be negative")
        now = self.sim.now
        if self.cores == 1:
            core = 0  # the overwhelmingly common shape: skip the core scan
        else:
            core = min(range(self.cores), key=self._busy_until.__getitem__)
        start = max(now, self._busy_until[core])
        duration = self.seconds_for(instructions)
        finish = start + duration
        self._busy_until[core] = finish
        self.busy_time += duration
        self.instructions_retired += instructions
        self.sim.schedule_transient_at(finish, fn, *args)
        return finish

    def charge(self, instructions: float) -> float:
        """Retire ``instructions`` with no completion callback.

        Identical serialization accounting to :meth:`submit` — the next
        submission starts after this work drains — but no kernel event is
        scheduled, because nothing observes the completion.  This is the
        fast lane for deferred charges (e.g. a trailer checksum computed
        during serialization) whose only effect is occupying the CPU.
        """
        if instructions < 0:
            raise ValueError("instruction count cannot be negative")
        now = self.sim.now
        if self.cores == 1:
            core = 0
        else:
            core = min(range(self.cores), key=self._busy_until.__getitem__)
        start = max(now, self._busy_until[core])
        duration = self.seconds_for(instructions)
        finish = start + duration
        self._busy_until[core] = finish
        self.busy_time += duration
        self.instructions_retired += instructions
        return finish

    def utilization(self, elapsed: float) -> float:
        """Mean per-core busy fraction over ``elapsed`` wall-clock."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * self.cores))

    @property
    def backlog(self) -> float:
        """Seconds of work queued ahead of a submission made right now."""
        earliest = min(self._busy_until)
        return max(0.0, earliest - self.sim.now)
