"""Message buffer pools.

The paper's Table 2 lists "fixed-size vs. variable-sized buffer management"
as a negotiable *representation*, and §4.1.2 uses "a reduction in receiver's
buffer space" as a reconfiguration trigger.  Two pool disciplines are
provided:

* **fixed** — slab allocation: requests round up to the slab size, wasting
  internal space but costing few instructions per allocation;
* **variable** — exact-fit: no internal waste, higher per-allocation cost.

Pools have a hard byte capacity; exhaustion returns ``None`` rather than
raising, since running out of receive buffers is an ordinary condition the
flow-control and reconfiguration machinery must observe and react to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

Discipline = Literal["fixed", "variable"]


@dataclass
class Buffer:
    """A granted allocation: ``size`` requested, ``footprint`` occupied."""

    size: int
    footprint: int
    freed: bool = False


class BufferPool:
    """A bounded byte pool with fixed-slab or exact-fit allocation."""

    def __init__(
        self,
        capacity: int,
        discipline: Discipline = "variable",
        slab_size: int = 2048,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if discipline not in ("fixed", "variable"):
            raise ValueError(f"unknown discipline {discipline!r}")
        if discipline == "fixed" and slab_size <= 0:
            raise ValueError("slab size must be positive")
        self.capacity = int(capacity)
        self.discipline: Discipline = discipline
        self.slab_size = int(slab_size)
        self.in_use = 0
        self.high_water = 0
        self.allocations = 0
        self.failures = 0

    # ------------------------------------------------------------------
    def footprint_for(self, size: int) -> int:
        """Bytes a ``size``-byte request would actually occupy."""
        if self.discipline == "variable":
            return size
        slabs = -(-size // self.slab_size)  # ceil division
        return slabs * self.slab_size

    def alloc(self, size: int) -> Optional[Buffer]:
        """Allocate, or return None when the pool cannot satisfy the request."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        footprint = self.footprint_for(size)
        if self.in_use + footprint > self.capacity:
            self.failures += 1
            return None
        self.in_use += footprint
        self.high_water = max(self.high_water, self.in_use)
        self.allocations += 1
        return Buffer(size=size, footprint=footprint)

    def free(self, buf: Buffer) -> None:
        """Return an allocation to the pool (double-free is an error)."""
        if buf.freed:
            raise ValueError("double free")
        buf.freed = True
        self.in_use -= buf.footprint

    # ------------------------------------------------------------------
    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def fill_fraction(self) -> float:
        """Occupancy in [0, 1] — the buffer-pressure reconfiguration signal."""
        return self.in_use / self.capacity

    def internal_waste(self) -> int:
        """Bytes of capacity lost to slab rounding right now.

        Always zero for variable pools; for fixed pools this is the price
        paid for the cheaper allocation path (the time/space trade-off the
        SCS negotiates).
        """
        # in_use counts footprints; waste is tracked implicitly as the
        # difference accumulated by live buffers, so pools keep no per-buffer
        # registry.  Callers that need exact waste sum it over their own
        # buffers; this method reports the worst case for a full pool.
        if self.discipline == "variable":
            return 0
        return self.in_use % self.slab_size if self.in_use else 0

    def resize(self, new_capacity: int) -> None:
        """Shrink or grow the pool (shrinking below in_use is allowed and
        simply blocks new allocations until enough buffers drain) — the
        mechanism behind the "receiver buffer space reduced" callback."""
        if new_capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(new_capacity)
