"""Per-host connection management: the scale layer of Figure 3.

The paper separates a *shared control path* (MANTTS negotiation, resource
admission) from *per-connection data paths* precisely so one transport
system instance can serve many application sessions.  Until this module
the reproduction hand-assembled one connection at a time: every
``AdaptiveConnection`` owned a free-running network monitor, every guard
timer was a separate kernel event, and nothing tracked the host's
connection population as a whole.

:class:`ConnectionManager` is that missing per-host layer.  One instance
rides along with every MANTTS entity and owns:

* the **connection table** — every live ``AdaptiveConnection`` keyed by
  ref and, once established, by its ``PortTable`` demux tuple
  ``(local_port, remote_host, remote_port)``;
* **shared path probing** — raw link-walks (:func:`repro.mantts.monitor.
  probe_path`) are cached per kernel event, so N monitors watching the
  same path inside one dispatch pay for one walk (each monitor keeps its
  own EWMA fold, so per-connection smoothing is unchanged);
* **lazy monitors** — a :class:`ManagedMonitor` only arms its sampling
  tick while something consumes samples (a policy engine with rules, an
  adaptation controller, or an explicit subscriber).  Sample *phase* is
  preserved: a monitor armed late ticks on the same ``start + k·interval``
  boundaries the free-running monitor would have used;
* **timer groups** — periodic samplers and one-shot reservation guards
  that fire at the same instant share one kernel event
  (:class:`TimerGroup`), so a wave of 100 connection opens costs one
  tick event per period instead of 100;
* **Stage II memoisation** — identical ``(ACD, network-state, TSC,
  binding)`` transformations return a fresh copy of a cached SCS instead
  of re-deriving the whole configuration;
* **admission + population accounting** — per-host gauges (pending /
  open / degraded connection counts, admission accepts/rejects, timer
  occupancy) published to UNITES-X when telemetry is enabled;
* optional **NIC interrupt coalescing** (:meth:`enable_rx_batching`) —
  amortises the per-frame interrupt charge across frames arriving within
  a window.  Off by default because it changes simulated timings; the
  scale benchmark's bit-identity gate runs with it off.

``mode="legacy"`` reproduces the pre-manager behaviour exactly (plain
free-running :class:`~repro.mantts.monitor.NetworkMonitor` per
connection, no caches, plain per-guard kernel events) and is kept as the
benchmark baseline and equivalence oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.host.nic import Host
from repro.mantts.monitor import NetworkMonitor, PathProbe, probe_path
from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY

if TYPE_CHECKING:  # pragma: no cover
    from repro.mantts.acd import ACD
    from repro.mantts.adaptation import AdaptationController
    from repro.mantts.api import MANTTS, AdaptiveConnection
    from repro.mantts.monitor import NetworkState
    from repro.mantts.scs import SCS
    from repro.mantts.tsc import TSC

ConnKey = Tuple[int, str, int]

MODES = ("coalesced", "legacy")


class GroupHandle:
    """Cancellable membership of one :class:`TimerGroup` bucket."""

    __slots__ = ("group", "when", "fn", "cancelled")

    def __init__(self, group: "TimerGroup", when: float, fn: Callable[[], None]) -> None:
        self.group = group
        self.when = when
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self.group._member_cancelled(self.when)


class _PlainHandle:
    """Legacy-mode stand-in: one private kernel event, same cancel API."""

    __slots__ = ("sim", "_event")

    def __init__(self, sim, event) -> None:
        self.sim = sim
        self._event = event

    def cancel(self) -> None:
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    def _fired(self) -> None:
        self._event = None


class TimerGroup:
    """Coalesces callbacks due at the same instant onto one kernel event.

    Members join with an *absolute* fire time (:meth:`at`); all members
    sharing a fire time share one event on the PR-4 timer wheel.  Within a
    bucket, callbacks run in join order — the same relative order separate
    kernel events at an equal timestamp would have produced, so the
    coalescing is invisible to the simulation's results.
    """

    def __init__(self, sim, on_fire: Optional[Callable[[], None]] = None) -> None:
        self.sim = sim
        self._buckets: Dict[float, List[GroupHandle]] = {}
        self._events: Dict[float, object] = {}
        self._active: Dict[float, int] = {}
        self.on_fire = on_fire    #: called at the start of each bucket fire
        self.in_fire = False      #: True while a bucket's callbacks run
        self.fires = 0            #: kernel events actually dispatched
        self.calls = 0            #: member callbacks run
        self.coalesced = 0        #: callbacks that shared another's event

    def at(self, when: float, fn: Callable[[], None]) -> GroupHandle:
        """Run ``fn`` at absolute sim time ``when`` (>= now)."""
        handle = GroupHandle(self, when, fn)
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [handle]
            self._active[when] = 1
            self._events[when] = self.sim.schedule_timer(
                max(0.0, when - self.sim.now), self._fire, when
            )
        else:
            bucket.append(handle)
            self._active[when] += 1
        return handle

    def _member_cancelled(self, when: float) -> None:
        remaining = self._active.get(when)
        if remaining is None:
            return
        remaining -= 1
        self._active[when] = remaining
        if remaining <= 0:
            # last live member gone: drop the kernel event too
            event = self._events.pop(when, None)
            if event is not None:
                self.sim.cancel(event)
            self._buckets.pop(when, None)
            self._active.pop(when, None)

    def _fire(self, when: float) -> None:
        self._events.pop(when, None)
        self._active.pop(when, None)
        handles = self._buckets.pop(when, [])
        self.fires += 1
        if self.on_fire is not None:
            self.on_fire()
        ran = 0
        self.in_fire = True
        try:
            for handle in handles:
                if not handle.cancelled:
                    ran += 1
                    handle.fn()
        finally:
            self.in_fire = False
        self.calls += ran
        if ran > 1:
            self.coalesced += ran - 1

    @property
    def occupancy(self) -> int:
        """Live (uncancelled) memberships across all pending buckets."""
        return sum(self._active.values())


class ManagedMonitor(NetworkMonitor):
    """A :class:`NetworkMonitor` owned by a :class:`ConnectionManager`.

    Identical smoothing and sample semantics, with two scale properties:

    * raw path walks go through the manager's per-dispatch probe cache;
    * the periodic tick only runs while someone consumes samples.  The
      tick rides the manager's :class:`TimerGroup`, on the exact
      ``start + k·interval`` boundaries the free-running timer would hit,
      so samples that *are* delivered match the eager monitor's.
    """

    def __init__(
        self,
        manager: "ConnectionManager",
        sim,
        network,
        src: str,
        dst: str,
        interval: float = 0.1,
        conn: Optional["AdaptiveConnection"] = None,
    ) -> None:
        super().__init__(sim, network, src, dst, interval=interval)
        self.manager = manager
        self.conn = conn
        self.started = False
        self._started_at = 0.0
        self._next_tick = 0.0
        self._handle: Optional[GroupHandle] = None
        self.on_sample = _SampleHooks(self)

    # -- probe sharing --------------------------------------------------
    def _probe(self) -> PathProbe:
        return self.manager.probe(self.network, self.src, self.dst)

    # -- lazy arming ----------------------------------------------------
    @property
    def wants_samples(self) -> bool:
        """Would a delivered sample have any observable effect right now?"""
        if self.conn is None:
            return True  # stand-alone use: behave like the eager monitor
        # bound-method access builds a fresh object each time: compare by
        # equality (same function, same instance), not identity
        own = self.conn._on_network_sample
        if any(cb != own for cb in self.on_sample):
            return True
        policies = getattr(self.conn, "policies", None)
        return bool(policies is not None and policies.active)

    def start(self) -> None:
        self.started = True
        self._started_at = self.sim.now
        self._next_tick = self._started_at + self.interval
        self.poke()

    def stop(self) -> None:
        self.started = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def poke(self) -> None:
        """Re-evaluate arming (a subscriber or policy rule changed)."""
        if not self.started or self._handle is not None:
            return
        if not self.wants_samples:
            return
        # catch the phase up to the next boundary the eager monitor would
        # tick on (iterated addition matches Timer's rescheduling floats)
        now = self.sim.now
        while self._next_tick <= now:
            self._next_tick += self.interval
        self._handle = self.manager.sampler_group.at(self._next_tick, self._group_tick)

    def _group_tick(self) -> None:
        self._handle = None
        if not self.started:
            return
        # re-arm before sampling: Timer._expire schedules the next expiry
        # before running the callback, and event ordering must match
        self._next_tick += self.interval
        if self.wants_samples:
            self._handle = self.manager.sampler_group.at(
                self._next_tick, self._group_tick
            )
        self._tick()


class _SampleHooks(list):
    """``on_sample`` list that re-arms its lazy monitor when it changes."""

    __slots__ = ("_monitor",)

    def __init__(self, monitor: ManagedMonitor) -> None:
        super().__init__()
        self._monitor = monitor

    def append(self, cb) -> None:  # type: ignore[override]
        super().append(cb)
        self._monitor.poke()

    def extend(self, cbs) -> None:  # type: ignore[override]
        super().extend(cbs)
        self._monitor.poke()

    def insert(self, index, cb) -> None:  # type: ignore[override]
        super().insert(index, cb)
        self._monitor.poke()


class ConnectionManager:
    """The per-host connection table, shared caches, and timer groups."""

    def __init__(self, host: Host, mode: str = "coalesced") -> None:
        if mode not in MODES:
            raise ValueError(f"unknown manager mode {mode!r} (use one of {MODES})")
        self.host = host
        self.sim = host.sim
        self.mode = mode
        self.mantts: Optional["MANTTS"] = None

        #: every live connection handle, by ref
        self.connections: Dict[str, "AdaptiveConnection"] = {}
        #: established connections by their PortTable demux tuple
        self.by_key: Dict[ConnKey, str] = {}
        self._keys: Dict[str, ConnKey] = {}
        self.pending_refs: Set[str] = set()
        self.open_refs: Set[str] = set()
        self.degraded_refs: Set[str] = set()
        self.controllers: Dict[str, "AdaptationController"] = {}

        # lifetime totals
        self.opened_total = 0
        self.established_total = 0
        self.closed_total = 0
        self.failed_total = 0
        self.admission_accepted = 0
        self.admission_rejected = 0

        #: shared bucketed scheduler for monitor ticks + guard timers
        self.sampler_group = TimerGroup(self.sim, on_fire=self._begin_probe_batch)
        self._probe_cache: Dict[Tuple[str, str], PathProbe] = {}
        self.probe_hits = 0
        self.probe_misses = 0
        self._scs_cache: Dict[tuple, "SCS"] = {}
        self.scs_hits = 0
        self.scs_misses = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(self, mantts: "MANTTS") -> None:
        """Attach the MANTTS entity this manager serves (one per host)."""
        self.mantts = mantts

    @property
    def resources(self):
        return self.mantts.resources if self.mantts is not None else None

    # ------------------------------------------------------------------
    # shared path probing (one raw link walk per path per kernel event)
    # ------------------------------------------------------------------
    def _begin_probe_batch(self) -> None:
        self._probe_cache.clear()

    def probe(self, network, src: str, dst: str) -> PathProbe:
        """One raw path walk, shared within a coalesced tick batch.

        The cache lives only while a :class:`TimerGroup` bucket is firing:
        link state is constant inside one kernel event (all data-path
        mutation is scheduled, never synchronous), so N monitors sampling
        the same path in one batch share a single walk.  Outside a batch
        (eager Stage-II snapshots, renegotiation probes) every call walks
        fresh — there is no cross-event staleness to reason about.
        """
        if self.mode == "legacy" or not self.sampler_group.in_fire:
            return probe_path(network, src, dst)
        key = (src, dst)
        cached = self._probe_cache.get(key)
        if cached is not None:
            self.probe_hits += 1
            return cached
        raw = probe_path(network, src, dst)
        self._probe_cache[key] = raw
        self.probe_misses += 1
        return raw

    # ------------------------------------------------------------------
    # monitors
    # ------------------------------------------------------------------
    def monitor_for(
        self,
        dst: str,
        interval: float,
        conn: Optional["AdaptiveConnection"] = None,
    ) -> NetworkMonitor:
        """A path monitor from this host to ``dst``.

        Coalesced mode hands out lazy, probe-sharing
        :class:`ManagedMonitor` instances; legacy mode the historical
        free-running :class:`NetworkMonitor`.
        """
        if self.mode == "legacy":
            return NetworkMonitor(
                self.sim, self.host.network, self.host.name, dst, interval=interval
            )
        return ManagedMonitor(
            self, self.sim, self.host.network, self.host.name, dst,
            interval=interval, conn=conn,
        )

    # ------------------------------------------------------------------
    # Stage II memoisation
    # ------------------------------------------------------------------
    def scs_for(
        self,
        acd: "ACD",
        state: "NetworkState",
        tsc: "TSC",
        binding: str,
    ) -> "SCS":
        """Derive (or reuse) the Stage II transformation for ``acd``.

        Cache hits return a *fresh* SCS object (copied rationale, same
        immutable config) so later per-connection mutation — negotiation
        notes, counter-proposal merges — never leaks across connections.
        """
        from repro.mantts.transform import specify_scs

        if self.mode == "legacy":
            return specify_scs(acd, state, tsc=tsc, binding=binding)
        try:
            key = (acd, state, tsc, binding)
            cached = self._scs_cache.get(key)
        except TypeError:  # unhashable ACD payload (callable-free rule data)
            return specify_scs(acd, state, tsc=tsc, binding=binding)
        if cached is None:
            cached = specify_scs(acd, state, tsc=tsc, binding=binding)
            self._scs_cache[key] = cached
            self.scs_misses += 1
        else:
            self.scs_hits += 1
        return cached.clone()

    # ------------------------------------------------------------------
    # coalesced one-shot timers (reservation guards etc.)
    # ------------------------------------------------------------------
    def defer(self, delay: float, fn: Callable[[], None]):
        """Run ``fn`` after ``delay``; equal deadlines share one event."""
        if self.mode == "legacy":
            handle = _PlainHandle(self.sim, None)

            def run() -> None:
                handle._fired()
                fn()

            handle._event = self.sim.schedule_timer(delay, run)
            return handle
        return self.sampler_group.at(self.sim.now + delay, fn)

    # ------------------------------------------------------------------
    # connection table + lifecycle accounting
    # ------------------------------------------------------------------
    def connection_opening(self, conn: "AdaptiveConnection") -> None:
        self.connections[conn.ref] = conn
        self.pending_refs.add(conn.ref)
        self.opened_total += 1
        self._publish()

    def connection_established(self, conn: "AdaptiveConnection") -> None:
        self.pending_refs.discard(conn.ref)
        self.open_refs.add(conn.ref)
        self.established_total += 1
        session = conn.session
        if session is not None:
            key = (session.local_port, session.remote_host, session.remote_port)
            self.by_key[key] = conn.ref
            self._keys[conn.ref] = key
        self._publish()

    def connection_closed(self, conn: "AdaptiveConnection") -> None:
        self._drop(conn.ref)
        self.closed_total += 1
        self._publish()

    def connection_failed(self, conn: "AdaptiveConnection") -> None:
        self._drop(conn.ref)
        self.failed_total += 1
        self._publish()

    def _drop(self, ref: str) -> None:
        self.connections.pop(ref, None)
        self.pending_refs.discard(ref)
        self.open_refs.discard(ref)
        self.degraded_refs.discard(ref)
        self.controllers.pop(ref, None)
        key = self._keys.pop(ref, None)
        if key is not None:
            self.by_key.pop(key, None)

    def lookup(self, local_port: int, remote_host: str, remote_port: int):
        """The established connection owning a demux tuple, if any."""
        ref = self.by_key.get((local_port, remote_host, remote_port))
        return self.connections.get(ref) if ref is not None else None

    # ------------------------------------------------------------------
    # admission + adaptation accounting
    # ------------------------------------------------------------------
    def note_admission(self, verdict: str) -> None:
        if verdict == "accept":
            self.admission_accepted += 1
        else:
            self.admission_rejected += 1
        self._publish()

    def register_controller(self, controller: "AdaptationController") -> None:
        """Adaptation controllers attach here instead of free-floating."""
        self.controllers[controller.conn.ref] = controller

    def note_degraded(self, conn: "AdaptiveConnection", degraded: bool) -> None:
        if degraded:
            self.degraded_refs.add(conn.ref)
        else:
            self.degraded_refs.discard(conn.ref)
        self._publish()

    # ------------------------------------------------------------------
    # NIC/CPU batching (opt-in: changes simulated timings)
    # ------------------------------------------------------------------
    def enable_rx_batching(self, window: float = 2e-4) -> None:
        """Coalesce receive interrupts within ``window`` seconds.

        Frames arriving while a window is open skip the per-frame
        interrupt charge (they ride the first frame's interrupt), paying
        only the context switch — the §2.2(A)(3) amortisation.  This is a
        *model change*: simulated timings shift, so it stays off for
        equivalence checks and is enabled explicitly per experiment.
        """
        self.host.rx_coalesce_window = float(window)

    def disable_rx_batching(self) -> None:
        self.host.rx_coalesce_window = 0.0

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def table(self) -> List[Dict[str, object]]:
        """The live connection table as plain rows (telemetry endpoint).

        Each row carries the ref, lifecycle state, demux tuple (once
        established), current adaptation rung, and — when the audit plane
        is on — the connection's conformance score and violation count.
        Read-only: building the table never touches protocol state.
        """
        from repro.mantts.adaptation import LEVELS as _LEVELS
        from repro.unites.obs.audit import AUDIT as _AUDIT

        rows: List[Dict[str, object]] = []
        for ref in sorted(self.connections):
            row: Dict[str, object] = {
                "ref": ref,
                "host": self.host.name,
                "state": (
                    "pending" if ref in self.pending_refs
                    else "degraded" if ref in self.degraded_refs
                    else "open" if ref in self.open_refs
                    else "closing"
                ),
            }
            key = self._keys.get(ref)
            if key is not None:
                row["local_port"], row["remote_host"], row["remote_port"] = key
            ctrl = self.controllers.get(ref)
            if ctrl is not None:
                row["adaptation_level"] = _LEVELS[ctrl.level]
            auditor = _AUDIT.auditors.get(ref) if _AUDIT.enabled else None
            if auditor is not None:
                row["qos_score"] = round(auditor.overall_score, 4)
                row["qos_violations"] = len(auditor.violations)
            rows.append(row)
        return rows

    def audit_scorecards(self) -> List[Dict[str, object]]:
        """Conformance scorecards for this host's audited connections."""
        from repro.unites.obs.audit import AUDIT as _AUDIT

        return [
            _AUDIT.auditors[ref].scorecard()
            for ref in sorted(self.connections)
            if ref in _AUDIT.auditors
        ]

    def snapshot(self) -> Dict[str, float]:
        """The per-host gauge set (also what UNITES publishes)."""
        return {
            "conn_pending": float(len(self.pending_refs)),
            "conn_open": float(len(self.open_refs)),
            "conn_degraded": float(len(self.degraded_refs)),
            "conn_opened_total": float(self.opened_total),
            "conn_established_total": float(self.established_total),
            "conn_closed_total": float(self.closed_total),
            "conn_failed_total": float(self.failed_total),
            "admission_accepted": float(self.admission_accepted),
            "admission_rejected": float(self.admission_rejected),
            "timer_group_occupancy": float(self.sampler_group.occupancy),
            "timer_group_coalesced": float(self.sampler_group.coalesced),
            "probe_cache_hits": float(self.probe_hits),
            "scs_cache_hits": float(self.scs_hits),
        }

    def _publish(self) -> None:
        if not _TELEMETRY.enabled:
            return
        metrics = _TELEMETRY.metrics
        labels = {"host": self.host.name}
        metrics.gauge(
            "connmgr_pending_connections", labels=labels,
            help="connections in establishment on this host",
        ).set(len(self.pending_refs))
        metrics.gauge(
            "connmgr_open_connections", labels=labels,
            help="established connections on this host",
        ).set(len(self.open_refs))
        metrics.gauge(
            "connmgr_degraded_connections", labels=labels,
            help="connections currently at the degraded adaptation level",
        ).set(len(self.degraded_refs))
        metrics.gauge(
            "connmgr_timer_group_occupancy", labels=labels,
            help="live memberships across the host's coalesced timer buckets",
        ).set(self.sampler_group.occupancy)
        metrics.counter(
            "connmgr_admission_decisions_total",
            labels={**labels, "verdict": "accept"},
            help="admission verdicts recorded by the connection manager",
        ).value = float(self.admission_accepted)
        metrics.counter(
            "connmgr_admission_decisions_total",
            labels={**labels, "verdict": "reject"},
            help="admission verdicts recorded by the connection manager",
        ).value = float(self.admission_rejected)
        from repro.unites.obs.audit import AUDIT as _AUDIT

        if _AUDIT.enabled:
            audited = [
                _AUDIT.auditors[ref]
                for ref in self.connections
                if ref in _AUDIT.auditors
            ]
            metrics.gauge(
                "connmgr_audited_connections", labels=labels,
                help="live connections with a QoS conformance auditor attached",
            ).set(len(audited))
            metrics.gauge(
                "connmgr_qos_violations_open", labels=labels,
                help="QoS violations recorded against this host's live connections",
            ).set(sum(len(a.violations) for a in audited))

    def __len__(self) -> int:
        return len(self.connections)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ConnectionManager {self.host.name} mode={self.mode} "
            f"pending={len(self.pending_refs)} open={len(self.open_refs)}>"
        )
