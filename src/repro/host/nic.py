"""End-system host: CPU + buffers + ports + network attachment.

A ``Host`` is the environment a transport system configuration executes in.
It charges the OS-level costs the paper blames for the throughput
preservation problem: a NIC interrupt per received frame plus a context
switch to hand the frame to protocol code (§2.2(A)(3)), and an interrupt's
worth of device programming per transmitted frame.  Everything above that —
headers, checksums, copies, timers — is charged by the transport
configuration itself through ``host.cpu``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.host.buffers import BufferPool
from repro.host.cpu import Cpu, CpuCosts
from repro.netsim.frame import Frame
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerWheel
from repro.host.ports import PortTable


class Host:
    """A named end system attached to one network fabric.

    ``network`` is any object with the fabric surface (``attach_host`` /
    ``detach_host`` / ``send`` / groups / path characteristics): the
    simulated :class:`~repro.netsim.network.Network`, or a real
    substrate's :class:`~repro.transport.fabric.RealFabric`.  The host —
    and every protocol layer above it — is substrate-blind.
    """

    def __init__(
        self,
        sim: Simulator,
        network,
        name: str,
        mips: float = 25.0,
        costs: Optional[CpuCosts] = None,
        buffer_capacity: int = 1 << 20,
        buffer_discipline: str = "variable",
        cores: int = 1,
    ) -> None:
        self.sim = sim
        self.network = network
        self.name = name
        self.cpu = Cpu(sim, mips=mips, costs=costs, cores=cores)
        self.buffers = BufferPool(buffer_capacity, discipline=buffer_discipline)  # type: ignore[arg-type]
        self.ports = PortTable()
        self.timers = TimerWheel(sim)
        # Imported lazily: repro.tko depends on repro.host at import time.
        from repro.tko.message import CopyMeter

        #: shared accounting of real payload copies on this host (E8)
        self.copy_meter = CopyMeter()
        self.protocol_entry: Optional[Callable[[Frame], None]] = None
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_discarded = 0
        #: receive-interrupt coalescing window, seconds; 0 = off (default).
        #: While a window is open, further arrivals skip the per-frame
        #: interrupt charge (§2.2(A)(3) amortisation).  Opt-in via
        #: ``ConnectionManager.enable_rx_batching`` — it changes simulated
        #: timings, so equivalence baselines keep it off.
        self.rx_coalesce_window = 0.0
        self._rx_window_until = 0.0
        self.rx_coalesced_frames = 0
        network.attach_host(name, self._on_frame)

    # ------------------------------------------------------------------
    # outbound
    # ------------------------------------------------------------------
    def transmit(self, frame: Frame, extra_instructions: float = 0.0) -> None:
        """Queue a frame for transmission.

        Charges one interrupt (device programming) plus any
        ``extra_instructions`` of protocol processing the caller accounts
        for this frame, then injects into the network.
        """
        cost = self.cpu.costs.interrupt + extra_instructions
        self.frames_sent += 1
        self.cpu.submit(cost, self.network.send, frame)

    # ------------------------------------------------------------------
    # inbound
    # ------------------------------------------------------------------
    def register_protocol_entry(self, entry: Callable[[Frame], None]) -> None:
        """Register the protocol graph's frame intake (one per host)."""
        if self.protocol_entry is not None:
            raise ValueError(f"host {self.name} already has a protocol entry")
        self.protocol_entry = entry

    def _on_frame(self, frame: Frame) -> None:
        self.frames_received += 1
        if self.protocol_entry is None:
            self.frames_discarded += 1
            return
        cost = self.cpu.costs.interrupt + self.cpu.costs.context_switch
        if self.rx_coalesce_window > 0.0:
            now = self.sim.now
            if now < self._rx_window_until:
                # riding the window-opening frame's interrupt: only the
                # context switch to protocol code is charged
                cost = self.cpu.costs.context_switch
                self.rx_coalesced_frames += 1
            else:
                self._rx_window_until = now + self.rx_coalesce_window
        self.cpu.submit(cost, self.protocol_entry, frame)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} mips={self.cpu.mips}>"
