"""Host operating-system model.

The paper's "transport system factors" (§1) — CPU speed, interrupt and
context-switch overhead, memory-to-memory copying, message buffering — are
modelled here.  The host CPU is a serialized resource: every per-packet
protocol processing step costs instructions, instructions take virtual time
at the host's MIPS rating, and concurrent work queues up.  This is what
makes the *throughput preservation problem* (§2.1(A)) reproducible: raise
the channel rate and the delivered application throughput saturates at what
the host-side protocol processing can sustain.
"""

from repro.host.cpu import Cpu, CpuCosts
from repro.host.buffers import Buffer, BufferPool
from repro.host.ports import PortTable
from repro.host.nic import Host

__all__ = ["Cpu", "CpuCosts", "Buffer", "BufferPool", "PortTable", "Host"]
