"""Transport-layer port table and demultiplexing.

One of the "medium-granularity" services the paper's TKO protocol
architecture insulates sessions from (§4.2.1): mapping an arriving PDU to
the session that owns it.  Lookups match the most specific binding first:

1. a *connected* binding ``(local_port, remote_host, remote_port)``;
2. a *listening* binding ``(local_port, *, *)``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

ConnKey = Tuple[int, str, int]


class PortExhaustedError(RuntimeError):
    """Every port in the ephemeral range is currently bound."""


class PortTable:
    """Per-host registry mapping ports/connections to session objects."""

    #: first port handed out by :meth:`ephemeral_port`
    EPHEMERAL_BASE = 32768
    #: one past the last ephemeral port (the Linux default upper bound)
    EPHEMERAL_LIMIT = 61000

    def __init__(
        self,
        ephemeral_base: Optional[int] = None,
        ephemeral_limit: Optional[int] = None,
    ) -> None:
        self._listeners: Dict[int, Any] = {}
        self._connections: Dict[ConnKey, Any] = {}
        #: local-port -> number of live connection bindings using it
        self._local_refs: Dict[int, int] = {}
        self.ephemeral_base = (
            ephemeral_base if ephemeral_base is not None else self.EPHEMERAL_BASE
        )
        self.ephemeral_limit = (
            ephemeral_limit if ephemeral_limit is not None else self.EPHEMERAL_LIMIT
        )
        if self.ephemeral_limit <= self.ephemeral_base:
            raise ValueError("ephemeral range is empty")
        self._next_ephemeral = self.ephemeral_base

    # ------------------------------------------------------------------
    def listen(self, port: int, owner: Any) -> None:
        """Bind a wildcard listener on ``port``."""
        if port in self._listeners:
            raise ValueError(f"port {port} already has a listener")
        self._listeners[port] = owner

    def connect(self, local_port: int, remote_host: str, remote_port: int, owner: Any) -> None:
        """Bind a fully-qualified connection tuple."""
        key = (local_port, remote_host, remote_port)
        if key in self._connections:
            raise ValueError(f"connection {key} already bound")
        self._connections[key] = owner
        self._local_refs[local_port] = self._local_refs.get(local_port, 0) + 1

    def release(self, local_port: int, remote_host: Optional[str] = None,
                remote_port: Optional[int] = None) -> None:
        """Remove a binding; connection tuples and listeners independently.

        Releasing the last binding on a local port returns the port to the
        ephemeral pool (teardown frees ports — §4.1.3's "releases
        resources" includes communication ports).
        """
        if remote_host is None:
            self._listeners.pop(local_port, None)
        else:
            key = (local_port, remote_host, int(remote_port or 0))
            if self._connections.pop(key, None) is not None:
                refs = self._local_refs.get(local_port, 0) - 1
                if refs > 0:
                    self._local_refs[local_port] = refs
                else:
                    self._local_refs.pop(local_port, None)

    # ------------------------------------------------------------------
    def demux(self, local_port: int, remote_host: str, remote_port: int) -> Optional[Any]:
        """Most-specific-match lookup for an arriving PDU."""
        owner = self._connections.get((local_port, remote_host, remote_port))
        if owner is not None:
            return owner
        return self._listeners.get(local_port)

    def ephemeral_port(self) -> int:
        """Hand out a free client-side port number.

        Walks the ephemeral range from the last handout, wrapping around
        and skipping ports still bound (as a listener or by any live
        connection tuple); raises :class:`PortExhaustedError` when every
        port in the range is in use.
        """
        span = self.ephemeral_limit - self.ephemeral_base
        for _ in range(span):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= self.ephemeral_limit:
                self._next_ephemeral = self.ephemeral_base
            if port not in self._listeners and port not in self._local_refs:
                return port
        raise PortExhaustedError(
            f"all {span} ephemeral ports "
            f"[{self.ephemeral_base}, {self.ephemeral_limit}) are bound"
        )

    def port_in_use(self, port: int) -> bool:
        """Whether any binding (listener or connection) holds ``port``."""
        return port in self._listeners or port in self._local_refs

    def __len__(self) -> int:
        return len(self._listeners) + len(self._connections)
