"""Transport-layer port table and demultiplexing.

One of the "medium-granularity" services the paper's TKO protocol
architecture insulates sessions from (§4.2.1): mapping an arriving PDU to
the session that owns it.  Lookups match the most specific binding first:

1. a *connected* binding ``(local_port, remote_host, remote_port)``;
2. a *listening* binding ``(local_port, *, *)``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

ConnKey = Tuple[int, str, int]


class PortTable:
    """Per-host registry mapping ports/connections to session objects."""

    #: first port handed out by :meth:`ephemeral_port`
    EPHEMERAL_BASE = 32768

    def __init__(self) -> None:
        self._listeners: Dict[int, Any] = {}
        self._connections: Dict[ConnKey, Any] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE

    # ------------------------------------------------------------------
    def listen(self, port: int, owner: Any) -> None:
        """Bind a wildcard listener on ``port``."""
        if port in self._listeners:
            raise ValueError(f"port {port} already has a listener")
        self._listeners[port] = owner

    def connect(self, local_port: int, remote_host: str, remote_port: int, owner: Any) -> None:
        """Bind a fully-qualified connection tuple."""
        key = (local_port, remote_host, remote_port)
        if key in self._connections:
            raise ValueError(f"connection {key} already bound")
        self._connections[key] = owner

    def release(self, local_port: int, remote_host: Optional[str] = None,
                remote_port: Optional[int] = None) -> None:
        """Remove a binding; connection tuples and listeners independently."""
        if remote_host is None:
            self._listeners.pop(local_port, None)
        else:
            self._connections.pop((local_port, remote_host, int(remote_port or 0)), None)

    # ------------------------------------------------------------------
    def demux(self, local_port: int, remote_host: str, remote_port: int) -> Optional[Any]:
        """Most-specific-match lookup for an arriving PDU."""
        owner = self._connections.get((local_port, remote_host, remote_port))
        if owner is not None:
            return owner
        return self._listeners.get(local_port)

    def ephemeral_port(self) -> int:
        """Hand out a fresh client-side port number."""
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def __len__(self) -> int:
        return len(self._listeners) + len(self._connections)
