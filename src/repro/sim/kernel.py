"""Core discrete-event simulation kernel.

The kernel is allocation-light and cancellation-tolerant.  Pending events
live in two structures ordered by ``(time, priority, seq)``:

* a **binary heap** — the general store for events that usually fire
  (frame arrivals, CPU completions, workload wake-ups);
* a **hierarchical timer wheel** in front of the heap — the home of the
  cancel-heavy timer class (retransmission, delayed-ACK, keepalive,
  monitor timers routed through :meth:`Simulator.schedule_timer`).  A
  wheel-parked timer that is cancelled dies in O(1) *without ever
  touching the heap*: no ``heappush``, no lazy-deletion pop later.  Only
  timers that survive long enough to become imminent are flushed into
  the heap, which restores the exact ``(time, priority, seq)`` total
  order — every seeded experiment reproduces bit-identically with the
  wheel on or off (``legacy=True`` disables the whole fast path and is
  the baseline that ``benchmarks/record_bench.py`` measures against).

The ``seq`` field guarantees a deterministic total order for simultaneous
events, which is what makes every experiment in :mod:`benchmarks` exactly
repeatable — the property the paper's UNITES subsystem calls *controlled,
empirical experimentation* (§4.3).

Heap-resident events still cancel lazily (marked, skipped when popped),
but the queue now **compacts** the heap in place when cancelled entries
come to dominate it, so pathological churn cannot grow the heap without
bound.  A free-list recycles the ``Event`` records of the pooled
scheduling APIs (``schedule_timer`` / ``schedule_transient``) so the
steady-state schedule/cancel cycle stops allocating.

See ``docs/performance.md`` for the design rationale, the compaction
policy, and the determinism argument.
"""

from __future__ import annotations

import heapq
import math
from heapq import heappop as _heappop, heappush as _heappush
from time import perf_counter
from typing import Any, Callable, Iterable, Optional

from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling into the past, re-running, ...)."""


class Event:
    """A single scheduled occurrence.

    Attributes
    ----------
    time:
        Absolute virtual time (seconds) at which the event fires.
    priority:
        Secondary ordering key; lower fires first among same-time events.
    seq:
        Kernel-assigned monotone sequence number — the final tie-breaker that
        makes simultaneous-event ordering deterministic.
    fn / args:
        Callback invoked as ``fn(*args)`` when the event fires.
    pooled:
        Kernel-internal: the record returns to the free-list once retired.
        Pooled handles must not be used after their event fires.
    wheeled:
        Kernel-internal: the event is currently parked in the timer wheel
        (cleared when it is flushed into the heap).
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled",
                 "pooled", "wheeled", "chain")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.pooled = False
        self.wheeled = False
        #: kernel-internal: set on an EventChain's sentinel record so the
        #: dispatch loops re-arm (or batch-drain) the chain after firing
        self.chain = None

    def cancel(self) -> None:
        """Mark the event so the kernel skips it (idempotent, O(1))."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} prio={self.priority} seq={self.seq} {state}>"


#: finest wheel granularity — 1/1024 s is binary-exact, so bucket starts
#: and the flush horizon stay drift-free under float arithmetic
WHEEL_GRANULARITY = 1.0 / 1024.0
#: buckets a level spans before an event escalates to the next level
WHEEL_SPAN = 64
#: level granularities: ~1 ms, 62.5 ms, 4 s (sparse dict buckets make the
#: top level's horizon effectively unbounded)
WHEEL_LEVELS = 3

#: heap compaction: rebuild in place once at least this many cancelled
#: entries sit in the heap AND they are at least half of its depth
COMPACT_MIN_CANCELLED = 512

#: free-list bound: recycled Event records kept for reuse
FREELIST_MAX = 4096


class HierarchicalTimerWheel:
    """Sparse hierarchical timer wheel for the cancel-heavy timer class.

    Buckets are ``dict[int, list[Event]]`` keyed by ``floor(time / g)`` per
    level (granularity ``g`` multiplies by :data:`WHEEL_SPAN` each level),
    with a per-level heap of occupied bucket indices, so the wheel is O(1)
    to insert and O(1) to cancel regardless of horizon.

    ``flushed_until`` is the g0-aligned horizon below which every surviving
    event has already been flushed into the binary heap.  The invariant —
    *every wheel-parked event's time is ≥ ``flushed_until``* — is what lets
    the queue pop the heap top without looking at the wheel whenever that
    top is strictly inside the horizon, and it is why wheel routing cannot
    perturb the ``(time, priority, seq)`` total order: events always fire
    from the heap, and they are flushed into it strictly before any event
    at their time can be popped.
    """

    __slots__ = ("granularities", "_buckets", "_occupied", "flushed_until",
                 "min_start", "live", "cancelled_killed", "flushed", "inserted")

    def __init__(self) -> None:
        self.granularities = tuple(
            WHEEL_GRANULARITY * (WHEEL_SPAN ** lvl) for lvl in range(WHEEL_LEVELS)
        )
        self._buckets = tuple({} for _ in range(WHEEL_LEVELS))
        self._occupied = tuple([] for _ in range(WHEEL_LEVELS))
        self.flushed_until = 0.0
        #: cached earliest occupied-bucket start (inf when empty): a pop
        #: can take the heap top without touching the wheel whenever
        #: ``top.time < min_start`` — O(1) instead of a per-pop level scan
        self.min_start = float("inf")
        #: live (non-cancelled) events currently parked in the wheel
        self.live = 0
        #: timers that died in O(1) while parked (never touched the heap)
        self.cancelled_killed = 0
        #: live events flushed from wheel to heap (survived to imminence)
        self.flushed = 0
        #: total accepted insertions
        self.inserted = 0

    # ------------------------------------------------------------------
    def insert(self, ev: Event) -> bool:
        """Park ``ev``; False means the caller must heap it instead.

        Rejection happens only when the event lands inside (or in a bucket
        spanning) the already-flushed horizon — those few go straight to
        the heap to preserve the flush invariant.
        """
        t = ev.time
        fu = self.flushed_until
        if t < fu:
            return False
        delta = t - fu
        lvl = WHEEL_LEVELS - 1
        for i, g in enumerate(self.granularities):
            if delta < g * WHEEL_SPAN:
                lvl = i
                break
        g = self.granularities[lvl]
        idx = int(t / g)
        if idx * g < fu:
            # bucket straddles the flushed horizon — heap it
            return False
        buckets = self._buckets[lvl]
        bucket = buckets.get(idx)
        if bucket is None:
            buckets[idx] = bucket = [ev]
            _heappush(self._occupied[lvl], idx)
            start = idx * g
            if start < self.min_start:
                self.min_start = start
        else:
            bucket.append(ev)
        ev.wheeled = True
        self.live += 1
        self.inserted += 1
        return True

    def note_cancel(self, ev: Event) -> None:
        """A parked event was cancelled: it is dead, O(1), no heap contact.

        The record stays in its bucket (recycled when the bucket drains) —
        removing it here would cost a bucket scan, and recycling it early
        would let a reused record be flushed twice.
        """
        ev.wheeled = False
        self.live -= 1
        self.cancelled_killed += 1

    def min_occupied_start(self) -> Optional[float]:
        """Earliest occupied bucket's start time across levels, or None.

        Recomputes (and recaches) ``min_start`` — callers on the hot path
        read the cached attribute instead.
        """
        best = None
        for lvl, g in enumerate(self.granularities):
            occ = self._occupied[lvl]
            buckets = self._buckets[lvl]
            while occ and occ[0] not in buckets:
                _heappop(occ)  # stale index from a drained bucket
            if occ:
                s = occ[0] * g
                if best is None or s < best:
                    best = s
        self.min_start = best if best is not None else float("inf")
        return best

    def advance(self, target: float, queue: "EventQueue") -> None:
        """Flush every bucket that can hold events at or before ``target``.

        Surviving events either re-park in a finer bucket (cascade) or get
        pushed into ``queue``'s heap; cancelled events are discarded (and
        recycled when pooled) without ever touching the heap.  On return
        ``flushed_until`` is the next g0 boundary strictly past ``target``.
        """
        g0 = self.granularities[0]
        new_fu = g0 * (int(target / g0) + 1)
        if new_fu <= self.flushed_until:
            return
        self.flushed_until = new_fu
        heap = queue._heap
        for lvl in range(WHEEL_LEVELS - 1, -1, -1):
            g = self.granularities[lvl]
            occ = self._occupied[lvl]
            buckets = self._buckets[lvl]
            while occ and occ[0] * g < new_fu:
                idx = _heappop(occ)
                bucket = buckets.pop(idx, None)
                if bucket is None:
                    continue  # stale index: bucket drained earlier
                for ev in bucket:
                    if ev.cancelled:
                        if ev.wheeled:
                            # cancelled via Event.cancel() directly, the
                            # queue was never notified — settle the books
                            ev.wheeled = False
                            self.live -= 1
                            self.cancelled_killed += 1
                        queue._retire(ev)
                        continue
                    self.live -= 1
                    ev.wheeled = False
                    if ev.time >= new_fu and self.insert(ev):
                        continue  # cascaded into a finer bucket
                    self.flushed += 1
                    _heappush(heap, ev)
        self.min_occupied_start()  # recache min_start after the drain


class EventQueue:
    """Pending-event set: binary heap + hierarchical timer wheel.

    ``popped_live`` / ``skipped_cancelled`` count how many heap pops
    returned a live event vs. discarded a lazily-deleted one — their ratio
    is the kernel's *lazy-deletion ratio*, a direct measure of timer churn
    that escaped the wheel.  With retransmission-class timers routed
    through :meth:`push_timer` the ratio collapses, because cancelled
    timers die in the wheel (``wheel.cancelled_killed``) instead of being
    popped.  Heap-resident cancellations are compacted away in place when
    they cross :data:`COMPACT_MIN_CANCELLED` and half the heap depth.
    """

    __slots__ = ("_heap", "_live", "_heap_cancelled", "popped_live",
                 "skipped_cancelled", "compactions", "compacted_events",
                 "wheel", "_free", "_compact_enabled")

    def __init__(self, compact: bool = True) -> None:
        self._heap: list[Event] = []
        self._live = 0
        self._heap_cancelled = 0
        self.popped_live = 0
        self.skipped_cancelled = 0
        self.compactions = 0
        self.compacted_events = 0
        self.wheel = HierarchicalTimerWheel()
        self._free: list[Event] = []
        self._compact_enabled = compact

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)
        self._live += 1

    def push_timer(self, event: Event) -> None:
        """Route a cancel-heavy timer event through the wheel."""
        if self.wheel.insert(event):
            self._live += 1
        else:
            self.push(event)

    # ------------------------------------------------------------------
    # free-list
    # ------------------------------------------------------------------
    def _retire(self, ev: Event) -> None:
        """Return a retired pooled record to the free-list (refs dropped)."""
        if ev.pooled:
            ev.fn = None
            ev.args = ()
            free = self._free
            if len(free) < FREELIST_MAX:
                free.append(ev)

    def alloc(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        pooled: bool,
    ) -> Event:
        """Build (or recycle) an Event record."""
        if pooled and self._free:
            ev = self._free.pop()
            ev.time = time
            ev.priority = priority
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
            ev.wheeled = False
            return ev
        ev = Event(time, priority, seq, fn, args)
        ev.pooled = pooled
        return ev

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def note_cancel(self) -> None:
        """Inform the queue that one of its heap events was cancelled."""
        self._live -= 1
        self._heap_cancelled += 1

    def note_cancel_event(self, ev: Event) -> None:
        """Cancellation with the event in hand: wheel kills are O(1)."""
        self._live -= 1
        if ev.wheeled:
            self.wheel.note_cancel(ev)
        else:
            self._heap_cancelled += 1
            if (
                self._compact_enabled
                and self._heap_cancelled >= COMPACT_MIN_CANCELLED
                and self._heap_cancelled * 2 >= len(self._heap)
            ):
                self._compact()

    def _compact(self) -> None:
        """Rebuild the heap in place, shedding cancelled entries.

        In-place (``heap[:] = ...``) so aliases held by the inlined run
        loop stay valid.
        """
        heap = self._heap
        removed = 0
        live: list[Event] = []
        for ev in heap:
            if ev.cancelled:
                removed += 1
                self._retire(ev)
            else:
                live.append(ev)
        heap[:] = live
        heapq.heapify(heap)
        self._heap_cancelled = 0
        self.compactions += 1
        self.compacted_events += removed

    # ------------------------------------------------------------------
    # extraction
    # ------------------------------------------------------------------
    def _front(self) -> Optional[Event]:
        """Expose the global earliest live event at ``_heap[0]``.

        Skips cancelled heap tops and flushes the wheel just far enough to
        guarantee no parked timer could precede the heap top.  Returns the
        event (still heap-resident) or None when nothing is pending.
        """
        heap = self._heap
        wheel = self.wheel
        while True:
            while heap:
                ev = heap[0]
                if ev.cancelled:
                    _heappop(heap)
                    self.skipped_cancelled += 1
                    if self._heap_cancelled > 0:
                        self._heap_cancelled -= 1
                    self._retire(ev)
                else:
                    break
            if not wheel.live:
                return heap[0] if heap else None
            if heap:
                top = heap[0]
                if top.time < wheel.flushed_until:
                    return top
                # flush only as far as the earliest contender requires;
                # min_start is the cached earliest occupied-bucket start
                start = wheel.min_start
                if top.time < start:
                    return top
                wheel.advance(start if start < top.time else top.time, self)
            else:
                start = wheel.min_start
                if start == float("inf"):
                    # cache says empty but live > 0 would contradict it;
                    # recompute defensively before concluding
                    if wheel.min_occupied_start() is None:
                        return None
                    start = wheel.min_start
                wheel.advance(start, self)

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if empty."""
        ev = self._front()
        if ev is None:
            return None
        _heappop(self._heap)
        self._live -= 1
        self.popped_live += 1
        return ev

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None."""
        ev = self._front()
        return ev.time if ev is not None else None

    # ------------------------------------------------------------------
    @property
    def heap_depth(self) -> int:
        """Physical heap size, cancelled entries included."""
        return len(self._heap)

    @property
    def lazy_deletion_ratio(self) -> float:
        """Fraction of heap pops that discarded a cancelled event."""
        total = self.popped_live + self.skipped_cancelled
        return self.skipped_cancelled / total if total else 0.0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class RepeatingEvent:
    """Cancellable handle for :meth:`Simulator.call_each`.

    Each tick reschedules internally, so a raw :class:`Event` handle would
    go stale after the first interval (cancelling it then leaked the live
    tick).  This handle always tracks the *current* pending event, so
    :meth:`cancel` — directly or via :meth:`Simulator.cancel` — stops the
    chain no matter how many ticks have fired.
    """

    __slots__ = ("sim", "interval", "fn", "args", "cancelled", "_event")

    def __init__(self, sim: "Simulator", interval: float,
                 fn: Callable[..., Any], args: tuple) -> None:
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._event: Optional[Event] = sim.schedule_timer(interval, self._tick)

    def _tick(self) -> None:
        self._event = None
        if self.cancelled:
            return
        if self.fn(*self.args) is False:
            self.cancelled = True
            return
        self._event = self.sim.schedule_timer(self.interval, self._tick)

    def cancel(self) -> None:
        """Stop the chain: the live pending tick is cancelled (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    @property
    def armed(self) -> bool:
        """True while a future tick is scheduled."""
        return not self.cancelled and self._event is not None


class EventChain:
    """A monotone stream of occurrences sharing one heap sentinel.

    The batch-drain hook for components that emit long runs of
    nondecreasing-time events from a single logical source — a link's
    serialization completions, its propagation arrivals.  Instead of one
    heap-resident :class:`Event` per occurrence, the chain keeps a plain
    ``deque`` of ``(time, priority, seq, fn, args)`` tuples and exposes a
    single sentinel Event that always carries the *earliest* pending
    occurrence's key.  Appending to a busy chain is a deque append — no
    ``heappush`` — and the inlined run loop may **drain several
    occurrences from one heap pop** when it can prove no other pending
    event precedes them in the ``(time, priority, seq)`` total order.

    Determinism is preserved exactly:

    * every occurrence claims its ``seq`` from the simulator's global
      counter at schedule time, at the same call sites as before, so
      tie-breaking against foreign events is bit-identical;
    * the sentinel always sits in the heap under the head occurrence's
      own ``(time, priority, seq)`` key, so heap ordering is the order
      the per-event scheme would have produced;
    * inline draining fires an occurrence early only when the heap top
      and the timer wheel provably contain nothing that precedes it —
      otherwise the sentinel is re-pushed and ordering falls back to the
      ordinary pop discipline.

    Occurrences are fire-and-forget (no cancellation handle); a stream
    that needs cancellable events should keep using the plain scheduling
    APIs.  An out-of-order append (time earlier than the last pending
    occurrence) falls back to :meth:`Simulator.schedule_transient_at`
    transparently, so monotonicity is an optimization contract, not a
    correctness obligation on callers.
    """

    __slots__ = ("sim", "pending", "sentinel", "armed", "last_time",
                 "appended", "fallbacks", "drained_inline")

    def __init__(self, sim: "Simulator") -> None:
        from collections import deque

        self.sim = sim
        self.pending: Any = deque()
        self.sentinel = Event(0.0, 0, 0, None, ())
        self.sentinel.chain = self
        self.armed = False
        self.last_time = 0.0
        #: occurrences accepted (stats; fallbacks are *not* counted here)
        self.appended = 0
        #: out-of-order schedules routed to the plain transient API
        self.fallbacks = 0
        #: occurrences fired inline off another occurrence's heap pop
        self.drained_inline = 0

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = 0) -> None:
        """Append ``fn(*args)`` at ``now + delay`` to the stream."""
        self.schedule_at(self.sim._now + delay, fn, *args, priority=priority)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any,
                    priority: int = 0) -> None:
        sim = self.sim
        if time < sim._now or (self.armed and time < self.last_time):
            # keep total order: a non-monotone occurrence takes the
            # ordinary heap route (still fires at its exact key)
            self.fallbacks += 1
            sim.schedule_transient_at(time, fn, *args, priority=priority)
            return
        sim._seq += 1
        self.appended += 1
        self.last_time = time
        sim._queue._live += 1
        if not self.armed:
            s = self.sentinel
            s.time = time
            s.priority = priority
            s.seq = sim._seq
            s.fn = fn
            s.args = args
            self.armed = True
            _heappush(sim._queue._heap, s)
        else:
            self.pending.append((time, priority, sim._seq, fn, args))

    def _rearm(self) -> None:
        """After the sentinel fired: load the next occurrence, re-push."""
        pending = self.pending
        if pending:
            s = self.sentinel
            s.time, s.priority, s.seq, s.fn, s.args = pending.popleft()
            _heappush(self.sim._queue._heap, s)
        else:
            self.armed = False
            s = self.sentinel
            s.fn = None
            s.args = ()

    def __len__(self) -> int:
        return len(self.pending) + (1 if self.armed else 0)


class Simulator:
    """The global virtual clock and event dispatcher.

    A simulator instance is the root object of every experiment: networks,
    hosts, protocol sessions and workloads all hold a reference to one
    ``Simulator`` and schedule their behaviour through it.

    ``legacy=True`` reverts to the pre-fast-path kernel — heap-only (no
    timer wheel), no Event pooling, no heap compaction, ``step()``-driven
    dispatch — and exists so ``benchmarks/record_bench.py`` can measure
    the fast path against the exact baseline, and so equivalence tests can
    assert that both kernels produce bit-identical event orderings.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self, legacy: bool = False) -> None:
        self._legacy = legacy
        self._queue = EventQueue(compact=not legacy)
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_dispatched = 0
        # Imported here: repro.sim.clock is dependency-free, but keeping
        # the import local preserves this module's zero-import hot path.
        from repro.sim.clock import SimClock

        #: this simulator's time domain as an injectable Clock — what the
        #: transport layer hands to code that must not care whether it is
        #: running on virtual or wall time
        self.clock = SimClock(self)

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def next_event_time(self) -> Optional[float]:
        """Absolute time of the earliest live pending event, or None.

        A pure peek (cancelled heap tops are lazily discarded, wheel
        buckets are flushed only as far as an ordinary pop would).  The
        realtime driver uses this to sleep exactly until the next
        simulated obligation instead of polling.
        """
        return self._queue.peek_time()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        self._seq += 1
        ev = Event(time, priority, self._seq, fn, args)
        self._queue.push(ev)
        return ev

    def schedule_timer(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule a *cancel-heavy* timer expiry ``delay`` seconds out.

        Routed through the hierarchical timer wheel: if the timer is
        cancelled before becoming imminent it dies in O(1) without heap
        contact, and its pooled record is recycled.  The returned handle
        is valid until the event fires or is cancelled — callers (the
        :class:`~repro.sim.timers.Timer` machinery) must drop it then.
        Firing order is bit-identical to :meth:`schedule`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        q = self._queue
        if self._legacy:
            ev = Event(self._now + delay, priority, self._seq, fn, args)
            q.push(ev)
            return ev
        ev = q.alloc(self._now + delay, priority, self._seq, fn, args, pooled=True)
        q.push_timer(ev)
        return ev

    def schedule_transient(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule a fire-and-forget event whose record is recycled.

        For hot-path events that almost always fire (frame serialization,
        propagation arrivals, CPU completions): heap-routed like
        :meth:`schedule`, but the Event comes from — and returns to — the
        kernel free-list.  The handle may be cancelled while pending but
        must not be retained after the event fires.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_transient_at(self._now + delay, fn, *args,
                                          priority=priority)

    def schedule_transient_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Absolute-time variant of :meth:`schedule_transient`."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        self._seq += 1
        q = self._queue
        if self._legacy:
            ev = Event(time, priority, self._seq, fn, args)
        else:
            ev = q.alloc(time, priority, self._seq, fn, args, pooled=True)
        q.push(ev)
        return ev

    def make_chain(self) -> EventChain:
        """Create an :class:`EventChain` — the batch-drain scheduling hook.

        For single-source monotone event streams (link serialization /
        propagation).  Chains work on the legacy kernel too (the sentinel
        is an ordinary heap event; ``step()`` re-arms it), but only the
        fast inlined :meth:`run` loop performs multi-occurrence drains.
        """
        return EventChain(self)

    def cancel(self, event) -> None:
        """Cancel a previously scheduled event (idempotent).

        Accepts plain :class:`Event` handles and the :class:`RepeatingEvent`
        handles returned by :meth:`call_each`.
        """
        if isinstance(event, RepeatingEvent):
            event.cancel()
            return
        if not event.cancelled:
            event.cancelled = True
            self._queue.note_cancel_event(event)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single earliest event.  Returns False when idle.

        When the global telemetry handle is disabled (the default) the only
        instrumentation cost is the single ``enabled`` test below — the
        bound that ``benchmarks/test_obs_overhead.py`` enforces against the
        uninstrumented dispatch loop kept in :meth:`_run_uninstrumented`.
        """
        ev = self._queue.pop()
        if ev is None:
            return False
        self._now = ev.time
        self.events_dispatched += 1
        if _TELEMETRY.enabled:
            self._dispatch_instrumented(ev)
        else:
            ev.fn(*ev.args)
        if ev.chain is not None:
            ev.chain._rearm()
        self._queue._retire(ev)
        return True

    def _step_uninstrumented(self) -> bool:
        """The pre-telemetry single-step dispatch, byte-for-byte.

        Never called by the simulator itself; kept as the no-telemetry
        reference for the disabled-overhead bound (see
        :meth:`_run_uninstrumented` for the loop-level counterpart that
        ``benchmarks/test_obs_overhead.py`` swaps in).
        """
        ev = self._queue.pop()
        if ev is None:
            return False
        self._now = ev.time
        self.events_dispatched += 1
        ev.fn(*ev.args)
        if ev.chain is not None:
            ev.chain._rearm()
        self._queue._retire(ev)
        return True

    def _dispatch_instrumented(self, ev: Event) -> None:
        """Telemetry-enabled dispatch: per-handler wall profiling + spans."""
        fn = ev.fn
        name = getattr(fn, "__qualname__", None) or type(fn).__name__
        w0 = perf_counter()
        fn(*ev.args)
        wall = perf_counter() - w0
        t = _TELEMETRY
        m = t.metrics
        m.counter("kernel_events_dispatched_total",
                  help="events the kernel has dispatched").inc()
        m.histogram("kernel_handler_seconds", labels={"handler": name},
                    help="wall-clock seconds per handler invocation").observe(wall)
        q = self._queue
        m.gauge("kernel_heap_depth",
                help="physical heap size incl. cancelled events").set(float(q.heap_depth))
        m.gauge("kernel_pending_events",
                help="live (non-cancelled) scheduled events").set(float(len(q)))
        m.gauge("kernel_lazy_deletion_ratio",
                help="fraction of heap pops discarding a cancelled event"
                ).set(q.lazy_deletion_ratio)
        m.gauge("kernel_wheel_pending",
                help="live timers parked in the hierarchical wheel"
                ).set(float(q.wheel.live))
        m.gauge("kernel_wheel_cancelled_total",
                help="timers killed O(1) in the wheel, no heap contact"
                ).set(float(q.wheel.cancelled_killed))
        t.complete(f"kernel:{name}", "kernel", self._now, self._now,
                   wall_us=wall * 1e6)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        compose naturally in phased experiments.

        The dispatch loop is inlined: no per-event :meth:`step` call, the
        queue internals are hoisted into locals, and dispatch counters are
        batched (flushed exactly on loop exit and whenever the slower
        telemetry path runs).  Ordering is identical to repeated
        :meth:`step` calls.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        if self._legacy:
            return self._run_legacy(until, max_events)
        self._running = True
        self._stopped = False
        q = self._queue
        front = q._front
        heap = q._heap
        free = q._free
        wheel = q.wheel
        tele = _TELEMETRY
        budget = -1 if max_events is None else max_events
        n = 0          # total dispatched this run
        counted = 0    # prefix already committed to the dispatch counters
        try:
            while not self._stopped and n != budget:
                # fast path: a live heap top that provably precedes every
                # parked timer can be taken without consulting the wheel
                ev = heap[0] if heap else None
                if ev is None or ev.cancelled or (
                        wheel.live
                        and ev.time >= wheel.flushed_until
                        and ev.time >= wheel.min_start):
                    ev = front()
                    if ev is None:
                        break
                t = ev.time
                if until is not None and t > until:
                    break
                if tele.enabled:
                    # slow, exact branch: flush batched counters first so
                    # instrumentation gauges read true values
                    fast = n - counted
                    if fast:
                        self.events_dispatched += fast
                        q.popped_live += fast
                    counted = n + 1
                    _heappop(heap)
                    q._live -= 1
                    q.popped_live += 1
                    self._now = t
                    self.events_dispatched += 1
                    self._dispatch_instrumented(ev)
                else:
                    _heappop(heap)
                    q._live -= 1
                    self._now = t
                    ev.fn(*ev.args)
                n += 1
                if ev.pooled:
                    ev.fn = None
                    ev.args = ()
                    if len(free) < FREELIST_MAX:
                        free.append(ev)
                elif ev.chain is not None:
                    # batch-drain hook: fire successive chain occurrences
                    # off this one heap pop while each provably precedes
                    # every other pending event in (time, priority, seq)
                    ch = ev.chain
                    pending = ch.pending
                    if pending and not tele.enabled:
                        drained = 0
                        while pending:
                            nt, npr, ns, nfn, nargs = pending[0]
                            if ((until is not None and nt > until)
                                    or self._stopped or n == budget):
                                break
                            if heap:
                                h0 = heap[0]
                                if not (nt < h0.time or (
                                        nt == h0.time
                                        and (npr, ns) < (h0.priority, h0.seq))):
                                    break
                            if (wheel.live and nt >= wheel.flushed_until
                                    and nt >= wheel.min_start):
                                break
                            pending.popleft()
                            q._live -= 1
                            self._now = nt
                            nfn(*nargs)
                            n += 1
                            drained += 1
                        if drained:
                            ch.drained_inline += drained
                    ch._rearm()
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            fast = n - counted
            if fast:
                self.events_dispatched += fast
                q.popped_live += fast
            self._running = False

    def _run_uninstrumented(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """The inlined run loop minus the per-event telemetry test.

        Never called by the simulator itself; ``benchmarks/
        test_obs_overhead.py`` swaps it in for :meth:`run` to obtain a true
        no-telemetry baseline when asserting the disabled-overhead bound.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        self._stopped = False
        q = self._queue
        front = q._front
        heap = q._heap
        free = q._free
        wheel = q.wheel
        budget = -1 if max_events is None else max_events
        n = 0
        try:
            while not self._stopped and n != budget:
                ev = heap[0] if heap else None
                if ev is None or ev.cancelled or (
                        wheel.live
                        and ev.time >= wheel.flushed_until
                        and ev.time >= wheel.min_start):
                    ev = front()
                    if ev is None:
                        break
                t = ev.time
                if until is not None and t > until:
                    break
                _heappop(heap)
                q._live -= 1
                self._now = t
                ev.fn(*ev.args)
                n += 1
                if ev.pooled:
                    ev.fn = None
                    ev.args = ()
                    if len(free) < FREELIST_MAX:
                        free.append(ev)
                elif ev.chain is not None:
                    ev.chain._rearm()
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self.events_dispatched += n
            q.popped_live += n
            self._running = False

    def _run_legacy(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """The pre-fast-path run loop (peek + per-event ``step()``).

        The measured baseline for ``benchmarks/record_bench.py``; together
        with ``legacy=True`` construction this reproduces the heap-only
        kernel byte-for-byte.
        """
        self._running = True
        self._stopped = False
        dispatched = 0
        try:
            while self._queue and not self._stopped:
                if max_events is not None and dispatched >= max_events:
                    break
                next_t = self._queue.peek_time()
                if until is not None and next_t is not None and next_t > until:
                    break
                self.step()
                dispatched += 1
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_until_horizon(
        self, horizon: float, max_events: Optional[int] = None
    ) -> None:
        """Run every pending event *strictly before* ``horizon``.

        The conservative-parallel epoch API (see ``docs/sharding.md``):
        a shard worker may only execute events it can prove are unaffected
        by messages still in flight from other shards.  With lookahead
        ``L = min`` boundary-link delay and global minimum next-event time
        ``N``, every cross-shard message generated this epoch arrives at
        ``>= N + L``, so events with ``t < N + L`` are safe — the bound is
        *exclusive*, because an event exactly at the horizon could race an
        inbound message timestamped there.

        Implemented as ``run(until=nextafter(horizon, -inf))``: floats are
        totally ordered with no value between ``nextafter(horizon)`` and
        ``horizon``, so the inclusive fast loop runs exactly the events
        with ``t < horizon`` and the hot dispatch path needs no extra
        per-event comparison.  Afterwards :attr:`now` sits just below the
        horizon; :meth:`schedule_at` therefore accepts injected arrivals
        at exactly ``horizon``.
        """
        self.run(until=math.nextafter(horizon, -math.inf), max_events=max_events)

    def stop(self) -> None:
        """Request that the current :meth:`run` loop return after this event."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def call_each(
        self, interval: float, fn: Callable[..., Any], *args: Any
    ) -> RepeatingEvent:
        """Schedule ``fn`` every ``interval`` seconds until it returns False.

        Returns a :class:`RepeatingEvent` whose :meth:`~RepeatingEvent.cancel`
        always stops the chain — unlike a raw Event handle, it tracks the
        live tick across internal reschedules.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")
        return RepeatingEvent(self, interval, fn, args)

    def drain(self, events: Iterable[Event]) -> None:
        """Cancel a collection of events (helper for teardown paths)."""
        for ev in events:
            self.cancel(ev)
