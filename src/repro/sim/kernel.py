"""Core discrete-event simulation kernel.

The kernel is intentionally small and allocation-light: a binary heap of
``Event`` records ordered by ``(time, priority, seq)``.  The ``seq`` field
guarantees a deterministic total order for simultaneous events, which is what
makes every experiment in :mod:`benchmarks` exactly repeatable — the property
the paper's UNITES subsystem calls *controlled, empirical experimentation*
(§4.3).

Cancellation is O(1): a cancelled event stays in the heap but is skipped when
popped (lazy deletion), the standard technique for simulators with heavy
timer churn such as retransmission timers that are almost always cancelled by
an arriving acknowledgment.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Iterable, Optional

from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling into the past, re-running, ...)."""


class Event:
    """A single scheduled occurrence.

    Attributes
    ----------
    time:
        Absolute virtual time (seconds) at which the event fires.
    priority:
        Secondary ordering key; lower fires first among same-time events.
    seq:
        Kernel-assigned monotone sequence number — the final tie-breaker that
        makes simultaneous-event ordering deterministic.
    fn / args:
        Callback invoked as ``fn(*args)`` when the event fires.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the kernel skips it (idempotent, O(1))."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} prio={self.priority} seq={self.seq} {state}>"


class EventQueue:
    """Binary-heap pending-event set with lazy deletion.

    ``popped_live`` / ``skipped_cancelled`` count how many heap pops
    returned a live event vs. discarded a lazily-deleted one — their ratio
    is the kernel's *lazy-deletion ratio*, a direct measure of timer churn
    (retransmission timers that were cancelled by an arriving ACK).
    """

    __slots__ = ("_heap", "_live", "popped_live", "skipped_cancelled")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._live = 0
        self.popped_live = 0
        self.skipped_cancelled = 0

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)
        self._live += 1

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if empty."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if not ev.cancelled:
                self._live -= 1
                self.popped_live += 1
                return ev
            self.skipped_cancelled += 1
        return None

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self.skipped_cancelled += 1
        return heap[0].time if heap else None

    @property
    def heap_depth(self) -> int:
        """Physical heap size, cancelled entries included."""
        return len(self._heap)

    @property
    def lazy_deletion_ratio(self) -> float:
        """Fraction of heap pops that discarded a cancelled event."""
        total = self.popped_live + self.skipped_cancelled
        return self.skipped_cancelled / total if total else 0.0

    def note_cancel(self) -> None:
        """Inform the queue that one of its events was cancelled."""
        self._live -= 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class Simulator:
    """The global virtual clock and event dispatcher.

    A simulator instance is the root object of every experiment: networks,
    hosts, protocol sessions and workloads all hold a reference to one
    ``Simulator`` and schedule their behaviour through it.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_dispatched = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        self._seq += 1
        ev = Event(time, priority, self._seq, fn, args)
        self._queue.push(ev)
        return ev

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._queue.note_cancel()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single earliest event.  Returns False when idle.

        When the global telemetry handle is disabled (the default) the only
        instrumentation cost is the single ``enabled`` test below — the
        bound that ``benchmarks/test_obs_overhead.py`` enforces against the
        uninstrumented baseline kept in :meth:`_step_uninstrumented`.
        """
        ev = self._queue.pop()
        if ev is None:
            return False
        self._now = ev.time
        self.events_dispatched += 1
        if _TELEMETRY.enabled:
            self._dispatch_instrumented(ev)
        else:
            ev.fn(*ev.args)
        return True

    def _step_uninstrumented(self) -> bool:
        """The pre-telemetry dispatch loop, byte-for-byte.

        Never called by the simulator itself; ``benchmarks/
        test_obs_overhead.py`` swaps it in for :meth:`step` to obtain a true
        no-telemetry baseline when asserting the disabled-overhead bound.
        """
        ev = self._queue.pop()
        if ev is None:
            return False
        self._now = ev.time
        self.events_dispatched += 1
        ev.fn(*ev.args)
        return True

    def _dispatch_instrumented(self, ev: Event) -> None:
        """Telemetry-enabled dispatch: per-handler wall profiling + spans."""
        fn = ev.fn
        name = getattr(fn, "__qualname__", None) or type(fn).__name__
        w0 = perf_counter()
        fn(*ev.args)
        wall = perf_counter() - w0
        t = _TELEMETRY
        m = t.metrics
        m.counter("kernel_events_dispatched_total",
                  help="events the kernel has dispatched").inc()
        m.histogram("kernel_handler_seconds", labels={"handler": name},
                    help="wall-clock seconds per handler invocation").observe(wall)
        q = self._queue
        m.gauge("kernel_heap_depth",
                help="physical heap size incl. cancelled events").set(float(q.heap_depth))
        m.gauge("kernel_pending_events",
                help="live (non-cancelled) scheduled events").set(float(len(q)))
        m.gauge("kernel_lazy_deletion_ratio",
                help="fraction of heap pops discarding a cancelled event"
                ).set(q.lazy_deletion_ratio)
        t.complete(f"kernel:{name}", "kernel", self._now, self._now,
                   wall_us=wall * 1e6)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        compose naturally in phased experiments.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        self._stopped = False
        dispatched = 0
        try:
            while self._queue and not self._stopped:
                if max_events is not None and dispatched >= max_events:
                    break
                next_t = self._queue.peek_time()
                if until is not None and next_t is not None and next_t > until:
                    break
                self.step()
                dispatched += 1
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request that the current :meth:`run` loop return after this event."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def call_each(self, interval: float, fn: Callable[..., Any], *args: Any) -> "Event":
        """Schedule ``fn`` every ``interval`` seconds until it returns False."""
        if interval <= 0:
            raise SimulationError("interval must be positive")

        def tick() -> None:
            if fn(*args) is False:
                return
            self.schedule(interval, tick)

        return self.schedule(interval, tick)

    def drain(self, events: Iterable[Event]) -> None:
        """Cancel a collection of events (helper for teardown paths)."""
        for ev in events:
            self.cancel(ev)
