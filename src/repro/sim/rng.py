"""Deterministic, named random-number streams.

Every stochastic element of an experiment (link bit errors, traffic
inter-arrivals, background load, video frame sizes, ...) draws from its own
named stream derived from a single root seed.  Streams are independent, so
adding instrumentation or a new traffic source never perturbs the draws seen
by existing components — a prerequisite for the controlled A/B comparisons
UNITES performs (paper §4.3: replace one mechanism, measure the difference
*precisely*).

Implementation: each stream is a ``numpy.random.Generator`` seeded from a
``SeedSequence`` spawned with a stable hash of the stream name, so stream
identity depends only on ``(root_seed, name)``.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngStreams:
    """Factory and cache of independent named random streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The same ``(root_seed, name)`` pair always yields an identical
        sequence, across processes and platforms.
        """
        gen = self._streams.get(name)
        if gen is None:
            # zlib.crc32 is stable across runs (unlike hash()) and cheap.
            child = np.random.SeedSequence([self.root_seed, zlib.crc32(name.encode())])
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Forget all streams; subsequent calls restart their sequences."""
        self._streams.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._streams
