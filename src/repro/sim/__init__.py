"""Discrete-event simulation kernel.

This package is the lowest substrate of the reproduction: a deterministic
discrete-event simulator on which the network model (:mod:`repro.netsim`),
host model (:mod:`repro.host`), and the ADAPTIVE transport system itself are
built.  The paper's prototype ran on the x-kernel / SVR4 STREAMS; here every
temporal behaviour (propagation delay, queueing, timer expiry, CPU cost) is
an event on a single global virtual clock, which gives the controlled,
repeatable experimentation environment that UNITES (paper §4.3) requires.
"""

from repro.sim.kernel import (
    Event,
    EventQueue,
    HierarchicalTimerWheel,
    RepeatingEvent,
    Simulator,
)
from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.sim.timers import Timer, TimerWheel

__all__ = [
    "Event",
    "EventQueue",
    "HierarchicalTimerWheel",
    "RepeatingEvent",
    "Simulator",
    "Process",
    "RngStreams",
    "Timer",
    "TimerWheel",
]
