"""Timer abstractions over the event kernel.

``Timer`` is the semantic model for the paper's ``TKO_Event`` class (§4.2.1):
an object that *schedules itself* to expire one or more times, may be
cancelled, and is triggered asynchronously by the kernel.  ``TimerWheel``
groups many timers under one owner so a dying session can cancel its whole
timer population in one call — the common teardown path for protocol
machinery (retransmission, delayed-ACK, keepalive timers).

``TimerWheel`` here is an *ownership registry*, not a scheduling structure;
the kernel's :class:`repro.sim.kernel.HierarchicalTimerWheel` is the
time-ordered container that ``Timer`` expiries route through (via
``Simulator.schedule_timer``) so cancel-heavy timers die in O(1) — see
``docs/performance.md``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.kernel import Event, Simulator


class Timer:
    """A restartable one-shot or periodic timer.

    Parameters
    ----------
    sim:
        The simulator supplying virtual time.
    fn / args:
        Callback run at each expiry.
    interval:
        Expiry delay in seconds; for periodic timers, also the period.
    periodic:
        When True the timer re-arms itself after each expiry until
        :meth:`cancel` is called.
    """

    __slots__ = ("sim", "fn", "args", "interval", "periodic", "_event", "expirations")

    def __init__(
        self,
        sim: Simulator,
        fn: Callable[..., Any],
        *args: Any,
        interval: float = 0.0,
        periodic: bool = False,
    ) -> None:
        self.sim = sim
        self.fn = fn
        self.args = args
        self.interval = interval
        self.periodic = periodic
        self._event: Optional[Event] = None
        self.expirations = 0

    # -- state -----------------------------------------------------------
    @property
    def armed(self) -> bool:
        """True while an expiry is scheduled."""
        return self._event is not None and not self._event.cancelled

    # -- control ----------------------------------------------------------
    def schedule(self, interval: Optional[float] = None) -> None:
        """(Re)arm the timer ``interval`` seconds from now.

        Mirrors ``TKO_Event::schedule``; re-arming an armed timer replaces
        the pending expiry (i.e. it restarts the countdown).
        """
        if interval is not None:
            self.interval = interval
        self.cancel()
        self._event = self.sim.schedule_timer(self.interval, self._expire)

    def cancel(self) -> None:
        """Disarm without firing (``TKO_Event::cancel``); idempotent."""
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    def _expire(self) -> None:
        """Internal: kernel callback (``TKO_Event::expire``)."""
        self._event = None
        self.expirations += 1
        if self.periodic:
            self._event = self.sim.schedule_timer(self.interval, self._expire)
        self.fn(*self.args)


class TimerWheel:
    """A registry of timers sharing one owner lifecycle.

    Sessions allocate timers through their wheel; ``cancel_all`` is invoked
    on session teardown so no timer outlives the context it points into.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._timers: list[Timer] = []

    def timer(
        self,
        fn: Callable[..., Any],
        *args: Any,
        interval: float = 0.0,
        periodic: bool = False,
    ) -> Timer:
        """Create (but do not arm) a timer owned by this wheel."""
        t = Timer(self.sim, fn, *args, interval=interval, periodic=periodic)
        self._timers.append(t)
        return t

    def after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Create *and arm* a one-shot timer firing ``delay`` seconds out."""
        t = self.timer(fn, *args, interval=delay)
        t.schedule()
        return t

    def every(self, period: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Create *and arm* a periodic timer."""
        t = self.timer(fn, *args, interval=period, periodic=True)
        t.schedule()
        return t

    def cancel_all(self) -> None:
        """Disarm every timer created through this wheel."""
        for t in self._timers:
            t.cancel()

    def __len__(self) -> int:
        return len(self._timers)
