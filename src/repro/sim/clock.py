"""The sim-time / wall-time split, made explicit.

Every layer above the kernel reads time through a :class:`Clock` rather
than assuming which domain it lives in:

* :class:`SimClock` — virtual seconds from a :class:`~repro.sim.kernel.
  Simulator`'s event clock.  Deterministic: two runs with the same seed
  read identical times.  This is the default domain; the whole simulated
  world (timers, RTT estimators, negotiation timeouts) runs on it.
* :class:`WallClock` — monotonic wall seconds, zeroed at construction so
  a real-I/O run's timeline starts near ``0.0`` like a simulation's.
  Used by the loopback/UDP transport backends, where MANTTS negotiation
  timeouts and TKO retransmission timers must elapse in real time.

The two domains compose through the realtime driver
(:class:`repro.transport.realtime.RealtimeDriver`): it paces the kernel's
event queue against a ``WallClock``, so code written against ``sim.now``
transparently measures wall time when the substrate is real.

``timestamp_ns()`` is the CORTEX-style monotonic timestamp hook: an
integer nanosecond reading suitable for latency math on received data.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Clock(ABC):
    """A monotonic time source; seconds via :meth:`now`, ns via
    :meth:`timestamp_ns`."""

    #: which domain this clock measures: ``"sim"`` or ``"wall"``
    domain = ""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (monotonic within one run)."""

    def timestamp_ns(self) -> int:
        """Monotonic integer-nanosecond timestamp (CORTEX contract)."""
        return int(self.now() * 1e9)


class SimClock(Clock):
    """Virtual time: a read-through view of one simulator's event clock."""

    domain = "sim"

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim

    def now(self) -> float:
        return self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimClock t={self.sim.now:.6f}>"


class WallClock(Clock):
    """Real time: ``time.monotonic()`` re-zeroed at construction.

    Zeroing keeps wall timelines comparable to simulated ones (both start
    near 0.0) and keeps float precision high over long host uptimes.
    """

    domain = "wall"

    def __init__(self) -> None:
        self._t0 = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._t0

    def timestamp_ns(self) -> int:
        return time.monotonic_ns()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WallClock t={self.now():.6f}>"


class SteppedClock(Clock):
    """A deterministic stand-in for :class:`WallClock`.

    Each :meth:`now` call advances time by a fixed ``dt``, so any code
    that polls a wall clock (the realtime driver, liveness timers, the
    impairment fabric's jitter scheduling) sees a strictly increasing
    but *reproducible* timeline.  Driving two co-located backends with
    ``drive(..., poll=0)`` on a shared ``SteppedClock`` turns a real
    loopback run into a single-threaded deterministic one — which is
    how the chaos acceptance suite gets byte-identical impairment
    traces from two same-seed runs on the "wall" domain.
    """

    domain = "wall"

    def __init__(self, dt: float = 1e-4, start: float = 0.0) -> None:
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.dt = float(dt)
        self._t = float(start)

    def now(self) -> float:
        self._t += self.dt
        return self._t

    def peek(self) -> float:
        """Read the current time without advancing it."""
        return self._t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SteppedClock t={self._t:.6f} dt={self.dt}>"
