"""Generator-based simulation processes.

A ``Process`` wraps a Python generator that ``yield``s delays (floats, in
seconds).  The kernel resumes the generator after each yielded delay.  This
gives workload generators and control loops sequential, readable code without
callback chains:

    def talker(proc):
        while True:
            send_burst()
            yield 0.35          # talk spurt
            yield proc.rng.exponential(0.65)   # silence gap

Processes are cooperative and single-threaded; all concurrency is virtual.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.kernel import Event, Simulator

ProcessBody = Generator[float, None, None]


class Process:
    """Drives a generator through the simulator's virtual clock."""

    def __init__(
        self,
        sim: Simulator,
        body: Callable[..., ProcessBody],
        *args: Any,
        name: str = "",
        start_delay: float = 0.0,
    ) -> None:
        self.sim = sim
        self.name = name or getattr(body, "__name__", "process")
        self._gen: Optional[ProcessBody] = body(*args)
        self._event: Optional[Event] = None
        self.finished = False
        self._event = sim.schedule_transient(start_delay, self._resume)

    def _resume(self) -> None:
        self._event = None
        if self._gen is None:
            return
        try:
            delay = next(self._gen)
        except StopIteration:
            self.finished = True
            self._gen = None
            return
        if delay is None or delay < 0:
            raise ValueError(
                f"process {self.name!r} yielded invalid delay {delay!r}"
            )
        self._event = self.sim.schedule_transient(delay, self._resume)

    def kill(self) -> None:
        """Stop the process; any pending resume is cancelled."""
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None
        if self._gen is not None:
            self._gen.close()
            self._gen = None
        self.finished = True

    @property
    def alive(self) -> bool:
        return not self.finished
