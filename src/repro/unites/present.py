"""Metric presentation: tables, CSV, ASCII series (Figure 6's display box).

The paper's interactive graphic displays and SNMP/CMIP exports are
replaced by deterministic text renderings — what the benchmark harness
prints as "the same rows/series the paper reports".
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple


def _fmt(value, width: int = 0) -> str:
    if value is None:
        s = "-"
    elif isinstance(value, float):
        if value == 0:
            s = "0"
        elif abs(value) >= 1e5 or abs(value) < 1e-3:
            s = f"{value:.3e}"
        else:
            s = f"{value:.4g}"
    else:
        s = str(value)
    return s.rjust(width) if width else s


def render_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_fmt(r.get(c)) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.rjust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_csv(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """CSV rendering (stable column order)."""
    if not rows:
        return ""
    cols = list(columns) if columns is not None else list(rows[0].keys())
    out = [",".join(cols)]
    for r in rows:
        out.append(",".join(_fmt(r.get(c)) for c in cols))
    return "\n".join(out)


def render_prometheus(registry=None) -> str:
    """Prometheus text exposition of a UNITES-X registry.

    Defaults to the global telemetry handle's registry — the Figure 6
    display box's "SNMP/CMIP export", three decades on.
    """
    from repro.unites.obs.exporters import render_prometheus as _render

    if registry is None:
        from repro.unites.obs.telemetry import TELEMETRY

        registry = TELEMETRY.metrics
    return _render(registry)


def render_series(
    series: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 8,
    label: str = "",
) -> str:
    """A coarse ASCII plot of one (time, value) series."""
    if not series:
        return f"{label}: (no samples)"
    times = [t for t, _ in series]
    values = [v for _, v in series]
    vmin, vmax = min(values), max(values)
    span = (vmax - vmin) or 1.0
    tmin, tmax = times[0], times[-1]
    tspan = (tmax - tmin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for t, v in series:
        x = min(width - 1, int((t - tmin) / tspan * (width - 1)))
        y = min(height - 1, int((v - vmin) / span * (height - 1)))
        grid[height - 1 - y][x] = "*"
    lines = [f"{label}  [{vmin:.4g} .. {vmax:.4g}]  t=[{tmin:.3g}s .. {tmax:.3g}s]"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    return "\n".join(lines)
