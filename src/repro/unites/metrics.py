"""The UNITES metric catalogue (§4.3).

Metrics divide into two classes exactly as the paper does:

* **blackbox** — collected "without knowledge of internal implementation
  details": throughput (packets and bits per second) and latency
  (round-trip time for interactive traffic);
* **whitebox** — requiring internal instrumentation of the synthesized
  session configuration: connection establishment/termination latency,
  (re)transmission counts, instructions per protocol function, interrupt
  and scheduling overhead, jitter (delay variance), and packet loss.

Every metric is a :class:`MetricSpec` with an extractor over the live
session (plus its host), so collectors are data-driven: a TMC names the
metrics, the collector resolves them here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.tko.session import TKOSession


def _elapsed(session: "TKOSession") -> float:
    start = session.stats.established_at or session.stats.opened_at or 0.0
    end = session.stats.closed_at if session.stats.closed_at is not None else session.now
    return max(1e-9, end - start)


@dataclass(frozen=True)
class MetricSpec:
    """One collectable metric."""

    name: str
    kind: str                   #: "blackbox" | "whitebox"
    unit: str
    description: str
    extract: Callable[["TKOSession"], Optional[float]]

    def __post_init__(self) -> None:
        if self.kind not in ("blackbox", "whitebox"):
            raise ValueError(f"metric kind must be blackbox/whitebox, not {self.kind!r}")


_SPECS = (
    # --- blackbox -------------------------------------------------------
    MetricSpec(
        "throughput_bps", "blackbox", "bit/s",
        "application data delivered per second",
        lambda s: s.stats.data_bytes_delivered * 8.0 / _elapsed(s),
    ),
    MetricSpec(
        "throughput_pps", "blackbox", "pkt/s",
        "PDUs transmitted per second (the paper's throughput definition)",
        lambda s: s.stats.pdus_sent / _elapsed(s),
    ),
    MetricSpec(
        "goodput_bps", "blackbox", "bit/s",
        "delivered data rate excluding retransmitted/parity overhead",
        lambda s: s.stats.data_bytes_delivered * 8.0 / _elapsed(s),
    ),
    MetricSpec(
        "latency", "blackbox", "s",
        "mean message delivery latency (send to application hand-off)",
        lambda s: s.stats.mean_latency if s.stats.latency_samples else None,
    ),
    MetricSpec(
        "rtt", "blackbox", "s",
        "smoothed round-trip time estimate",
        lambda s: s.rtt.srtt,
    ),
    # --- whitebox -------------------------------------------------------
    MetricSpec(
        "connection_setup_time", "whitebox", "s",
        "open request to establishment",
        lambda s: s.stats.connection_setup_time,
    ),
    MetricSpec(
        "retransmissions", "whitebox", "count",
        "DATA PDUs retransmitted",
        lambda s: float(s.stats.retransmissions),
    ),
    MetricSpec(
        "retransmission_rate", "whitebox", "fraction",
        "retransmitted / transmitted PDUs",
        lambda s: s.stats.retransmissions / max(1, s.stats.pdus_sent),
    ),
    MetricSpec(
        "jitter", "whitebox", "s",
        "delivery-latency standard deviation (paper: variance in delay)",
        lambda s: s.stats.jitter,
    ),
    MetricSpec(
        "loss_rate", "whitebox", "fraction",
        "fraction of sent messages with no local delivery (meaningful for "
        "request-response sessions; None for one-directional endpoints, "
        "whose loss is observable only at the peer)",
        lambda s: (
            max(0.0, 1.0 - s.stats.msgs_delivered / s.stats.msgs_sent)
            if s.stats.msgs_sent > 0 and s.stats.msgs_delivered > 0
            else None
        ),
    ),
    MetricSpec(
        "instructions_per_pdu", "whitebox", "instr",
        "host instructions retired per PDU handled (protocol function cost)",
        lambda s: s.host.cpu.instructions_retired
        / max(1, s.stats.pdus_sent + s.stats.pdus_received),
    ),
    MetricSpec(
        "cpu_utilization", "whitebox", "fraction",
        "host CPU busy fraction (interrupt + protocol + scheduling overhead)",
        lambda s: s.host.cpu.utilization(_elapsed(s)),
    ),
    MetricSpec(
        "acks_sent", "whitebox", "count",
        "acknowledgment PDUs generated",
        lambda s: float(s.stats.acks_sent),
    ),
    MetricSpec(
        "acks_received", "whitebox", "count",
        "acknowledgment PDUs processed",
        lambda s: float(s.stats.acks_received),
    ),
    MetricSpec(
        "fec_recoveries", "whitebox", "count",
        "DATA PDUs reconstructed from parity",
        lambda s: float(s.stats.fec_recoveries),
    ),
    MetricSpec(
        "checksum_rejections", "whitebox", "count",
        "corrupted PDUs caught by error detection",
        lambda s: float(s.stats.checksum_rejections),
    ),
    MetricSpec(
        "corrupted_delivered", "whitebox", "count",
        "damaged payloads handed to the application",
        lambda s: float(s.stats.corrupted_delivered),
    ),
    MetricSpec(
        "late_arrivals", "whitebox", "count",
        "messages that missed their playout point",
        lambda s: float(s.stats.late_arrivals),
    ),
    MetricSpec(
        "buffer_drops", "whitebox", "count",
        "PDUs dropped for want of receive buffers",
        lambda s: float(s.stats.buffer_drops),
    ),
    MetricSpec(
        "reconfigurations", "whitebox", "count",
        "run-time mechanism segues performed",
        lambda s: float(s.stats.reconfigurations),
    ),
    MetricSpec(
        "copies_bytes", "whitebox", "bytes",
        "payload bytes physically copied on this host",
        lambda s: float(s.copy_meter.bytes_copied),
    ),
)

METRICS: Dict[str, MetricSpec] = {m.name: m for m in _SPECS}
BLACKBOX = {n: m for n, m in METRICS.items() if m.kind == "blackbox"}
WHITEBOX = {n: m for n, m in METRICS.items() if m.kind == "whitebox"}


def session_snapshot(
    session: "TKOSession",
    metrics=None,
    registry=None,
    entity: str = "",
) -> Dict[str, Optional[float]]:
    """Evaluate a set of metrics (default: all) against a session now.

    When ``registry`` (a UNITES-X ``MetricRegistry``) is given, each
    non-None value is mirrored into a ``unites_<name>`` gauge labelled
    with ``entity`` — the pull-side catalogue showing up next to the
    push-side telemetry in one Prometheus scrape.
    """
    chosen = metrics if metrics is not None else METRICS.keys()
    out: Dict[str, Optional[float]] = {}
    for name in chosen:
        spec = METRICS.get(name)
        if spec is None:
            raise KeyError(f"unknown metric {name!r}")
        out[name] = spec.extract(session)
    if registry is not None:
        labels = {"session": entity} if entity else None
        for name, value in out.items():
            if value is not None:
                registry.gauge(
                    f"unites_{name}", labels=labels,
                    help=METRICS[name].description,
                ).set(value)
    return out
