"""Metric collectors and the UNITES facade.

Two collection routes, matching §4.3's two monitoring modes:

1. applications request metrics through the ACD's Transport Measurement
   Component — MANTTS calls :meth:`UNITES.instrument` and the collector
   samples the instrumented session at the TMC's rate;
2. experimenters request metrics directly (:meth:`UNITES.watch_session`,
   :meth:`UNITES.watch_host`) — the language/graphics interface of the
   paper is replaced by this programmatic one.

All samples land in the shared :class:`~repro.unites.repository.MetricRepository`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.sim.kernel import Simulator
from repro.sim.timers import Timer
from repro.unites.metrics import METRICS, session_snapshot
from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY
from repro.unites.repository import MetricRepository

if TYPE_CHECKING:  # pragma: no cover
    from repro.mantts.acd import TMC
    from repro.mantts.api import AdaptiveConnection
    from repro.tko.session import TKOSession


class SessionCollector:
    """Periodic sampler for one session's metric set."""

    def __init__(
        self,
        sim: Simulator,
        repository: MetricRepository,
        session: "TKOSession",
        entity: str,
        metrics: Iterable[str],
        interval: float = 0.5,
    ) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        unknown = [m for m in metrics if m not in METRICS]
        if unknown:
            raise KeyError(f"unknown metrics requested: {unknown}")
        self.sim = sim
        self.repository = repository
        self.session = session
        self.entity = entity
        self.metrics = list(metrics)
        self.interval = interval
        self.samples_taken = 0
        self._timer = Timer(sim, self._tick, interval=interval, periodic=True)

    def start(self) -> None:
        self._timer.schedule(self.interval)

    def stop(self) -> None:
        self._timer.cancel()

    def _tick(self) -> None:
        if self.session.closed:
            # one final sample at close, then stand down
            self._sample()
            self.stop()
            return
        self._sample()

    def _sample(self) -> None:
        self.samples_taken += 1
        registry = _TELEMETRY.metrics if _TELEMETRY.enabled else None
        values = session_snapshot(
            self.session, self.metrics, registry=registry, entity=self.entity
        )
        self.repository.record_many(self.sim.now, "session", self.entity, values)


class UNITES:
    """Facade tying specification, collection, and the repository together."""

    def __init__(self, sim: Simulator, repository: Optional[MetricRepository] = None) -> None:
        self.sim = sim
        self.repository = repository if repository is not None else MetricRepository()
        self.collectors: List[SessionCollector] = []
        #: connection ref -> TMC presentation format requested in the ACD
        self._presentations: dict = {}

    # ------------------------------------------------------------------
    def instrument(self, connection: "AdaptiveConnection", tmc: "TMC") -> SessionCollector:
        """Honour an ACD's Transport Measurement Component (route 1)."""
        assert connection.session is not None
        metrics = list(tmc.metrics) if tmc.metrics else list(METRICS)
        collector = SessionCollector(
            self.sim,
            self.repository,
            connection.session,
            entity=connection.ref,
            metrics=metrics,
            interval=tmc.sampling_interval,
        )
        collector.start()
        self.collectors.append(collector)
        self._presentations[connection.ref] = tmc.presentation
        return collector

    def render_tmc(self, conn_ref: str) -> str:
        """Render one instrumented connection's metrics in the format its
        TMC asked for (Table 2's "presentation format" parameter)."""
        from repro.unites.present import render_csv, render_series, render_table

        fmt = self._presentations.get(conn_ref, "table")
        repo = self.repository
        metrics = repo.metrics_for("session", conn_ref)
        if not metrics:
            return f"(no samples for {conn_ref})"
        if fmt == "series":
            blocks = [
                render_series(repo.series(m, "session", conn_ref), label=m)
                for m in metrics
            ]
            return "\n".join(blocks)
        rows = []
        for m in metrics:
            series = repo.series(m, "session", conn_ref)
            rows.append(
                {"metric": m, "samples": len(series), "latest": series[-1][1]}
            )
        if fmt == "csv":
            return render_csv(rows, ["metric", "samples", "latest"])
        return render_table(rows, ["metric", "samples", "latest"],
                            title=f"== TMC report: {conn_ref} ==")

    def watch_session(
        self,
        session: "TKOSession",
        entity: str,
        metrics: Optional[Iterable[str]] = None,
        interval: float = 0.5,
    ) -> SessionCollector:
        """Experimenter-driven collection (route 2)."""
        collector = SessionCollector(
            self.sim,
            self.repository,
            session,
            entity=entity,
            metrics=list(metrics) if metrics is not None else list(METRICS),
            interval=interval,
        )
        collector.start()
        self.collectors.append(collector)
        return collector

    def watch_host(self, host, interval: float = 0.5) -> Timer:
        """Sample host-scope metrics (CPU utilization, buffer pressure)."""

        start_time = self.sim.now

        def tick() -> None:
            elapsed = max(1e-9, self.sim.now - start_time)
            self.repository.record_many(
                self.sim.now,
                "host",
                host.name,
                {
                    "cpu_utilization": host.cpu.utilization(elapsed),
                    "buffer_fill": host.buffers.fill_fraction,
                    "frames_sent": float(host.frames_sent),
                    "frames_received": float(host.frames_received),
                },
            )

        timer = Timer(self.sim, tick, interval=interval, periodic=True)
        timer.schedule(interval)
        return timer

    def watch_manager(self, manager, interval: float = 0.5) -> Timer:
        """Sample a host's connection-manager population gauges.

        Rows land in the ``"host"`` scope under the owning host's name:
        pending/open/degraded connection counts, lifetime totals,
        admission verdicts, and timer-group occupancy — the per-host
        scale view the connection-management layer maintains.
        """

        def tick() -> None:
            self.repository.record_many(
                self.sim.now, "host", manager.host.name, manager.snapshot()
            )

        timer = Timer(self.sim, tick, interval=interval, periodic=True)
        timer.schedule(interval)
        return timer

    def watch_network(self, network, interval: float = 0.5) -> Timer:
        """Sample per-link counters into the repository's "link" scope.

        Rows come from each link's :class:`~repro.netsim.link.LinkStats`,
        so this works with telemetry enabled or disabled.
        """
        start_time = self.sim.now

        def tick() -> None:
            elapsed = max(1e-9, self.sim.now - start_time)
            for link in network.links.values():
                st = link.stats
                self.repository.record_many(
                    self.sim.now,
                    "link",
                    link.name,
                    {
                        "frames_enqueued": float(st.enqueued),
                        "frames_delivered": float(st.delivered),
                        "frames_dropped": float(
                            st.dropped_overflow + st.dropped_down + st.dropped_mtu
                        ),
                        "frames_corrupted": float(st.corrupted),
                        "queue_len": float(link.queue_len),
                        "utilization": st.utilization(elapsed),
                    },
                )

        timer = Timer(self.sim, tick, interval=interval, periodic=True)
        timer.schedule(interval)
        return timer

    def watch_telemetry(self, interval: float = 0.5) -> Timer:
        """Periodically route the UNITES-X registry into the repository.

        The bridge that lets :meth:`report` and the experiment harness see
        push-side telemetry (kernel gauges, link counters, mechanism
        invocation counts) as ordinary repository samples.
        """

        def tick() -> None:
            if _TELEMETRY.enabled:
                _TELEMETRY.metrics.to_repository(self.repository, self.sim.now)

        timer = Timer(self.sim, tick, interval=interval, periodic=True)
        timer.schedule(interval)
        return timer

    def prometheus(self) -> str:
        """The UNITES-X registry in Prometheus text exposition format."""
        from repro.unites.obs.exporters import render_prometheus

        return render_prometheus(_TELEMETRY.metrics)

    # ------------------------------------------------------------------
    def final_snapshot(self, session: "TKOSession", entity: str) -> Dict[str, Optional[float]]:
        """One complete snapshot, recorded and returned (end-of-run)."""
        values = session_snapshot(session)
        self.repository.record_many(self.sim.now, "session", entity, values)
        return values

    def stop_all(self) -> None:
        for c in self.collectors:
            c.stop()

    # ------------------------------------------------------------------
    def report(self) -> str:
        """A full repository report at every scope (Figure 6's
        "systemwide, per-host, or per-connection" presentation, plus the
        UNITES-X per-link scope).

        Rows show the latest value of every metric per entity; the system
        scope aggregates each metric's mean across entities.
        """
        from repro.unites.present import render_table

        repo = self.repository
        sections = []
        for scope, title in (
            ("session", "per-connection"),
            ("host", "per-host"),
            ("link", "per-link"),
        ):
            entities = repo.entities(scope)
            if not entities:
                continue
            metrics = sorted({m for e in entities for m in repo.metrics_for(scope, e)})
            rows = []
            for e in entities:
                row: dict = {"entity": e}
                for m in metrics:
                    row[m] = repo.latest(m, scope, e)
                rows.append(row)
            sections.append(render_table(rows, ["entity", *metrics],
                                         title=f"== UNITES {title} =="))
        # systemwide: mean of each session metric across entities
        sess_entities = repo.entities("session")
        if sess_entities:
            metrics = sorted(
                {m for e in sess_entities for m in repo.metrics_for("session", e)}
            )
            row: dict = {"entity": "system"}
            for m in metrics:
                values = [
                    repo.latest(m, "session", e)
                    for e in sess_entities
                    if repo.latest(m, "session", e) is not None
                ]
                row[m] = sum(values) / len(values) if values else None
            sections.append(
                render_table([row], ["entity", *metrics], title="== UNITES systemwide ==")
            )
        return "\n\n".join(sections) if sections else "(no metrics collected)"
