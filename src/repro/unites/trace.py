"""Protocol event tracing — the prototyping-environment half of UNITES.

The abstract promises "a controlled prototyping environment for
monitoring, analyzing, and experimenting"; metrics aggregate, but protocol
debugging needs the *event stream*: which PDU was sent when, what was
retransmitted, when a segue happened, when delivery occurred.
``SessionTracer`` attaches to any live session's observer hook and records
a bounded ring of structured events with optional filtering; traces render
as a timeline for inspection or assertion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.tko.session import TKOSession

#: the event vocabulary sessions emit (see TKOSession._notify call sites)
EVENTS = (
    "connected",
    "pdu-sent",
    "pdu-received",
    "pdu-rejected",
    "retransmit",
    "deliver",
    "segue",
    "abort",
)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded protocol event."""

    time: float
    session: str              #: "<host>:<conn_id>"
    event: str
    details: dict = field(default_factory=dict)

    def render(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"{self.time:10.6f}  {self.session:<12}  {self.event:<13} {detail}"


class SessionTracer:
    """A bounded, filterable recorder attachable to many sessions."""

    def __init__(
        self,
        max_events: int = 10_000,
        events: Optional[Iterable[str]] = None,
    ) -> None:
        if max_events < 1:
            raise ValueError("trace buffer needs at least one slot")
        unknown = set(events or ()) - set(EVENTS)
        if unknown:
            raise ValueError(f"unknown trace events: {sorted(unknown)}")
        self._filter = set(events) if events is not None else None
        self._ring: Deque[TraceEvent] = deque(maxlen=max_events)
        self.dropped = 0
        self.counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def attach(self, session: "TKOSession") -> "SessionTracer":
        """Start recording this session's events (chainable)."""
        session.observers.append(self._observe)
        return self

    def detach(self, session: "TKOSession") -> None:
        try:
            session.observers.remove(self._observe)
        except ValueError:
            pass

    def _observe(self, event: str, session: "TKOSession", **details) -> None:
        if self._filter is not None and event not in self._filter:
            return
        self.counts[event] = self.counts.get(event, 0) + 1
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        # compact PDU references so the ring holds data, not live objects
        clean = {}
        for k, v in details.items():
            if k == "pdu":
                clean["type"] = v.ptype.value
                clean["seq"] = v.seq
            else:
                clean[k] = v
        self._ring.append(
            TraceEvent(
                time=session.now,
                session=f"{session.host.name}:{session.conn_id}",
                event=event,
                details=clean,
            )
        )

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        return list(self._ring)

    def of_kind(self, event: str) -> List[TraceEvent]:
        return [e for e in self._ring if e.event == event]

    def between(self, t0: float, t1: float) -> List[TraceEvent]:
        return [e for e in self._ring if t0 <= e.time < t1]

    def render(self, last: Optional[int] = None) -> str:
        """The timeline as text (optionally only the last N events)."""
        events = self.events
        if last is not None:
            events = events[-last:]
        header = f"== trace: {len(self._ring)} events ({self.dropped} dropped) =="
        return "\n".join([header, *(e.render() for e in events)])

    def __len__(self) -> int:
        return len(self._ring)
