"""Metric analysis: summaries and controlled A/B comparison (§4.3).

"Information collected by the UNITES metrics quantifies trade-offs and
interactions among different configurations, thereby providing meaningful
design and implementation evaluations."  The analysis layer is small and
numeric: distribution summaries over sample sets, and a comparison
operator over two configurations' metric dicts that reports per-metric
ratios — the primitive every experiment in ``benchmarks/`` builds its
who-wins verdicts from.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (q in [0, 100]) of a non-empty sample."""
    if not len(values):
        raise ValueError("no samples")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Distribution summary: n/mean/std/min/p50/p95/max."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {"n": 0, "mean": 0.0, "std": 0.0, "min": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }


def compare(
    baseline: Dict[str, Optional[float]],
    candidate: Dict[str, Optional[float]],
    higher_is_better: Iterable[str] = ("throughput_bps", "throughput_pps", "goodput_bps"),
) -> Dict[str, Dict[str, float]]:
    """Per-metric comparison of two configuration runs.

    Returns ``{metric: {baseline, candidate, ratio, better}}`` where
    ``ratio`` is candidate/baseline and ``better`` is +1 when the
    candidate wins, -1 when it loses, 0 on a tie/undefined.
    """
    hib = set(higher_is_better)
    out: Dict[str, Dict[str, float]] = {}
    for metric in sorted(set(baseline) | set(candidate)):
        b, c = baseline.get(metric), candidate.get(metric)
        if b is None or c is None:
            continue
        ratio = c / b if b not in (0, None) else float("inf") if c else 1.0
        if abs(c - b) < 1e-12:
            better = 0
        elif metric in hib:
            better = 1 if c > b else -1
        else:
            better = 1 if c < b else -1
        out[metric] = {"baseline": b, "candidate": c, "ratio": ratio, "better": better}
    return out


def time_weighted_mean(series: List[tuple]) -> float:
    """Mean of a (time, value) series weighted by the interval each value
    held — correct for unevenly sampled gauges."""
    if not series:
        raise ValueError("empty series")
    if len(series) == 1:
        return float(series[0][1])
    total = 0.0
    weight = 0.0
    for (t0, v0), (t1, _v1) in zip(series, series[1:]):
        dt = t1 - t0
        total += v0 * dt
        weight += dt
    return total / weight if weight > 0 else float(series[-1][1])
