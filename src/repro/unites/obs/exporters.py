"""Exporters: JSONL event log, Chrome ``trace_event`` JSON, Prometheus text.

Three sinks for one collection pass:

* :func:`to_jsonl` / :func:`write_jsonl` — one JSON object per line (spans,
  instants, then metrics); the machine-greppable archive format;
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format understood by Perfetto and ``chrome://tracing``; each span becomes
  a complete (``"ph": "X"``) event on a per-category track, instants become
  ``"i"`` events.  Timestamps are **sim time in microseconds**; spans that
  are instantaneous in sim time (kernel handler dispatches) use their
  wall-clock duration as ``dur`` so the profile is visible on the timeline
  (the true wall cost is always in ``args.wall_us``);
* :func:`render_prometheus` — the ``# HELP`` / ``# TYPE`` text exposition
  format for a :class:`~repro.unites.obs.registry.MetricRegistry`,
  including cumulative histogram buckets.

This module is a leaf: stdlib only.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterator, List, Optional

from repro.unites.obs.registry import Counter, Gauge, Histogram, MetricRegistry
from repro.unites.obs.telemetry import Telemetry


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def iter_records(telemetry: Telemetry) -> Iterator[Dict[str, Any]]:
    """Every collected record as a plain dict (spans, instants, metrics)."""
    for s in telemetry.spans:
        rec: Dict[str, Any] = {
            "type": "span",
            "name": s.name,
            "category": s.category,
            "sim_start": s.sim_start,
            "sim_end": s.sim_end,
            "wall_us": round(s.wall_us, 3),
            "depth": s.depth,
        }
        if s.parent:
            rec["parent"] = s.parent
        if s.args:
            rec["args"] = s.args
        yield rec
    for i in telemetry.instants:
        rec = {
            "type": "instant",
            "name": i["name"],
            "category": i["category"],
            "sim_time": i["sim_time"],
        }
        if i["args"]:
            rec["args"] = i["args"]
        yield rec
    for name, value in telemetry.metrics.snapshot().items():
        yield {"type": "metric", "name": name, "value": value}


def to_jsonl(telemetry: Telemetry) -> str:
    return "\n".join(json.dumps(r, default=str) for r in iter_records(telemetry))


def write_jsonl(telemetry: Telemetry, path: str) -> int:
    """Write the JSONL log; returns the number of records."""
    n = 0
    with open(path, "w") as fh:
        for rec in iter_records(telemetry):
            fh.write(json.dumps(rec, default=str))
            fh.write("\n")
            n += 1
    return n


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def to_chrome_trace(telemetry: Telemetry, pid: int = 1) -> Dict[str, Any]:
    """The telemetry buffer as a Trace Event Format object."""
    meta: List[Dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": "adaptive-sim"}},
    ]
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}

    def tid_for(category: str) -> int:
        tid = tids.get(category)
        if tid is None:
            tid = len(tids) + 1
            tids[category] = tid
            meta.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": category or "uncategorized"},
            })
        return tid

    for s in telemetry.spans:
        sim_dur_us = s.sim_duration * 1e6
        args = dict(s.args)
        args["wall_us"] = round(s.wall_us, 3)
        if s.parent:
            args["parent"] = s.parent
        events.append({
            "ph": "X",
            "name": s.name,
            "cat": s.category or "span",
            "ts": s.sim_start * 1e6,
            "dur": sim_dur_us if sim_dur_us > 0 else round(s.wall_us, 3),
            "pid": pid,
            "tid": tid_for(s.category),
            "args": args,
        })
    for i in telemetry.instants:
        events.append({
            "ph": "i",
            "name": i["name"],
            "cat": i["category"] or "instant",
            "ts": i["sim_time"] * 1e6,
            "s": "t",
            "pid": pid,
            "tid": tid_for(i["category"]),
            "args": dict(i["args"]),
        })
    events.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "spans": len(telemetry.spans),
            "instants": len(telemetry.instants),
            "dropped": telemetry.dropped,
        },
    }


def write_chrome_trace(telemetry: Telemetry, path: str, pid: int = 1) -> int:
    """Write a ``chrome://tracing`` / Perfetto-loadable JSON file.

    Returns the number of trace events written (metadata included).
    """
    trace = to_chrome_trace(telemetry, pid=pid)
    with open(path, "w") as fh:
        json.dump(trace, fh, default=str)
    return len(trace["traceEvents"])


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_num(v: float) -> str:
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def render_prometheus(
    registry: MetricRegistry,
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """The registry in Prometheus text format (HELP/TYPE per family).

    ``extra_labels`` are instance labels (e.g. ``{"shard": "2"}``)
    stamped onto **every** sample — counters, gauges, and each histogram
    bucket/sum/count line — so scrapes from multiple processes of one
    sharded world never collide on a series.  They merge *under* the
    metric's own labels (a metric label of the same name wins) and pass
    through the same :func:`format_labels` escaping as everything else.
    """
    lines: List[str] = []
    seen_family: set = set()
    stamp = dict(extra_labels) if extra_labels else {}
    for m in registry.collect():
        if m.name not in seen_family:
            seen_family.add(m.name)
            if m.help:
                lines.append(f"# HELP {m.name} {_escape_help(m.help)}")
            lines.append(f"# TYPE {m.name} {m.kind}")
        if isinstance(m, (Counter, Gauge)):
            flat = format_labels(m.name, {**stamp, **dict(m.labels)})
            lines.append(f"{flat} {_prom_num(m.value)}")
        elif isinstance(m, Histogram):
            cumulative = 0
            base = {**stamp, **dict(m.labels)}
            for bound, count in zip(m.bounds, m.bucket_counts):
                cumulative += count
                labels = dict(base)
                labels["le"] = _prom_num(bound)
                flat = format_labels(m.name + "_bucket", labels)
                lines.append(f"{flat} {cumulative}")
            labels = dict(base)
            labels["le"] = "+Inf"
            lines.append(f"{format_labels(m.name + '_bucket', labels)} {m.count}")
            lines.append(f"{format_labels(m.name + '_sum', base)} {_prom_num(m.sum)}")
            lines.append(f"{format_labels(m.name + '_count', base)} {m.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _escape_label_value(v: str) -> str:
    """Escape a label value per the exposition format: backslash first,
    then the quote the value is wrapped in, then literal newlines."""
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP text escaping: backslash and newline (quotes stay literal)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_labels(name: str, labels: Dict[str, str]) -> str:
    """Prometheus sample name ``name{k="v",...}`` with label-value escaping.

    Every Counter/Gauge/Histogram sample rendered by
    :func:`render_prometheus` routes through here — there is exactly one
    place label values are serialized, so hostile values (quotes,
    backslashes, newlines) cannot corrupt the exposition stream.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in labels.items()
    )
    return f"{name}{{{inner}}}"


# ----------------------------------------------------------------------
# exposition-format validation (CI telemetry smoke)
# ----------------------------------------------------------------------
def validate_prometheus(text: str) -> List[str]:
    """Structural checks on a Prometheus text payload; returns problems.

    Verifies what a scraper's parser would reject: each ``# TYPE`` /
    ``# HELP`` appears at most once per family and *before* that
    family's samples, every sample line parses (name + float value, with
    ``+Inf``/``-Inf``/``NaN`` accepted), sample names belong to a
    declared family (histograms may append ``_bucket``/``_sum``/
    ``_count``), and no ``(name, labels)`` series repeats.  An empty
    list means the payload is well-formed.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    helped: set = set()
    sampled_families: set = set()
    seen_series: set = set()

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and typed.get(base) == "histogram":
                return base
        return sample_name

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if name in typed:
                problems.append(f"line {lineno}: duplicate TYPE for family {name}")
            if name in sampled_families:
                problems.append(f"line {lineno}: TYPE for {name} after its samples")
            typed[name] = kind
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                problems.append(f"line {lineno}: malformed HELP line")
                continue
            name = parts[2]
            if name in helped:
                problems.append(f"line {lineno}: duplicate HELP for family {name}")
            if name in sampled_families:
                problems.append(f"line {lineno}: HELP for {name} after its samples")
            helped.add(name)
            continue
        if line.startswith("#"):
            continue
        # sample line: name[{labels}] value
        head, _, value_part = line.rpartition(" ")
        if not head:
            problems.append(f"line {lineno}: no value on sample line")
            continue
        value = value_part.strip()
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                problems.append(f"line {lineno}: unparseable value {value!r}")
                continue
        series = head.strip()
        name = series.split("{", 1)[0]
        family = family_of(name)
        if family not in typed:
            problems.append(f"line {lineno}: sample {name} has no TYPE declaration")
        sampled_families.add(family)
        if series in seen_series:
            problems.append(f"line {lineno}: duplicate series {series}")
        seen_series.add(series)
    for name in helped - set(typed):
        problems.append(f"family {name} has HELP but no TYPE")
    return problems
