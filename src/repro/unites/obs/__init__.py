"""UNITES-X — the full-system observability layer.

The paper positions UNITES as "a controlled prototyping environment for
monitoring, analyzing, and experimenting" (§4.3).  The base ``repro.unites``
modules cover the *metric* half of that promise (session-scope snapshots in
a repository); this subpackage adds the *systems* half:

* :mod:`repro.unites.obs.telemetry` — hierarchical spans with sim-time and
  wall-time stamps, carried through a zero-cost-when-disabled global
  :data:`~repro.unites.obs.telemetry.TELEMETRY` handle that every layer
  (sim kernel, netsim links, MANTTS negotiation, TKO sessions and
  mechanisms) hooks into;
* :mod:`repro.unites.obs.registry` — a typed metric registry (counters,
  gauges, fixed-bucket histograms) that backs the session snapshots of
  :mod:`repro.unites.metrics` and routes into the
  :class:`~repro.unites.repository.MetricRepository`;
* :mod:`repro.unites.obs.exporters` — JSONL event logs, Chrome
  ``trace_event`` JSON (loadable in Perfetto / ``chrome://tracing``), and
  Prometheus-style text dumps.

These modules are deliberate *leaves*: they import nothing from the rest of
``repro``, so the lowest substrate (``repro.sim.kernel``) can import the
telemetry handle without cycles.
"""

from repro.unites.obs.registry import Counter, Gauge, Histogram, MetricRegistry
from repro.unites.obs.telemetry import NULL_SPAN, TELEMETRY, Span, Telemetry
from repro.unites.obs.exporters import (
    render_prometheus,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_SPAN",
    "TELEMETRY",
    "Span",
    "Telemetry",
    "render_prometheus",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
