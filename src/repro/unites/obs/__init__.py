"""UNITES-X — the full-system observability layer.

The paper positions UNITES as "a controlled prototyping environment for
monitoring, analyzing, and experimenting" (§4.3).  The base ``repro.unites``
modules cover the *metric* half of that promise (session-scope snapshots in
a repository); this subpackage adds the *systems* half:

* :mod:`repro.unites.obs.telemetry` — hierarchical spans with sim-time and
  wall-time stamps, carried through a zero-cost-when-disabled global
  :data:`~repro.unites.obs.telemetry.TELEMETRY` handle that every layer
  (sim kernel, netsim links, MANTTS negotiation, TKO sessions and
  mechanisms) hooks into;
* :mod:`repro.unites.obs.registry` — a typed metric registry (counters,
  gauges, fixed-bucket histograms) that backs the session snapshots of
  :mod:`repro.unites.metrics` and routes into the
  :class:`~repro.unites.repository.MetricRepository`;
* :mod:`repro.unites.obs.exporters` — JSONL event logs, Chrome
  ``trace_event`` JSON (loadable in Perfetto / ``chrome://tracing``), and
  Prometheus-style text dumps (with :func:`~repro.unites.obs.exporters.
  validate_prometheus` structural checks);
* :mod:`repro.unites.obs.audit` — the QoS conformance **audit plane**:
  per-connection contract capture, sliding-window measurement of the
  delivered service, typed :class:`~repro.unites.obs.audit.QoSViolation`
  events, and scorecards behind the global
  :data:`~repro.unites.obs.audit.AUDIT` handle;
* :mod:`repro.unites.obs.flight` — the bounded black-box flight recorder
  and its post-hoc analyzer (``python -m repro.unites.obs.flight``);
* :mod:`repro.unites.obs.server` — a stdlib daemon-thread HTTP endpoint
  serving ``/metrics``, ``/healthz``, ``/connections``, and ``/audit``
  from the live registries.

These modules are deliberate *leaves*: they import nothing from the rest of
``repro``, so the lowest substrate (``repro.sim.kernel``) can import the
telemetry handle without cycles.
"""

from repro.unites.obs.registry import Counter, Gauge, Histogram, MetricRegistry
from repro.unites.obs.telemetry import NULL_SPAN, TELEMETRY, Span, Telemetry
from repro.unites.obs.exporters import (
    render_prometheus,
    to_chrome_trace,
    to_jsonl,
    validate_prometheus,
    write_chrome_trace,
    write_jsonl,
)
from repro.unites.obs.audit import (
    AUDIT,
    AuditPlane,
    QoSAuditor,
    QoSContract,
    QoSViolation,
)
from repro.unites.obs.flight import FlightRecorder, analyze as analyze_flight
from repro.unites.obs.server import TelemetryServer

__all__ = [
    "AUDIT",
    "AuditPlane",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_SPAN",
    "QoSAuditor",
    "QoSContract",
    "QoSViolation",
    "TELEMETRY",
    "TelemetryServer",
    "Span",
    "Telemetry",
    "analyze_flight",
    "render_prometheus",
    "to_chrome_trace",
    "to_jsonl",
    "validate_prometheus",
    "write_chrome_trace",
    "write_jsonl",
]
