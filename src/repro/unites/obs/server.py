"""Live telemetry plane: a stdlib HTTP endpoint for the running system.

The ROADMAP's real-I/O direction calls for "UNITES-X Prometheus
exporters serving live ``/metrics``"; this module is that endpoint, kept
to the standard library (``http.server`` on a daemon thread):

========== ==========================================================
route      payload
========== ==========================================================
/metrics   Prometheus text exposition of the live metric registry
/healthz   liveness JSON (sim time, collection counts)
/connections  every ConnectionManager's table as JSON
/audit     current QoS conformance scorecards (the audit plane)
========== ==========================================================

The server only *reads* shared state — the registry, the connection
tables, the audit scorecards — and Python object reads are atomic under
the GIL, so a scrape racing the simulation sees a merely slightly-stale
view, never a torn one.  Nothing here schedules kernel events or
touches protocol state: serving telemetry cannot perturb the simulated
world, and a system that never starts a server pays nothing.

Typical wiring::

    server = system.serve_telemetry()          # port=0 picks a free port
    print(server.url)                          # http://127.0.0.1:PORT
    ...
    server.stop()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from repro.unites.obs.audit import AUDIT
from repro.unites.obs.exporters import render_prometheus
from repro.unites.obs.telemetry import TELEMETRY

#: content type Prometheus scrapers expect for the text format
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _ReusableHTTPServer(ThreadingHTTPServer):
    """SO_REUSEADDR on explicitly, not by platform accident.

    CI starts and stops telemetry servers across many tests (and the
    transport suites bind from multiple processes); without address
    reuse, a port lingering in TIME_WAIT makes a rebind fail spuriously.
    """

    allow_reuse_address = True
    daemon_threads = True


class TelemetryServer:
    """A daemon-thread HTTP endpoint over the live observability state.

    ``system`` (an ``AdaptiveSystem``) or an explicit ``managers`` list
    supplies the connection tables; the metric registry and scorecards
    come from the process-global :data:`TELEMETRY` / :data:`AUDIT`
    handles.  ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` / :attr:`url` — what tests and CI smoke runs use).
    """

    def __init__(
        self,
        system=None,
        managers: Optional[List[Any]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        instance_labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.system = system
        self._managers = list(managers) if managers is not None else None
        self.host = host
        self.port = port
        #: labels stamped onto every exported sample (e.g. ``shard="2"``)
        #: so scrapes from the processes of one sharded world never
        #: collide on a series; values go through the standard escaping
        self.instance_labels = dict(instance_labels) if instance_labels else {}
        self.requests_served = 0
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def managers(self) -> List[Any]:
        if self._managers is not None:
            return self._managers
        if self.system is not None:
            return [
                node.mantts.manager
                for node in self.system.nodes.values()
                if getattr(node.mantts, "manager", None) is not None
            ]
        return []

    # ------------------------------------------------------------------
    # payload builders (also callable without a running server)
    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        return render_prometheus(
            TELEMETRY.metrics, extra_labels=self.instance_labels or None
        )

    def render_health(self) -> Dict[str, Any]:
        sim = getattr(self.system, "sim", None) or TELEMETRY._sim
        return {
            "status": "ok",
            "sim_time": sim.now if sim is not None else None,
            "telemetry_enabled": TELEMETRY.enabled,
            "audit_enabled": AUDIT.enabled,
            "spans": len(TELEMETRY.spans),
            "instants": len(TELEMETRY.instants),
            "metrics": len(TELEMETRY.metrics),
            "audited_connections": len(AUDIT),
            "requests_served": self.requests_served,
        }

    def render_connections(self) -> List[Dict[str, Any]]:
        rows: List[Dict[str, Any]] = []
        for manager in self.managers():
            rows.extend(manager.table())
        return rows

    def render_audit(self) -> Dict[str, Any]:
        return AUDIT.scorecards()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # quiet: no stderr spam
                pass

            def do_GET(self) -> None:
                server.requests_served += 1
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                try:
                    if path == "/metrics":
                        body = server.render_metrics().encode()
                        ctype = PROM_CONTENT_TYPE
                    elif path in ("/", "/healthz"):
                        body = _to_json(server.render_health())
                        ctype = "application/json"
                    elif path == "/connections":
                        body = _to_json(server.render_connections())
                        ctype = "application/json"
                    elif path == "/audit":
                        body = _to_json(server.render_audit())
                        ctype = "application/json"
                    else:
                        body = _to_json({"error": f"unknown route {path}"})
                        self._reply(404, "application/json", body)
                        return
                except Exception as exc:  # a scrape must never kill the server
                    body = _to_json({"error": f"{type(exc).__name__}: {exc}"})
                    self._reply(500, "application/json", body)
                    return
                self._reply(200, ctype, body)

            def _reply(self, code: int, ctype: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._httpd = _ReusableHTTPServer((self.host, self.port), Handler)
        # port 0 = ephemeral bind; report the port the kernel chose
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"telemetry-server:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        httpd, self._httpd = self._httpd, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def _to_json(payload: Any) -> bytes:
    return json.dumps(payload, indent=1, default=str).encode()
