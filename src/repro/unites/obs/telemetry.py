"""The span/trace bus: hierarchical spans with sim-time and wall-time stamps.

One process-global :data:`TELEMETRY` handle is shared by every layer.  It is
**disabled by default** and costs a single attribute test on the hot paths
that guard their instrumentation with ``if TELEMETRY.enabled:`` — the
discipline every instrumented module (``sim.kernel``, ``netsim.link``,
``tko.session``, ``mechanisms.base``) follows.  Cold paths (negotiation,
link failure) may call :meth:`Telemetry.span` / :meth:`Telemetry.instant`
unconditionally; both degrade to no-ops when disabled.

Spans carry *both* clocks:

* **sim time** (``sim_start`` / ``sim_end``) — where the span sits on the
  experiment's virtual timeline;
* **wall time** (``wall_us``) — how much real CPU the instrumented code
  burned, which is what per-handler kernel profiling reports.

Two span styles:

* ``with telemetry.span("session-send", "tko"):`` — synchronous, stack
  nested (children know their parent and depth);
* ``span = telemetry.begin("negotiation", "mantts"); ...; span.end()`` —
  asynchronous, for protocol phases that start and finish in different
  callbacks (negotiation, connection setup).

Completed spans and instants are held in bounded in-memory buffers and
exported by :mod:`repro.unites.obs.exporters`.  This module is a leaf:
stdlib only.
"""

from __future__ import annotations

import time as _time
from typing import Any, Dict, List, Optional

from repro.unites.obs.registry import MetricRegistry

#: default bound on buffered spans + instants (drops are counted, not silent)
MAX_RECORDS = 200_000


class Span:
    """One (possibly still open) traced operation."""

    __slots__ = (
        "name", "category", "sim_start", "sim_end",
        "wall_start", "wall_us", "depth", "parent", "args",
        "_telemetry", "_stacked", "_done",
    )

    def __init__(
        self,
        telemetry: "Telemetry",
        name: str,
        category: str,
        parent: Optional[str],
        depth: int,
        stacked: bool,
        args: Dict[str, Any],
    ) -> None:
        self._telemetry = telemetry
        self.name = name
        self.category = category
        self.parent = parent
        self.depth = depth
        self.args = args
        self.sim_start = telemetry.now
        self.sim_end: Optional[float] = None
        self.wall_start = _time.perf_counter()
        self.wall_us = 0.0
        self._stacked = stacked
        self._done = False

    # ------------------------------------------------------------------
    def annotate(self, **args: Any) -> "Span":
        """Attach extra key/values (chainable)."""
        self.args.update(args)
        return self

    def end(self, **args: Any) -> None:
        """Close the span (idempotent — safe from multiple exit paths)."""
        if self._done:
            return
        self._done = True
        if args:
            self.args.update(args)
        self.sim_end = self._telemetry.now
        self.wall_us = (_time.perf_counter() - self.wall_start) * 1e6
        self._telemetry._finish(self)

    @property
    def sim_duration(self) -> float:
        return (self.sim_end - self.sim_start) if self.sim_end is not None else 0.0

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self.end()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if not self._done else f"dur={self.sim_duration:.6f}s"
        return f"<Span {self.category}:{self.name} t={self.sim_start:.6f} {state}>"


class _NullSpan:
    """Shared no-op span returned by every call while telemetry is disabled."""

    __slots__ = ()
    name = category = parent = ""
    sim_start = sim_end = wall_us = 0.0
    depth = 0
    args: Dict[str, Any] = {}

    def annotate(self, **args: Any) -> "_NullSpan":
        return self

    def end(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Telemetry:
    """The global observability handle: span bus + metric registry.

    ``enabled`` is a plain attribute so the disabled check compiles to one
    ``LOAD_ATTR`` + jump — the entire cost telemetry imposes on a hot path
    that guards correctly (see ``benchmarks/test_obs_overhead.py`` for the
    enforced bound).
    """

    def __init__(self, max_records: int = MAX_RECORDS) -> None:
        self.enabled = False
        self.metrics = MetricRegistry()
        self.spans: List[Span] = []
        self.instants: List[Dict[str, Any]] = []
        self.dropped = 0
        self.max_records = max_records
        self._stack: List[Span] = []
        self._sim = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self, sim=None, max_records: Optional[int] = None) -> "Telemetry":
        """Turn collection on; ``sim`` provides the virtual clock."""
        if sim is not None:
            self._sim = sim
        if max_records is not None:
            self.max_records = max_records
        self.enabled = True
        return self

    def disable(self) -> "Telemetry":
        """Stop collecting (already-buffered spans remain exportable)."""
        self.enabled = False
        return self

    def reset(self) -> "Telemetry":
        """Drop all buffered spans, instants, and metrics; detach the clock."""
        self.spans.clear()
        self.instants.clear()
        self._stack.clear()
        self.dropped = 0
        self.metrics.reset()
        self._sim = None
        return self

    @property
    def now(self) -> float:
        """Current sim time (0.0 before a clock is attached)."""
        return self._sim.now if self._sim is not None else 0.0

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "", **args: Any):
        """A stack-nested span for synchronous code (``with`` it)."""
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1].name if self._stack else None
        s = Span(self, name, category, parent, len(self._stack), stacked=True, args=args)
        self._stack.append(s)
        return s

    def begin(self, name: str, category: str = "", parent=None, **args: Any):
        """An async span: ends later, from any callback, via ``span.end()``."""
        if not self.enabled:
            return NULL_SPAN
        if parent is not None and not isinstance(parent, str):
            parent = parent.name or None  # Span or NULL_SPAN
        return Span(self, name, category, parent, 0, stacked=False, args=args)

    def complete(
        self,
        name: str,
        category: str,
        sim_start: float,
        sim_end: float,
        wall_us: float = 0.0,
        **args: Any,
    ) -> None:
        """Record an already-finished span with explicit timestamps.

        Used where the span's start was not observed as code (a frame's
        time on the wire is known only when it arrives).
        """
        if not self.enabled:
            return
        s = Span(self, name, category, None, 0, stacked=False, args=args)
        s.sim_start = sim_start
        s.sim_end = sim_end
        s.wall_us = wall_us
        s._done = True
        self._record(s)

    def _finish(self, span: Span) -> None:
        if span._stacked:
            # tolerate out-of-order exits; drop this span and any above it
            if span in self._stack:
                del self._stack[self._stack.index(span):]
        self._record(span)

    def _record(self, span: Span) -> None:
        if len(self.spans) >= self.max_records:
            self.dropped += 1
            return
        self.spans.append(span)

    # ------------------------------------------------------------------
    # instants
    # ------------------------------------------------------------------
    def instant(self, name: str, category: str = "", **args: Any) -> None:
        """A point event on the sim timeline (drops, failures, signals)."""
        if not self.enabled:
            return
        if len(self.instants) >= self.max_records:
            self.dropped += 1
            return
        self.instants.append(
            {"name": name, "category": category, "sim_time": self.now, "args": args}
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def categories(self) -> Dict[str, int]:
        """Completed span count per category (assertion-friendly)."""
        out: Dict[str, int] = {}
        for s in self.spans:
            out[s.category] = out.get(s.category, 0) + 1
        return out

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def summary(self) -> str:
        """One paragraph of what was collected (for example scripts)."""
        cats = self.categories()
        parts = [f"{len(self.spans)} spans", f"{len(self.instants)} instants",
                 f"{len(self.metrics)} metrics", f"{self.dropped} dropped"]
        lines = ["telemetry: " + ", ".join(parts)]
        for cat in sorted(cats):
            lines.append(f"  {cat:<12} {cats[cat]:>7} spans")
        return "\n".join(lines)


#: the process-global handle every instrumented layer guards on
TELEMETRY = Telemetry()
