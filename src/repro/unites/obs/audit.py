"""QoS conformance auditing: negotiated contract vs delivered service.

UNITES exists to answer one question (§4.3): *is each connection actually
receiving the QoS that MANTTS negotiated for it?*  This module closes
that loop in the style of ATM traffic-contract conformance monitoring:

* a :class:`QoSContract` is captured at Stage III instantiation from the
  connection's ``QuantitativeQoS``/``QualitativeQoS`` (the hook lives in
  :meth:`repro.mantts.lifecycle.ConnectionLifecycle.instantiate`);
* a per-connection :class:`QoSAuditor` rides the TKO session observer
  channel on **both** endpoints — send-side events from the initiator's
  session, delivery events from the responder session the audit plane
  matches up when it is demultiplexed into existence — and folds them
  into **sliding sim-time windows**;
* at each window close the delivered throughput / delay / jitter / loss
  / ordering are checked against the contract; breaches become typed
  :class:`QoSViolation` events, ``qos_conformance_*`` registry metrics,
  flight-recorder entries, and (on the first breach) a black-box dump
  (:mod:`repro.unites.obs.flight`).

Measurement semantics (all **sim-time**, never wall-clock, so verdicts
are bit-identical across executors and manager modes):

* *throughput* — application bytes delivered per window, checked only
  while the sender is actually offering load (bytes sent, a non-empty
  send queue, or outstanding PDUs) and after a configurable warm-up;
* *delay* — the worst delivery latency in the window;
* *jitter* — the standard deviation of delivery latency in the window
  (the paper's definition, matching ``SessionStats.jitter``);
* *loss* — residual wire-level DATA loss at the receiver: sequence holes
  that stay unfilled past ``loss_grace`` seconds count as lost (reliable
  flows fill holes by retransmission; FEC flows repair at message level,
  so their audited loss reflects pre-repair wire loss);
* *ordering* — deliveries whose message id regresses, when the contract
  asked for ordered delivery.

Everything is gated by the process-global :data:`AUDIT` plane, disabled
by default: the hooks in the protocol/lifecycle cost one attribute test
when off, and the session hot paths are untouched (the observer list is
only walked when an auditor attached).  This module is a leaf: stdlib
plus the other ``obs`` leaves only.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.unites.obs.flight import FlightRecorder
from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY

#: the audited service dimensions, in report order
KINDS = ("throughput", "delay", "jitter", "loss", "ordering")

#: absolute slack added to contract bounds before a breach is declared
_EPS = 1e-12


@dataclass(frozen=True)
class QoSContract:
    """The negotiated service level one connection is entitled to."""

    connection: str
    avg_throughput_bps: float
    peak_throughput_bps: float
    max_latency: Optional[float]
    max_jitter: Optional[float]
    loss_tolerance: float
    ordered: bool
    captured_at: float

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def describe(self) -> str:
        parts = [f"throughput>={self.avg_throughput_bps:.0f}bps"]
        if self.max_latency is not None:
            parts.append(f"latency<={self.max_latency:g}s")
        if self.max_jitter is not None:
            parts.append(f"jitter<={self.max_jitter:g}s")
        parts.append(f"loss<={self.loss_tolerance:g}")
        parts.append("ordered" if self.ordered else "unordered")
        return " ".join(parts)


@dataclass(frozen=True)
class QoSViolation:
    """One conformance breach: a window whose measurement broke the contract."""

    time: float          #: sim time of the window close that detected it
    connection: str
    kind: str            #: one of :data:`KINDS`
    measured: float
    bound: float
    window_index: int
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def astuple(self) -> tuple:
        return (
            self.time, self.connection, self.kind,
            self.measured, self.bound, self.window_index, self.detail,
        )


class _Window:
    """Accumulator for one sliding sim-time window."""

    __slots__ = (
        "idx", "sent_pdus", "sent_bytes", "retransmits",
        "delivered_msgs", "delivered_bytes",
        "lat_sum", "lat_sq", "lat_max", "reorders",
        "data_pdus", "dup_pdus", "lost_pdus",
    )

    def __init__(self, idx: int) -> None:
        self.idx = idx
        self.sent_pdus = 0
        self.sent_bytes = 0
        self.retransmits = 0
        self.delivered_msgs = 0
        self.delivered_bytes = 0
        self.lat_sum = 0.0
        self.lat_sq = 0.0
        self.lat_max = 0.0
        self.reorders = 0
        self.data_pdus = 0
        self.dup_pdus = 0
        self.lost_pdus = 0

    @property
    def active(self) -> bool:
        return bool(self.delivered_msgs or self.sent_pdus or self.data_pdus)

    def jitter(self) -> float:
        n = self.delivered_msgs
        if n < 2:
            return 0.0
        mean = self.lat_sum / n
        var = max(0.0, self.lat_sq / n - mean * mean)
        return var ** 0.5

    def summary(self) -> Dict[str, Any]:
        return {
            "index": self.idx,
            "sent_pdus": self.sent_pdus,
            "retransmits": self.retransmits,
            "delivered_msgs": self.delivered_msgs,
            "delivered_bytes": self.delivered_bytes,
            "latency_max": self.lat_max,
            "jitter": self.jitter(),
            "reorders": self.reorders,
            "data_pdus": self.data_pdus,
            "lost_pdus": self.lost_pdus,
        }


class QoSAuditor:
    """Continuous conformance measurement for one connection.

    Attach the initiator's session with :meth:`attach_sender`; the audit
    plane attaches the responder session (delivery side) when it appears.
    The auditor is strictly *passive*: it schedules no kernel events and
    mutates no protocol state, so enabling it cannot perturb the
    simulated world — windows advance lazily, on whichever observer
    event or monitor sample next crosses a window boundary.
    """

    #: hard caps so a pathological run cannot grow unbounded state
    MAX_VIOLATIONS = 256
    MAX_WINDOWS = 512
    MAX_MISSING = 4096

    def __init__(
        self,
        contract: QoSContract,
        window: float = 0.25,
        warmup_windows: int = 1,
        loss_grace: float = 2.0,
        throughput_slack: float = 0.05,
        recorder: Optional[FlightRecorder] = None,
        plane: Optional["AuditPlane"] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive (seconds of sim time)")
        self.contract = contract
        self.ref = contract.connection
        self.window = float(window)
        self.warmup_windows = int(warmup_windows)
        self.loss_grace = float(loss_grace)
        self.throughput_slack = float(throughput_slack)
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self.plane = plane
        self.conn = None          #: AdaptiveConnection (duck-typed; optional)
        self.sender = None        #: initiator-side TKOSession
        self.receiver = None      #: responder-side TKOSession
        self.enabled = True

        self.violations: List[QoSViolation] = []
        self.violations_dropped = 0
        self.windows: deque = deque(maxlen=self.MAX_WINDOWS)
        self.checked: Dict[str, int] = {}
        self.violated: Dict[str, int] = {}
        self.decisions: List[Dict[str, Any]] = []   #: adaptation cross-links
        self.closed_windows = 0
        self.evaluated_windows = 0
        self.violating_windows = 0
        self.teardown: Optional[str] = None

        self._first_idx: Optional[int] = None
        self._cur: Optional[_Window] = None
        self._hi_seq: Optional[int] = None
        self._missing: Dict[int, float] = {}
        self._last_msg_id: Optional[int] = None
        self._last_summary: Dict[str, Any] = {}
        self._dumped: set = set()
        #: backlog state as of the *previous* observation — idle windows
        #: are only judged against the contract when the sender was
        #: already backlogged before the event that closed them (a send
        #: that lands on a window boundary must not convict the idle
        #: window it closes)
        self._prev_backlogged = False

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach_sender(self, session) -> None:
        self.sender = session
        if self._cur is None:
            idx = int(session.sim.now / self.window)
            self._first_idx = idx
            self._cur = _Window(idx)
        session.observers.append(self._on_sender_event)

    def attach_receiver(self, session) -> None:
        self.receiver = session
        if self._cur is None:
            idx = int(session.sim.now / self.window)
            self._first_idx = idx
            self._cur = _Window(idx)
        session.observers.append(self._on_receiver_event)

    def _now(self) -> float:
        s = self.sender or self.receiver
        return s.sim.now if s is not None else 0.0

    # ------------------------------------------------------------------
    # observer callbacks (sim-time only; must never mutate protocol state)
    # ------------------------------------------------------------------
    def _on_sender_event(self, event: str, session, **d) -> None:
        if not self.enabled:
            return
        now = session.sim.now
        self._roll(now)
        if event == "pdu-sent":
            pdu = d.get("pdu")
            if pdu is not None and getattr(pdu.ptype, "value", "") == "data":
                w = self._cur
                w.sent_pdus += 1
                w.sent_bytes += int(d.get("size", 0))
        elif event == "retransmit":
            self._cur.retransmits += 1
            self.recorder.note(
                "retransmit", now, seq=d.get("seq"), retries=d.get("retries")
            )
        elif event == "abort":
            self._on_teardown(now, str(d.get("reason", "")))
            return
        elif event == "close":
            self.finalize()
            return
        self._prev_backlogged = self._sender_backlogged()

    def _on_receiver_event(self, event: str, session, **d) -> None:
        if not self.enabled:
            return
        now = session.sim.now
        self._roll(now)
        if event == "deliver":
            w = self._cur
            nbytes = int(d.get("nbytes", 0))
            latency = float(d.get("latency", 0.0))
            w.delivered_msgs += 1
            w.delivered_bytes += nbytes
            w.lat_sum += latency
            w.lat_sq += latency * latency
            if latency > w.lat_max:
                w.lat_max = latency
            msg_id = d.get("msg_id")
            if msg_id is not None:
                if self._last_msg_id is not None and msg_id < self._last_msg_id:
                    w.reorders += 1
                else:
                    self._last_msg_id = msg_id
            self.recorder.note(
                "deliver", now, msg_id=msg_id, nbytes=nbytes, latency=latency
            )
        elif event == "pdu-received":
            if d.get("corrupted"):
                return
            pdu = d.get("pdu")
            if pdu is None or getattr(pdu.ptype, "value", "") != "data":
                return
            self._track_seq(int(pdu.seq), now)
        elif event == "abort":
            self._on_teardown(now, str(d.get("reason", "")))
            return
        self._prev_backlogged = self._sender_backlogged()

    def _track_seq(self, seq: int, now: float) -> None:
        """Receiver-side hole accounting: loss = holes unfilled past grace."""
        w = self._cur
        if self._hi_seq is None:
            # join the stream wherever it starts (implicit opens sync here)
            self._hi_seq = seq
            w.data_pdus += 1
            return
        if seq > self._hi_seq:
            missing = self._missing
            for hole in range(self._hi_seq + 1, seq):
                if len(missing) >= self.MAX_MISSING:
                    w.lost_pdus += 1    # overflow: resolve eagerly as lost
                else:
                    missing[hole] = now
            self._hi_seq = seq
            w.data_pdus += 1
        elif seq in self._missing:
            del self._missing[seq]
            w.data_pdus += 1
        else:
            w.dup_pdus += 1

    # ------------------------------------------------------------------
    # monitor samples (keep windows rolling through delivery silence)
    # ------------------------------------------------------------------
    def on_network_sample(self, state) -> None:
        if not self.enabled:
            return
        now = self._now()
        self._roll(now)
        self.recorder.note(
            "sample", now,
            rtt=getattr(state, "rtt", None),
            congestion=getattr(state, "congestion", None),
            loss_rate=getattr(state, "loss_rate", None),
            bottleneck_bps=getattr(state, "bottleneck_bps", None),
            reachable=getattr(state, "reachable", None),
        )
        self._prev_backlogged = self._sender_backlogged()

    # ------------------------------------------------------------------
    # adaptation cross-links (plane routes controller decisions here)
    # ------------------------------------------------------------------
    def note_adaptation(self, decision: Dict[str, Any]) -> None:
        if len(self.decisions) < self.MAX_VIOLATIONS:
            self.decisions.append(decision)
        when = decision.get("time", self._now())
        details = {k: v for k, v in decision.items() if k not in ("time", "kind")}
        self.recorder.note("adapt", when, **details)

    # ------------------------------------------------------------------
    # window machinery
    # ------------------------------------------------------------------
    def _roll(self, now: float) -> None:
        """Close every window whose end precedes ``now`` (lazy advance)."""
        cur = self._cur
        if cur is None:
            return
        target = int(now / self.window)
        while cur.idx < target:
            self._close(cur)
            cur = _Window(cur.idx + 1)
            self._cur = cur

    def finalize(self) -> None:
        """Force the current partial window closed (end-of-run scorecards)."""
        cur = self._cur
        if cur is not None and cur.active:
            self._close(cur)
            self._cur = _Window(cur.idx + 1)

    def _close(self, w: _Window) -> None:
        end = (w.idx + 1) * self.window
        # resolve sequence holes that outlived the grace period
        if self._missing:
            cutoff = end - self.loss_grace
            lost = [s for s, t0 in self._missing.items() if t0 <= cutoff]
            for s in lost:
                del self._missing[s]
            w.lost_pdus += len(lost)

        checked_before = sum(self.checked.values())
        breaches = self._evaluate(w, end)
        self.closed_windows += 1
        summary = w.summary()
        if w.active or breaches:
            self.windows.append(summary)
            self._last_summary = summary
            self.recorder.note("window", end, **summary)
        if sum(self.checked.values()) > checked_before:
            self.evaluated_windows += 1
            if breaches:
                self.violating_windows += 1
        if _TELEMETRY.enabled:
            labels = {"conn": self.ref}
            m = _TELEMETRY.metrics
            m.gauge(
                "qos_conformance_score", labels=labels,
                help="fraction of evaluated windows meeting the QoS contract",
            ).set(self.overall_score)
            m.counter(
                "qos_conformance_windows_total",
                labels={**labels, "verdict": "violate" if breaches else "conform"},
                help="audited sliding windows by conformance verdict",
            ).inc()

    def _evaluate(self, w: _Window, end: float) -> int:
        c = self.contract
        breaches = 0
        active = w.active or self._prev_backlogged

        if (
            active
            and c.avg_throughput_bps > 0
            and self._first_idx is not None
            and w.idx >= self._first_idx + self.warmup_windows
        ):
            measured = w.delivered_bytes * 8.0 / self.window
            bound = c.avg_throughput_bps
            self.checked["throughput"] = self.checked.get("throughput", 0) + 1
            if measured < bound * (1.0 - self.throughput_slack) - _EPS:
                breaches += self._violate(
                    "throughput", measured, bound, end, w.idx,
                    f"delivered {measured:.0f}bps of {bound:.0f}bps",
                )

        if c.max_latency is not None and w.delivered_msgs:
            self.checked["delay"] = self.checked.get("delay", 0) + 1
            if w.lat_max > c.max_latency + _EPS:
                breaches += self._violate(
                    "delay", w.lat_max, c.max_latency, end, w.idx,
                    f"worst delivery {w.lat_max:.6f}s",
                )

        if c.max_jitter is not None and w.delivered_msgs >= 2:
            jit = w.jitter()
            self.checked["jitter"] = self.checked.get("jitter", 0) + 1
            if jit > c.max_jitter + _EPS:
                breaches += self._violate(
                    "jitter", jit, c.max_jitter, end, w.idx,
                    f"stddev over {w.delivered_msgs} deliveries",
                )

        if w.lost_pdus or w.data_pdus:
            frac = w.lost_pdus / float(w.lost_pdus + w.data_pdus)
            self.checked["loss"] = self.checked.get("loss", 0) + 1
            if frac > c.loss_tolerance + _EPS:
                breaches += self._violate(
                    "loss", frac, c.loss_tolerance, end, w.idx,
                    f"{w.lost_pdus} of {w.lost_pdus + w.data_pdus} DATA PDUs",
                )

        if c.ordered and w.delivered_msgs:
            self.checked["ordering"] = self.checked.get("ordering", 0) + 1
            if w.reorders > 0:
                breaches += self._violate(
                    "ordering", float(w.reorders), 0.0, end, w.idx,
                    f"{w.reorders} out-of-order deliveries",
                )
        return breaches

    def _sender_backlogged(self) -> bool:
        s = self.sender
        if s is None:
            return False
        return bool(s.state.outstanding) or bool(s._send_queue)

    def _violate(
        self, kind: str, measured: float, bound: float,
        end: float, idx: int, detail: str,
    ) -> int:
        self.violated[kind] = self.violated.get(kind, 0) + 1
        v = QoSViolation(
            time=end, connection=self.ref, kind=kind,
            measured=measured, bound=bound, window_index=idx, detail=detail,
        )
        if len(self.violations) < self.MAX_VIOLATIONS:
            self.violations.append(v)
        else:
            self.violations_dropped += 1
        self.recorder.note(
            "violation", end, dimension=kind, measured=measured, bound=bound,
            window=idx, detail=detail,
        )
        _TELEMETRY.instant(
            "qos:violation", "audit",
            conn=self.ref, kind=kind, measured=measured, bound=bound,
        )
        if _TELEMETRY.enabled:
            _TELEMETRY.metrics.counter(
                "qos_conformance_violations_total",
                labels={"conn": self.ref, "kind": kind},
                help="QoS contract breaches by dimension",
            ).inc()
        if self.plane is not None:
            self.plane.on_violation(self, v)
        return 1

    def _on_teardown(self, now: float, reason: str) -> None:
        self._roll(now)
        self.finalize()
        if self.teardown is None:
            self.teardown = reason
        self.recorder.note("teardown", now, reason=reason)
        if self.plane is not None:
            self.plane.request_dump(
                self, "abnormal-teardown", {"time": now, "reason": reason}
            )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def overall_score(self) -> float:
        if not self.evaluated_windows:
            return 1.0
        return 1.0 - self.violating_windows / float(self.evaluated_windows)

    def scorecard(self) -> Dict[str, Any]:
        dims: Dict[str, Any] = {}
        for kind in KINDS:
            n = self.checked.get(kind, 0)
            if not n:
                continue
            bad = self.violated.get(kind, 0)
            dims[kind] = {
                "windows": n,
                "violations": bad,
                "score": round(1.0 - bad / float(n), 6),
            }
        return {
            "connection": self.ref,
            "contract": self.contract.to_dict(),
            "window_s": self.window,
            "windows_closed": self.closed_windows,
            "windows_evaluated": self.evaluated_windows,
            "violations": len(self.violations) + self.violations_dropped,
            "overall_score": round(self.overall_score, 6),
            "dimensions": dims,
            "last_window": dict(self._last_summary),
            "teardown": self.teardown,
        }

    def blackbox(self, trigger: str, info: Dict[str, Any]) -> Dict[str, Any]:
        """A self-contained black-box dump (JSON-serializable)."""
        dump: Dict[str, Any] = {
            "version": 1,
            "kind": "flight-recorder-dump",
            "trigger": {"kind": trigger, **info},
            "connection": self.ref,
            "contract": self.contract.to_dict(),
            "scorecard": self.scorecard(),
            "violations": [v.to_dict() for v in self.violations[-64:]],
            "adaptation": list(self.decisions),
            "records": self.recorder.snapshot(),
        }
        conn = self.conn
        if conn is not None:
            scs = getattr(conn, "scs", None)
            cfg = getattr(scs, "config", None)
            if cfg is not None and hasattr(cfg, "to_dict"):
                dump["config"] = cfg.to_dict()
            ctrl = getattr(conn, "adaptation", None)
            if ctrl is not None and not self.decisions:
                dump["adaptation"] = [
                    {"time": t, "action": a, "detail": d}
                    for (t, a, d) in getattr(ctrl, "events", [])
                ]
        return dump


class AuditPlane:
    """Process-global registry of auditors, mirror of :data:`TELEMETRY`.

    Disabled by default; the lifecycle/protocol hooks guard on
    ``AUDIT.enabled`` (one attribute test).  ``enable()`` sets the
    measurement defaults every subsequently-attached auditor inherits.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.auditors: Dict[str, QoSAuditor] = {}
        self.dumps: List[Dict[str, Any]] = []
        self.dump_paths: List[str] = []
        self.dump_dir: Optional[str] = None
        self.window = 0.25
        self.warmup_windows = 1
        self.loss_grace = 2.0
        self.throughput_slack = 0.05
        self.flight_capacity = 256
        self.max_dumps = 64
        self._pending_peer: Dict[Tuple[str, str, int], QoSAuditor] = {}
        self._dump_seq = 0

    # ------------------------------------------------------------------
    def enable(
        self,
        window: Optional[float] = None,
        warmup_windows: Optional[int] = None,
        loss_grace: Optional[float] = None,
        throughput_slack: Optional[float] = None,
        flight_capacity: Optional[int] = None,
        dump_dir: Optional[str] = None,
    ) -> "AuditPlane":
        if window is not None:
            self.window = float(window)
        if warmup_windows is not None:
            self.warmup_windows = int(warmup_windows)
        if loss_grace is not None:
            self.loss_grace = float(loss_grace)
        if throughput_slack is not None:
            self.throughput_slack = float(throughput_slack)
        if flight_capacity is not None:
            self.flight_capacity = int(flight_capacity)
        if dump_dir is not None:
            self.dump_dir = dump_dir
        self.enabled = True
        return self

    def disable(self) -> "AuditPlane":
        self.enabled = False
        for auditor in self.auditors.values():
            auditor.enabled = False
        return self

    def reset(self) -> "AuditPlane":
        """Drop all auditors, pending matches, and collected dumps."""
        for auditor in self.auditors.values():
            auditor.enabled = False
            for session in (auditor.sender, auditor.receiver):
                if session is None:
                    continue
                for cb in (auditor._on_sender_event, auditor._on_receiver_event):
                    if cb in session.observers:
                        session.observers.remove(cb)
        self.auditors.clear()
        self._pending_peer.clear()
        self.dumps.clear()
        self.dump_paths.clear()
        self.dump_dir = None
        self._dump_seq = 0
        return self

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def _new_auditor(self, contract: QoSContract) -> QoSAuditor:
        return QoSAuditor(
            contract,
            window=self.window,
            warmup_windows=self.warmup_windows,
            loss_grace=self.loss_grace,
            throughput_slack=self.throughput_slack,
            recorder=FlightRecorder(self.flight_capacity),
            plane=self,
        )

    def attach_connection(self, conn) -> Optional[QoSAuditor]:
        """Capture the contract of a MANTTS connection at instantiation.

        Called from ``ConnectionLifecycle.instantiate`` (guarded by
        ``AUDIT.enabled``).  The initiator session is observed for the
        send side; a pending peer-watch keyed by the demux tuple picks up
        the responder session for the delivery side when it appears.
        """
        if not self.enabled or conn.ref in self.auditors:
            return None
        session = conn.session
        if session is None:
            return None
        q = conn.acd.quantitative
        ql = conn.acd.qualitative
        contract = QoSContract(
            connection=conn.ref,
            avg_throughput_bps=q.avg_throughput_bps,
            peak_throughput_bps=q.peak_bps,
            max_latency=q.max_latency,
            max_jitter=q.max_jitter,
            loss_tolerance=q.loss_tolerance,
            ordered=ql.ordered,
            captured_at=session.sim.now,
        )
        auditor = self._new_auditor(contract)
        auditor.conn = conn
        self.auditors[conn.ref] = auditor
        auditor.attach_sender(session)
        if not conn.group:
            # the responder session will demux in with this exact tuple
            key = (session.remote_host, session.host.name, session.local_port)
            self._pending_peer[key] = auditor
        monitor = getattr(conn, "monitor", None)
        if monitor is not None:
            monitor.on_sample.append(auditor.on_network_sample)
        auditor.recorder.note(
            "contract", contract.captured_at,
            connection=conn.ref, contract=contract.describe(),
        )
        _TELEMETRY.instant(
            "qos:contract-captured", "audit",
            conn=conn.ref, contract=contract.describe(),
        )
        if _TELEMETRY.enabled:
            _TELEMETRY.metrics.counter(
                "qos_conformance_audited_total",
                help="connections whose QoS contract is under audit",
            ).inc()
        return auditor

    def attach_session(
        self, session, contract: QoSContract, watch_peer: bool = True
    ) -> QoSAuditor:
        """Audit a raw TKO session against an explicit contract (tests,
        benchmarks, worlds assembled without MANTTS)."""
        auditor = self._new_auditor(contract)
        self.auditors[contract.connection] = auditor
        auditor.attach_sender(session)
        if watch_peer:
            key = (session.remote_host, session.host.name, session.local_port)
            self._pending_peer[key] = auditor
        return auditor

    def session_created(self, session) -> None:
        """Protocol hook: match a newly-demuxed session to a peer watch."""
        if not self._pending_peer:
            return
        key = (session.host.name, session.remote_host, session.remote_port)
        auditor = self._pending_peer.pop(key, None)
        if auditor is not None:
            auditor.attach_receiver(session)

    # ------------------------------------------------------------------
    # cross-links from the adaptation ladder and the lifecycle
    # ------------------------------------------------------------------
    def note_adaptation(self, ref: str, decision: Dict[str, Any]) -> None:
        auditor = self.auditors.get(ref)
        if auditor is None:
            return
        auditor.note_adaptation(decision)
        if decision.get("action") == "degrade":
            self.request_dump(auditor, "degradation", dict(decision))

    def note_teardown(self, ref: str, reason: str) -> None:
        auditor = self.auditors.get(ref)
        if auditor is None:
            return
        auditor._on_teardown(auditor._now(), reason)

    # ------------------------------------------------------------------
    # black-box dumps
    # ------------------------------------------------------------------
    def on_violation(self, auditor: QoSAuditor, violation: QoSViolation) -> None:
        self.request_dump(
            auditor, "violation",
            {"time": violation.time, "violation": violation.to_dict()},
        )

    def request_dump(
        self, auditor: QoSAuditor, trigger: str, info: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """At most one dump per trigger kind per connection (no dump storms)."""
        if trigger in auditor._dumped:
            return None
        auditor._dumped.add(trigger)
        dump = auditor.blackbox(trigger, info)
        if self.dump_dir is not None:
            import json
            import os

            self._dump_seq += 1
            name = f"flight-{auditor.ref}-{trigger}-{self._dump_seq}.json"
            path = os.path.join(self.dump_dir, name)
            with open(path, "w") as fh:
                json.dump(dump, fh, indent=1, default=str)
            if len(self.dump_paths) < self.max_dumps:
                self.dump_paths.append(path)
        elif len(self.dumps) < self.max_dumps:
            self.dumps.append(dump)
        return dump

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def scorecards(self) -> Dict[str, Dict[str, Any]]:
        return {ref: a.scorecard() for ref, a in self.auditors.items()}

    def finalize(self) -> "AuditPlane":
        """Close every auditor's partial window (end-of-run reports)."""
        for auditor in self.auditors.values():
            auditor.finalize()
        return self

    def __len__(self) -> int:
        return len(self.auditors)


#: the process-global audit plane every hook guards on
AUDIT = AuditPlane()
