"""Black-box flight recorder: a bounded ring of recent per-connection
events, dumped as self-contained JSON when something goes wrong.

Aircraft flight recorders keep only the last N minutes — enough context
to reconstruct the failure without unbounded storage.  The transport
analogue here is a :class:`FlightRecorder` ring fed by the QoS auditor
(:mod:`repro.unites.obs.audit`): recent deliveries, retransmissions,
network-monitor samples, window summaries, adaptation-ladder decisions,
and violations.  On a QoS violation, a degradation, or an abnormal
teardown, the audit plane snapshots the ring together with the
contract, scorecard, violation list, and adaptation decision trail into
one JSON document that answers *what led up to this* offline — the
cause→ladder→effect chain the UNITES monitoring mandate (§4.3) asks for.

Post-hoc analysis::

    python -m repro.unites.obs.flight flight-A-1-violation-1.json

All timestamps are sim time; no wall-clock state enters a dump, so two
equivalent runs produce byte-identical black boxes.  This module is a
leaf: stdlib only.
"""

from __future__ import annotations

import json
import sys
from collections import deque
from typing import Any, Dict, List, Optional


class FlightRecorder:
    """Bounded ring of recent events for one connection."""

    __slots__ = ("capacity", "records", "noted_total")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = int(capacity)
        self.records: deque = deque(maxlen=self.capacity)
        self.noted_total = 0

    def note(self, kind: str, time: float, **details: Any) -> None:
        """Append one event; the oldest falls off when the ring is full."""
        rec = {"kind": kind, "time": time}
        if details:
            rec.update(details)
        self.records.append(rec)
        self.noted_total += 1

    def snapshot(self) -> List[Dict[str, Any]]:
        return [dict(r) for r in self.records]

    @property
    def dropped(self) -> int:
        return max(0, self.noted_total - len(self.records))

    def __len__(self) -> int:
        return len(self.records)


# ----------------------------------------------------------------------
# post-hoc analysis
# ----------------------------------------------------------------------
def _fmt_value(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def _fmt_record(rec: Dict[str, Any]) -> str:
    t = rec.get("time", 0.0)
    kind = rec.get("kind", "?")
    rest = ", ".join(
        f"{k}={_fmt_value(v)}" for k, v in rec.items()
        if k not in ("time", "kind") and v is not None
    )
    return f"  t={t:10.6f}  {kind:<12} {rest}"


def analyze(dump: Dict[str, Any], tail: int = 20) -> str:
    """Render one flight dump as a human-readable incident report.

    The report walks cause→ladder→effect: the contract that was in
    force, the conformance scorecard at dump time, the violation that
    (typically) triggered the dump, the adaptation-ladder decisions that
    responded, and the tail of the raw event ring for fine-grained
    context.
    """
    lines: List[str] = []
    conn = dump.get("connection", "?")
    trigger = dump.get("trigger", {})
    lines.append(f"=== flight recorder dump: connection {conn} ===")
    tkind = trigger.get("kind", "?")
    ttime = trigger.get("time")
    head = f"trigger : {tkind}"
    if ttime is not None:
        head += f" at t={float(ttime):.6f}s"
    v = trigger.get("violation")
    if isinstance(v, dict):
        head += (
            f" ({v.get('kind')}: measured {_fmt_value(v.get('measured'))}"
            f" vs bound {_fmt_value(v.get('bound'))})"
        )
    if trigger.get("reason"):
        head += f" ({trigger['reason']})"
    lines.append(head)

    # watchdog incidents (repro.transport.realtime.DriverWatchdog) carry
    # the wedged pacing thread's stack — the "what was it doing" answer
    if dump.get("driver_stack"):
        stalled = dump.get("stalled_for")
        label = "driver stack at stall"
        if stalled is not None:
            label += f" (silent {_fmt_value(stalled)}s)"
        lines.append(label + ":")
        for ln in str(dump["driver_stack"]).rstrip().splitlines():
            lines.append("  " + ln)

    contract = dump.get("contract", {})
    if contract:
        lines.append(
            "contract: "
            + ", ".join(
                f"{k}={_fmt_value(v)}" for k, v in contract.items()
                if k not in ("connection", "captured_at") and v is not None
            )
        )

    card = dump.get("scorecard", {})
    if card:
        lines.append(
            f"scorecard: overall {card.get('overall_score')} over "
            f"{card.get('windows_evaluated', 0)} evaluated windows, "
            f"{card.get('violations', 0)} violations"
        )
        for kind, d in (card.get("dimensions") or {}).items():
            lines.append(
                f"  {kind:<10} score {d.get('score')} "
                f"({d.get('violations')}/{d.get('windows')} windows violated)"
            )

    violations = dump.get("violations") or []
    if violations:
        lines.append(f"violations ({len(violations)}):")
        for v in violations[-10:]:
            lines.append(
                f"  t={v.get('time', 0.0):10.6f}  {v.get('kind', '?'):<10} "
                f"measured {_fmt_value(v.get('measured'))} "
                f"vs bound {_fmt_value(v.get('bound'))}  {v.get('detail', '')}"
            )

    trail = dump.get("adaptation") or []
    if trail:
        lines.append(f"adaptation trail ({len(trail)} decisions):")
        for d in trail[-10:]:
            row = (
                f"  t={d.get('time', 0.0):10.6f}  {d.get('action', '?'):<16} "
                f"{d.get('detail', '')}"
            )
            crossed = d.get("thresholds")
            if crossed:
                row += "  [" + "; ".join(
                    f"{name} {_fmt_value(measured)}>{_fmt_value(bound)}"
                    for name, measured, bound in crossed
                ) + "]"
            if d.get("outcome"):
                row += f" -> {d['outcome']}"
            lines.append(row)

    records = dump.get("records") or []
    if records:
        lines.append(f"event ring (last {min(tail, len(records))} of {len(records)}):")
        for rec in records[-tail:]:
            lines.append(_fmt_record(rec))

    cfg = dump.get("config")
    if cfg:
        lines.append(
            "session config: "
            + ", ".join(f"{k}={v}" for k, v in sorted(cfg.items()) if v is not None)
        )
    return "\n".join(lines)


def load(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        return json.load(fh)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.unites.obs.flight <dump.json> [...]``"""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help"):
        print("usage: python -m repro.unites.obs.flight <dump.json> [...]")
        return 0 if args else 2
    status = 0
    for path in args:
        try:
            dump = load(path)
        except (OSError, ValueError) as exc:
            print(f"{path}: cannot read dump: {exc}", file=sys.stderr)
            status = 1
            continue
        print(analyze(dump))
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
