"""Typed metric registry: counters, gauges, fixed-bucket histograms.

The base UNITES catalogue (:mod:`repro.unites.metrics`) evaluates *session*
state on demand; the registry is the complementary push-side store that any
layer can increment as events happen — the kernel counts dispatches, links
count drops, mechanisms count invocations.  All three metric types render
to Prometheus text (:func:`repro.unites.obs.exporters.render_prometheus`)
and route into the existing
:class:`~repro.unites.repository.MetricRepository` via
:meth:`MetricRegistry.to_repository`, so ``UNITES.report()`` and the A/B
harness compose with them unchanged.

This module is a leaf: stdlib only, importable from the sim kernel.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_metric(name: str, labels: LabelItems) -> str:
    """Prometheus-style flat name: ``name{k="v",...}`` (no braces unlabelled)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: LabelItems = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    @property
    def flat_name(self) -> str:
        return format_metric(self.name, self.labels)


class Gauge:
    """A value that can go up and down (depths, ratios, utilizations)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: LabelItems = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    @property
    def flat_name(self) -> str:
        return format_metric(self.name, self.labels)


class Histogram:
    """Fixed-bucket histogram with cumulative-bucket quantile estimates.

    Buckets are upper bounds (seconds by default — tuned for wall-clock
    handler times and sim-time latencies); observations above the last
    bound land in the implicit ``+Inf`` bucket.  Quantiles are estimated as
    the upper bound of the first bucket whose cumulative count reaches the
    requested rank — coarse, bounded-memory, and deterministic.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "help", "bounds", "bucket_counts", "count", "sum")

    DEFAULT_BOUNDS = (
        1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
        1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    )

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        help: str = "",
        bounds: Optional[Iterable[float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(bounds) if bounds is not None else self.DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError("histogram bounds must be a non-empty ascending sequence")
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, v: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.sum += v

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket holding the ``q``-quantile observation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for i, c in enumerate(self.bucket_counts):
            cumulative += c
            if cumulative >= rank and c:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")

    @property
    def flat_name(self) -> str:
        return format_metric(self.name, self.labels)


class MetricRegistry:
    """Registry of named, optionally-labelled metrics (get-or-create)."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, labels, help: str, **kw):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], help=help, **kw)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, not {cls.kind}"
            )
        return metric

    def counter(self, name: str, labels: Optional[Dict[str, str]] = None, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(self, name: str, labels: Optional[Dict[str, str]] = None, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
        bounds: Optional[Iterable[float]] = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, help, bounds=bounds)

    # ------------------------------------------------------------------
    def get(self, name: str, labels: Optional[Dict[str, str]] = None):
        """The metric if registered, else None (never creates)."""
        return self._metrics.get((name, _label_key(labels)))

    def collect(self) -> List[object]:
        """All metrics, grouped by name (registration order within groups)."""
        return sorted(self._metrics.values(), key=lambda m: (m.name, m.labels))

    def snapshot(self) -> Dict[str, float]:
        """Flat ``name{labels} -> value`` view (histograms: count/sum/p50/p95)."""
        out: Dict[str, float] = {}
        for m in self.collect():
            if isinstance(m, Histogram):
                out[m.flat_name + "_count"] = float(m.count)
                out[m.flat_name + "_sum"] = m.sum
                for q, tag in ((0.5, "_p50"), (0.95, "_p95")):
                    v = m.quantile(q)
                    if v is not None and v != float("inf"):
                        out[m.flat_name + tag] = v
            else:
                out[m.flat_name] = m.value
        return out

    def to_repository(self, repository, time: float, scope: str = "system", entity: str = "") -> int:
        """Route the current values into a UNITES ``MetricRepository``.

        Returns the number of samples recorded.  This is the bridge that
        lets ``UNITES.report()`` / ``watch_*`` and the experiment harness
        consume push-side telemetry alongside pull-side session snapshots.
        """
        values = self.snapshot()
        for flat, value in values.items():
            repository.record(time, scope, entity, flat, value)
        return len(values)

    def reset(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self.collect())
