"""The UNITES Metric Repository (Figure 6).

"The UNITES Metric Repository stores the collected metric information in a
database ... presented in either a systemwide, per-host, or per-connection
manner."  Samples are (time, scope, entity, metric, value) rows held in
memory with simple secondary indexing; queries return time series or
aggregates at any scope (a per-link scope extends the paper's three for
the UNITES-X network instrumentation, and a per-sweep-cell scope holds the
results that :mod:`repro.sweep` campaigns stream back).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

SCOPES = ("session", "host", "link", "system", "sweep")


@dataclass(frozen=True)
class Sample:
    """One stored measurement."""

    time: float
    scope: str          #: "session" | "host" | "link" | "system" | "sweep"
    entity: str         #: connection ref / host name / link name / sweep cell / ""
    metric: str
    value: float


class MetricRepository:
    """In-memory measurement database with scope/metric indexing."""

    def __init__(self) -> None:
        self._samples: List[Sample] = []
        self._by_key: Dict[Tuple[str, str, str], List[Sample]] = defaultdict(list)

    # ------------------------------------------------------------------
    def record(self, time: float, scope: str, entity: str, metric: str, value: float) -> None:
        if scope not in SCOPES:
            raise ValueError(f"scope must be one of {SCOPES}")
        if value is None:
            return
        s = Sample(time, scope, entity, metric, float(value))
        self._samples.append(s)
        self._by_key[(scope, entity, metric)].append(s)

    def record_many(self, time: float, scope: str, entity: str, values: Dict[str, Optional[float]]) -> None:
        for metric, value in values.items():
            if value is not None:
                self.record(time, scope, entity, metric, value)

    # ------------------------------------------------------------------
    def series(self, metric: str, scope: str = "session", entity: str = "") -> List[Tuple[float, float]]:
        """Time series of one metric for one entity."""
        return [(s.time, s.value) for s in self._by_key.get((scope, entity, metric), [])]

    def latest(self, metric: str, scope: str = "session", entity: str = "") -> Optional[float]:
        rows = self._by_key.get((scope, entity, metric))
        return rows[-1].value if rows else None

    def values(self, metric: str, scope: Optional[str] = None) -> List[float]:
        """All values of one metric, across entities (systemwide view)."""
        return [
            s.value
            for s in self._samples
            if s.metric == metric and (scope is None or s.scope == scope)
        ]

    def entities(self, scope: str) -> List[str]:
        return sorted({s.entity for s in self._samples if s.scope == scope})

    def metrics_for(self, scope: str, entity: str) -> List[str]:
        return sorted(
            {s.metric for s in self._samples if s.scope == scope and s.entity == entity}
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._samples)

    def clear(self) -> None:
        self._samples.clear()
        self._by_key.clear()
