"""UNITES — "UNIform Transport Evaluation Subsystem" (§4.3, Figure 6).

Metric specification, collection, analysis, and presentation for
controlled transport-system experimentation:

* :mod:`repro.unites.metrics` — the blackbox/whitebox metric catalogue;
* :mod:`repro.unites.repository` — the metric repository (an in-memory
  database queried per-session, per-host, per-link, or system-wide);
* :mod:`repro.unites.collect` — collectors and the ``UNITES`` facade that
  MANTTS hands TMC requests to;
* :mod:`repro.unites.analyze` — statistics and A/B comparison;
* :mod:`repro.unites.present` — tables / CSV / series / Prometheus text;
* :mod:`repro.unites.experiment` — the controlled hypothesis-testing
  harness used by every benchmark in ``benchmarks/``;
* :mod:`repro.unites.obs` — UNITES-X: the span/trace bus, typed metric
  registry, and exporters that instrument every layer of the system
  (see ``docs/observability.md``).

This package resolves its re-exports lazily (PEP 562): the observability
substrate in :mod:`repro.unites.obs` is imported by the lowest layers of
the system (``repro.sim.kernel``, ``repro.netsim.link``), and an eager
``__init__`` here would close an import cycle through
``repro.unites.collect`` → ``repro.sim.kernel``.
"""

from importlib import import_module

_EXPORTS = {
    # metrics catalogue
    "BLACKBOX": "repro.unites.metrics",
    "METRICS": "repro.unites.metrics",
    "WHITEBOX": "repro.unites.metrics",
    "MetricSpec": "repro.unites.metrics",
    "session_snapshot": "repro.unites.metrics",
    # repository
    "MetricRepository": "repro.unites.repository",
    "Sample": "repro.unites.repository",
    # collection facade
    "UNITES": "repro.unites.collect",
    "SessionCollector": "repro.unites.collect",
    # analysis / presentation
    "compare": "repro.unites.analyze",
    "percentile": "repro.unites.analyze",
    "summarize": "repro.unites.analyze",
    "render_csv": "repro.unites.present",
    "render_series": "repro.unites.present",
    "render_table": "repro.unites.present",
    "render_prometheus": "repro.unites.present",
    # experiment harness
    "Experiment": "repro.unites.experiment",
    "VariantResult": "repro.unites.experiment",
    # protocol event tracing
    "SessionTracer": "repro.unites.trace",
    "TraceEvent": "repro.unites.trace",
    # UNITES-X observability layer
    "TELEMETRY": "repro.unites.obs.telemetry",
    "Telemetry": "repro.unites.obs.telemetry",
    "Span": "repro.unites.obs.telemetry",
    "MetricRegistry": "repro.unites.obs.registry",
    "Counter": "repro.unites.obs.registry",
    "Gauge": "repro.unites.obs.registry",
    "Histogram": "repro.unites.obs.registry",
    "to_chrome_trace": "repro.unites.obs.exporters",
    "write_chrome_trace": "repro.unites.obs.exporters",
    "to_jsonl": "repro.unites.obs.exporters",
    "write_jsonl": "repro.unites.obs.exporters",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
