"""UNITES — "UNIform Transport Evaluation Subsystem" (§4.3, Figure 6).

Metric specification, collection, analysis, and presentation for
controlled transport-system experimentation:

* :mod:`repro.unites.metrics` — the blackbox/whitebox metric catalogue;
* :mod:`repro.unites.repository` — the metric repository (an in-memory
  database queried per-session, per-host, or system-wide);
* :mod:`repro.unites.collect` — collectors and the ``UNITES`` facade that
  MANTTS hands TMC requests to;
* :mod:`repro.unites.analyze` — statistics and A/B comparison;
* :mod:`repro.unites.present` — tables / CSV / series rendering;
* :mod:`repro.unites.experiment` — the controlled hypothesis-testing
  harness used by every benchmark in ``benchmarks/``.
"""

from repro.unites.metrics import (
    BLACKBOX,
    METRICS,
    WHITEBOX,
    MetricSpec,
    session_snapshot,
)
from repro.unites.repository import MetricRepository, Sample
from repro.unites.collect import UNITES, SessionCollector
from repro.unites.analyze import compare, percentile, summarize
from repro.unites.present import render_csv, render_series, render_table
from repro.unites.experiment import Experiment, VariantResult
from repro.unites.trace import SessionTracer, TraceEvent

__all__ = [
    "SessionTracer",
    "TraceEvent",
    "MetricSpec",
    "METRICS",
    "BLACKBOX",
    "WHITEBOX",
    "session_snapshot",
    "MetricRepository",
    "Sample",
    "UNITES",
    "SessionCollector",
    "summarize",
    "compare",
    "percentile",
    "render_table",
    "render_csv",
    "render_series",
    "Experiment",
    "VariantResult",
]
