"""Controlled experiment harness (§4.3's hypothesis-testing goal).

"A fundamental goal of ADAPTIVE is to provide a framework that supports
controlled hypothesis testing of different transport system session
configurations."  An :class:`Experiment` runs each *variant* (a named
scenario factory) in its own fresh simulator with its own deterministic
RNG root, collects one metric dict per variant, and renders a comparison
— the same methodology every table/figure reproduction in ``benchmarks/``
uses.

A variant factory receives nothing and returns the final metric dict; it
is expected to build its whole world (network, hosts, stacks, workload),
run the simulator, and snapshot.  Helpers in this module cover the common
"run one session over one path with one config" shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.unites.analyze import compare
from repro.unites.present import render_table


@dataclass
class VariantResult:
    """One variant's outcome."""

    name: str
    metrics: Dict[str, Optional[float]]
    notes: str = ""


class Experiment:
    """Named set of variants producing a comparison table."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._variants: List[tuple] = []
        self.results: List[VariantResult] = []

    # ------------------------------------------------------------------
    def add_variant(
        self,
        name: str,
        factory: Callable[[], Dict[str, Optional[float]]],
        notes: str = "",
    ) -> None:
        """Register a variant; ``factory`` builds, runs, and measures."""
        self._variants.append((name, factory, notes))

    def run(self) -> List[VariantResult]:
        """Execute every variant (idempotent: reruns from scratch)."""
        self.results = []
        for name, factory, notes in self._variants:
            metrics = factory()
            self.results.append(VariantResult(name, metrics, notes))
        return self.results

    # ------------------------------------------------------------------
    def table(self, columns: Optional[List[str]] = None) -> str:
        """Render all variants' metrics side by side."""
        if not self.results:
            raise RuntimeError("run() the experiment first")
        rows = []
        for r in self.results:
            row: Dict[str, object] = {"variant": r.name}
            row.update({k: v for k, v in r.metrics.items()})
            if r.notes:
                row["notes"] = r.notes
            rows.append(row)
        cols = ["variant"] + (columns or sorted(self.results[0].metrics))
        if any(r.notes for r in self.results):
            cols.append("notes")
        return render_table(rows, cols, title=f"== {self.name} ==")

    def result(self, name: str) -> VariantResult:
        for r in self.results:
            if r.name == name:
                return r
        raise KeyError(f"no variant named {name!r}")

    def compare(self, baseline: str, candidate: str) -> Dict[str, Dict[str, float]]:
        """Per-metric ratio comparison of two variants."""
        return compare(self.result(baseline).metrics, self.result(candidate).metrics)

    def winner(self, metric: str, higher_is_better: bool = True) -> str:
        """Variant name winning on one metric (the shape checks in tests)."""
        scored = [
            (r.metrics.get(metric), r.name)
            for r in self.results
            if r.metrics.get(metric) is not None
        ]
        if not scored:
            raise ValueError(f"no variant produced metric {metric!r}")
        chooser = max if higher_is_better else min
        return chooser(scored, key=lambda pair: pair[0])[1]
