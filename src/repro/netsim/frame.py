"""The network-layer transmission unit.

A ``Frame`` is what traverses links and switch queues.  The transport system
(TKO) hands the network a frame per PDU (or per fragment, when the PDU
exceeds the path MTU).  The payload is opaque to the network — exactly the
separation the paper draws between the transport system and the underlying
network service.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Sequence

_frame_ids = itertools.count(1)

# Priority classes for the network's priority-delivery service (Table 1's
# "Priority Delivery" column).  Lower numeric value is served first.
PRIO_CONTROL = 0   # out-of-band signalling (Figure 3's control path)
PRIO_HIGH = 1
PRIO_NORMAL = 2


class Frame:
    """One unit of network transmission.

    Attributes
    ----------
    src, dst:
        Host names.  For multicast, ``dst`` is a group address and
        ``multicast_dsts`` carries the resolved member list while the frame
        fans out through the tree.
    size:
        Total on-wire size in bytes (headers included) — drives
        serialization delay and bit-error probability.
    payload:
        Opaque transport-layer object (a :class:`repro.tko.message.TKOMessage`
        in normal operation).
    priority:
        Network service class; control frames preempt data in switch queues.
    corrupted:
        Set by a link when channel bit errors hit the frame.  The network
        still delivers it — detecting the damage is the *transport system's*
        job (or not, for configurations without a checksum).
    hops:
        Incremented at each switch; used by whitebox metrics.
    """

    __slots__ = (
        "id",
        "src",
        "dst",
        "size",
        "payload",
        "priority",
        "corrupted",
        "hops",
        "multicast_dsts",
        "created_at",
        "trace",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        size: int,
        payload: Any = None,
        priority: int = PRIO_NORMAL,
        multicast_dsts: Optional[Sequence[str]] = None,
        created_at: float = 0.0,
    ) -> None:
        if size <= 0:
            raise ValueError(f"frame size must be positive, got {size}")
        self.id = next(_frame_ids)
        self.src = src
        self.dst = dst
        self.size = int(size)
        self.payload = payload
        self.priority = priority
        self.corrupted = False
        self.hops = 0
        self.multicast_dsts = list(multicast_dsts) if multicast_dsts else None
        self.created_at = created_at
        self.trace: list[str] = []

    def clone_for(self, dsts: Sequence[str]) -> "Frame":
        """Replicate the frame at a multicast branch point.

        The payload reference is shared (the network never copies payload
        bytes), mirroring hardware multicast where a switch replicates a
        frame onto several output ports.
        """
        f = Frame(
            self.src,
            self.dst,
            self.size,
            payload=self.payload,
            priority=self.priority,
            multicast_dsts=dsts,
            created_at=self.created_at,
        )
        f.corrupted = self.corrupted
        f.hops = self.hops
        f.trace = list(self.trace)
        return f

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mc = f" mc={self.multicast_dsts}" if self.multicast_dsts else ""
        return f"<Frame#{self.id} {self.src}->{self.dst} {self.size}B{mc}>"
