"""The network-layer transmission unit.

A ``Frame`` is what traverses links and switch queues.  The transport system
(TKO) hands the network a frame per PDU (or per fragment, when the PDU
exceeds the path MTU).  The payload is opaque to the network — exactly the
separation the paper draws between the transport system and the underlying
network service.
"""

from __future__ import annotations

import itertools
import json
import struct
import zlib
from typing import Any, Optional, Sequence

_frame_ids = itertools.count(1)

# Priority classes for the network's priority-delivery service (Table 1's
# "Priority Delivery" column).  Lower numeric value is served first.
PRIO_CONTROL = 0   # out-of-band signalling (Figure 3's control path)
PRIO_HIGH = 1
PRIO_NORMAL = 2


class Frame:
    """One unit of network transmission.

    Attributes
    ----------
    src, dst:
        Host names.  For multicast, ``dst`` is a group address and
        ``multicast_dsts`` carries the resolved member list while the frame
        fans out through the tree.
    size:
        Total on-wire size in bytes (headers included) — drives
        serialization delay and bit-error probability.
    payload:
        Opaque transport-layer object (a :class:`repro.tko.message.TKOMessage`
        in normal operation).
    priority:
        Network service class; control frames preempt data in switch queues.
    corrupted:
        Set by a link when channel bit errors hit the frame.  The network
        still delivers it — detecting the damage is the *transport system's*
        job (or not, for configurations without a checksum).
    hops:
        Incremented at each switch; used by whitebox metrics.
    """

    __slots__ = (
        "id",
        "src",
        "dst",
        "size",
        "payload",
        "priority",
        "corrupted",
        "hops",
        "multicast_dsts",
        "created_at",
        "trace",
        "heartbeat",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        size: int,
        payload: Any = None,
        priority: int = PRIO_NORMAL,
        multicast_dsts: Optional[Sequence[str]] = None,
        created_at: float = 0.0,
    ) -> None:
        if size <= 0:
            raise ValueError(f"frame size must be positive, got {size}")
        self.id = next(_frame_ids)
        self.src = src
        self.dst = dst
        self.size = int(size)
        self.payload = payload
        self.priority = priority
        self.corrupted = False
        self.hops = 0
        self.multicast_dsts = list(multicast_dsts) if multicast_dsts else None
        self.created_at = created_at
        self.trace: list[str] = []
        #: wire-level liveness beacon (carries no payload; real fabrics
        #: consume it before host delivery — see repro.transport.liveness)
        self.heartbeat = False

    def clone_for(self, dsts: Sequence[str]) -> "Frame":
        """Replicate the frame at a multicast branch point.

        The payload reference is shared (the network never copies payload
        bytes), mirroring hardware multicast where a switch replicates a
        frame onto several output ports.
        """
        f = Frame(
            self.src,
            self.dst,
            self.size,
            payload=self.payload,
            priority=self.priority,
            multicast_dsts=dsts,
            created_at=self.created_at,
        )
        f.corrupted = self.corrupted
        f.heartbeat = self.heartbeat
        f.hops = self.hops
        f.trace = list(self.trace)
        return f

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mc = f" mc={self.multicast_dsts}" if self.multicast_dsts else ""
        return f"<Frame#{self.id} {self.src}->{self.dst} {self.size}B{mc}>"


# ----------------------------------------------------------------------
# versioned wire codec
# ----------------------------------------------------------------------
# When frames leave the process (the UDP/loopback transport backends),
# the in-memory Frame + PDU object graph is flattened to one datagram:
#
#   magic "ADPT" | version u8 | flags u8 | priority u8 | hops u8
#   | size u32 | created_at f64 | src (u8 len + utf8) | dst (u8 len + utf8)
#   [ | pdu-header u32 len + JSON | payload u32 len + bytes ]   (flag bit 0)
#   | crc32 u32   (over every preceding byte)
#
# ``size`` is the *semantic* on-wire size (headers included) the sender's
# cost model charged — the decoded Frame reproduces it exactly, so the
# receiver's per-byte charges and the QoS auditor's byte accounting match
# the sender's, independent of the encoding's own overhead.  The PDU
# header rides as JSON: every field the demux/session path reads is
# carried, options dicts (piggybacked configs, FEC metadata) are JSON by
# construction, and the TKOMessage payload is materialized once — the
# same single copy the app boundary pays in-process.
#
# Version 2 (hostile-path hardening) added two things over v1:
#
# * a trailing CRC32 over the whole datagram.  On a hostile path a
#   single flipped byte in a length field or a host-name byte would
#   otherwise silently re-frame the datagram — possibly decoding into a
#   *different* src/dst.  With the checksum, any byte damage is refused
#   as ``WireFormatError`` and the datagram is dropped (counted as a
#   decode error), which upper layers experience as loss — exactly what
#   a UDP checksum gives a real stack.  This is distinct from the
#   ``corrupted`` *flag*: that is the simulated network's semantic
#   "delivered but damaged" marker, which rides a *valid* datagram so
#   transport-level detection mechanisms can earn their keep.
# * flag bit 2: a heartbeat beacon (no PDU).  Fabrics consume heartbeat
#   frames before host delivery; they exist only to prove the peer's
#   wire is alive (see ``repro.transport.liveness``).

#: 4-byte magic opening every encoded frame
WIRE_MAGIC = b"ADPT"
#: current wire format version (2 = +CRC32 trailer, +heartbeat flag)
WIRE_VERSION = 2

_FIXED = struct.Struct("!4sBBBBId")
_U32 = struct.Struct("!I")

_FLAG_PDU = 0x01
_FLAG_CORRUPTED = 0x02
_FLAG_HEARTBEAT = 0x04


class WireFormatError(ValueError):
    """Raised on any malformed, truncated, or wrong-version datagram."""


def encode_frame_into(frame: "Frame", buf: bytearray) -> memoryview:
    """Serialize one frame into a reusable staging buffer.

    The bytes-plane encode path: every piece — fixed header, host names,
    PDU header JSON, payload segments, CRC — is written straight into
    ``buf`` (grown as needed, never shrunk), and the payload streams out
    of the message's ``memoryview`` segments via
    :meth:`~repro.tko.message.TKOMessage.write_into`, so a multi-segment
    slab-backed message crosses the codec with exactly one payload copy
    and zero intermediate ``bytes`` objects.  Returns a ``memoryview`` of
    the encoded datagram *inside* ``buf`` — valid only until the next
    encode into the same buffer; substrates that hand datagrams to
    asynchronous machinery must snapshot (``bytes(view)``) first.

    Multicast frames are refused: group fan-out happens inside the
    simulated network; a real substrate sends one unicast frame per
    member (raising here keeps that invariant loud).
    """
    from repro.tko.pdu import PDU

    if frame.multicast_dsts is not None:
        raise WireFormatError("multicast frames are not wire-encodable")
    src = frame.src.encode()
    dst = frame.dst.encode()
    if len(src) > 255 or len(dst) > 255:
        raise WireFormatError("host names longer than 255 bytes")
    pdu = frame.payload
    flags = 0
    if frame.corrupted:
        flags |= _FLAG_CORRUPTED
    if frame.heartbeat:
        flags |= _FLAG_HEARTBEAT
    head_b = b""
    payload_len = 0
    is_pdu = isinstance(pdu, PDU)
    if is_pdu:
        flags |= _FLAG_PDU
        head = {
            "t": pdu.ptype.value,
            "c": pdu.conn_id,
            "sp": pdu.src_port,
            "dp": pdu.dst_port,
            "q": pdu.seq,
            "a": pdu.ack,
            "k": list(pdu.sack) if pdu.sack else None,
            "m": pdu.msg_id,
            "fi": pdu.frag_index,
            "fc": pdu.frag_count,
            "w": pdu.window,
            "ts": pdu.timestamp,
            "o": pdu.options,
            "cp": pdu.compact,
            "ck": pdu.checksum,
            "kp": pdu.checksum_placement,
            "ax": pdu.aux_size,
            "hm": pdu.message is not None,
        }
        try:
            head_b = json.dumps(head, separators=(",", ":")).encode()
        except (TypeError, ValueError) as exc:
            raise WireFormatError(f"unencodable PDU options: {exc}") from exc
        payload_len = pdu.message.data_length if pdu.message is not None else 0
    need = (_FIXED.size + 2 + len(src) + len(dst)
            + ((8 + len(head_b) + payload_len) if is_pdu else 0) + 4)
    if len(buf) < need:
        buf += bytes(need - len(buf))
    mv = memoryview(buf)
    _FIXED.pack_into(buf, 0, WIRE_MAGIC, WIRE_VERSION, flags, frame.priority,
                     min(frame.hops, 255), frame.size, frame.created_at)
    off = _FIXED.size
    buf[off] = len(src)
    off += 1
    buf[off:off + len(src)] = src
    off += len(src)
    buf[off] = len(dst)
    off += 1
    buf[off:off + len(dst)] = dst
    off += len(dst)
    if is_pdu:
        _U32.pack_into(buf, off, len(head_b))
        off += 4
        buf[off:off + len(head_b)] = head_b
        off += len(head_b)
        _U32.pack_into(buf, off, payload_len)
        off += 4
        if pdu.message is not None:
            off += pdu.message.write_into(mv[off:off + payload_len])
    _U32.pack_into(buf, off, zlib.crc32(mv[:off]))
    off += 4
    return mv[:off]


def encode_frame(frame: "Frame") -> bytes:
    """Serialize one frame (and its PDU payload, if any) to bytes.

    Convenience wrapper over :func:`encode_frame_into` with a throwaway
    buffer; hot paths should hold a per-endpoint staging buffer instead.
    """
    return bytes(encode_frame_into(frame, bytearray()))


def decode_frame(data: bytes, arena: Optional[Any] = None) -> "Frame":
    """Rebuild a Frame (+ fresh, unpooled PDU) from :func:`encode_frame`
    output.  Raises :class:`WireFormatError` on anything malformed.

    With ``arena`` (a :class:`repro.tko.slab.SlabArena`), the payload
    bytes are stored straight from the datagram into slab storage and the
    rebuilt message carries the slab lease — released automatically at the
    message's terminal points, and released *here* on every decode failure
    after the allocation, so a hostile datagram can never leak a slab
    claim.
    """
    from repro.tko.message import TKOMessage
    from repro.tko.pdu import PDU, PduType

    if len(data) < _FIXED.size + 2 + 4:
        raise WireFormatError(f"datagram too short ({len(data)} bytes)")
    magic, version, flags, priority, hops, size, created_at = _FIXED.unpack_from(data)
    if magic != WIRE_MAGIC:
        raise WireFormatError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    # integrity before structure: a hostile path flipping one byte must
    # never re-frame the datagram into a different-looking (src, dst)
    want = _U32.unpack_from(data, len(data) - 4)[0]
    if zlib.crc32(data[:-4]) != want:
        raise WireFormatError("checksum mismatch (damaged datagram)")
    end = len(data) - 4
    off = _FIXED.size

    def take(n: int) -> bytes:
        nonlocal off
        if off + n > end:
            raise WireFormatError("truncated datagram")
        chunk = data[off:off + n]
        off += n
        return chunk

    src = take(take(1)[0]).decode()
    dst = take(take(1)[0]).decode()
    payload = None
    message = None
    if flags & _FLAG_PDU:
        head_len = _U32.unpack(take(4))[0]
        try:
            head = json.loads(take(head_len).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireFormatError(f"malformed PDU header: {exc}") from exc
        body_len = _U32.unpack(take(4))[0]
        if off + body_len > end:
            raise WireFormatError("truncated datagram")
        body_off = off
        off += body_len
        try:
            if head["hm"]:
                if arena is not None:
                    # one copy, datagram -> slab, no intermediate bytes
                    lease = arena.store(memoryview(data)[body_off:off])
                    message = TKOMessage(lease.view)
                    message.attach_lease(lease)
                else:
                    message = TKOMessage(data[body_off:off])
            pdu = PDU(
                PduType(head["t"]),
                head["c"],
                src_port=head["sp"],
                dst_port=head["dp"],
                seq=head["q"],
                ack=head["a"],
                sack=tuple(head["k"]) if head["k"] else None,
                msg_id=head["m"],
                frag_index=head["fi"],
                frag_count=head["fc"],
                window=head["w"],
                timestamp=head["ts"],
                options=head["o"] or {},
                message=message,
                compact=head["cp"],
            )
        except (KeyError, ValueError, TypeError) as exc:
            if message is not None:
                message.release_payload()
            raise WireFormatError(f"malformed PDU fields: {exc}") from exc
        pdu.checksum = head.get("ck")
        pdu.checksum_placement = head.get("kp")
        pdu.aux_size = head.get("ax", 0)
        payload = pdu
    try:
        if off != end:
            raise WireFormatError(f"{end - off} trailing bytes")
        frame = Frame(src, dst, size, payload=payload, priority=priority,
                      created_at=created_at)
    except (WireFormatError, ValueError):
        if message is not None:
            message.release_payload()
        raise
    frame.corrupted = bool(flags & _FLAG_CORRUPTED)
    frame.heartbeat = bool(flags & _FLAG_HEARTBEAT)
    frame.hops = hops
    return frame
